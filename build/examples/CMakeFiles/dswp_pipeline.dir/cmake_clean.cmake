file(REMOVE_RECURSE
  "CMakeFiles/dswp_pipeline.dir/dswp_pipeline.cpp.o"
  "CMakeFiles/dswp_pipeline.dir/dswp_pipeline.cpp.o.d"
  "dswp_pipeline"
  "dswp_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dswp_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
