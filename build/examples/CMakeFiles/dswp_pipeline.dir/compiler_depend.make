# Empty compiler generated dependencies file for dswp_pipeline.
# This may be replaced when dependencies are built.
