file(REMOVE_RECURSE
  "CMakeFiles/mincut_placement.dir/mincut_placement.cpp.o"
  "CMakeFiles/mincut_placement.dir/mincut_placement.cpp.o.d"
  "mincut_placement"
  "mincut_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mincut_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
