# Empty compiler generated dependencies file for mincut_placement.
# This may be replaced when dependencies are built.
