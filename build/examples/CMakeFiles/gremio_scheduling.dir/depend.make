# Empty dependencies file for gremio_scheduling.
# This may be replaced when dependencies are built.
