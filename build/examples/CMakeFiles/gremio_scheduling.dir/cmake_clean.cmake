file(REMOVE_RECURSE
  "CMakeFiles/gremio_scheduling.dir/gremio_scheduling.cpp.o"
  "CMakeFiles/gremio_scheduling.dir/gremio_scheduling.cpp.o.d"
  "gremio_scheduling"
  "gremio_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gremio_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
