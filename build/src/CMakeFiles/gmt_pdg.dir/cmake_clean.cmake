file(REMOVE_RECURSE
  "CMakeFiles/gmt_pdg.dir/pdg/pdg.cpp.o"
  "CMakeFiles/gmt_pdg.dir/pdg/pdg.cpp.o.d"
  "CMakeFiles/gmt_pdg.dir/pdg/pdg_builder.cpp.o"
  "CMakeFiles/gmt_pdg.dir/pdg/pdg_builder.cpp.o.d"
  "libgmt_pdg.a"
  "libgmt_pdg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_pdg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
