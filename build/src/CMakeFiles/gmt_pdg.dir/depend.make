# Empty dependencies file for gmt_pdg.
# This may be replaced when dependencies are built.
