file(REMOVE_RECURSE
  "libgmt_pdg.a"
)
