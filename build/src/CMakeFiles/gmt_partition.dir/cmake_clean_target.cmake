file(REMOVE_RECURSE
  "libgmt_partition.a"
)
