file(REMOVE_RECURSE
  "CMakeFiles/gmt_partition.dir/partition/dswp.cpp.o"
  "CMakeFiles/gmt_partition.dir/partition/dswp.cpp.o.d"
  "CMakeFiles/gmt_partition.dir/partition/gremio.cpp.o"
  "CMakeFiles/gmt_partition.dir/partition/gremio.cpp.o.d"
  "CMakeFiles/gmt_partition.dir/partition/partition.cpp.o"
  "CMakeFiles/gmt_partition.dir/partition/partition.cpp.o.d"
  "libgmt_partition.a"
  "libgmt_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
