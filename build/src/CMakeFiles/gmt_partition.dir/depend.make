# Empty dependencies file for gmt_partition.
# This may be replaced when dependencies are built.
