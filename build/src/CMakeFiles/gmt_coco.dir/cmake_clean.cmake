file(REMOVE_RECURSE
  "CMakeFiles/gmt_coco.dir/coco/coco.cpp.o"
  "CMakeFiles/gmt_coco.dir/coco/coco.cpp.o.d"
  "CMakeFiles/gmt_coco.dir/coco/flow_graph.cpp.o"
  "CMakeFiles/gmt_coco.dir/coco/flow_graph.cpp.o.d"
  "CMakeFiles/gmt_coco.dir/coco/relevant.cpp.o"
  "CMakeFiles/gmt_coco.dir/coco/relevant.cpp.o.d"
  "CMakeFiles/gmt_coco.dir/coco/safety.cpp.o"
  "CMakeFiles/gmt_coco.dir/coco/safety.cpp.o.d"
  "CMakeFiles/gmt_coco.dir/coco/thread_liveness.cpp.o"
  "CMakeFiles/gmt_coco.dir/coco/thread_liveness.cpp.o.d"
  "CMakeFiles/gmt_coco.dir/coco/validate.cpp.o"
  "CMakeFiles/gmt_coco.dir/coco/validate.cpp.o.d"
  "libgmt_coco.a"
  "libgmt_coco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_coco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
