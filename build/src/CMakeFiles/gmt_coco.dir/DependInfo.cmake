
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coco/coco.cpp" "src/CMakeFiles/gmt_coco.dir/coco/coco.cpp.o" "gcc" "src/CMakeFiles/gmt_coco.dir/coco/coco.cpp.o.d"
  "/root/repo/src/coco/flow_graph.cpp" "src/CMakeFiles/gmt_coco.dir/coco/flow_graph.cpp.o" "gcc" "src/CMakeFiles/gmt_coco.dir/coco/flow_graph.cpp.o.d"
  "/root/repo/src/coco/relevant.cpp" "src/CMakeFiles/gmt_coco.dir/coco/relevant.cpp.o" "gcc" "src/CMakeFiles/gmt_coco.dir/coco/relevant.cpp.o.d"
  "/root/repo/src/coco/safety.cpp" "src/CMakeFiles/gmt_coco.dir/coco/safety.cpp.o" "gcc" "src/CMakeFiles/gmt_coco.dir/coco/safety.cpp.o.d"
  "/root/repo/src/coco/thread_liveness.cpp" "src/CMakeFiles/gmt_coco.dir/coco/thread_liveness.cpp.o" "gcc" "src/CMakeFiles/gmt_coco.dir/coco/thread_liveness.cpp.o.d"
  "/root/repo/src/coco/validate.cpp" "src/CMakeFiles/gmt_coco.dir/coco/validate.cpp.o" "gcc" "src/CMakeFiles/gmt_coco.dir/coco/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gmt_mtcg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gmt_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gmt_pdg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gmt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gmt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gmt_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gmt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gmt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
