# Empty dependencies file for gmt_coco.
# This may be replaced when dependencies are built.
