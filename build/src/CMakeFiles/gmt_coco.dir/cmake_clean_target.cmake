file(REMOVE_RECURSE
  "libgmt_coco.a"
)
