# Empty dependencies file for gmt_mtcg.
# This may be replaced when dependencies are built.
