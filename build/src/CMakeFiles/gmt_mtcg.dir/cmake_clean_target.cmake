file(REMOVE_RECURSE
  "libgmt_mtcg.a"
)
