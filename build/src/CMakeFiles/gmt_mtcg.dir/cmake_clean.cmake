file(REMOVE_RECURSE
  "CMakeFiles/gmt_mtcg.dir/mtcg/comm_plan.cpp.o"
  "CMakeFiles/gmt_mtcg.dir/mtcg/comm_plan.cpp.o.d"
  "CMakeFiles/gmt_mtcg.dir/mtcg/mtcg.cpp.o"
  "CMakeFiles/gmt_mtcg.dir/mtcg/mtcg.cpp.o.d"
  "CMakeFiles/gmt_mtcg.dir/mtcg/queue_alloc.cpp.o"
  "CMakeFiles/gmt_mtcg.dir/mtcg/queue_alloc.cpp.o.d"
  "libgmt_mtcg.a"
  "libgmt_mtcg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_mtcg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
