# Empty compiler generated dependencies file for gmt_ir.
# This may be replaced when dependencies are built.
