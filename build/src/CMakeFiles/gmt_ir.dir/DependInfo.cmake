
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/builder.cpp" "src/CMakeFiles/gmt_ir.dir/ir/builder.cpp.o" "gcc" "src/CMakeFiles/gmt_ir.dir/ir/builder.cpp.o.d"
  "/root/repo/src/ir/edge_split.cpp" "src/CMakeFiles/gmt_ir.dir/ir/edge_split.cpp.o" "gcc" "src/CMakeFiles/gmt_ir.dir/ir/edge_split.cpp.o.d"
  "/root/repo/src/ir/function.cpp" "src/CMakeFiles/gmt_ir.dir/ir/function.cpp.o" "gcc" "src/CMakeFiles/gmt_ir.dir/ir/function.cpp.o.d"
  "/root/repo/src/ir/instr.cpp" "src/CMakeFiles/gmt_ir.dir/ir/instr.cpp.o" "gcc" "src/CMakeFiles/gmt_ir.dir/ir/instr.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "src/CMakeFiles/gmt_ir.dir/ir/printer.cpp.o" "gcc" "src/CMakeFiles/gmt_ir.dir/ir/printer.cpp.o.d"
  "/root/repo/src/ir/verifier.cpp" "src/CMakeFiles/gmt_ir.dir/ir/verifier.cpp.o" "gcc" "src/CMakeFiles/gmt_ir.dir/ir/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gmt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
