file(REMOVE_RECURSE
  "CMakeFiles/gmt_ir.dir/ir/builder.cpp.o"
  "CMakeFiles/gmt_ir.dir/ir/builder.cpp.o.d"
  "CMakeFiles/gmt_ir.dir/ir/edge_split.cpp.o"
  "CMakeFiles/gmt_ir.dir/ir/edge_split.cpp.o.d"
  "CMakeFiles/gmt_ir.dir/ir/function.cpp.o"
  "CMakeFiles/gmt_ir.dir/ir/function.cpp.o.d"
  "CMakeFiles/gmt_ir.dir/ir/instr.cpp.o"
  "CMakeFiles/gmt_ir.dir/ir/instr.cpp.o.d"
  "CMakeFiles/gmt_ir.dir/ir/printer.cpp.o"
  "CMakeFiles/gmt_ir.dir/ir/printer.cpp.o.d"
  "CMakeFiles/gmt_ir.dir/ir/verifier.cpp.o"
  "CMakeFiles/gmt_ir.dir/ir/verifier.cpp.o.d"
  "libgmt_ir.a"
  "libgmt_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
