file(REMOVE_RECURSE
  "libgmt_ir.a"
)
