# Empty dependencies file for gmt_workloads.
# This may be replaced when dependencies are built.
