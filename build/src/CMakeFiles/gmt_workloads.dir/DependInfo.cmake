
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/adpcm_dec.cpp" "src/CMakeFiles/gmt_workloads.dir/workloads/adpcm_dec.cpp.o" "gcc" "src/CMakeFiles/gmt_workloads.dir/workloads/adpcm_dec.cpp.o.d"
  "/root/repo/src/workloads/adpcm_enc.cpp" "src/CMakeFiles/gmt_workloads.dir/workloads/adpcm_enc.cpp.o" "gcc" "src/CMakeFiles/gmt_workloads.dir/workloads/adpcm_enc.cpp.o.d"
  "/root/repo/src/workloads/ammp.cpp" "src/CMakeFiles/gmt_workloads.dir/workloads/ammp.cpp.o" "gcc" "src/CMakeFiles/gmt_workloads.dir/workloads/ammp.cpp.o.d"
  "/root/repo/src/workloads/equake.cpp" "src/CMakeFiles/gmt_workloads.dir/workloads/equake.cpp.o" "gcc" "src/CMakeFiles/gmt_workloads.dir/workloads/equake.cpp.o.d"
  "/root/repo/src/workloads/gromacs.cpp" "src/CMakeFiles/gmt_workloads.dir/workloads/gromacs.cpp.o" "gcc" "src/CMakeFiles/gmt_workloads.dir/workloads/gromacs.cpp.o.d"
  "/root/repo/src/workloads/ks.cpp" "src/CMakeFiles/gmt_workloads.dir/workloads/ks.cpp.o" "gcc" "src/CMakeFiles/gmt_workloads.dir/workloads/ks.cpp.o.d"
  "/root/repo/src/workloads/mcf.cpp" "src/CMakeFiles/gmt_workloads.dir/workloads/mcf.cpp.o" "gcc" "src/CMakeFiles/gmt_workloads.dir/workloads/mcf.cpp.o.d"
  "/root/repo/src/workloads/mesa.cpp" "src/CMakeFiles/gmt_workloads.dir/workloads/mesa.cpp.o" "gcc" "src/CMakeFiles/gmt_workloads.dir/workloads/mesa.cpp.o.d"
  "/root/repo/src/workloads/mpeg2enc.cpp" "src/CMakeFiles/gmt_workloads.dir/workloads/mpeg2enc.cpp.o" "gcc" "src/CMakeFiles/gmt_workloads.dir/workloads/mpeg2enc.cpp.o.d"
  "/root/repo/src/workloads/sjeng.cpp" "src/CMakeFiles/gmt_workloads.dir/workloads/sjeng.cpp.o" "gcc" "src/CMakeFiles/gmt_workloads.dir/workloads/sjeng.cpp.o.d"
  "/root/repo/src/workloads/twolf.cpp" "src/CMakeFiles/gmt_workloads.dir/workloads/twolf.cpp.o" "gcc" "src/CMakeFiles/gmt_workloads.dir/workloads/twolf.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/CMakeFiles/gmt_workloads.dir/workloads/workload.cpp.o" "gcc" "src/CMakeFiles/gmt_workloads.dir/workloads/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gmt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gmt_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gmt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
