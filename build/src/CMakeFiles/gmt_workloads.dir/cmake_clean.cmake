file(REMOVE_RECURSE
  "CMakeFiles/gmt_workloads.dir/workloads/adpcm_dec.cpp.o"
  "CMakeFiles/gmt_workloads.dir/workloads/adpcm_dec.cpp.o.d"
  "CMakeFiles/gmt_workloads.dir/workloads/adpcm_enc.cpp.o"
  "CMakeFiles/gmt_workloads.dir/workloads/adpcm_enc.cpp.o.d"
  "CMakeFiles/gmt_workloads.dir/workloads/ammp.cpp.o"
  "CMakeFiles/gmt_workloads.dir/workloads/ammp.cpp.o.d"
  "CMakeFiles/gmt_workloads.dir/workloads/equake.cpp.o"
  "CMakeFiles/gmt_workloads.dir/workloads/equake.cpp.o.d"
  "CMakeFiles/gmt_workloads.dir/workloads/gromacs.cpp.o"
  "CMakeFiles/gmt_workloads.dir/workloads/gromacs.cpp.o.d"
  "CMakeFiles/gmt_workloads.dir/workloads/ks.cpp.o"
  "CMakeFiles/gmt_workloads.dir/workloads/ks.cpp.o.d"
  "CMakeFiles/gmt_workloads.dir/workloads/mcf.cpp.o"
  "CMakeFiles/gmt_workloads.dir/workloads/mcf.cpp.o.d"
  "CMakeFiles/gmt_workloads.dir/workloads/mesa.cpp.o"
  "CMakeFiles/gmt_workloads.dir/workloads/mesa.cpp.o.d"
  "CMakeFiles/gmt_workloads.dir/workloads/mpeg2enc.cpp.o"
  "CMakeFiles/gmt_workloads.dir/workloads/mpeg2enc.cpp.o.d"
  "CMakeFiles/gmt_workloads.dir/workloads/sjeng.cpp.o"
  "CMakeFiles/gmt_workloads.dir/workloads/sjeng.cpp.o.d"
  "CMakeFiles/gmt_workloads.dir/workloads/twolf.cpp.o"
  "CMakeFiles/gmt_workloads.dir/workloads/twolf.cpp.o.d"
  "CMakeFiles/gmt_workloads.dir/workloads/workload.cpp.o"
  "CMakeFiles/gmt_workloads.dir/workloads/workload.cpp.o.d"
  "libgmt_workloads.a"
  "libgmt_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
