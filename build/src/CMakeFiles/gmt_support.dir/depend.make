# Empty dependencies file for gmt_support.
# This may be replaced when dependencies are built.
