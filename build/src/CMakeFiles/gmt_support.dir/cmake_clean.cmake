file(REMOVE_RECURSE
  "CMakeFiles/gmt_support.dir/support/bit_vector.cpp.o"
  "CMakeFiles/gmt_support.dir/support/bit_vector.cpp.o.d"
  "CMakeFiles/gmt_support.dir/support/rng.cpp.o"
  "CMakeFiles/gmt_support.dir/support/rng.cpp.o.d"
  "CMakeFiles/gmt_support.dir/support/table.cpp.o"
  "CMakeFiles/gmt_support.dir/support/table.cpp.o.d"
  "libgmt_support.a"
  "libgmt_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
