file(REMOVE_RECURSE
  "libgmt_support.a"
)
