
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cpp" "src/CMakeFiles/gmt_sim.dir/sim/cache.cpp.o" "gcc" "src/CMakeFiles/gmt_sim.dir/sim/cache.cpp.o.d"
  "/root/repo/src/sim/cmp_simulator.cpp" "src/CMakeFiles/gmt_sim.dir/sim/cmp_simulator.cpp.o" "gcc" "src/CMakeFiles/gmt_sim.dir/sim/cmp_simulator.cpp.o.d"
  "/root/repo/src/sim/machine_config.cpp" "src/CMakeFiles/gmt_sim.dir/sim/machine_config.cpp.o" "gcc" "src/CMakeFiles/gmt_sim.dir/sim/machine_config.cpp.o.d"
  "/root/repo/src/sim/sync_array_timing.cpp" "src/CMakeFiles/gmt_sim.dir/sim/sync_array_timing.cpp.o" "gcc" "src/CMakeFiles/gmt_sim.dir/sim/sync_array_timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gmt_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gmt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gmt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
