file(REMOVE_RECURSE
  "CMakeFiles/gmt_sim.dir/sim/cache.cpp.o"
  "CMakeFiles/gmt_sim.dir/sim/cache.cpp.o.d"
  "CMakeFiles/gmt_sim.dir/sim/cmp_simulator.cpp.o"
  "CMakeFiles/gmt_sim.dir/sim/cmp_simulator.cpp.o.d"
  "CMakeFiles/gmt_sim.dir/sim/machine_config.cpp.o"
  "CMakeFiles/gmt_sim.dir/sim/machine_config.cpp.o.d"
  "CMakeFiles/gmt_sim.dir/sim/sync_array_timing.cpp.o"
  "CMakeFiles/gmt_sim.dir/sim/sync_array_timing.cpp.o.d"
  "libgmt_sim.a"
  "libgmt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
