file(REMOVE_RECURSE
  "libgmt_sim.a"
)
