file(REMOVE_RECURSE
  "CMakeFiles/gmt_graph.dir/graph/digraph.cpp.o"
  "CMakeFiles/gmt_graph.dir/graph/digraph.cpp.o.d"
  "CMakeFiles/gmt_graph.dir/graph/max_flow.cpp.o"
  "CMakeFiles/gmt_graph.dir/graph/max_flow.cpp.o.d"
  "CMakeFiles/gmt_graph.dir/graph/multi_cut.cpp.o"
  "CMakeFiles/gmt_graph.dir/graph/multi_cut.cpp.o.d"
  "CMakeFiles/gmt_graph.dir/graph/scc.cpp.o"
  "CMakeFiles/gmt_graph.dir/graph/scc.cpp.o.d"
  "libgmt_graph.a"
  "libgmt_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
