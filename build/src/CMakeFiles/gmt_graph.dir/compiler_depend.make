# Empty compiler generated dependencies file for gmt_graph.
# This may be replaced when dependencies are built.
