file(REMOVE_RECURSE
  "libgmt_graph.a"
)
