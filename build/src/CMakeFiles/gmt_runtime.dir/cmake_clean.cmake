file(REMOVE_RECURSE
  "CMakeFiles/gmt_runtime.dir/runtime/interpreter.cpp.o"
  "CMakeFiles/gmt_runtime.dir/runtime/interpreter.cpp.o.d"
  "CMakeFiles/gmt_runtime.dir/runtime/memory_image.cpp.o"
  "CMakeFiles/gmt_runtime.dir/runtime/memory_image.cpp.o.d"
  "CMakeFiles/gmt_runtime.dir/runtime/mt_interpreter.cpp.o"
  "CMakeFiles/gmt_runtime.dir/runtime/mt_interpreter.cpp.o.d"
  "CMakeFiles/gmt_runtime.dir/runtime/sync_array.cpp.o"
  "CMakeFiles/gmt_runtime.dir/runtime/sync_array.cpp.o.d"
  "libgmt_runtime.a"
  "libgmt_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
