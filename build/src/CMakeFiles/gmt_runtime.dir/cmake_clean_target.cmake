file(REMOVE_RECURSE
  "libgmt_runtime.a"
)
