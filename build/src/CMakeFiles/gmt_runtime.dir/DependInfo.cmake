
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/interpreter.cpp" "src/CMakeFiles/gmt_runtime.dir/runtime/interpreter.cpp.o" "gcc" "src/CMakeFiles/gmt_runtime.dir/runtime/interpreter.cpp.o.d"
  "/root/repo/src/runtime/memory_image.cpp" "src/CMakeFiles/gmt_runtime.dir/runtime/memory_image.cpp.o" "gcc" "src/CMakeFiles/gmt_runtime.dir/runtime/memory_image.cpp.o.d"
  "/root/repo/src/runtime/mt_interpreter.cpp" "src/CMakeFiles/gmt_runtime.dir/runtime/mt_interpreter.cpp.o" "gcc" "src/CMakeFiles/gmt_runtime.dir/runtime/mt_interpreter.cpp.o.d"
  "/root/repo/src/runtime/sync_array.cpp" "src/CMakeFiles/gmt_runtime.dir/runtime/sync_array.cpp.o" "gcc" "src/CMakeFiles/gmt_runtime.dir/runtime/sync_array.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gmt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gmt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
