
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/control_dep.cpp" "src/CMakeFiles/gmt_analysis.dir/analysis/control_dep.cpp.o" "gcc" "src/CMakeFiles/gmt_analysis.dir/analysis/control_dep.cpp.o.d"
  "/root/repo/src/analysis/dominators.cpp" "src/CMakeFiles/gmt_analysis.dir/analysis/dominators.cpp.o" "gcc" "src/CMakeFiles/gmt_analysis.dir/analysis/dominators.cpp.o.d"
  "/root/repo/src/analysis/edge_profile.cpp" "src/CMakeFiles/gmt_analysis.dir/analysis/edge_profile.cpp.o" "gcc" "src/CMakeFiles/gmt_analysis.dir/analysis/edge_profile.cpp.o.d"
  "/root/repo/src/analysis/liveness.cpp" "src/CMakeFiles/gmt_analysis.dir/analysis/liveness.cpp.o" "gcc" "src/CMakeFiles/gmt_analysis.dir/analysis/liveness.cpp.o.d"
  "/root/repo/src/analysis/loop_info.cpp" "src/CMakeFiles/gmt_analysis.dir/analysis/loop_info.cpp.o" "gcc" "src/CMakeFiles/gmt_analysis.dir/analysis/loop_info.cpp.o.d"
  "/root/repo/src/analysis/mem_dep.cpp" "src/CMakeFiles/gmt_analysis.dir/analysis/mem_dep.cpp.o" "gcc" "src/CMakeFiles/gmt_analysis.dir/analysis/mem_dep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gmt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gmt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gmt_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gmt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
