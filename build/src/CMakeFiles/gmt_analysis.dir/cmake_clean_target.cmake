file(REMOVE_RECURSE
  "libgmt_analysis.a"
)
