# Empty dependencies file for gmt_analysis.
# This may be replaced when dependencies are built.
