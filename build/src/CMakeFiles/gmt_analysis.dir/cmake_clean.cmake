file(REMOVE_RECURSE
  "CMakeFiles/gmt_analysis.dir/analysis/control_dep.cpp.o"
  "CMakeFiles/gmt_analysis.dir/analysis/control_dep.cpp.o.d"
  "CMakeFiles/gmt_analysis.dir/analysis/dominators.cpp.o"
  "CMakeFiles/gmt_analysis.dir/analysis/dominators.cpp.o.d"
  "CMakeFiles/gmt_analysis.dir/analysis/edge_profile.cpp.o"
  "CMakeFiles/gmt_analysis.dir/analysis/edge_profile.cpp.o.d"
  "CMakeFiles/gmt_analysis.dir/analysis/liveness.cpp.o"
  "CMakeFiles/gmt_analysis.dir/analysis/liveness.cpp.o.d"
  "CMakeFiles/gmt_analysis.dir/analysis/loop_info.cpp.o"
  "CMakeFiles/gmt_analysis.dir/analysis/loop_info.cpp.o.d"
  "CMakeFiles/gmt_analysis.dir/analysis/mem_dep.cpp.o"
  "CMakeFiles/gmt_analysis.dir/analysis/mem_dep.cpp.o.d"
  "libgmt_analysis.a"
  "libgmt_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
