# Empty compiler generated dependencies file for gmt_driver.
# This may be replaced when dependencies are built.
