file(REMOVE_RECURSE
  "libgmt_driver.a"
)
