file(REMOVE_RECURSE
  "CMakeFiles/gmt_driver.dir/driver/pipeline.cpp.o"
  "CMakeFiles/gmt_driver.dir/driver/pipeline.cpp.o.d"
  "CMakeFiles/gmt_driver.dir/driver/report.cpp.o"
  "CMakeFiles/gmt_driver.dir/driver/report.cpp.o.d"
  "libgmt_driver.a"
  "libgmt_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
