# Empty compiler generated dependencies file for gmt_testgen.
# This may be replaced when dependencies are built.
