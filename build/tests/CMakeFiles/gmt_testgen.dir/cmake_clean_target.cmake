file(REMOVE_RECURSE
  "libgmt_testgen.a"
)
