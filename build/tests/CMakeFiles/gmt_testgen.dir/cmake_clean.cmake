file(REMOVE_RECURSE
  "CMakeFiles/gmt_testgen.dir/testgen.cpp.o"
  "CMakeFiles/gmt_testgen.dir/testgen.cpp.o.d"
  "libgmt_testgen.a"
  "libgmt_testgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_testgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
