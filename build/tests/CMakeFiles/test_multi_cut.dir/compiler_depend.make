# Empty compiler generated dependencies file for test_multi_cut.
# This may be replaced when dependencies are built.
