file(REMOVE_RECURSE
  "CMakeFiles/test_multi_cut.dir/test_multi_cut.cpp.o"
  "CMakeFiles/test_multi_cut.dir/test_multi_cut.cpp.o.d"
  "test_multi_cut"
  "test_multi_cut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_cut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
