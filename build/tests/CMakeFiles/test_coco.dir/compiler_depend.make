# Empty compiler generated dependencies file for test_coco.
# This may be replaced when dependencies are built.
