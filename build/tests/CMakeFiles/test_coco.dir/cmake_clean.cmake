file(REMOVE_RECURSE
  "CMakeFiles/test_coco.dir/test_coco.cpp.o"
  "CMakeFiles/test_coco.dir/test_coco.cpp.o.d"
  "test_coco"
  "test_coco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
