# Empty dependencies file for test_queue_alloc.
# This may be replaced when dependencies are built.
