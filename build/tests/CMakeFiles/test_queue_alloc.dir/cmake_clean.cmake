file(REMOVE_RECURSE
  "CMakeFiles/test_queue_alloc.dir/test_queue_alloc.cpp.o"
  "CMakeFiles/test_queue_alloc.dir/test_queue_alloc.cpp.o.d"
  "test_queue_alloc"
  "test_queue_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queue_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
