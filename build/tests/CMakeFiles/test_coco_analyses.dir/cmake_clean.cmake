file(REMOVE_RECURSE
  "CMakeFiles/test_coco_analyses.dir/test_coco_analyses.cpp.o"
  "CMakeFiles/test_coco_analyses.dir/test_coco_analyses.cpp.o.d"
  "test_coco_analyses"
  "test_coco_analyses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coco_analyses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
