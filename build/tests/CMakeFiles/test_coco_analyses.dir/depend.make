# Empty dependencies file for test_coco_analyses.
# This may be replaced when dependencies are built.
