# Empty dependencies file for fig1_comm_breakdown.
# This may be replaced when dependencies are built.
