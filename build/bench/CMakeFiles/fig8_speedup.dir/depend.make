# Empty dependencies file for fig8_speedup.
# This may be replaced when dependencies are built.
