file(REMOVE_RECURSE
  "CMakeFiles/fig7_comm_reduction.dir/fig7_comm_reduction.cpp.o"
  "CMakeFiles/fig7_comm_reduction.dir/fig7_comm_reduction.cpp.o.d"
  "fig7_comm_reduction"
  "fig7_comm_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_comm_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
