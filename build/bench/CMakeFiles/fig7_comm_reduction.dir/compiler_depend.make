# Empty compiler generated dependencies file for fig7_comm_reduction.
# This may be replaced when dependencies are built.
