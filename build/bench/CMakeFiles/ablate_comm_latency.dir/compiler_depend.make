# Empty compiler generated dependencies file for ablate_comm_latency.
# This may be replaced when dependencies are built.
