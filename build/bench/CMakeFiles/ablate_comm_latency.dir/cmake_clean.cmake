file(REMOVE_RECURSE
  "CMakeFiles/ablate_comm_latency.dir/ablate_comm_latency.cpp.o"
  "CMakeFiles/ablate_comm_latency.dir/ablate_comm_latency.cpp.o.d"
  "ablate_comm_latency"
  "ablate_comm_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_comm_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
