file(REMOVE_RECURSE
  "CMakeFiles/fig6b_benchmarks.dir/fig6b_benchmarks.cpp.o"
  "CMakeFiles/fig6b_benchmarks.dir/fig6b_benchmarks.cpp.o.d"
  "fig6b_benchmarks"
  "fig6b_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
