# Empty compiler generated dependencies file for fig6b_benchmarks.
# This may be replaced when dependencies are built.
