# Empty compiler generated dependencies file for ablate_multicut.
# This may be replaced when dependencies are built.
