file(REMOVE_RECURSE
  "CMakeFiles/ablate_multicut.dir/ablate_multicut.cpp.o"
  "CMakeFiles/ablate_multicut.dir/ablate_multicut.cpp.o.d"
  "ablate_multicut"
  "ablate_multicut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_multicut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
