file(REMOVE_RECURSE
  "CMakeFiles/ablate_queue_size.dir/ablate_queue_size.cpp.o"
  "CMakeFiles/ablate_queue_size.dir/ablate_queue_size.cpp.o.d"
  "ablate_queue_size"
  "ablate_queue_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_queue_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
