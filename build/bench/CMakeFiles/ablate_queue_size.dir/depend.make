# Empty dependencies file for ablate_queue_size.
# This may be replaced when dependencies are built.
