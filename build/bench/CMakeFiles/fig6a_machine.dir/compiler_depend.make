# Empty compiler generated dependencies file for fig6a_machine.
# This may be replaced when dependencies are built.
