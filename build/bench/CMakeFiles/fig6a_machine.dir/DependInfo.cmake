
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig6a_machine.cpp" "bench/CMakeFiles/fig6a_machine.dir/fig6a_machine.cpp.o" "gcc" "bench/CMakeFiles/fig6a_machine.dir/fig6a_machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gmt_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gmt_coco.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gmt_mtcg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gmt_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gmt_pdg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gmt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gmt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gmt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gmt_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gmt_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gmt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gmt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
