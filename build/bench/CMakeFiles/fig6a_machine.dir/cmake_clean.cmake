file(REMOVE_RECURSE
  "CMakeFiles/fig6a_machine.dir/fig6a_machine.cpp.o"
  "CMakeFiles/fig6a_machine.dir/fig6a_machine.cpp.o.d"
  "fig6a_machine"
  "fig6a_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
