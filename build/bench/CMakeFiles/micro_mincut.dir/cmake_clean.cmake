file(REMOVE_RECURSE
  "CMakeFiles/micro_mincut.dir/micro_mincut.cpp.o"
  "CMakeFiles/micro_mincut.dir/micro_mincut.cpp.o.d"
  "micro_mincut"
  "micro_mincut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_mincut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
