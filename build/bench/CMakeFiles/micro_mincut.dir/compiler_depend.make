# Empty compiler generated dependencies file for micro_mincut.
# This may be replaced when dependencies are built.
