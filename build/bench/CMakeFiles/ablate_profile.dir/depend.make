# Empty dependencies file for ablate_profile.
# This may be replaced when dependencies are built.
