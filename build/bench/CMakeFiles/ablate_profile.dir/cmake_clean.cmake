file(REMOVE_RECURSE
  "CMakeFiles/ablate_profile.dir/ablate_profile.cpp.o"
  "CMakeFiles/ablate_profile.dir/ablate_profile.cpp.o.d"
  "ablate_profile"
  "ablate_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
