# Empty dependencies file for ablate_penalties.
# This may be replaced when dependencies are built.
