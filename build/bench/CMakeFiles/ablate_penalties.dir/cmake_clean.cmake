file(REMOVE_RECURSE
  "CMakeFiles/ablate_penalties.dir/ablate_penalties.cpp.o"
  "CMakeFiles/ablate_penalties.dir/ablate_penalties.cpp.o.d"
  "ablate_penalties"
  "ablate_penalties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_penalties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
