/**
 * @file
 * gmt-lint: standalone MT-verification linter.
 *
 * Runs the code-generation pipeline (build-ir through queue-alloc)
 * for every requested workload × scheduler × COCO cell, then runs the
 * full static MT verifier (src/mtverify) over the generated program
 * and reports every diagnostic. Unlike the in-pipeline verify-mt pass
 * — which dies on the first bad cell — the linter collects findings
 * across all cells, prints them (and optionally emits JSONL records),
 * and exits nonzero iff any cell has errors (or, under --werror, any
 * warnings).
 *
 *   gmt-lint [--only W1,W2,...] [--ir FILE.gmt ...]
 *            [--scheduler dswp|gremio|both]
 *            [--coco on|off|both] [--threads N] [--max-queues N]
 *            [--static-profile] [--hb|--no-hb] [--werror]
 *            [--json FILE] [--quiet]
 *
 * Findings are collected across the whole matrix, sorted (code, then
 * cell, then block/pos/instr/queue/thread/message) and deduplicated
 * before rendering, so the text and --json outputs are byte-stable
 * regardless of cell evaluation order.
 *
 * `--ir FILE.gmt` (repeatable) lints serialized cells instead of the
 * built-in workloads: each file is parsed, IR-verified (a malformed
 * file is itself a lint error), then run through the same codegen +
 * MT-verification matrix. This is the replay path for gmt-fuzz repros.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "driver/pass_manager.hpp"
#include "driver/stats.hpp"
#include "mtverify/mtverify.hpp"
#include "support/error.hpp"
#include "workloads/serialize.hpp"
#include "workloads/workload.hpp"

namespace
{

using namespace gmt;

struct LintOptions
{
    std::vector<std::string> only;
    std::vector<std::string> ir_files;
    std::vector<Scheduler> schedulers{Scheduler::Dswp,
                                      Scheduler::Gremio};
    std::vector<bool> coco_modes{false, true};
    int num_threads = 2;
    int max_queues = 0;
    bool static_profile = false;
    bool hb = true;
    bool werror = false;
    std::string json_path;
    bool quiet = false;
};

[[noreturn]] void
usage(const char *argv0, int exit_code)
{
    std::fprintf(
        stderr,
        "usage: %s [--only W1,W2,...] [--ir FILE.gmt ...] "
        "[--scheduler dswp|gremio|both] "
        "[--coco on|off|both] [--threads N] [--max-queues N] "
        "[--static-profile] [--hb|--no-hb] [--werror] "
        "[--json FILE] [--quiet]\n",
        argv0);
    std::exit(exit_code);
}

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> parts;
    size_t start = 0;
    while (start <= csv.size()) {
        size_t comma = csv.find(',', start);
        if (comma == std::string::npos)
            comma = csv.size();
        if (comma > start)
            parts.push_back(csv.substr(start, comma - start));
        start = comma + 1;
    }
    return parts;
}

LintOptions
parseArgs(int argc, char **argv)
{
    LintOptions opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n",
                             argv[0], arg.c_str());
                usage(argv[0], 2);
            }
            return argv[++i];
        };
        if (arg == "--only") {
            opts.only = splitCsv(value());
        } else if (arg == "--ir") {
            opts.ir_files.push_back(value());
        } else if (arg == "--scheduler") {
            std::string v = value();
            if (v == "dswp")
                opts.schedulers = {Scheduler::Dswp};
            else if (v == "gremio")
                opts.schedulers = {Scheduler::Gremio};
            else if (v == "both")
                opts.schedulers = {Scheduler::Dswp, Scheduler::Gremio};
            else
                usage(argv[0], 2);
        } else if (arg == "--coco") {
            std::string v = value();
            if (v == "on")
                opts.coco_modes = {true};
            else if (v == "off")
                opts.coco_modes = {false};
            else if (v == "both")
                opts.coco_modes = {false, true};
            else
                usage(argv[0], 2);
        } else if (arg == "--threads") {
            opts.num_threads = std::atoi(value().c_str());
        } else if (arg == "--max-queues") {
            opts.max_queues = std::atoi(value().c_str());
        } else if (arg == "--static-profile") {
            opts.static_profile = true;
        } else if (arg == "--hb") {
            opts.hb = true;
        } else if (arg == "--no-hb") {
            opts.hb = false;
        } else if (arg == "--werror") {
            opts.werror = true;
        } else if (arg == "--json") {
            opts.json_path = value();
        } else if (arg == "--quiet") {
            opts.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0], 0);
        } else {
            std::fprintf(stderr, "%s: unknown flag %s\n", argv[0],
                         arg.c_str());
            usage(argv[0], 2);
        }
    }
    return opts;
}

void
emitDiagRecord(StatsSink &sink, const std::string &cell,
               const MtvDiag &d)
{
    JsonObject rec;
    rec.str("type", "diag")
        .str("cell", cell)
        .str("code", std::string(mtvCodeName(d.code)))
        .str("severity", std::string(mtvSeverityName(d.severity)))
        .num("thread", static_cast<int64_t>(d.thread))
        .num("block", static_cast<int64_t>(d.block))
        .num("pos", static_cast<int64_t>(d.pos))
        .num("instr", static_cast<int64_t>(d.instr))
        .num("queue", static_cast<int64_t>(d.queue))
        .str("message", d.message);
    sink.write(rec);
}

} // namespace

int
main(int argc, char **argv)
{
    LintOptions opts = parseArgs(argc, argv);

    std::unique_ptr<StatsSink> sink;
    if (!opts.json_path.empty()) {
        try {
            sink = std::make_unique<StatsSink>(opts.json_path);
        } catch (const FatalError &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 2;
        }
    }

    int cells = 0, total_errors = 0, total_warnings = 0;
    int broken_cells = 0;
    int64_t hb_pairs = 0;
    std::vector<std::pair<std::string, MtvDiag>> findings;

    std::vector<Workload> workloads;
    if (opts.ir_files.empty()) {
        workloads = allWorkloads();
    } else {
        // Lint serialized cells: a file that fails to parse or
        // IR-verify is a finding in its own right, not a tool crash.
        for (const std::string &path : opts.ir_files) {
            try {
                workloads.push_back(loadWorkloadFile(path));
            } catch (const FatalError &e) {
                ++broken_cells;
                std::fprintf(stderr, "gmt-lint: %s: %s\n",
                             path.c_str(), e.what());
            }
        }
    }
    if (!opts.only.empty()) {
        std::vector<Workload> picked;
        for (const std::string &name : opts.only) {
            bool found = false;
            for (Workload &w : workloads) {
                if (w.name == name) {
                    picked.push_back(std::move(w));
                    found = true;
                    break;
                }
            }
            if (!found) {
                std::fprintf(stderr,
                             "gmt-lint: unknown workload '%s'\n",
                             name.c_str());
                return 2;
            }
        }
        workloads = std::move(picked);
    }

    for (const Workload &w : workloads) {
        for (Scheduler sched : opts.schedulers) {
            for (bool coco : opts.coco_modes) {
                PipelineOptions po;
                po.scheduler = sched;
                po.use_coco = coco;
                po.num_threads = opts.num_threads;
                po.max_queues = opts.max_queues;
                po.static_profile = opts.static_profile;
                po.simulate = false;
                po.verify_mt = false; // the linter verifies itself

                PipelineContext ctx(w, po);
                ++cells;
                try {
                    PassManager::codegenPipeline().run(ctx);
                } catch (const std::exception &e) {
                    // Codegen itself failed; report and keep linting
                    // the other cells.
                    ++broken_cells;
                    std::fprintf(stderr,
                                 "gmt-lint: %s: pipeline failed: %s\n",
                                 ctx.cellId().c_str(), e.what());
                    continue;
                }

                MtVerifyInput in;
                in.orig = &ctx.ir->func;
                in.pdg = &ctx.pdg->pdg;
                in.partition = &ctx.partition->partition;
                in.plan = &ctx.plan->plan;
                in.queue_of = &ctx.prog->queue_of;
                in.prog = &ctx.prog->prog;
                in.check_hb = opts.hb;
                MtVerifyResult res = verifyMtProgram(in);

                total_errors += res.errors();
                total_warnings += res.warnings();
                hb_pairs += res.hb_pairs;
                for (MtvDiag &d : res.diags)
                    findings.emplace_back(ctx.cellId(), std::move(d));
            }
        }
    }

    // Deterministic report: order by code, then cell, then
    // coordinates, then drop exact repeats — byte-stable output no
    // matter how the matrix was traversed.
    std::stable_sort(findings.begin(), findings.end(),
                     [](const auto &a, const auto &b) {
                         const MtvDiag &x = a.second, &y = b.second;
                         return std::tie(x.code, a.first, x.block,
                                         x.pos, x.instr, x.queue,
                                         x.thread, x.severity,
                                         x.message) <
                                std::tie(y.code, b.first, y.block,
                                         y.pos, y.instr, y.queue,
                                         y.thread, y.severity,
                                         y.message);
                     });
    findings.erase(std::unique(findings.begin(), findings.end()),
                   findings.end());
    for (const auto &[cell, d] : findings) {
        std::fprintf(stderr, "%s: %s\n", cell.c_str(),
                     renderDiag(d).c_str());
        if (sink)
            emitDiagRecord(*sink, cell, d);
    }

    if (sink) {
        JsonObject summary;
        summary.str("type", "lint-summary")
            .num("cells", static_cast<int64_t>(cells))
            .num("errors", static_cast<int64_t>(total_errors))
            .num("warnings", static_cast<int64_t>(total_warnings))
            .num("broken_cells", static_cast<int64_t>(broken_cells))
            .num("hb_pairs", hb_pairs);
        sink->write(summary);
    }
    if (!opts.quiet)
        std::fprintf(stderr,
                     "[gmt-lint] %d cells, %d errors, %d warnings\n",
                     cells, total_errors, total_warnings);

    if (total_errors > 0 || broken_cells > 0)
        return 1;
    if (opts.werror && total_warnings > 0)
        return 1;
    return 0;
}
