// gmt-dump: serialize the built-in workload matrix to .gmt cell files.
//
//   gmt-dump --out-dir workloads/ir [--only adpcmdec,ks]
//
// Regenerates the golden corpus that test_ir_roundtrip compares the
// builders against byte-for-byte. Run it (and commit the diff) after
// intentionally changing a builder.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "support/error.hpp"
#include "workloads/serialize.hpp"
#include "workloads/workload.hpp"

namespace
{

[[noreturn]] void
usage(const char *argv0, int code)
{
    std::fprintf(stderr,
                 "usage: %s --out-dir DIR [--only W1,W2,...]\n", argv0);
    std::exit(code);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_dir;
    std::vector<std::string> only;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0], 2);
            return argv[++i];
        };
        if (arg == "--out-dir")
            out_dir = value();
        else if (arg == "--only") {
            std::string csv = value();
            size_t start = 0;
            while (start <= csv.size()) {
                size_t comma = csv.find(',', start);
                if (comma == std::string::npos)
                    comma = csv.size();
                if (comma > start)
                    only.push_back(csv.substr(start, comma - start));
                start = comma + 1;
            }
        } else if (arg == "--help" || arg == "-h")
            usage(argv[0], 0);
        else
            usage(argv[0], 2);
    }
    if (out_dir.empty())
        usage(argv[0], 2);

    try {
        std::filesystem::create_directories(out_dir);
        int dumped = 0;
        for (const gmt::Workload &w : gmt::allWorkloads()) {
            if (!only.empty() &&
                std::find(only.begin(), only.end(), w.name) ==
                    only.end())
                continue;
            std::string path = out_dir + "/" + w.name + ".gmt";
            gmt::saveWorkloadFile(w, path);
            std::fprintf(stderr, "[gmt-dump] %s\n", path.c_str());
            ++dumped;
        }
        std::fprintf(stderr, "[gmt-dump] wrote %d cells to %s\n",
                     dumped, out_dir.c_str());
        return dumped > 0 ? 0 : 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "gmt-dump: %s\n", e.what());
        return 1;
    }
}
