/**
 * @file
 * bench_report: merge the per-bench BENCH_*.json records (flat
 * one-line JSON objects written by bench/micro_*) into one trend
 * table — wall-clock columns, the identical/fixpoint contract flags,
 * and the warm/speculation hit rates — so a CI run uploads a single
 * artifact that is diffable across commits.
 *
 *   bench_report [--out FILE] BENCH_sim.json BENCH_coco.json ...
 *
 * Prints the table to stdout; --out additionally writes a schema:1
 * JSON document ({"type":"bench-report","benches":[...]}) with every
 * numeric field of every input preserved. Inputs are flat JSON only
 * (string / number / true / false / null values); anything else is a
 * parse error, and a missing or malformed file fails the run (CI
 * treats that as the bench not having produced its numbers).
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace
{

/** One parsed value of a flat JSON object. */
struct FlatValue
{
    enum class Kind { String, Number, Bool, Null } kind = Kind::Null;
    std::string str;
    double num = 0.0;
    bool b = false;
};

/** Insertion-ordered flat JSON object. */
struct FlatObject
{
    std::vector<std::pair<std::string, FlatValue>> fields;

    const FlatValue *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : fields)
            if (k == key)
                return &v;
        return nullptr;
    }
};

/** Minimal parser for the flat objects the benches emit. */
class FlatParser
{
  public:
    explicit FlatParser(const std::string &text) : s_(text) {}

    bool
    parse(FlatObject &out, std::string &err)
    {
        skipWs();
        if (!eat('{')) {
            err = "expected '{'";
            return false;
        }
        skipWs();
        if (eat('}'))
            return true;
        for (;;) {
            std::string key;
            if (!parseString(key, err))
                return false;
            skipWs();
            if (!eat(':')) {
                err = "expected ':' after key " + key;
                return false;
            }
            FlatValue v;
            if (!parseValue(v, err))
                return false;
            out.fields.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (eat(','))  {
                skipWs();
                continue;
            }
            if (eat('}'))
                return true;
            err = "expected ',' or '}'";
            return false;
        }
    }

  private:
    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    bool
    eat(char c)
    {
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    eatWord(const char *w)
    {
        size_t n = std::strlen(w);
        if (s_.compare(pos_, n, w) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    bool
    parseString(std::string &out, std::string &err)
    {
        skipWs();
        if (!eat('"')) {
            err = "expected string";
            return false;
        }
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c == '\\' && pos_ < s_.size()) {
                char e = s_[pos_++];
                switch (e) {
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                case 'r': out += '\r'; break;
                default: out += e; break;
                }
            } else {
                out += c;
            }
        }
        if (!eat('"')) {
            err = "unterminated string";
            return false;
        }
        return true;
    }

    bool
    parseValue(FlatValue &v, std::string &err)
    {
        skipWs();
        if (pos_ >= s_.size()) {
            err = "unexpected end of input";
            return false;
        }
        char c = s_[pos_];
        if (c == '"') {
            v.kind = FlatValue::Kind::String;
            return parseString(v.str, err);
        }
        if (eatWord("true")) {
            v.kind = FlatValue::Kind::Bool;
            v.b = true;
            return true;
        }
        if (eatWord("false")) {
            v.kind = FlatValue::Kind::Bool;
            v.b = false;
            return true;
        }
        if (eatWord("null")) {
            v.kind = FlatValue::Kind::Null;
            return true;
        }
        size_t start = pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start) {
            err = std::string("unexpected character '") + c +
                  "' (nested objects/arrays are not flat)";
            return false;
        }
        v.kind = FlatValue::Kind::Number;
        v.num = std::atof(s_.substr(start, pos_ - start).c_str());
        return true;
    }

    std::string s_;
    size_t pos_ = 0;
};

/** One merged row of the trend table. */
struct BenchRow
{
    std::string file;
    std::string bench;
    int ok = -1; ///< identical/fixpoint flag; -1 = not reported
    double wall_ms = 0.0;
    double hit_rate = -1.0; ///< warm/speculation hit %; -1 = n/a
    FlatObject raw;
};

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

BenchRow
summarize(const std::string &file, FlatObject obj)
{
    BenchRow row;
    row.file = file;
    if (const FlatValue *b = obj.find("bench"))
        row.bench = b->str;
    // The contract flag: every bench reports exactly one of these.
    for (const char *flag : {"identical", "fixpoint", "converged"})
        if (const FlatValue *v = obj.find(flag))
            if (v->kind == FlatValue::Kind::Bool)
                row.ok = v->b ? 1 : 0;
    // Wall clock: the sum of every millisecond field is the bench's
    // cost ("..._ms", plus mincut's per-algorithm "..._ms_ek" style).
    for (const auto &[k, v] : obj.fields)
        if (v.kind == FlatValue::Kind::Number &&
            (endsWith(k, "_ms") || k.find("_ms_") != std::string::npos))
            row.wall_ms += v.num;
    // Hit rate, whichever pair the bench reports: COCO speculation
    // (spec_hits/spec_misses) or warm-started max-flow
    // (coco_warm_starts/coco_cold_rebuilds).
    auto rate = [&](const char *hit, const char *miss) {
        const FlatValue *h = obj.find(hit);
        const FlatValue *m = obj.find(miss);
        if (h && m && h->num + m->num > 0)
            row.hit_rate = 100.0 * h->num / (h->num + m->num);
    };
    rate("spec_hits", "spec_misses");
    if (row.hit_rate < 0)
        rate("coco_warm_starts", "coco_cold_rebuilds");
    row.raw = std::move(obj);
    return row;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

void
writeMerged(std::ostream &os, const std::vector<BenchRow> &rows)
{
    os << "{\"schema\":1,\"type\":\"bench-report\",\"benches\":[";
    for (size_t i = 0; i < rows.size(); ++i) {
        const BenchRow &r = rows[i];
        if (i)
            os << ",";
        os << "{\"file\":\"" << jsonEscape(r.file) << "\",\"bench\":\""
           << jsonEscape(r.bench) << "\",\"ok\":"
           << (r.ok < 0 ? "null" : (r.ok ? "true" : "false"))
           << ",\"wall_ms\":" << r.wall_ms << ",\"hit_rate\":";
        if (r.hit_rate < 0)
            os << "null";
        else
            os << r.hit_rate;
        for (const auto &[k, v] : r.raw.fields) {
            os << ",\"" << jsonEscape(k) << "\":";
            switch (v.kind) {
            case FlatValue::Kind::String:
                os << '"' << jsonEscape(v.str) << '"';
                break;
            case FlatValue::Kind::Number: os << v.num; break;
            case FlatValue::Kind::Bool:
                os << (v.b ? "true" : "false");
                break;
            case FlatValue::Kind::Null: os << "null"; break;
            }
        }
        os << "}";
    }
    os << "]}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path;
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--out") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "bench_report: --out needs a "
                                     "value\n");
                return 2;
            }
            out_path = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::fprintf(stderr, "usage: %s [--out FILE] "
                                 "BENCH_*.json...\n",
                         argv[0]);
            return 0;
        } else {
            files.push_back(arg);
        }
    }
    if (files.empty()) {
        std::fprintf(stderr,
                     "bench_report: no input files\nusage: %s "
                     "[--out FILE] BENCH_*.json...\n",
                     argv[0]);
        return 2;
    }

    std::vector<BenchRow> rows;
    bool all_ok = true;
    for (const std::string &file : files) {
        std::ifstream in(file);
        if (!in) {
            std::fprintf(stderr, "bench_report: cannot read %s\n",
                         file.c_str());
            return 2;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        FlatObject obj;
        std::string err;
        FlatParser parser(buf.str());
        if (!parser.parse(obj, err)) {
            std::fprintf(stderr, "bench_report: %s: %s\n",
                         file.c_str(), err.c_str());
            return 2;
        }
        BenchRow row = summarize(file, std::move(obj));
        if (row.ok == 0)
            all_ok = false;
        rows.push_back(std::move(row));
    }

    std::printf("%-24s %-8s %-5s %12s %9s\n", "file", "bench", "ok",
                "wall_ms", "hit_rate");
    for (const BenchRow &r : rows) {
        char hit[16] = "-";
        if (r.hit_rate >= 0)
            std::snprintf(hit, sizeof(hit), "%.1f%%", r.hit_rate);
        std::printf("%-24s %-8s %-5s %12.1f %9s\n", r.file.c_str(),
                    r.bench.c_str(),
                    r.ok < 0 ? "-" : (r.ok ? "yes" : "NO"), r.wall_ms,
                    hit);
    }

    if (!out_path.empty()) {
        std::ofstream out(out_path);
        if (!out) {
            std::fprintf(stderr, "bench_report: cannot write %s\n",
                         out_path.c_str());
            return 2;
        }
        writeMerged(out, rows);
    }
    return all_ok ? 0 : 1;
}
