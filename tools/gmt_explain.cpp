/**
 * @file
 * gmt-explain: decision-provenance query CLI.
 *
 * Runs one cell through the standard pipeline with provenance
 * recording and stall profiling on, then answers "why" questions from
 * the record:
 *
 *   gmt-explain --workload W [--scheduler dswp|gremio] [--no-coco]
 *               [--threads N] [--max-queues N] [--sim fast|reference]
 *               [--autotune]
 *               [--instr N | --queue N | --costliest] [--top N]
 *               [--diff [--diff-scheduler S] [--diff-coco on|off]
 *                       [--diff-threads N] [--diff-max-queues N]
 *                       [--diff-autotune on|off] [--expect-zero]]
 *               [--json] [--workload-dir DIR]
 *
 *   --instr N      why is instruction N on its thread: the
 *                  partitioner decision that placed its unit (DSWP
 *                  fill accounting / GREMIO candidate scores) and the
 *                  placements communicating its value.
 *   --queue N      why does queue N exist: the allocator's share
 *                  arithmetic and every placement decision
 *                  multiplexed onto it, with per-point cut costs.
 *                  For an unallocated id: the elided decisions.
 *   --costliest    (default) every StallReport entry joined back to
 *                  the provenance records that caused it, ranked by
 *                  stall cycles; conservation-checked.
 *   --diff         compare against a second run of the same workload
 *                  with the --diff-* overrides applied (none =
 *                  identical cell, which must report zero deltas;
 *                  --expect-zero turns a nonzero diff into exit 1 for
 *                  CI). With --diff-autotune on (and no other
 *                  override) the diff is baseline vs. the feedback
 *                  autotuner on the same cell, and the tool
 *                  smoke-checks that the tuner's accepted moves —
 *                  each carrying its per-queue stall evidence — sum
 *                  exactly to the simulated cycle delta reported.
 *
 * --json swaps every report for a single schema:1 JSON document on
 * stdout.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "driver/pass_manager.hpp"
#include "obs/explain.hpp"
#include "support/error.hpp"
#include "workloads/workload.hpp"

namespace
{

using namespace gmt;

struct ExplainOptions
{
    std::string workload;
    Scheduler scheduler = Scheduler::Gremio;
    bool coco = true;
    int num_threads = 2;
    int max_queues = 0;
    SimEngine sim_engine = SimEngine::Fast;
    bool autotune = false;

    int instr = -1;
    int queue = -1;
    bool costliest = false;
    int top = 10;

    bool diff = false;
    Scheduler diff_scheduler = Scheduler::Gremio;
    bool diff_scheduler_set = false;
    int diff_coco = -1; ///< -1 = same as primary
    int diff_threads = 0;
    int diff_max_queues = -1;
    int diff_autotune = -1; ///< -1 = same as primary
    bool expect_zero = false;

    bool json = false;
    std::string workload_dir;
};

[[noreturn]] void
usage(const char *argv0, int exit_code)
{
    std::fprintf(
        stderr,
        "usage: %s --workload W [--scheduler dswp|gremio] [--no-coco] "
        "[--threads N] [--max-queues N] [--sim fast|reference] "
        "[--autotune] [--instr N | --queue N | --costliest] [--top N] "
        "[--diff [--diff-scheduler dswp|gremio] [--diff-coco on|off] "
        "[--diff-threads N] [--diff-max-queues N] "
        "[--diff-autotune on|off] [--expect-zero]] "
        "[--json] [--workload-dir DIR]\n",
        argv0);
    std::exit(exit_code);
}

Scheduler
parseScheduler(const char *argv0, const std::string &v)
{
    if (v == "dswp")
        return Scheduler::Dswp;
    if (v == "gremio")
        return Scheduler::Gremio;
    std::fprintf(stderr, "%s: unknown scheduler '%s'\n", argv0,
                 v.c_str());
    usage(argv0, 2);
}

ExplainOptions
parseArgs(int argc, char **argv)
{
    ExplainOptions opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n", argv[0],
                             arg.c_str());
                usage(argv[0], 2);
            }
            return argv[++i];
        };
        if (arg == "--workload")
            opts.workload = value();
        else if (arg == "--scheduler")
            opts.scheduler = parseScheduler(argv[0], value());
        else if (arg == "--no-coco")
            opts.coco = false;
        else if (arg == "--threads")
            opts.num_threads = std::atoi(value().c_str());
        else if (arg == "--max-queues")
            opts.max_queues = std::atoi(value().c_str());
        else if (arg == "--sim") {
            std::string v = value();
            if (v == "fast")
                opts.sim_engine = SimEngine::Fast;
            else if (v == "reference")
                opts.sim_engine = SimEngine::Reference;
            else
                usage(argv[0], 2);
        } else if (arg == "--autotune")
            opts.autotune = true;
        else if (arg == "--instr")
            opts.instr = std::atoi(value().c_str());
        else if (arg == "--queue")
            opts.queue = std::atoi(value().c_str());
        else if (arg == "--costliest")
            opts.costliest = true;
        else if (arg == "--top")
            opts.top = std::atoi(value().c_str());
        else if (arg == "--diff")
            opts.diff = true;
        else if (arg == "--diff-scheduler") {
            opts.diff_scheduler = parseScheduler(argv[0], value());
            opts.diff_scheduler_set = true;
        } else if (arg == "--diff-coco") {
            std::string v = value();
            if (v == "on")
                opts.diff_coco = 1;
            else if (v == "off")
                opts.diff_coco = 0;
            else
                usage(argv[0], 2);
        } else if (arg == "--diff-threads")
            opts.diff_threads = std::atoi(value().c_str());
        else if (arg == "--diff-max-queues")
            opts.diff_max_queues = std::atoi(value().c_str());
        else if (arg == "--diff-autotune") {
            std::string v = value();
            if (v == "on")
                opts.diff_autotune = 1;
            else if (v == "off")
                opts.diff_autotune = 0;
            else
                usage(argv[0], 2);
        } else if (arg == "--expect-zero")
            opts.expect_zero = true;
        else if (arg == "--json")
            opts.json = true;
        else if (arg == "--workload-dir")
            opts.workload_dir = value();
        else if (arg == "--help" || arg == "-h")
            usage(argv[0], 0);
        else {
            std::fprintf(stderr, "%s: unknown flag %s\n", argv[0],
                         arg.c_str());
            usage(argv[0], 2);
        }
    }
    if (opts.workload.empty()) {
        std::fprintf(stderr, "%s: --workload is required\n", argv[0]);
        usage(argv[0], 2);
    }
    return opts;
}

/** Everything one explained run needs, kept alive together. */
struct RunArtifacts
{
    std::shared_ptr<const IrArtifact> ir;
    std::shared_ptr<const ObsProfileArtifact> obs;
    std::shared_ptr<const ProvenanceArtifact> prov;
    std::shared_ptr<const AutotuneArtifact> autotune; ///< may be null
};

RunArtifacts
runCell(const Workload &w, const PipelineOptions &po,
        ArtifactCache &cache)
{
    PipelineContext ctx(w, po);
    ctx.cache = &cache;
    PassManager::standardPipeline().run(ctx);
    GMT_ASSERT(ctx.ir && ctx.obs && ctx.prov,
               "explain pipeline did not publish its artifacts");
    return {ctx.ir, ctx.obs, ctx.prov, ctx.autotune};
}

/**
 * Smoke check for a baseline-vs-autotuned diff of the same cell: the
 * tuner's own move log must telescope exactly onto the simulated
 * cycle delta the diff reports — the baseline cycles of the tuned
 * run match the untuned run's cycles, the final trajectory entry
 * matches the tuned run's cycles, and the accepted moves' per-move
 * cycle gains (each backed by named per-queue stall evidence) sum to
 * the whole delta. Returns an error string, empty when consistent.
 */
std::string
checkAutotuneDiff(const ScheduleDiff &d, const AutotuneResult &at,
                  bool base_is_a, bool verbose)
{
    const uint64_t base_cycles = base_is_a ? d.cycles_a : d.cycles_b;
    const uint64_t tuned_cycles = base_is_a ? d.cycles_b : d.cycles_a;
    if (at.baseline_cycles != base_cycles)
        return "tuner baseline " + std::to_string(at.baseline_cycles) +
               " != untuned run " + std::to_string(base_cycles);
    if (at.trajectory.empty() || at.trajectory.back() != tuned_cycles)
        return "tuner trajectory end does not match the tuned run";
    uint64_t gains = 0, prev = at.baseline_cycles;
    for (const AutotuneMove &m : at.moves) {
        if (!m.accepted)
            continue;
        if (m.cycles >= prev)
            return "accepted move did not improve cycles";
        gains += prev - m.cycles;
        prev = m.cycles;
    }
    if (prev != tuned_cycles)
        return "accepted move chain does not end at the tuned run's "
               "cycles";
    if (gains != base_cycles - tuned_cycles)
        return "accepted move gains (" + std::to_string(gains) +
               ") do not sum to the cycle delta (" +
               std::to_string(base_cycles - tuned_cycles) + ")";
    if (verbose) {
        std::printf("autotune: %d accepted moves telescope to the "
                    "%llu-cycle delta\n",
                    at.moves_accepted,
                    static_cast<unsigned long long>(gains));
        for (const AutotuneMove &m : at.moves) {
            if (!m.accepted)
                continue;
            std::printf("  iter %d %-8s %s", m.iteration,
                        m.kind.c_str(), m.detail.c_str());
            if (m.queue >= 0)
                std::printf("  [stall evidence: queue %d, %llu "
                            "cycles]",
                            m.queue,
                            static_cast<unsigned long long>(
                                m.stall_cycles));
            std::printf("\n");
        }
    }
    return "";
}

} // namespace

int
main(int argc, char **argv)
{
    ExplainOptions opts = parseArgs(argc, argv);

    WorkloadRegistry registry;
    if (!opts.workload_dir.empty()) {
        try {
            registry.loadDirectory(opts.workload_dir);
        } catch (const FatalError &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 2;
        }
    }
    std::vector<Workload> all = registry.take();
    const Workload *w = nullptr;
    for (const Workload &cand : all)
        if (cand.name == opts.workload)
            w = &cand;
    if (!w) {
        std::fprintf(stderr, "gmt-explain: unknown workload '%s'\n",
                     opts.workload.c_str());
        return 2;
    }

    PipelineOptions po;
    po.scheduler = opts.scheduler;
    po.use_coco = opts.coco;
    po.num_threads = opts.num_threads;
    po.max_queues = opts.max_queues;
    po.sim_engine = opts.sim_engine;
    po.profile_stalls = true;
    po.record_provenance = true;
    po.autotune = opts.autotune;

    ArtifactCache cache;
    RunArtifacts a;
    try {
        a = runCell(*w, po, cache);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "gmt-explain: %s\n", e.what());
        return 1;
    }
    const Provenance &prov = a.prov->prov;
    const Function &f = a.ir->func;

    if (opts.diff) {
        PipelineOptions po2 = po;
        if (opts.diff_scheduler_set)
            po2.scheduler = opts.diff_scheduler;
        if (opts.diff_coco >= 0)
            po2.use_coco = opts.diff_coco != 0;
        if (opts.diff_threads > 0)
            po2.num_threads = opts.diff_threads;
        if (opts.diff_max_queues >= 0)
            po2.max_queues = opts.diff_max_queues;
        if (opts.diff_autotune >= 0)
            po2.autotune = opts.diff_autotune != 0;
        RunArtifacts b;
        try {
            b = runCell(*w, po2, cache);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "gmt-explain: %s\n", e.what());
            return 1;
        }
        ScheduleDiff d = diffSchedules(prov, a.obs->report,
                                       b.prov->prov, b.obs->report);
        if (opts.json) {
            writeScheduleDiffJson(std::cout, d);
            std::cout << "\n";
        } else {
            renderScheduleDiff(std::cout, d);
        }
        // Baseline-vs-autotuned diff of an otherwise identical cell:
        // smoke-check that the tuner's reported moves (each with its
        // per-queue stall evidence) account exactly for the simulated
        // cycle delta the diff shows.
        if (po.autotune != po2.autotune &&
            po.scheduler == po2.scheduler &&
            po.use_coco == po2.use_coco &&
            po.num_threads == po2.num_threads &&
            po.max_queues == po2.max_queues) {
            const RunArtifacts &tuned = po.autotune ? a : b;
            GMT_ASSERT(tuned.autotune,
                       "autotuned run did not publish its move log");
            std::string err =
                checkAutotuneDiff(d, tuned.autotune->result,
                                  /*base_is_a=*/!po.autotune,
                                  /*verbose=*/!opts.json);
            if (!err.empty()) {
                std::fprintf(
                    stderr,
                    "gmt-explain: autotune diff smoke check: %s\n",
                    err.c_str());
                return 1;
            }
        }
        if (opts.expect_zero && !d.zero()) {
            std::fprintf(stderr,
                         "gmt-explain: --expect-zero but the diff is "
                         "nonzero\n");
            return 1;
        }
        return 0;
    }

    if (opts.instr >= 0) {
        if (opts.json) {
            writeInstrExplanationJson(std::cout, prov, f,
                                      (InstrId)opts.instr);
            std::cout << "\n";
        } else {
            renderInstrExplanation(std::cout, prov, f,
                                   (InstrId)opts.instr);
        }
        return 0;
    }
    if (opts.queue >= 0) {
        if (opts.json) {
            writeQueueExplanationJson(std::cout, prov, opts.queue);
            std::cout << "\n";
        } else {
            renderQueueExplanation(std::cout, prov, opts.queue);
        }
        return 0;
    }

    // Default: the costliest-decisions report.
    CostliestReport r = buildCostliestReport(prov, a.obs->report, f);
    if (opts.json) {
        writeCostliestReportJson(std::cout, r, opts.top);
        std::cout << "\n";
    } else {
        std::cout << "=== " << prov.cell << " ===\n";
        renderCostliestReport(std::cout, r, opts.top);
    }
    return 0;
}
