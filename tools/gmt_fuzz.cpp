/**
 * @file
 * gmt-fuzz: differential fuzzing harness for the schedulers.
 *
 * Per seed: generate a random workload cell (workloads/generate.hpp),
 * run the full pipeline over the DSWP/GREMIO x COCO on/off matrix with
 * every oracle armed — static MT verification including the
 * happens-before race check, MT==ST output equivalence, queue drain,
 * comm-plan validation — and additionally require the fast and
 * reference timing engines to agree field-for-field on the
 * PipelineResult. The MT verifier runs first as a structured oracle:
 * any error diagnostic (e.g. hb-data-race) becomes the failure
 * signature, keyed by its stable code, so the reducer shrinks against
 * the code rather than a free-text message and the repro filename is
 * tagged with it. On a violation the failing cell is greedily reduced
 * (same failure signature) and dumped as a minimal `.gmt` repro,
 * replayable with `gmt-lint --ir FILE` or any bench driver via
 * `--workload-dir`.
 *
 *   gmt-fuzz [--seeds N] [--start S] [--jobs J] [--threads T]
 *            [--autotune] [--out FILE.jsonl] [--repro-dir DIR]
 *            [--no-reduce] [--quiet]
 *
 * --autotune additionally runs the feedback-directed autotuner on
 * every cell: the loop statically verifies (incl. happens-before)
 * each accepted intermediate schedule and oracles the final one
 * against the single-threaded reference, and the fast/reference
 * equality check then covers the tuned result.
 *
 * Seeds are batched one task per seed on the shared ThreadPool; the
 * JSONL stream carries one `type:"fuzz"` record per seed plus the
 * process metrics (fuzz.seeds / fuzz.cells / fuzz.violations).
 * Exit status: 0 iff every seed was violation-free.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "driver/pass_manager.hpp"
#include "driver/pipeline.hpp"
#include "driver/stats.hpp"
#include "mtverify/mtverify.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"
#include "workloads/generate.hpp"
#include "workloads/serialize.hpp"

namespace
{

using namespace gmt;

struct FuzzOptions
{
    uint64_t seeds = 100;
    uint64_t start = 0;
    int jobs = 0; ///< 0 = hardware default
    int num_threads = 2;
    std::string out_path;
    std::string repro_dir = "fuzz-repros";
    bool reduce = true;
    bool quiet = false;

    /**
     * Close the feedback loop on every cell: the pipeline runs the
     * autotuner (which statically verifies — happens-before included
     * — each accepted intermediate schedule and oracles the final
     * one against the ST reference), and the fast/reference equality
     * check below then applies to the final tuned schedule, baseline
     * cycles and iteration/move counts included.
     */
    bool autotune = false;
};

[[noreturn]] void
usage(const char *argv0, int exit_code)
{
    std::fprintf(
        stderr,
        "usage: %s [--seeds N] [--start S] [--jobs J] [--threads T] "
        "[--autotune] [--out FILE.jsonl] [--repro-dir DIR] "
        "[--no-reduce] [--quiet]\n",
        argv0);
    std::exit(exit_code);
}

FuzzOptions
parseArgs(int argc, char **argv)
{
    FuzzOptions opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n", argv[0],
                             arg.c_str());
                usage(argv[0], 2);
            }
            return argv[++i];
        };
        if (arg == "--seeds")
            opts.seeds = std::strtoull(value().c_str(), nullptr, 10);
        else if (arg == "--start")
            opts.start = std::strtoull(value().c_str(), nullptr, 10);
        else if (arg == "--jobs")
            opts.jobs = std::atoi(value().c_str());
        else if (arg == "--threads")
            opts.num_threads = std::atoi(value().c_str());
        else if (arg == "--out")
            opts.out_path = value();
        else if (arg == "--repro-dir")
            opts.repro_dir = value();
        else if (arg == "--autotune")
            opts.autotune = true;
        else if (arg == "--no-reduce")
            opts.reduce = false;
        else if (arg == "--quiet")
            opts.quiet = true;
        else if (arg == "--help" || arg == "-h")
            usage(argv[0], 0);
        else {
            std::fprintf(stderr, "%s: unknown flag %s\n", argv[0],
                         arg.c_str());
            usage(argv[0], 2);
        }
    }
    return opts;
}

/** One scheduler x COCO configuration of the matrix. */
struct CellConfig
{
    Scheduler sched;
    bool coco;

    std::string
    label() const
    {
        return std::string(schedulerName(sched)) +
               (coco ? "+COCO" : "");
    }
};

constexpr CellConfig kMatrix[] = {
    {Scheduler::Dswp, false},
    {Scheduler::Dswp, true},
    {Scheduler::Gremio, false},
    {Scheduler::Gremio, true},
};

/**
 * What went wrong, stably across reduction: the cell config, the
 * failure kind, and a message prefix that outlives shrinking (cut at
 * the first digit so instruction/block ids and counts drop out).
 */
struct Signature
{
    std::string cell;
    std::string kind;   ///< "mtverify", "fatal", "panic",
                        ///< "engine-divergence"
    std::string prefix; ///< diag code for "mtverify"; otherwise the
                        ///< leading message text, digits stripped

    bool
    operator==(const Signature &o) const
    {
        return cell == o.cell && kind == o.kind && prefix == o.prefix;
    }
};

std::string
messagePrefix(const char *what)
{
    std::string p;
    for (const char *c = what; *c && p.size() < 48; ++c) {
        if (*c >= '0' && *c <= '9')
            break;
        p += *c;
    }
    return p;
}

PipelineOptions
cellOptions(const CellConfig &cfg, const FuzzOptions &fuzz,
            SimEngine engine)
{
    PipelineOptions po;
    po.scheduler = cfg.sched;
    po.use_coco = cfg.coco;
    po.num_threads = fuzz.num_threads;
    po.simulate = true;
    po.sim_engine = engine;
    po.verify_mt = true;
    po.autotune = fuzz.autotune;
    return po;
}

/**
 * Run one (workload, config) cell under both timing engines with
 * every oracle armed. Returns true and fills @p sig on violation.
 */
bool
runCell(const Workload &w, const CellConfig &cfg,
        const FuzzOptions &fuzz, Signature *sig)
{
    sig->cell = cfg.label();
    try {
        // Structured verification oracle first: run codegen alone and
        // the full MT verifier (happens-before included) over it, so a
        // finding carries its stable diagnostic code instead of the
        // pipeline's free-text fatal. Codegen artifacts are cached, so
        // the runPipeline calls below do not repeat the work.
        {
            PipelineOptions po =
                cellOptions(cfg, fuzz, SimEngine::Fast);
            po.verify_mt = false; // verified right here instead
            PipelineContext ctx(w, po);
            PassManager::codegenPipeline().run(ctx);
            MtVerifyInput in;
            in.orig = &ctx.ir->func;
            in.pdg = &ctx.pdg->pdg;
            in.partition = &ctx.partition->partition;
            in.plan = &ctx.plan->plan;
            in.queue_of = &ctx.prog->queue_of;
            in.prog = &ctx.prog->prog;
            MtVerifyResult res = verifyMtProgram(in);
            if (!res.ok()) {
                // Diags come back sorted; the first error's code is a
                // deterministic signature.
                for (const MtvDiag &d : res.diags) {
                    if (d.severity != MtvSeverity::Error)
                        continue;
                    sig->kind = "mtverify";
                    sig->prefix = std::string(mtvCodeName(d.code));
                    return true;
                }
            }
        }

        PipelineResult fast =
            runPipeline(w, cellOptions(cfg, fuzz, SimEngine::Fast));
        PipelineResult ref = runPipeline(
            w, cellOptions(cfg, fuzz, SimEngine::Reference));
        if (!(fast == ref)) {
            sig->kind = "engine-divergence";
            sig->prefix = "fast and reference timing disagree";
            return true;
        }
    } catch (const FatalError &e) {
        sig->kind = "fatal";
        sig->prefix = messagePrefix(e.what());
        return true;
    } catch (const PanicError &e) {
        sig->kind = "panic";
        sig->prefix = messagePrefix(e.what());
        return true;
    }
    return false;
}

/** Does @p w still fail with exactly @p want? (reducer predicate) */
bool
reproduces(const Workload &w, const CellConfig &cfg,
           const FuzzOptions &fuzz, const Signature &want)
{
    Signature got;
    return runCell(w, cfg, fuzz, &got) && got == want;
}

struct SeedOutcome
{
    uint64_t seed = 0;
    bool violation = false;
    Signature sig;
    std::string repro_path;
};

} // namespace

int
main(int argc, char **argv)
{
    FuzzOptions opts = parseArgs(argc, argv);

    std::unique_ptr<StatsSink> sink;
    if (!opts.out_path.empty()) {
        try {
            sink = std::make_unique<StatsSink>(opts.out_path);
        } catch (const FatalError &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 2;
        }
    }

    MetricsRegistry &metrics = MetricsRegistry::global();
    Counter &c_seeds = metrics.counter("fuzz.seeds");
    Counter &c_cells = metrics.counter("fuzz.cells");
    Counter &c_violations = metrics.counter("fuzz.violations");

    int jobs = opts.jobs > 0 ? opts.jobs : ThreadPool::hardwareDefault();
    ThreadPool pool(jobs);

    std::mutex mu;
    std::vector<SeedOutcome> violations;

    for (uint64_t s = 0; s < opts.seeds; ++s) {
        uint64_t seed = opts.start + s;
        pool.submit([seed, &opts, &mu, &violations, &sink, &c_seeds,
                     &c_cells, &c_violations]() {
            SeedOutcome out;
            out.seed = seed;
            Workload w = generateWorkload(seed);
            c_seeds.add();
            for (const CellConfig &cfg : kMatrix) {
                c_cells.add();
                Signature sig;
                if (!runCell(w, cfg, opts, &sig))
                    continue;
                out.violation = true;
                out.sig = sig;
                c_violations.add();

                Workload repro = w;
                if (opts.reduce) {
                    repro = reduceWorkload(
                        w, [&](const Workload &c) {
                            return reproduces(c, cfg, opts, sig);
                        });
                }
                try {
                    std::filesystem::create_directories(
                        opts.repro_dir);
                    out.repro_path =
                        opts.repro_dir + "/" + w.name + "-" +
                        std::string(schedulerName(cfg.sched)) +
                        (cfg.coco ? "-coco" : "") +
                        (sig.kind == "mtverify" ? "-" + sig.prefix
                                                : "") +
                        ".gmt";
                    saveWorkloadFile(repro, out.repro_path);
                } catch (const std::exception &e) {
                    std::fprintf(stderr,
                                 "gmt-fuzz: cannot dump repro: %s\n",
                                 e.what());
                }
                break; // one violation per seed is enough
            }

            std::lock_guard<std::mutex> lock(mu);
            if (out.violation) {
                violations.push_back(out);
                std::fprintf(
                    stderr,
                    "[gmt-fuzz] seed %llu VIOLATION %s: %s '%s'%s%s\n",
                    static_cast<unsigned long long>(out.seed),
                    out.sig.cell.c_str(), out.sig.kind.c_str(),
                    out.sig.prefix.c_str(),
                    out.repro_path.empty() ? "" : " repro: ",
                    out.repro_path.c_str());
            }
            if (sink) {
                JsonObject rec;
                rec.str("type", "fuzz")
                    .num("seed", static_cast<uint64_t>(out.seed))
                    .str("status", out.violation ? "violation" : "ok");
                if (out.violation) {
                    rec.str("cell", out.sig.cell)
                        .str("kind", out.sig.kind)
                        .str("message", out.sig.prefix)
                        .str("repro", out.repro_path);
                }
                sink->write(rec);
            }
        });
    }
    pool.wait();

    if (sink)
        writeMetricsRecords(metrics, *sink);
    if (!opts.quiet)
        std::fprintf(
            stderr,
            "[gmt-fuzz] %llu seeds x %zu cells, %zu violations\n",
            static_cast<unsigned long long>(opts.seeds),
            std::size(kMatrix), violations.size());

    return violations.empty() ? 0 : 1;
}
