/**
 * @file
 * gmt-profile: communication-stall profiler CLI.
 *
 * Runs every requested workload × scheduler with COCO off and on,
 * with the obs-profile pass enabled (full timing simulation plus
 * stall attribution; the pass dies if the attributed cycles do not
 * sum exactly to the simulator's aggregate counters, so any report
 * this tool prints is conservation-checked). For each cell it prints
 * the ranked rollup — the top-cost queues with the comm-plan
 * placements (PDG arcs) multiplexed onto them, and the top-cost
 * source blocks — and for each (workload, scheduler) pair the
 * COCO-on vs COCO-off delta: the paper's Figure 1 story, measured.
 *
 *   gmt-profile [--only W1,W2,...] [--scheduler dswp|gremio|both]
 *               [--threads N] [--max-queues N] [--sim fast|reference]
 *               [--top N] [--jobs N] [--json FILE] [--trace FILE]
 *               [--quiet]
 *
 * --json writes JSONL records (type:"profile" per cell, type:"queue"
 * / type:"block" per ranked row, type:"coco-delta" per pair, and one
 * type:"profile-summary") instead of the text report. --trace
 * additionally captures a Chrome trace (pass spans + per-core
 * simulator lanes) loadable in Perfetto.
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "driver/experiment.hpp"
#include "driver/stats.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "workloads/workload.hpp"

namespace
{

using namespace gmt;

struct ProfileOptions
{
    std::vector<std::string> only;
    std::vector<Scheduler> schedulers{Scheduler::Dswp,
                                      Scheduler::Gremio};
    int num_threads = 2;
    int max_queues = 0;
    SimEngine sim_engine = SimEngine::Fast;
    int top = 5;
    int jobs = 0;
    bool autotune = false;
    std::string json_path;
    std::string trace_path;
    bool quiet = false;
};

[[noreturn]] void
usage(const char *argv0, int exit_code)
{
    std::fprintf(
        stderr,
        "usage: %s [--only W1,W2,...] [--scheduler dswp|gremio|both] "
        "[--threads N] [--max-queues N] [--sim fast|reference] "
        "[--top N] [--jobs N] [--autotune] [--json FILE] "
        "[--trace FILE] [--quiet]\n",
        argv0);
    std::exit(exit_code);
}

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> parts;
    size_t start = 0;
    while (start <= csv.size()) {
        size_t comma = csv.find(',', start);
        if (comma == std::string::npos)
            comma = csv.size();
        if (comma > start)
            parts.push_back(csv.substr(start, comma - start));
        start = comma + 1;
    }
    return parts;
}

ProfileOptions
parseArgs(int argc, char **argv)
{
    ProfileOptions opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n",
                             argv[0], arg.c_str());
                usage(argv[0], 2);
            }
            return argv[++i];
        };
        if (arg == "--only") {
            opts.only = splitCsv(value());
        } else if (arg == "--scheduler") {
            std::string v = value();
            if (v == "dswp")
                opts.schedulers = {Scheduler::Dswp};
            else if (v == "gremio")
                opts.schedulers = {Scheduler::Gremio};
            else if (v == "both")
                opts.schedulers = {Scheduler::Dswp, Scheduler::Gremio};
            else
                usage(argv[0], 2);
        } else if (arg == "--threads") {
            opts.num_threads = std::atoi(value().c_str());
        } else if (arg == "--max-queues") {
            opts.max_queues = std::atoi(value().c_str());
        } else if (arg == "--sim") {
            std::string v = value();
            if (v == "fast")
                opts.sim_engine = SimEngine::Fast;
            else if (v == "reference")
                opts.sim_engine = SimEngine::Reference;
            else
                usage(argv[0], 2);
        } else if (arg == "--top") {
            opts.top = std::atoi(value().c_str());
        } else if (arg == "--jobs") {
            opts.jobs = std::atoi(value().c_str());
        } else if (arg == "--autotune") {
            opts.autotune = true;
        } else if (arg == "--json") {
            opts.json_path = value();
        } else if (arg == "--trace") {
            opts.trace_path = value();
        } else if (arg == "--quiet") {
            opts.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0], 0);
        } else {
            std::fprintf(stderr, "%s: unknown flag %s\n", argv[0],
                         arg.c_str());
            usage(argv[0], 2);
        }
    }
    return opts;
}

std::string
cellName(const std::string &workload, Scheduler sched, bool coco,
         bool autotune)
{
    std::string id = workload + "/";
    id += schedulerName(sched);
    if (coco)
        id += "+coco";
    if (autotune)
        id += "+at";
    return id;
}

std::string
placementDesc(const PlacementDesc &p)
{
    std::string s = "#" + std::to_string(p.placement);
    if (p.kind == CommKind::RegisterData)
        s += " r" + std::to_string(p.reg);
    else
        s += " sync";
    s += " T" + std::to_string(p.src_thread) + "->T" +
         std::to_string(p.dst_thread);
    if (p.num_points != 1)
        s += " x" + std::to_string(p.num_points);
    return s;
}

double
pct(uint64_t part, uint64_t whole)
{
    return whole ? 100.0 * static_cast<double>(part) /
                       static_cast<double>(whole)
                 : 0.0;
}

void
printCellText(const std::string &name, const ObsProfileArtifact &obs,
              int top)
{
    const StallReport &r = obs.report;
    std::printf("=== %s ===\n", name.c_str());
    std::printf(
        "  cycles %llu, stall %llu (%.1f%%), comm instrs %llu "
        "(reg %llu, sync %llu)\n",
        static_cast<unsigned long long>(r.cycles),
        static_cast<unsigned long long>(r.totalStallCycles()),
        pct(r.totalStallCycles(), r.cycles),
        static_cast<unsigned long long>(obs.communication()),
        static_cast<unsigned long long>(obs.reg_comm),
        static_cast<unsigned long long>(obs.mem_sync));

    int shown = 0;
    for (const QueueAttribution &q : r.queues) {
        if (shown++ >= top || q.prof.stallCycles() == 0)
            break;
        std::string arcs;
        for (const PlacementDesc &p : q.placements) {
            if (!arcs.empty())
                arcs += ", ";
            arcs += placementDesc(p);
        }
        std::printf(
            "  q%-3d %10llu stall (full %llu, empty %llu, sa %llu; "
            "%llu prod / %llu cons)  [%s]\n",
            q.queue,
            static_cast<unsigned long long>(q.prof.stallCycles()),
            static_cast<unsigned long long>(q.prof.full_cycles),
            static_cast<unsigned long long>(q.prof.empty_cycles),
            static_cast<unsigned long long>(q.prof.sa_port_cycles),
            static_cast<unsigned long long>(q.prof.produces),
            static_cast<unsigned long long>(q.prof.consumes),
            arcs.c_str());
    }
    shown = 0;
    for (const BlockAttribution &b : r.blocks) {
        if (shown++ >= top)
            break;
        std::printf(
            "  T%d @%-14s %10llu stall (operand %llu, mem %llu, "
            "qfull %llu, qempty %llu, sa %llu)\n",
            b.thread, b.label.c_str(),
            static_cast<unsigned long long>(b.prof.total()),
            static_cast<unsigned long long>(b.prof.operand),
            static_cast<unsigned long long>(b.prof.mem_port),
            static_cast<unsigned long long>(b.prof.queue_full),
            static_cast<unsigned long long>(b.prof.queue_empty),
            static_cast<unsigned long long>(b.prof.sa_port));
    }
}

void
emitCellJson(StatsSink &sink, const std::string &name,
             const std::string &workload, Scheduler sched, bool coco,
             const ObsProfileArtifact &obs, int top)
{
    const StallReport &r = obs.report;
    JsonObject rec;
    rec.num("schema", int64_t{1})
        .str("type", "profile")
        .str("cell", name)
        .str("workload", workload)
        .str("scheduler", schedulerName(sched))
        .boolean("coco", coco)
        .num("cycles", r.cycles)
        .num("stall_cycles", r.totalStallCycles())
        .num("computation", obs.computation)
        .num("reg_comm", obs.reg_comm)
        .num("mem_sync", obs.mem_sync)
        .str("conservation", "ok");
    sink.write(rec);

    int shown = 0;
    for (const QueueAttribution &q : r.queues) {
        if (shown++ >= top || q.prof.stallCycles() == 0)
            break;
        std::string arcs;
        for (const PlacementDesc &p : q.placements) {
            if (!arcs.empty())
                arcs += ", ";
            arcs += placementDesc(p);
        }
        JsonObject qr;
        qr.num("schema", int64_t{1})
            .str("type", "queue")
            .str("cell", name)
            .num("queue", static_cast<int64_t>(q.queue))
            .num("full_cycles", q.prof.full_cycles)
            .num("empty_cycles", q.prof.empty_cycles)
            .num("sa_port_cycles", q.prof.sa_port_cycles)
            .num("produces", q.prof.produces)
            .num("consumes", q.prof.consumes)
            .str("placements", arcs);
        sink.write(qr);
    }
    shown = 0;
    for (const BlockAttribution &b : r.blocks) {
        if (shown++ >= top)
            break;
        JsonObject br;
        br.num("schema", int64_t{1})
            .str("type", "block")
            .str("cell", name)
            .num("thread", static_cast<int64_t>(b.thread))
            .str("label", b.label)
            .num("operand", b.prof.operand)
            .num("mem_port", b.prof.mem_port)
            .num("queue_full", b.prof.queue_full)
            .num("queue_empty", b.prof.queue_empty)
            .num("sa_port", b.prof.sa_port);
        sink.write(br);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    ProfileOptions opts = parseArgs(argc, argv);

    std::unique_ptr<StatsSink> sink;
    if (!opts.json_path.empty()) {
        try {
            sink = std::make_unique<StatsSink>(opts.json_path);
        } catch (const FatalError &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 2;
        }
    }

    std::vector<Workload> workloads = allWorkloads();
    if (!opts.only.empty()) {
        std::vector<Workload> picked;
        for (const std::string &name : opts.only) {
            bool found = false;
            for (Workload &w : workloads) {
                if (w.name == name) {
                    picked.push_back(std::move(w));
                    found = true;
                    break;
                }
            }
            if (!found) {
                std::fprintf(stderr,
                             "gmt-profile: unknown workload '%s'\n",
                             name.c_str());
                return 2;
            }
        }
        workloads = std::move(picked);
    }

    // One (workload, scheduler) pair = COCO-off cell then COCO-on
    // cell, adjacent in the grid so the shared codegen prefix caches.
    std::vector<ExperimentCell> cells;
    for (const Workload &w : workloads) {
        for (Scheduler sched : opts.schedulers) {
            for (bool coco : {false, true}) {
                PipelineOptions po;
                po.scheduler = sched;
                po.use_coco = coco;
                po.num_threads = opts.num_threads;
                po.max_queues = opts.max_queues;
                po.sim_engine = opts.sim_engine;
                po.profile_stalls = true;
                // --autotune closes the feedback loop on the COCO-on
                // cell, so the pair's delta also shows what the tuner
                // recovered on top of the one-shot placement.
                po.autotune = opts.autotune && coco;
                cells.push_back({w, po});
            }
        }
    }

    std::unique_ptr<TraceCollector> trace;
    if (!opts.trace_path.empty())
        trace = std::make_unique<TraceCollector>();

    ExperimentOptions eo;
    eo.jobs = opts.jobs;
    eo.stats = sink.get();
    eo.trace = trace.get();
    ExperimentRunner runner(eo);

    std::vector<PipelineResult> results;
    try {
        results = runner.runAll(cells);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "gmt-profile: %s\n", e.what());
        return 1;
    }
    const auto &profiles = runner.obsProfiles();

    for (size_t i = 0; i + 1 < cells.size(); i += 2) {
        const Workload &w = cells[i].workload;
        Scheduler sched = cells[i].opts.scheduler;
        const ObsProfileArtifact &off = *profiles[i];
        const ObsProfileArtifact &on = *profiles[i + 1];

        if (sink) {
            emitCellJson(*sink,
                         cellName(w.name, sched, false, false), w.name,
                         sched, false, off, opts.top);
            emitCellJson(*sink,
                         cellName(w.name, sched, true, opts.autotune),
                         w.name, sched, true, on, opts.top);
            JsonObject delta;
            delta.num("schema", int64_t{1})
                .str("type", "coco-delta")
                .str("workload", w.name)
                .str("scheduler", schedulerName(sched))
                .num("cycles_off", off.report.cycles)
                .num("cycles_on", on.report.cycles)
                .num("stall_off", off.report.totalStallCycles())
                .num("stall_on", on.report.totalStallCycles());
            sink->write(delta);
        } else {
            printCellText(cellName(w.name, sched, false, false), off,
                          opts.top);
            printCellText(cellName(w.name, sched, true, opts.autotune),
                          on, opts.top);
            double dc = pct(on.report.cycles, off.report.cycles);
            std::printf(
                "  COCO: cycles %llu -> %llu (%.1f%%), stall %llu -> "
                "%llu\n\n",
                static_cast<unsigned long long>(off.report.cycles),
                static_cast<unsigned long long>(on.report.cycles),
                dc - 100.0,
                static_cast<unsigned long long>(
                    off.report.totalStallCycles()),
                static_cast<unsigned long long>(
                    on.report.totalStallCycles()));
        }
    }

    if (!sink) {
        // The JSON path republishes the whole registry below; give the
        // text report the same visibility into the min-cut solver's
        // warm-start economy (PR 8's headline counters).
        MetricsRegistry &m = MetricsRegistry::global();
        std::printf(
            "coco solver: %llu warm starts, %llu cold rebuilds, "
            "%llu global relabels\n",
            static_cast<unsigned long long>(
                m.counter("coco.warm_starts").value()),
            static_cast<unsigned long long>(
                m.counter("coco.cold_rebuilds").value()),
            static_cast<unsigned long long>(
                m.counter("coco.relabel_global").value()));
        if (opts.autotune)
            std::printf(
                "autotune: %llu iterations, %llu moves accepted, "
                "%llu rejected, %llu warm cut reuses\n",
                static_cast<unsigned long long>(
                    m.counter("autotune.iterations").value()),
                static_cast<unsigned long long>(
                    m.counter("autotune.moves_accepted").value()),
                static_cast<unsigned long long>(
                    m.counter("autotune.moves_rejected").value()),
                static_cast<unsigned long long>(
                    m.counter("autotune.warm_cut_reuses").value()));
    }

    if (sink) {
        JsonObject summary;
        summary.num("schema", int64_t{1})
            .str("type", "profile-summary")
            .num("cells", static_cast<int64_t>(cells.size()))
            .str("engine", simEngineName(opts.sim_engine))
            .str("conservation", "ok");
        sink->write(summary);
        // Republish the global registry (coco solver counters etc.)
        // as type:"metrics" records, like the bench harness does.
        writeMetricsRecords(MetricsRegistry::global(), *sink);
    }
    if (trace) {
        trace->writeFile(opts.trace_path);
        if (!opts.quiet)
            std::fprintf(stderr,
                         "[gmt-profile] trace: %s (%zu events)\n",
                         opts.trace_path.c_str(), trace->numEvents());
    }
    if (!opts.quiet) {
        const ExperimentSummary &s = runner.summary();
        std::fprintf(stderr,
                     "[gmt-profile] %d cells, %d jobs, %.0f ms wall, "
                     "conservation ok\n",
                     s.cells, s.jobs, s.wall_ms);
    }
    return 0;
}
