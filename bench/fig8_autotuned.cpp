/**
 * @file
 * Figure 8, autotuned: speedup over single-threaded execution for the
 * COCO cells of fig8, baseline vs. the feedback-directed autotuner
 * (src/autotune/) that folds the simulator's stall attribution back
 * into re-cuts, re-partitions, and boundary migrations.
 *
 * Baseline and autotuned cells share every codegen + simulation
 * artifact through the runner's cache (the autotune axes only suffix
 * the keys downstream of the loop), so each autotuned cell costs one
 * feedback loop, not a second pipeline. The autotuner only ever
 * accepts strict simulated-cycle improvements, so tuned >= baseline
 * holds per cell by construction; the interesting output is where and
 * how much the loop actually recovered.
 */

#include <iostream>

#include "driver/bench_harness.hpp"
#include "driver/report.hpp"
#include "support/table.hpp"
#include "workloads/workload.hpp"

using namespace gmt;

int
main(int argc, char **argv)
{
    BenchHarness harness(argc, argv);
    const auto workloads = harness.workloads();

    std::vector<ExperimentCell> cells;
    for (const Workload &w : workloads) {
        for (Scheduler sched : {Scheduler::Gremio, Scheduler::Dswp}) {
            for (bool tuned : {false, true}) {
                PipelineOptions opts;
                opts.scheduler = sched;
                opts.use_coco = true;
                opts.autotune = tuned;
                cells.push_back({w, opts});
            }
        }
    }
    const auto results = harness.runAll(cells);

    Table t("Figure 8 (autotuned): speedup over single-threaded "
            "execution, COCO cells, baseline vs. feedback loop");
    t.setHeader({"Benchmark", "GREMIO+COCO", "+autotune", "DSWP+COCO",
                 "+autotune"});

    std::vector<double> base_speedups, tuned_speedups;
    int improved = 0, total = 0;
    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        std::vector<std::string> row{workloads[wi].name};
        for (int si = 0; si < 2; ++si) {
            const PipelineResult &base = results[wi * 4 + si * 2];
            const PipelineResult &at = results[wi * 4 + si * 2 + 1];
            row.push_back(Table::fmt(base.speedup(), 2) + "x");
            std::string cell = Table::fmt(at.speedup(), 2) + "x";
            if (at.autotune_moves_accepted > 0)
                cell += " (" +
                        std::to_string(at.autotune_moves_accepted) +
                        "mv)";
            row.push_back(cell);
            base_speedups.push_back(base.speedup());
            tuned_speedups.push_back(at.speedup());
            ++total;
            if (at.mt_cycles < base.mt_cycles)
                ++improved;
        }
        t.addRow(row);
    }
    t.addSeparator();
    t.addRow({"geomean", Table::fmt(geomean(base_speedups), 3) + "x",
              Table::fmt(geomean(tuned_speedups), 3) + "x", "", ""});
    t.print(std::cout);

    std::cout << "\nAutotuned cells strictly faster than baseline: "
              << improved << "/" << total << " (equal elsewhere; the "
              << "loop only accepts strict simulated improvements)\n";
    return 0;
}
