/**
 * @file
 * Ablation: the paper's sequential per-pair heuristic for the NP-hard
 * multi-pair memory min-cut (§3.1.3) vs the naive single super-pair
 * formulation (disconnect every source from every sink). The
 * super-pair baseline over-constrains the problem and can only cut
 * more (or equally much).
 */

#include <iostream>

#include "driver/bench_harness.hpp"
#include "support/table.hpp"
#include "workloads/workload.hpp"

using namespace gmt;

int
main(int argc, char **argv)
{
    BenchHarness harness(argc, argv);
    const auto workloads = harness.workloads();

    // Per workload and scheduler: MTCG baseline, COCO multi-pair,
    // COCO super-pair (3 variants x 2 schedulers = 6 cells).
    std::vector<ExperimentCell> cells;
    for (const Workload &w : workloads) {
        for (Scheduler sched : {Scheduler::Gremio, Scheduler::Dswp}) {
            PipelineOptions base;
            base.scheduler = sched;
            base.use_coco = false;
            base.simulate = false;
            cells.push_back({w, base});

            PipelineOptions multi = base;
            multi.use_coco = true;
            multi.coco.multi_pair_memory = true;
            cells.push_back({w, multi});

            PipelineOptions super = base;
            super.use_coco = true;
            super.coco.multi_pair_memory = false;
            cells.push_back({w, super});
        }
    }
    const auto results = harness.runAll(cells);

    Table t("Ablation: multi-pair memory cut heuristic vs super-pair "
            "baseline (dynamic memory syncs, both schedulers summed)");
    t.setHeader({"Benchmark", "MTCG", "COCO multi-pair",
                 "COCO super-pair"});
    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        uint64_t base_sync = 0, multi_sync = 0, super_sync = 0;
        for (int si = 0; si < 2; ++si) {
            size_t at = wi * 6 + si * 3;
            base_sync += results[at].mem_sync;
            multi_sync += results[at + 1].mem_sync;
            super_sync += results[at + 2].mem_sync;
        }
        t.addRow({workloads[wi].name, std::to_string(base_sync),
                  std::to_string(multi_sync),
                  std::to_string(super_sync)});
    }
    t.print(std::cout);
    std::cout << "\nBenchmarks without inter-thread memory "
                 "dependences show zeros across the row.\n";
    return 0;
}
