/**
 * @file
 * Ablation: the paper's sequential per-pair heuristic for the NP-hard
 * multi-pair memory min-cut (§3.1.3) vs the naive single super-pair
 * formulation (disconnect every source from every sink). The
 * super-pair baseline over-constrains the problem and can only cut
 * more (or equally much).
 */

#include <iostream>

#include "driver/pipeline.hpp"
#include "support/table.hpp"
#include "workloads/workload.hpp"

using namespace gmt;

int
main()
{
    Table t("Ablation: multi-pair memory cut heuristic vs super-pair "
            "baseline (dynamic memory syncs, both schedulers summed)");
    t.setHeader({"Benchmark", "MTCG", "COCO multi-pair",
                 "COCO super-pair"});
    for (const Workload &w : allWorkloads()) {
        uint64_t base_sync = 0, multi_sync = 0, super_sync = 0;
        for (Scheduler sched : {Scheduler::Gremio, Scheduler::Dswp}) {
            PipelineOptions base;
            base.scheduler = sched;
            base.use_coco = false;
            base.simulate = false;
            base_sync += runPipeline(w, base).mem_sync;

            PipelineOptions multi = base;
            multi.use_coco = true;
            multi.coco.multi_pair_memory = true;
            multi_sync += runPipeline(w, multi).mem_sync;

            PipelineOptions super = base;
            super.use_coco = true;
            super.coco.multi_pair_memory = false;
            super_sync += runPipeline(w, super).mem_sync;
        }
        t.addRow({w.name, std::to_string(base_sync),
                  std::to_string(multi_sync),
                  std::to_string(super_sync)});
    }
    t.print(std::cout);
    std::cout << "\nBenchmarks without inter-thread memory "
                 "dependences show zeros across the row.\n";
    return 0;
}
