/**
 * @file
 * Reproduces paper Figure 6(a): the simulated machine configuration.
 */

#include <iostream>

#include "sim/machine_config.hpp"

int
main()
{
    gmt::MachineConfig::paperDefault().print(std::cout);
    return 0;
}
