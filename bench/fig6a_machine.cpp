/**
 * @file
 * Reproduces paper Figure 6(a): the simulated machine configuration.
 * Accepts the shared bench flags for harness uniformity (they have
 * nothing to run here).
 */

#include <iostream>

#include "driver/bench_harness.hpp"
#include "sim/machine_config.hpp"

int
main(int argc, char **argv)
{
    gmt::parseBenchOptions(argc, argv);
    gmt::MachineConfig::paperDefault().print(std::cout);
    return 0;
}
