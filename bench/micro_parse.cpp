/**
 * @file
 * Microbenchmark + correctness gate for the textual IR front end.
 * Over the golden `.gmt` corpus (default workloads/ir) it:
 *
 *  1. asserts the print/parse fixpoint for every cell — the dumped
 *     text reloads to a workload whose dump is byte-identical and
 *     whose digest is unchanged (the contract the corpus, the
 *     artifact cache keys, and the fuzzer repros all rest on);
 *  2. times cell parsing (workloadFromText, including IR
 *     verification) and printing (workloadToText) over repeated
 *     passes, and writes throughput to BENCH_parse.json so the parser
 *     perf trajectory is tracked per commit.
 *
 * Usage: micro_parse [--dir DIR] [--reps N] [--out FILE]
 *        (defaults: workloads/ir, 20 reps, ./BENCH_parse.json)
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "driver/stats.hpp"
#include "support/error.hpp"
#include "workloads/serialize.hpp"

using namespace gmt;

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string dir = "workloads/ir";
    std::string out_path = "BENCH_parse.json";
    int reps = 20;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
            dir = argv[++i];
        } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
            reps = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--dir DIR] [--reps N] [--out FILE]\n",
                         argv[0]);
            return 2;
        }
    }

    // Slurp the corpus once; parsing, not IO, is what is measured.
    std::vector<std::string> texts;
    std::vector<std::string> names;
    uint64_t corpus_bytes = 0;
    {
        namespace fs = std::filesystem;
        std::vector<fs::path> paths;
        for (const auto &entry : fs::directory_iterator(dir))
            if (entry.is_regular_file() &&
                entry.path().extension() == ".gmt")
                paths.push_back(entry.path());
        std::sort(paths.begin(), paths.end());
        for (const fs::path &p : paths) {
            std::ifstream in(p);
            std::ostringstream ss;
            ss << in.rdbuf();
            texts.push_back(ss.str());
            names.push_back(p.filename().string());
            corpus_bytes += texts.back().size();
        }
    }
    if (texts.empty()) {
        std::fprintf(stderr, "micro_parse: no .gmt cells in %s\n",
                     dir.c_str());
        return 2;
    }

    // Correctness gate: parse -> print is a fixpoint, digest stable.
    bool fixpoint = true;
    for (size_t i = 0; i < texts.size(); ++i) {
        try {
            Workload w = workloadFromText(texts[i], names[i]);
            std::string dumped = workloadToText(w);
            Workload again = workloadFromText(dumped, names[i]);
            if (dumped != workloadToText(again) ||
                w.digest != again.digest) {
                fixpoint = false;
                std::fprintf(stderr,
                             "micro_parse: %s is not a fixpoint\n",
                             names[i].c_str());
            }
        } catch (const FatalError &e) {
            fixpoint = false;
            std::fprintf(stderr, "micro_parse: %s: %s\n",
                         names[i].c_str(), e.what());
        }
    }

    // Timing passes. workloadFromText includes IR verification, so
    // "parse" here is the full load path a --workload-dir user pays.
    std::vector<Workload> loaded;
    loaded.reserve(texts.size());
    for (size_t i = 0; i < texts.size(); ++i)
        loaded.push_back(workloadFromText(texts[i], names[i]));

    double parse_ms = 0.0, print_ms = 0.0;
    uint64_t parsed_instrs = 0;
    for (int r = 0; r < reps; ++r) {
        auto t0 = Clock::now();
        for (size_t i = 0; i < texts.size(); ++i) {
            Workload w = workloadFromText(texts[i], names[i]);
            parsed_instrs += w.func.numInstrs();
        }
        parse_ms += msSince(t0);

        t0 = Clock::now();
        for (const Workload &w : loaded) {
            std::string text = workloadToText(w);
            // Keep the optimizer honest.
            if (text.empty())
                return 3;
        }
        print_ms += msSince(t0);
    }

    double parse_mb_s =
        parse_ms > 0.0 ? (static_cast<double>(corpus_bytes) * reps) /
                             (parse_ms * 1e3)
                       : 0.0;
    JsonObject o;
    o.str("bench", "parse");
    o.boolean("fixpoint", fixpoint);
    o.num("cells", static_cast<int64_t>(texts.size()));
    o.num("corpus_bytes", corpus_bytes);
    o.num("reps", static_cast<int64_t>(reps));
    o.num("parsed_instrs", parsed_instrs);
    o.num("parse_wall_ms", parse_ms);
    o.num("print_wall_ms", print_ms);
    o.num("parse_mb_per_s", parse_mb_s);

    std::ofstream out(out_path);
    if (!out) {
        std::fprintf(stderr, "micro_parse: cannot write %s\n",
                     out_path.c_str());
        return 2;
    }
    out << o.render() << "\n";
    std::cout << o.render() << "\n";
    return fixpoint ? 0 : 1;
}
