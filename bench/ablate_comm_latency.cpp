/**
 * @file
 * Ablation: inter-core communication latency. The paper's
 * synchronization array has a 1-cycle access latency; this sweep
 * shows how quickly the extracted thread-level parallelism erodes as
 * the communication substrate slows down — the motivation for the
 * low-latency hardware queues GMT scheduling assumes.
 */

#include <iostream>

#include "driver/pipeline.hpp"
#include "support/table.hpp"
#include "workloads/workload.hpp"

using namespace gmt;

int
main()
{
    const int latencies[] = {1, 2, 4, 8, 16};
    Table t("Ablation: DSWP+COCO speedup vs sync-array latency");
    std::vector<std::string> header{"Benchmark"};
    for (int l : latencies)
        header.push_back(std::to_string(l) + " cyc");
    t.setHeader(header);

    for (const Workload &w : allWorkloads()) {
        std::vector<std::string> row{w.name};
        for (int l : latencies) {
            PipelineOptions opts;
            opts.scheduler = Scheduler::Dswp;
            opts.use_coco = true;
            opts.machine.sa_latency = l;
            auto r = runPipeline(w, opts);
            row.push_back(Table::fmt(r.speedup(), 2) + "x");
        }
        t.addRow(row);
    }
    t.print(std::cout);
    return 0;
}
