/**
 * @file
 * Ablation: inter-core communication latency. The paper's
 * synchronization array has a 1-cycle access latency; this sweep
 * shows how quickly the extracted thread-level parallelism erodes as
 * the communication substrate slows down — the motivation for the
 * low-latency hardware queues GMT scheduling assumes.
 *
 * All latency cells of a workload share every artifact through
 * mt-run (only the sim pass sees the machine config), so the cached
 * runner regenerates nothing between sweep points.
 */

#include <iostream>

#include "driver/bench_harness.hpp"
#include "support/table.hpp"
#include "workloads/workload.hpp"

using namespace gmt;

int
main(int argc, char **argv)
{
    BenchHarness harness(argc, argv);
    const auto workloads = harness.workloads();
    const int latencies[] = {1, 2, 4, 8, 16};
    const size_t nl = std::size(latencies);

    std::vector<ExperimentCell> cells;
    for (const Workload &w : workloads) {
        for (int l : latencies) {
            PipelineOptions opts;
            opts.scheduler = Scheduler::Dswp;
            opts.use_coco = true;
            opts.machine.sa_latency = l;
            cells.push_back({w, opts});
        }
    }
    const auto results = harness.runAll(cells);

    Table t("Ablation: DSWP+COCO speedup vs sync-array latency");
    std::vector<std::string> header{"Benchmark"};
    for (int l : latencies)
        header.push_back(std::to_string(l) + " cyc");
    t.setHeader(header);

    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        std::vector<std::string> row{workloads[wi].name};
        for (size_t li = 0; li < nl; ++li)
            row.push_back(
                Table::fmt(results[wi * nl + li].speedup(), 2) + "x");
        t.addRow(row);
    }
    t.print(std::cout);
    return 0;
}
