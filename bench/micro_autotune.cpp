/**
 * @file
 * Microbenchmark + correctness gate for the feedback-directed
 * autotuner (src/autotune/). Over the COCO cell matrix (every
 * workload x {GREMIO, DSWP}) it runs the full pipeline with the
 * autotune pass on, against one shared artifact cache, and reports:
 *
 *  - convergence: every cell must stop on the epsilon gate, not the
 *    iteration cap;
 *  - the speedup trajectory: geomean baseline vs. autotuned speedup
 *    (tuned >= baseline per cell by construction — the loop only
 *    accepts strict simulated improvements);
 *  - per-iteration wall time: the first feedback round pays the cold
 *    cut solves, later rounds warm-start from the retained max-flow
 *    residuals and skip already-evaluated schedules, so warm rounds
 *    must be materially cheaper than the cold one.
 *
 * Writes a flat BENCH_autotune.json for tools/bench_report and exits
 * nonzero when a gate fails.
 *
 * Usage: micro_autotune [--only CSV] [--out FILE] [--warm-gate X]
 *        (defaults: all workloads, ./BENCH_autotune.json, 1.5)
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "driver/artifact_cache.hpp"
#include "driver/pass_manager.hpp"
#include "driver/report.hpp"
#include "driver/stats.hpp"
#include "obs/metrics.hpp"
#include "workloads/workload.hpp"

using namespace gmt;

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_autotune.json";
    std::vector<std::string> only;
    double warm_gate = 1.5;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc) {
            std::stringstream ss(argv[++i]);
            std::string name;
            while (std::getline(ss, name, ','))
                if (!name.empty())
                    only.push_back(name);
        } else if (std::strcmp(argv[i], "--warm-gate") == 0 &&
                   i + 1 < argc) {
            warm_gate = std::atof(argv[++i]);
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--only CSV] [--out FILE] [--warm-gate X]\n",
                argv[0]);
            return 2;
        }
    }

    std::vector<Workload> workloads;
    for (const Workload &w : allWorkloads()) {
        if (only.empty() ||
            std::find(only.begin(), only.end(), w.name) != only.end())
            workloads.push_back(w);
    }
    if (workloads.empty()) {
        std::fprintf(stderr, "micro_autotune: no workloads selected\n");
        return 2;
    }

    MetricsRegistry &m = MetricsRegistry::global();
    const uint64_t warm0 = m.counter("coco.warm_starts").value();
    const uint64_t cold0 = m.counter("coco.cold_rebuilds").value();

    ArtifactCache cache;
    bool all_converged = true;
    int iterations = 0, accepted = 0, rejected = 0, improved = 0;
    uint64_t warm_cut_reuses = 0;
    std::vector<double> base_speedups, tuned_speedups;
    std::vector<double> cold_ms, warm_ms;
    for (const Workload &w : workloads) {
        for (Scheduler sched : {Scheduler::Gremio, Scheduler::Dswp}) {
            PipelineOptions po;
            po.scheduler = sched;
            po.use_coco = true;
            po.autotune = true;
            PipelineContext ctx(w, po);
            ctx.cache = &cache;
            PassManager::standardPipeline().run(ctx);

            const PipelineResult &r = ctx.result;
            const AutotuneResult &at = ctx.autotune->result;
            if (!at.converged) {
                all_converged = false;
                std::fprintf(stderr,
                             "micro_autotune: %s hit the iteration "
                             "cap without converging\n",
                             ctx.cellId().c_str());
            }
            iterations += at.iterations;
            accepted += at.moves_accepted;
            rejected += at.moves_rejected;
            warm_cut_reuses += at.warm_cut_reuses;
            if (r.mt_cycles < r.baseline_mt_cycles)
                ++improved;
            base_speedups.push_back(
                static_cast<double>(r.st_cycles) /
                static_cast<double>(r.baseline_mt_cycles));
            tuned_speedups.push_back(r.speedup());
            if (!at.iter_wall_ms.empty()) {
                cold_ms.push_back(at.iter_wall_ms.front());
                for (size_t i = 1; i < at.iter_wall_ms.size(); ++i)
                    warm_ms.push_back(at.iter_wall_ms[i]);
            }
        }
    }

    const double geomean_base = geomean(base_speedups);
    const double geomean_tuned = geomean(tuned_speedups);
    const double cold_iter_ms = mean(cold_ms);
    const double warm_iter_ms = mean(warm_ms);
    const double warm_speedup =
        warm_iter_ms > 0.0 ? cold_iter_ms / warm_iter_ms : 0.0;

    // Gates: converge everywhere, never lose speedup, and warm
    // feedback rounds must be materially cheaper than the cold one
    // (no warm rounds at all would mean no cell ever iterated, which
    // also fails — the loop would not be exercising its reuse paths).
    bool geomean_ok = geomean_tuned >= geomean_base;
    bool warm_ok = !warm_ms.empty() && warm_speedup >= warm_gate;
    if (!geomean_ok)
        std::fprintf(stderr,
                     "micro_autotune: tuned geomean %.4f < baseline "
                     "%.4f\n",
                     geomean_tuned, geomean_base);
    if (!warm_ok)
        std::fprintf(stderr,
                     "micro_autotune: warm iterations not >= %.2fx "
                     "cheaper than cold (cold %.2fms, warm %.2fms)\n",
                     warm_gate, cold_iter_ms, warm_iter_ms);

    JsonObject o;
    o.str("bench", "autotune");
    o.boolean("converged", all_converged);
    o.num("cells", static_cast<int64_t>(base_speedups.size()));
    o.num("iterations", static_cast<int64_t>(iterations));
    o.num("moves_accepted", static_cast<int64_t>(accepted));
    o.num("moves_rejected", static_cast<int64_t>(rejected));
    o.num("improved_cells", static_cast<int64_t>(improved));
    o.num("geomean_base", geomean_base);
    o.num("geomean_tuned", geomean_tuned);
    o.num("geomean_delta", geomean_tuned - geomean_base);
    o.num("cold_iter_ms", cold_iter_ms);
    o.num("warm_iter_ms", warm_iter_ms);
    o.num("warm_speedup", warm_speedup);
    o.num("warm_cut_reuses", warm_cut_reuses);
    // bench_report derives its hit-rate column from this pair (the
    // global COCO solver counters, bracketed around the matrix).
    o.num("coco_warm_starts",
          m.counter("coco.warm_starts").value() - warm0);
    o.num("coco_cold_rebuilds",
          m.counter("coco.cold_rebuilds").value() - cold0);

    std::ofstream out(out_path);
    if (!out) {
        std::fprintf(stderr, "micro_autotune: cannot write %s\n",
                     out_path.c_str());
        return 2;
    }
    out << o.render() << "\n";
    std::cout << o.render() << "\n";
    return all_converged && geomean_ok && warm_ok ? 0 : 1;
}
