/**
 * @file
 * Microbenchmark + correctness gate for the parallel COCO cut
 * solver. Over the fig7 cell matrix (every workload x {GREMIO, DSWP},
 * COCO on) it:
 *
 *  1. materializes each cell's placement inputs once (IR, profile,
 *     PDG, partition) via the codegen pipeline prefix;
 *  2. times cocoOptimize over the whole matrix serially (jobs=1, the
 *     seed algorithm) and in the composed parallel regime the
 *     experiment runner uses in production — cells dispatched as
 *     tasks on one shared pool, each nesting its speculative cut
 *     tasks on the same pool via TaskGroup (default jobs=8) — best
 *     of N repetitions;
 *  3. asserts every parallel plan is identical to its serial plan
 *     (the bit-identical-output contract CI enforces on every push)
 *     and writes the numbers to BENCH_coco.json.
 *
 * Usage: micro_coco [--jobs N] [--reps N] [--out FILE]
 *        (defaults: 8 jobs, 3 reps, ./BENCH_coco.json)
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "coco/coco.hpp"
#include "driver/pass_manager.hpp"
#include "driver/stats.hpp"
#include "obs/metrics.hpp"
#include "support/thread_pool.hpp"
#include "workloads/workload.hpp"

using namespace gmt;

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/** One fig7 cell's placement inputs, materialized once. */
struct Cell
{
    std::string id;
    std::shared_ptr<const PdgArtifact> pdg; // keeps the IR alive
    std::shared_ptr<const PartitionArtifact> partition;
    std::shared_ptr<const ProfileArtifact> profile;
};

/**
 * Run the COCO pass over every cell. With a pool, cells are
 * dispatched as tasks and each nests its cut tasks on the same pool
 * (the experiment runner's configuration); without one, everything
 * runs inline (the seed behaviour). Results land by cell index, so
 * the output order is deterministic either way.
 */
std::vector<CommPlan>
runMatrix(const std::vector<Cell> &cells, ThreadPool *pool, int jobs,
          double &wall_ms)
{
    std::vector<CommPlan> plans(cells.size());
    auto run_cell = [&](size_t i) {
        const Cell &c = cells[i];
        CocoExec exec{pool, jobs, nullptr};
        CocoResult r = cocoOptimize(
            c.pdg->ir->func, c.pdg->pdg, c.partition->partition,
            c.pdg->cd, c.profile->profile, CocoOptions{}, exec);
        plans[i] = std::move(r.plan);
    };
    auto t0 = Clock::now();
    if (!pool) {
        for (size_t i = 0; i < cells.size(); ++i)
            run_cell(i);
    } else {
        TaskGroup group(*pool);
        for (size_t i = 0; i < cells.size(); ++i)
            group.run([&run_cell, i] { run_cell(i); });
        group.wait();
    }
    wall_ms = msSince(t0);
    return plans;
}

bool
samePlan(const CommPlan &a, const CommPlan &b)
{
    if (a.placements.size() != b.placements.size())
        return false;
    for (size_t i = 0; i < a.placements.size(); ++i) {
        const CommPlacement &x = a.placements[i];
        const CommPlacement &y = b.placements[i];
        if (x.kind != y.kind || x.reg != y.reg ||
            x.src_thread != y.src_thread ||
            x.dst_thread != y.dst_thread || x.points != y.points)
            return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_coco.json";
    int jobs = 8;
    int reps = 3;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            jobs = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
            reps = std::atoi(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--jobs N] [--reps N] [--out FILE]\n",
                         argv[0]);
            return 2;
        }
    }
    if (jobs < 2 || reps < 1) {
        std::fprintf(stderr, "%s: wants --jobs >= 2, --reps >= 1\n",
                     argv[0]);
        return 2;
    }

    // Materialize the fig7 matrix inputs (codegen is not measured).
    std::vector<Cell> cells;
    for (const Workload &w : allWorkloads()) {
        for (Scheduler sched : {Scheduler::Gremio, Scheduler::Dswp}) {
            PipelineOptions po;
            po.scheduler = sched;
            po.use_coco = true;
            PipelineContext ctx(w, po);
            PassManager::codegenPipeline().run(ctx);
            cells.push_back(
                {ctx.cellId(), ctx.pdg, ctx.partition, ctx.profile});
        }
    }

    MetricsRegistry &m = MetricsRegistry::global();

    // Counting pass (also warms allocators and page cache): one
    // serial sweep, bracketed by the solver counters.
    uint64_t problems0 = m.counter("coco.problems").value();
    uint64_t solves0 = m.counter("coco.solves").value();
    double warm_ms = 0.0;
    std::vector<CommPlan> serial_plans =
        runMatrix(cells, nullptr, 1, warm_ms);
    uint64_t problems = m.counter("coco.problems").value() - problems0;
    uint64_t solves = m.counter("coco.solves").value() - solves0;

    // Timed passes: best of --reps for each mode.
    double serial_ms = warm_ms;
    for (int r = 0; r < reps; ++r) {
        double ms = 0.0;
        runMatrix(cells, nullptr, 1, ms);
        serial_ms = std::min(serial_ms, ms);
    }

    ThreadPool pool(jobs);
    uint64_t spec_hits0 = m.counter("coco.spec_hits").value();
    uint64_t spec_misses0 = m.counter("coco.spec_misses").value();
    double parallel_ms = 0.0;
    std::vector<CommPlan> parallel_plans =
        runMatrix(cells, &pool, jobs, parallel_ms);
    for (int r = 1; r < reps; ++r) {
        double ms = 0.0;
        runMatrix(cells, &pool, jobs, ms);
        parallel_ms = std::min(parallel_ms, ms);
    }
    uint64_t spec_hits =
        m.counter("coco.spec_hits").value() - spec_hits0;
    uint64_t spec_misses =
        m.counter("coco.spec_misses").value() - spec_misses0;

    // The contract: the parallel solver's plan is bit-identical to
    // the serial one, cell by cell.
    bool identical = true;
    for (size_t i = 0; i < cells.size(); ++i) {
        if (!samePlan(serial_plans[i], parallel_plans[i])) {
            identical = false;
            std::fprintf(stderr,
                         "micro_coco: plan mismatch in cell %s\n",
                         cells[i].id.c_str());
        }
    }

    double speedup =
        parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
    JsonObject o;
    o.str("bench", "coco");
    o.boolean("identical", identical);
    o.num("cells", static_cast<int64_t>(cells.size()));
    o.num("jobs", static_cast<int64_t>(jobs));
    o.num("problems", problems);
    o.num("solves", solves);
    o.num("serial_wall_ms", serial_ms);
    o.num("parallel_wall_ms", parallel_ms);
    o.num("speedup", speedup);
    o.num("spec_hits", spec_hits);
    o.num("spec_misses", spec_misses);
    o.num("arena_reuse", m.counter("coco.arena_reuse").value());
    o.num("liveness_memo_hits",
          m.counter("coco.liveness_memo_hits").value());

    std::ofstream out(out_path);
    if (!out) {
        std::fprintf(stderr, "micro_coco: cannot write %s\n",
                     out_path.c_str());
        return 2;
    }
    out << o.render() << "\n";
    std::cout << o.render() << "\n";
    return identical ? 0 : 1;
}
