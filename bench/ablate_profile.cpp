/**
 * @file
 * Ablation: profile source. COCO's arc costs come from an edge
 * profile; the paper uses train-input runs and notes static estimates
 * "have been demonstrated to be also very accurate" [28]. This
 * compares COCO's communication reduction when driven by the
 * train-input profile vs the static loop-depth estimate.
 */

#include <iostream>

#include "driver/bench_harness.hpp"
#include "driver/report.hpp"
#include "support/table.hpp"
#include "workloads/workload.hpp"

using namespace gmt;

int
main(int argc, char **argv)
{
    BenchHarness harness(argc, argv);
    const auto workloads = harness.workloads();

    std::vector<ExperimentCell> cells;
    for (const Workload &w : workloads) {
        PipelineOptions base;
        base.scheduler = Scheduler::Gremio;
        base.use_coco = false;
        base.simulate = false;
        cells.push_back({w, base});

        PipelineOptions train = base;
        train.use_coco = true;
        cells.push_back({w, train});

        PipelineOptions stat = base;
        stat.use_coco = true;
        stat.static_profile = true;
        cells.push_back({w, stat});
    }
    const auto results = harness.runAll(cells);

    Table t("Ablation: COCO driven by train profile vs static "
            "estimate (relative comm vs MTCG, GREMIO)");
    t.setHeader({"Benchmark", "train profile", "static estimate"});
    std::vector<double> train_rel, static_rel;
    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        const PipelineResult &mtcg = results[wi * 3];
        const PipelineResult &with_train = results[wi * 3 + 1];
        const PipelineResult &with_static = results[wi * 3 + 2];

        double tr = 100.0 * relativeComm(with_train, mtcg);
        double st = 100.0 * relativeComm(with_static, mtcg);
        train_rel.push_back(tr);
        static_rel.push_back(st);
        t.addRow({workloads[wi].name, Table::fmt(tr, 1) + "%",
                  Table::fmt(st, 1) + "%"});
    }
    t.addSeparator();
    t.addRow({"average", Table::fmt(mean(train_rel), 1) + "%",
              Table::fmt(mean(static_rel), 1) + "%"});
    t.print(std::cout);
    std::cout << "\nNote: with static profiles the partitioner also "
                 "sees estimated weights, so the partitions "
                 "themselves may differ.\n";
    return 0;
}
