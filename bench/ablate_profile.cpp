/**
 * @file
 * Ablation: profile source. COCO's arc costs come from an edge
 * profile; the paper uses train-input runs and notes static estimates
 * "have been demonstrated to be also very accurate" [28]. This
 * compares COCO's communication reduction when driven by the
 * train-input profile vs the static loop-depth estimate.
 */

#include <iostream>

#include "driver/pipeline.hpp"
#include "driver/report.hpp"
#include "support/table.hpp"
#include "workloads/workload.hpp"

using namespace gmt;

int
main()
{
    Table t("Ablation: COCO driven by train profile vs static "
            "estimate (relative comm vs MTCG, GREMIO)");
    t.setHeader({"Benchmark", "train profile", "static estimate"});
    std::vector<double> train_rel, static_rel;
    for (const Workload &w : allWorkloads()) {
        PipelineOptions base;
        base.scheduler = Scheduler::Gremio;
        base.use_coco = false;
        base.simulate = false;
        auto mtcg = runPipeline(w, base);

        PipelineOptions train = base;
        train.use_coco = true;
        auto with_train = runPipeline(w, train);

        PipelineOptions stat = base;
        stat.use_coco = true;
        stat.static_profile = true;
        auto with_static = runPipeline(w, stat);

        double tr = 100.0 * relativeComm(with_train, mtcg);
        double st = 100.0 * relativeComm(with_static, mtcg);
        train_rel.push_back(tr);
        static_rel.push_back(st);
        t.addRow({w.name, Table::fmt(tr, 1) + "%",
                  Table::fmt(st, 1) + "%"});
    }
    t.addSeparator();
    t.addRow({"average", Table::fmt(mean(train_rel), 1) + "%",
              Table::fmt(mean(static_rel), 1) + "%"});
    t.print(std::cout);
    std::cout << "\nNote: with static profiles the partitioner also "
                 "sees estimated weights, so the partitions "
                 "themselves may differ.\n";
    return 0;
}
