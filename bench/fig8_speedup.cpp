/**
 * @file
 * Reproduces paper Figure 8: "Speedup over single-threaded execution,
 * without and with COCO" — per benchmark and scheduler, cycles from
 * the timing simulator relative to the single-threaded run of the
 * same kernel on one core, plus the average improvements the paper
 * quotes (GREMIO +15.6%, DSWP +2.7%, ks + GREMIO +47.6%).
 */

#include <iostream>

#include "driver/pipeline.hpp"
#include "driver/report.hpp"
#include "support/table.hpp"
#include "workloads/workload.hpp"

using namespace gmt;

int
main()
{
    Table t("Figure 8: speedup over single-threaded execution "
            "(reference inputs)");
    t.setHeader({"Benchmark", "GREMIO", "GREMIO+COCO", "DSWP",
                 "DSWP+COCO"});

    std::vector<double> improvements[2]; // [0]=GREMIO, [1]=DSWP
    for (const Workload &w : allWorkloads()) {
        std::vector<std::string> row{w.name};
        int idx = 0;
        for (Scheduler sched : {Scheduler::Gremio, Scheduler::Dswp}) {
            PipelineOptions base;
            base.scheduler = sched;
            base.use_coco = false;
            auto mtcg = runPipeline(w, base);

            PipelineOptions opt = base;
            opt.use_coco = true;
            auto coco = runPipeline(w, opt);

            row.push_back(Table::fmt(mtcg.speedup(), 2) + "x");
            row.push_back(Table::fmt(coco.speedup(), 2) + "x");
            improvements[idx].push_back(coco.speedup() /
                                        mtcg.speedup());
            ++idx;
        }
        t.addRow(row);
    }
    t.addSeparator();
    t.addRow({"COCO improvement (avg)",
              Table::pct(mean(improvements[0]) - 1.0, 1), "",
              Table::pct(mean(improvements[1]) - 1.0, 1), ""});
    t.print(std::cout);

    std::cout << "\nPaper reference: COCO improves the average "
                 "speedup by 15.6% for GREMIO and 2.7% for DSWP; best "
                 "case ks + GREMIO gains an extra 47.6%; a couple of "
                 "cases degrade slightly (scheduler interaction, "
                 "paper section 4).\n";
    return 0;
}
