/**
 * @file
 * Reproduces paper Figure 8: "Speedup over single-threaded execution,
 * without and with COCO" — per benchmark and scheduler, cycles from
 * the timing simulator relative to the single-threaded run of the
 * same kernel on one core, plus the average improvements the paper
 * quotes (GREMIO +15.6%, DSWP +2.7%, ks + GREMIO +47.6%).
 *
 * Cells run through the parallel, artifact-cached experiment runner;
 * the single-threaded baseline simulation is one shared artifact per
 * workload instead of four redundant runs.
 */

#include <iostream>

#include "driver/bench_harness.hpp"
#include "driver/report.hpp"
#include "support/table.hpp"
#include "workloads/workload.hpp"

using namespace gmt;

int
main(int argc, char **argv)
{
    BenchHarness harness(argc, argv);
    const auto workloads = harness.workloads();

    std::vector<ExperimentCell> cells;
    for (const Workload &w : workloads) {
        for (Scheduler sched : {Scheduler::Gremio, Scheduler::Dswp}) {
            for (bool coco : {false, true}) {
                PipelineOptions opts;
                opts.scheduler = sched;
                opts.use_coco = coco;
                cells.push_back({w, opts});
            }
        }
    }
    const auto results = harness.runAll(cells);

    Table t("Figure 8: speedup over single-threaded execution "
            "(reference inputs)");
    t.setHeader({"Benchmark", "GREMIO", "GREMIO+COCO", "DSWP",
                 "DSWP+COCO"});

    std::vector<double> improvements[2]; // [0]=GREMIO, [1]=DSWP
    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        std::vector<std::string> row{workloads[wi].name};
        for (int si = 0; si < 2; ++si) {
            const PipelineResult &mtcg = results[wi * 4 + si * 2];
            const PipelineResult &coco = results[wi * 4 + si * 2 + 1];
            row.push_back(Table::fmt(mtcg.speedup(), 2) + "x");
            row.push_back(Table::fmt(coco.speedup(), 2) + "x");
            improvements[si].push_back(coco.speedup() /
                                       mtcg.speedup());
        }
        t.addRow(row);
    }
    t.addSeparator();
    t.addRow({"COCO improvement (avg)",
              Table::pct(mean(improvements[0]) - 1.0, 1), "",
              Table::pct(mean(improvements[1]) - 1.0, 1), ""});
    t.print(std::cout);

    std::cout << "\nPaper reference: COCO improves the average "
                 "speedup by 15.6% for GREMIO and 2.7% for DSWP; best "
                 "case ks + GREMIO gains an extra 47.6%; a couple of "
                 "cases degrade slightly (scheduler interaction, "
                 "paper section 4).\n";
    return 0;
}
