/**
 * @file
 * Ablation: synchronization-array queue depth. The paper uses
 * 32-element queues for DSWP ("which focuses on pipeline
 * parallelism") and single-element queues otherwise; this sweep shows
 * how much decoupling the pipeline actually buys per benchmark.
 */

#include <iostream>

#include "driver/bench_harness.hpp"
#include "support/table.hpp"
#include "workloads/workload.hpp"

using namespace gmt;

int
main(int argc, char **argv)
{
    BenchHarness harness(argc, argv);
    const auto workloads = harness.workloads();
    const int depths[] = {1, 2, 4, 8, 32, 64};
    const size_t nd = std::size(depths);

    std::vector<ExperimentCell> cells;
    for (const Workload &w : workloads) {
        for (int d : depths) {
            PipelineOptions opts;
            opts.scheduler = Scheduler::Dswp;
            opts.use_coco = true;
            opts.queue_capacity = d;
            cells.push_back({w, opts});
        }
    }
    const auto results = harness.runAll(cells);

    Table t("Ablation: DSWP+COCO speedup vs queue depth");
    std::vector<std::string> header{"Benchmark"};
    for (int d : depths)
        header.push_back("depth " + std::to_string(d));
    t.setHeader(header);

    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        std::vector<std::string> row{workloads[wi].name};
        for (size_t di = 0; di < nd; ++di)
            row.push_back(
                Table::fmt(results[wi * nd + di].speedup(), 2) + "x");
        t.addRow(row);
    }
    t.print(std::cout);
    return 0;
}
