/**
 * @file
 * Ablation: synchronization-array queue depth. The paper uses
 * 32-element queues for DSWP ("which focuses on pipeline
 * parallelism") and single-element queues otherwise; this sweep shows
 * how much decoupling the pipeline actually buys per benchmark.
 */

#include <iostream>

#include "driver/pipeline.hpp"
#include "support/table.hpp"
#include "workloads/workload.hpp"

using namespace gmt;

int
main()
{
    const int depths[] = {1, 2, 4, 8, 32, 64};
    Table t("Ablation: DSWP+COCO speedup vs queue depth");
    std::vector<std::string> header{"Benchmark"};
    for (int d : depths)
        header.push_back("depth " + std::to_string(d));
    t.setHeader(header);

    for (const Workload &w : allWorkloads()) {
        std::vector<std::string> row{w.name};
        for (int d : depths) {
            PipelineOptions opts;
            opts.scheduler = Scheduler::Dswp;
            opts.use_coco = true;
            opts.queue_capacity = d;
            auto r = runPipeline(w, opts);
            row.push_back(Table::fmt(r.speedup(), 2) + "x");
        }
        t.addRow(row);
    }
    t.print(std::cout);
    return 0;
}
