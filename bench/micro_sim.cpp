/**
 * @file
 * Microbenchmark + correctness gate for the event-driven timing
 * engine. Over the full fig7/fig8 cell matrix (every workload x
 * {GREMIO, DSWP} x {COCO off, on}) it:
 *
 *  1. runs every MT program and every single-threaded baseline under
 *     both SimEngine::Fast and SimEngine::Reference and asserts the
 *     SimResults are bit-identical (the differential contract CI
 *     enforces on every push);
 *  2. times both engines and the end-to-end fig8 cell grid (pipeline
 *     + fast sim, cached), and writes the numbers to BENCH_sim.json
 *     so the perf trajectory is tracked per commit.
 *
 * Usage: micro_sim [--out FILE]   (default ./BENCH_sim.json)
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "driver/experiment.hpp"
#include "driver/pass_manager.hpp"
#include "driver/stats.hpp"
#include "sim/cmp_simulator.hpp"
#include "workloads/workload.hpp"

using namespace gmt;

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

MemoryImage
refMemory(const Workload &w)
{
    MemoryImage mem;
    mem.alloc(w.mem_cells);
    if (w.fill)
        w.fill(mem, /*ref=*/true);
    return mem;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_sim.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--out FILE]\n", argv[0]);
            return 2;
        }
    }

    // Materialize every cell's MT program once (codegen is not what
    // is being measured).
    struct Cell
    {
        const Workload *w;
        std::string id;
        MachineConfig machine;
        MtProgram prog;
        Function st_func{""};
    };
    const auto workloads = allWorkloads();
    std::vector<Cell> cells;
    for (const Workload &w : workloads) {
        for (Scheduler sched : {Scheduler::Gremio, Scheduler::Dswp}) {
            for (bool coco : {false, true}) {
                PipelineOptions po;
                po.scheduler = sched;
                po.use_coco = coco;
                PipelineContext ctx(w, po);
                PassManager::codegenPipeline().run(ctx);
                cells.push_back({&w, ctx.cellId(), po.machine,
                                 ctx.prog->prog, ctx.ir->func});
            }
        }
    }

    // Differential pass: both engines over every cell, ST and MT.
    bool identical = true;
    double fast_ms = 0.0, ref_ms = 0.0;
    uint64_t swept = 0, skipped = 0, cycles = 0;
    for (const Cell &c : cells) {
        CmpSimulator fast_sim(c.machine, SimEngine::Fast);
        CmpSimulator ref_sim(c.machine, SimEngine::Reference);

        MemoryImage m1 = refMemory(*c.w);
        auto t0 = Clock::now();
        SimResult fast = fast_sim.run(c.prog, c.w->ref_args, m1);
        fast_ms += msSince(t0);

        MemoryImage m2 = refMemory(*c.w);
        t0 = Clock::now();
        SimResult ref = ref_sim.run(c.prog, c.w->ref_args, m2);
        ref_ms += msSince(t0);

        MemoryImage m3 = refMemory(*c.w);
        t0 = Clock::now();
        SimResult st_fast = simulateSingleThreaded(
            c.st_func, c.w->ref_args, m3, c.machine, SimEngine::Fast);
        fast_ms += msSince(t0);

        MemoryImage m4 = refMemory(*c.w);
        t0 = Clock::now();
        SimResult st_ref =
            simulateSingleThreaded(c.st_func, c.w->ref_args, m4,
                                   c.machine, SimEngine::Reference);
        ref_ms += msSince(t0);

        swept += fast.engine.iterations + st_fast.engine.iterations;
        skipped += fast.engine.skipped + st_fast.engine.skipped;
        cycles += fast.cycles + st_fast.cycles;

        if (!(fast == ref) || !(st_fast == st_ref)) {
            identical = false;
            std::fprintf(stderr,
                         "micro_sim: engine mismatch in cell %s\n",
                         c.id.c_str());
        }
    }

    // End-to-end fig8 grid: full pipeline with artifact cache and
    // the fast engine, the configuration the figure drivers run.
    std::vector<ExperimentCell> grid;
    for (const Workload &w : workloads) {
        for (Scheduler sched : {Scheduler::Gremio, Scheduler::Dswp}) {
            for (bool coco : {false, true}) {
                PipelineOptions po;
                po.scheduler = sched;
                po.use_coco = coco;
                grid.push_back({w, po});
            }
        }
    }
    auto t0 = Clock::now();
    {
        ExperimentOptions eo;
        ExperimentRunner runner(eo);
        runner.runAll(grid);
    }
    double fig8_ms = msSince(t0);

    double skip_ratio =
        cycles ? static_cast<double>(skipped) /
                     static_cast<double>(cycles)
               : 0.0;
    JsonObject o;
    o.str("bench", "sim");
    o.boolean("identical", identical);
    o.num("cells", static_cast<int64_t>(cells.size()));
    o.num("sim_fast_wall_ms", fast_ms);
    o.num("sim_reference_wall_ms", ref_ms);
    o.num("engine_speedup", fast_ms > 0.0 ? ref_ms / fast_ms : 0.0);
    o.num("skip_ratio", skip_ratio);
    o.num("swept_cycles", swept);
    o.num("skipped_cycles", skipped);
    o.num("simulated_cycles", cycles);
    o.num("fig8_wall_ms", fig8_ms);

    std::ofstream out(out_path);
    if (!out) {
        std::fprintf(stderr, "micro_sim: cannot write %s\n",
                     out_path.c_str());
        return 2;
    }
    out << o.render() << "\n";
    std::cout << o.render() << "\n";
    return identical ? 0 : 1;
}
