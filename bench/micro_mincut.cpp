/**
 * @file
 * Microbenchmark (google-benchmark): compile-time cost of the min-cut
 * machinery. The paper uses Edmonds-Karp (O(n m^2), ~O(n^3) on CFGs)
 * and notes that faster algorithms (preflow-push) exist if
 * compilation time matters; this compares Edmonds-Karp, Dinic, and
 * FIFO push-relabel on CFG-shaped flow graphs, and measures the
 * whole COCO optimization per benchmark kernel — plus the full pass
 * pipeline with a cold vs warm ArtifactCache (the cached experiment
 * runner's per-cell cost).
 */

#include <benchmark/benchmark.h>

#include "analysis/control_dep.hpp"
#include "analysis/dominators.hpp"
#include "analysis/edge_profile.hpp"
#include "coco/coco.hpp"
#include "driver/pass_manager.hpp"
#include "graph/max_flow.hpp"
#include "ir/edge_split.hpp"
#include "partition/gremio.hpp"
#include "pdg/pdg_builder.hpp"
#include "runtime/interpreter.hpp"
#include "support/rng.hpp"
#include "workloads/workload.hpp"

namespace
{

using namespace gmt;

/** CFG-shaped network: a long chain with skip arcs and hammocks. */
FlowNetwork
makeCfgShapedNetwork(int n, uint64_t seed)
{
    Rng rng(seed);
    FlowNetwork net(n + 2);
    for (int i = 0; i + 1 < n; ++i) {
        net.addArc(i, i + 1, 1 + rng.nextBelow(100));
        if (rng.nextBool(0.3)) {
            int skip = i + 2 + static_cast<int>(rng.nextBelow(5));
            if (skip < n)
                net.addArc(i, skip, 1 + rng.nextBelow(100));
        }
        if (rng.nextBool(0.15) && i > 4) {
            // back arc (loop)
            net.addArc(i, i - 1 - static_cast<int>(rng.nextBelow(4)),
                       1 + rng.nextBelow(100));
        }
    }
    net.addArc(n, 0, kInfCapacity);     // S -> first def
    net.addArc(n - 1, n + 1, kInfCapacity); // last use -> T
    return net;
}

void
BM_MaxFlow(benchmark::State &state, FlowAlgorithm algo)
{
    int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        FlowNetwork net = makeCfgShapedNetwork(n, 42);
        state.ResumeTiming();
        MaxFlow mf(net, algo);
        benchmark::DoNotOptimize(mf.solve(n, n + 1));
        benchmark::DoNotOptimize(mf.minCutArcs());
    }
    state.SetComplexityN(n);
}

void
BM_CocoOptimize(benchmark::State &state)
{
    auto all = allWorkloads();
    const Workload &w = all[state.range(0)];
    Function f = w.func;
    splitCriticalEdges(f);
    MemoryImage mem;
    mem.alloc(w.mem_cells);
    if (w.fill)
        w.fill(mem, false);
    auto run = interpret(f, w.train_args, mem);
    auto profile = EdgeProfile::fromRun(f, run.profile);
    Pdg pdg = buildPdg(f);
    auto pdom = DominatorTree::postDominators(f);
    ControlDependence cd(f, pdom);
    auto partition = gremioPartition(pdg, profile, {.num_threads = 2});
    for (auto _ : state) {
        auto result = cocoOptimize(f, pdg, partition, cd, profile);
        benchmark::DoNotOptimize(result);
    }
    state.SetLabel(w.name);
}

/** Full standard pipeline, no artifact reuse (the seed behaviour). */
void
BM_PipelineUncached(benchmark::State &state)
{
    auto all = allWorkloads();
    const Workload &w = all[state.range(0)];
    PipelineOptions opts;
    opts.scheduler = Scheduler::Gremio;
    opts.use_coco = true;
    opts.simulate = false;
    const PassManager pipeline = PassManager::standardPipeline();
    for (auto _ : state) {
        PipelineContext ctx(w, opts);
        pipeline.run(ctx);
        benchmark::DoNotOptimize(ctx.result);
    }
    state.SetLabel(w.name);
}

/** Same cell against a warm ArtifactCache (steady-state rerun cost). */
void
BM_PipelineCached(benchmark::State &state)
{
    auto all = allWorkloads();
    const Workload &w = all[state.range(0)];
    PipelineOptions opts;
    opts.scheduler = Scheduler::Gremio;
    opts.use_coco = true;
    opts.simulate = false;
    const PassManager pipeline = PassManager::standardPipeline();
    ArtifactCache cache;
    {
        PipelineContext warm(w, opts);
        warm.cache = &cache;
        pipeline.run(warm);
    }
    for (auto _ : state) {
        PipelineContext ctx(w, opts);
        ctx.cache = &cache;
        pipeline.run(ctx);
        benchmark::DoNotOptimize(ctx.result);
    }
    state.SetLabel(w.name);
}

} // namespace

BENCHMARK_CAPTURE(BM_MaxFlow, EdmondsKarp, gmt::FlowAlgorithm::EdmondsKarp)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Complexity();
BENCHMARK_CAPTURE(BM_MaxFlow, Dinic, gmt::FlowAlgorithm::Dinic)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Complexity();
BENCHMARK_CAPTURE(BM_MaxFlow, PushRelabel,
                  gmt::FlowAlgorithm::PushRelabel)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Complexity();
BENCHMARK(BM_CocoOptimize)->DenseRange(0, 10);
BENCHMARK(BM_PipelineUncached)->DenseRange(0, 10);
BENCHMARK(BM_PipelineCached)->DenseRange(0, 10);

BENCHMARK_MAIN();
