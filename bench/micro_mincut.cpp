/**
 * @file
 * Microbenchmark + correctness gate for the min-cut machinery. The
 * paper uses Edmonds-Karp (O(n m^2), ~O(n^3) on CFGs) and notes that
 * faster algorithms (preflow-push) exist if compilation time matters.
 * Instead of synthetic networks, this harness:
 *
 *  1. captures the cut problems COCO actually solves over the fig7
 *     cell matrix (every workload x {GREMIO, DSWP}) via the
 *     CocoExec::capture sink — real CFG-shaped networks with real
 *     profile-weight capacities;
 *  2. sweeps all four flow algorithms (Edmonds-Karp, Dinic,
 *     DinicPruned, highest-label PushRelabel) cold over every
 *     captured problem, asserting each reports exactly the reference
 *     Edmonds-Karp flow value and min cut (source-side and sink-side
 *     min cuts are unique across max flows);
 *  3. replays warm-start chains — consecutive captures of the same
 *     (pair, reg) problem whose capacities drifted, plus synthetic
 *     retune sequences stressing MaxFlow::resolve's decrease-repair
 *     path — asserting every warm resolve is byte-identical to a
 *     from-scratch solve of the same capacitated network, and timing
 *     warm against cold;
 *  4. writes the numbers to BENCH_mincut.json; exit status is the
 *     identity gate (CI greps for "identical":true).
 *
 * Usage: micro_mincut [--reps N] [--out FILE]
 *        (defaults: 3 reps, ./BENCH_mincut.json)
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "coco/coco.hpp"
#include "driver/pass_manager.hpp"
#include "driver/stats.hpp"
#include "graph/max_flow.hpp"
#include "graph/multi_cut.hpp"
#include "obs/metrics.hpp"
#include "support/rng.hpp"
#include "workloads/workload.hpp"

using namespace gmt;

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

const char *
algoName(FlowAlgorithm a)
{
    switch (a) {
      case FlowAlgorithm::EdmondsKarp:
        return "ek";
      case FlowAlgorithm::Dinic:
        return "dinic";
      case FlowAlgorithm::DinicPruned:
        return "dinic_pruned";
      case FlowAlgorithm::PushRelabel:
        return "push_relabel";
    }
    return "?";
}

constexpr FlowAlgorithm kAlgos[] = {
    FlowAlgorithm::EdmondsKarp, FlowAlgorithm::Dinic,
    FlowAlgorithm::DinicPruned, FlowAlgorithm::PushRelabel};

/** Flow value + cut of one solved problem, the identity payload. */
struct Solution
{
    bool finite = true;
    Capacity value = 0;
    std::vector<int> cut;

    bool
    operator==(const Solution &o) const
    {
        return finite == o.finite && value == o.value && cut == o.cut;
    }
};

/** Solve one captured problem from scratch on @p work (rewound
 *  in-place, so repeated calls are allocation-free). */
Solution
solveCold(FlowNetwork &work, const CutProblemCapture::Entry &e,
          FlowAlgorithm algo, MaxFlow &mf)
{
    work.clearRemoved();
    work.restoreResiduals();
    Solution sol;
    if (e.is_mem) {
        MultiCutResult cut = multiPairMinCut(work, e.pairs, algo,
                                             CutSide::Sink, &mf);
        sol.finite = cut.finite;
        sol.value = cut.cost;
        sol.cut = std::move(cut.arcs);
    } else {
        mf.setAlgorithm(algo);
        mf.attach(work);
        sol.value = mf.solve(e.source, e.sink);
        sol.finite = mf.finite();
        sol.cut = mf.minCutArcs(CutSide::Source);
    }
    return sol;
}

/** A warm-start chain: a base register network plus a sequence of
 *  capacity-delta steps (natural drift between consecutive captures
 *  of one problem, or synthetic retunes). */
struct Chain
{
    FlowNetwork base{0};
    int source = -1, sink = -1;
    std::vector<std::vector<ArcDelta>> steps;
};

/** Replay one chain warm: cold head solve, then one resolve() per
 *  step. Appends each step's solution (head excluded) to @p out. */
void
replayWarm(const Chain &c, FlowNetwork &state, FlowAlgorithm algo,
           MaxFlow &mf, std::vector<Solution> *out)
{
    state = c.base;
    mf.setAlgorithm(algo);
    mf.attach(state);
    mf.solve(c.source, c.sink);
    for (const auto &deltas : c.steps) {
        Capacity value = mf.resolve(deltas);
        if (out) {
            Solution sol;
            sol.value = value;
            sol.finite = mf.finite();
            sol.cut = mf.minCutArcs(CutSide::Source);
            out->push_back(std::move(sol));
        }
    }
}

/** Replay one chain cold: every step's network solved from zero. */
void
replayCold(const Chain &c, FlowNetwork &state, FlowAlgorithm algo,
           MaxFlow &mf, std::vector<Solution> *out)
{
    state = c.base;
    mf.setAlgorithm(algo);
    mf.attach(state);
    mf.solve(c.source, c.sink);
    for (const auto &deltas : c.steps) {
        for (const ArcDelta &d : deltas)
            state.setArcCapacity(d.arc, d.remove ? 0 : d.cap);
        state.restoreResiduals();
        Capacity value = mf.solve(c.source, c.sink);
        if (out) {
            Solution sol;
            sol.value = value;
            sol.finite = mf.finite();
            sol.cut = mf.minCutArcs(CutSide::Source);
            out->push_back(std::move(sol));
        }
    }
}

/** Deltas turning @p from's capacities into @p to's (same topology). */
std::vector<ArcDelta>
diffCapacities(const FlowNetwork &from, const FlowNetwork &to)
{
    std::vector<ArcDelta> deltas;
    for (int a = 0; a < from.numArcs(); ++a) {
        if (from.arcCapacity(a) != to.arcCapacity(a))
            deltas.push_back({a, to.arcCapacity(a), false});
    }
    return deltas;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_mincut.json";
    int reps = 3;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
            reps = std::atoi(argv[++i]);
        } else {
            std::fprintf(stderr, "usage: %s [--reps N] [--out FILE]\n",
                         argv[0]);
            return 2;
        }
    }
    if (reps < 1)
        reps = 1;

    // ---- 1. Capture the real problem trace (not measured). ----
    MetricsRegistry &m = MetricsRegistry::global();
    uint64_t warm0 = m.counter("coco.warm_starts").value();
    uint64_t cold0 = m.counter("coco.cold_rebuilds").value();
    CutProblemCapture capture;
    for (const Workload &w : allWorkloads()) {
        for (Scheduler sched : {Scheduler::Gremio, Scheduler::Dswp}) {
            PipelineOptions po;
            po.scheduler = sched;
            po.use_coco = true;
            PipelineContext ctx(w, po);
            PassManager::codegenPipeline().run(ctx);
            CocoExec exec{nullptr, 1, nullptr, &capture};
            cocoOptimize(ctx.pdg->ir->func, ctx.pdg->pdg,
                         ctx.partition->partition, ctx.pdg->cd,
                         ctx.profile->profile, CocoOptions{}, exec);
        }
    }
    uint64_t coco_warm = m.counter("coco.warm_starts").value() - warm0;
    uint64_t coco_cold =
        m.counter("coco.cold_rebuilds").value() - cold0;
    const auto &entries = capture.entries;
    int reg_entries = 0, mem_entries = 0;
    for (const auto &e : entries)
        (e.is_mem ? mem_entries : reg_entries) += 1;
    if (entries.empty()) {
        std::fprintf(stderr, "micro_mincut: captured no problems\n");
        return 2;
    }

    // ---- 2. Cold sweep: all four algorithms over every problem. ----
    bool identical = true;
    auto mismatch = [&](const char *what, size_t idx) {
        identical = false;
        std::fprintf(stderr,
                     "micro_mincut: %s mismatch at problem %zu\n",
                     what, idx);
    };

    // Reference pass (Edmonds-Karp) + per-entry reusable copies.
    std::vector<FlowNetwork> work(entries.size(), FlowNetwork(0));
    std::vector<Solution> ref(entries.size());
    MaxFlow mf;
    for (size_t i = 0; i < entries.size(); ++i) {
        work[i] = entries[i].net;
        ref[i] = solveCold(work[i], entries[i],
                           FlowAlgorithm::EdmondsKarp, mf);
    }

    std::map<std::string, double> cold_ms;
    for (FlowAlgorithm algo : kAlgos) {
        // Verification pass (untimed): identity against the reference.
        for (size_t i = 0; i < entries.size(); ++i) {
            if (!(solveCold(work[i], entries[i], algo, mf) == ref[i]))
                mismatch(algoName(algo), i);
        }
        // Timed passes: solve only, best of --reps.
        double best = 0.0;
        for (int r = 0; r < reps; ++r) {
            auto t0 = Clock::now();
            for (size_t i = 0; i < entries.size(); ++i)
                solveCold(work[i], entries[i], algo, mf);
            double ms = msSince(t0);
            best = r == 0 ? ms : std::min(best, ms);
        }
        cold_ms[algoName(algo)] = best;
    }

    // ---- 3. Warm-start chains. ----
    // Natural chains: consecutive captures of the same register
    // problem with identical topology and drifted capacities.
    std::vector<Chain> chains;
    std::map<std::tuple<int, int, Reg>, size_t> last_of;
    for (size_t i = 0; i < entries.size(); ++i) {
        const auto &e = entries[i];
        if (e.is_mem)
            continue;
        auto key = std::make_tuple(e.ts, e.tt, e.r);
        auto it = last_of.find(key);
        if (it != last_of.end()) {
            const auto &prev = entries[it->second];
            if (prev.net.numNodes() == e.net.numNodes() &&
                prev.net.numArcs() == e.net.numArcs()) {
                Chain c;
                c.base = prev.net;
                c.source = e.source;
                c.sink = e.sink;
                c.steps.push_back(diffCapacities(prev.net, e.net));
                chains.push_back(std::move(c));
            }
        }
        last_of[key] = i;
    }
    size_t natural_chains = chains.size();

    // Synthetic chains: retune sequences over captured register
    // networks, stressing resolve()'s decrease-repair path (capacity
    // drops below carried flow force reroute + decomposition).
    {
        int made = 0;
        for (size_t i = 0; i < entries.size() && made < 24; ++i) {
            const auto &e = entries[i];
            if (e.is_mem || e.net.numArcs() < 8)
                continue;
            Rng rng(0x9e3779b9u + static_cast<uint64_t>(i));
            Chain c;
            c.base = e.net;
            c.source = e.source;
            c.sink = e.sink;
            FlowNetwork cur = e.net;
            for (int step = 0; step < 6; ++step) {
                std::vector<ArcDelta> deltas;
                int n_retunes =
                    1 + static_cast<int>(rng.nextBelow(
                            static_cast<uint64_t>(cur.numArcs() / 8 +
                                                  1)));
                for (int k = 0; k < n_retunes; ++k) {
                    int a = static_cast<int>(rng.nextBelow(
                        static_cast<uint64_t>(cur.numArcs())));
                    Capacity old = cur.arcCapacity(a);
                    if (old <= 0 || old >= kInfCapacity)
                        continue; // keep pinned/special arcs pinned
                    Capacity cap =
                        rng.nextBool(0.5)
                            ? static_cast<Capacity>(rng.nextBelow(
                                  static_cast<uint64_t>(old)))
                            : old + 1 +
                                  static_cast<Capacity>(
                                      rng.nextBelow(200));
                    cur.setArcCapacity(a, cap);
                    deltas.push_back({a, cap, false});
                }
                if (!deltas.empty())
                    c.steps.push_back(std::move(deltas));
            }
            if (!c.steps.empty()) {
                chains.push_back(std::move(c));
                ++made;
            }
        }
    }
    size_t chain_steps = 0;
    for (const auto &c : chains)
        chain_steps += c.steps.size();

    std::map<std::string, double> warm_ms, chain_cold_ms;
    FlowNetwork state(0);
    for (FlowAlgorithm algo : kAlgos) {
        // Verification pass: every warm step byte-equal to the cold
        // reference solve of the same capacitated network.
        for (size_t ci = 0; ci < chains.size(); ++ci) {
            std::vector<Solution> warm_sols, cold_sols;
            replayWarm(chains[ci], state, algo, mf, &warm_sols);
            replayCold(chains[ci], state, FlowAlgorithm::EdmondsKarp,
                       mf, &cold_sols);
            if (!(warm_sols == cold_sols))
                mismatch("warm-chain", ci);
        }
        double best_warm = 0.0, best_cold = 0.0;
        for (int r = 0; r < reps; ++r) {
            auto t0 = Clock::now();
            for (const Chain &c : chains)
                replayWarm(c, state, algo, mf, nullptr);
            double wm = msSince(t0);
            t0 = Clock::now();
            for (const Chain &c : chains)
                replayCold(c, state, algo, mf, nullptr);
            double cm = msSince(t0);
            best_warm = r == 0 ? wm : std::min(best_warm, wm);
            best_cold = r == 0 ? cm : std::min(best_cold, cm);
        }
        warm_ms[algoName(algo)] = best_warm;
        chain_cold_ms[algoName(algo)] = best_cold;
    }

    double warm_speedup =
        warm_ms["ek"] > 0.0 ? chain_cold_ms["ek"] / warm_ms["ek"] : 0.0;

    JsonObject o;
    o.str("bench", "mincut");
    o.boolean("identical", identical);
    o.num("problems", static_cast<int64_t>(entries.size()));
    o.num("reg_problems", static_cast<int64_t>(reg_entries));
    o.num("mem_problems", static_cast<int64_t>(mem_entries));
    o.num("coco_warm_starts", coco_warm);
    o.num("coco_cold_rebuilds", coco_cold);
    o.num("chains", static_cast<int64_t>(chains.size()));
    o.num("natural_chains", static_cast<int64_t>(natural_chains));
    o.num("chain_steps", static_cast<int64_t>(chain_steps));
    for (FlowAlgorithm algo : kAlgos)
        o.num(std::string("cold_ms_") + algoName(algo),
              cold_ms[algoName(algo)]);
    for (FlowAlgorithm algo : kAlgos) {
        o.num(std::string("warm_chain_ms_") + algoName(algo),
              warm_ms[algoName(algo)]);
        o.num(std::string("cold_chain_ms_") + algoName(algo),
              chain_cold_ms[algoName(algo)]);
    }
    o.num("warm_speedup_vs_cold_ek", warm_speedup);

    std::ofstream out(out_path);
    if (!out) {
        std::fprintf(stderr, "micro_mincut: cannot write %s\n",
                     out_path.c_str());
        return 2;
    }
    out << o.render() << "\n";
    std::cout << o.render() << "\n";
    return identical ? 0 : 1;
}
