/**
 * @file
 * Reproduces paper Figure 7: "Relative dynamic communication /
 * synchronization instructions after applying COCO" — per benchmark
 * and scheduler, COCO's dynamic communication as a percentage of the
 * original MTCG placement's (100% = unchanged), with the averages the
 * paper quotes (GREMIO -34.4%, DSWP -23.8%, ks+GREMIO -73.7%) and the
 * memory-synchronization removal for the benchmarks that have
 * inter-thread memory dependences (paper: >99% removed).
 */

#include <iostream>

#include "driver/pipeline.hpp"
#include "driver/report.hpp"
#include "support/table.hpp"
#include "workloads/workload.hpp"

using namespace gmt;

int
main()
{
    Table t("Figure 7: dynamic communication after COCO, relative to "
            "MTCG (100% = unchanged)");
    t.setHeader({"Benchmark", "GREMIO", "DSWP", "GREMIO mem syncs",
                 "DSWP mem syncs"});

    std::vector<double> gremio_rel, dswp_rel;
    for (const Workload &w : allWorkloads()) {
        std::vector<std::string> row{w.name};
        std::vector<std::string> mem_cols;
        for (Scheduler sched : {Scheduler::Gremio, Scheduler::Dswp}) {
            PipelineOptions base;
            base.scheduler = sched;
            base.use_coco = false;
            base.simulate = false;
            auto mtcg = runPipeline(w, base);

            PipelineOptions opt = base;
            opt.use_coco = true;
            auto coco = runPipeline(w, opt);

            double rel = 100.0 * relativeComm(coco, mtcg);
            (sched == Scheduler::Gremio ? gremio_rel : dswp_rel)
                .push_back(rel / 100.0);
            row.push_back(Table::fmt(rel, 1) + "%");

            if (mtcg.mem_sync > 0) {
                double removed =
                    100.0 *
                    (1.0 - static_cast<double>(coco.mem_sync) /
                               static_cast<double>(mtcg.mem_sync));
                mem_cols.push_back("-" + Table::fmt(removed, 1) + "%");
            } else {
                mem_cols.push_back("(none)");
            }
        }
        row.push_back(mem_cols[0]);
        row.push_back(mem_cols[1]);
        t.addRow(row);
    }
    t.addSeparator();
    t.addRow({"average",
              Table::fmt(100.0 * mean(gremio_rel), 1) + "%",
              Table::fmt(100.0 * mean(dswp_rel), 1) + "%", "", ""});
    t.print(std::cout);

    std::cout << "\nPaper reference: average 65.6% for GREMIO "
                 "(-34.4%), 76.2% for DSWP (-23.8%); best case ks + "
                 "GREMIO at 26.3% (-73.7%); >99% of memory "
                 "synchronizations removed where present; COCO never "
                 "increases communication.\n";
    return 0;
}
