/**
 * @file
 * Reproduces paper Figure 7: "Relative dynamic communication /
 * synchronization instructions after applying COCO" — per benchmark
 * and scheduler, COCO's dynamic communication as a percentage of the
 * original MTCG placement's (100% = unchanged), with the averages the
 * paper quotes (GREMIO -34.4%, DSWP -23.8%, ks+GREMIO -73.7%) and the
 * memory-synchronization removal for the benchmarks that have
 * inter-thread memory dependences (paper: >99% removed).
 *
 * Cells run through the parallel, artifact-cached experiment runner
 * (see --help for the shared bench flags, e.g. --stats fig7.jsonl).
 */

#include <iostream>

#include "driver/bench_harness.hpp"
#include "driver/report.hpp"
#include "support/table.hpp"
#include "workloads/workload.hpp"

using namespace gmt;

int
main(int argc, char **argv)
{
    BenchHarness harness(argc, argv);
    const auto workloads = harness.workloads();

    // Grid: per workload, (GREMIO, DSWP) x (MTCG, COCO). The COCO
    // cell shares every artifact through `partition` with its MTCG
    // sibling, so the cache computes those stages once.
    std::vector<ExperimentCell> cells;
    for (const Workload &w : workloads) {
        for (Scheduler sched : {Scheduler::Gremio, Scheduler::Dswp}) {
            for (bool coco : {false, true}) {
                PipelineOptions opts;
                opts.scheduler = sched;
                opts.use_coco = coco;
                opts.simulate = false;
                cells.push_back({w, opts});
            }
        }
    }
    const auto results = harness.runAll(cells);

    Table t("Figure 7: dynamic communication after COCO, relative to "
            "MTCG (100% = unchanged)");
    t.setHeader({"Benchmark", "GREMIO", "DSWP", "GREMIO mem syncs",
                 "DSWP mem syncs"});

    std::vector<double> gremio_rel, dswp_rel;
    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        std::vector<std::string> row{workloads[wi].name};
        std::vector<std::string> mem_cols;
        for (int si = 0; si < 2; ++si) {
            const PipelineResult &mtcg = results[wi * 4 + si * 2];
            const PipelineResult &coco = results[wi * 4 + si * 2 + 1];

            double rel = 100.0 * relativeComm(coco, mtcg);
            (si == 0 ? gremio_rel : dswp_rel).push_back(rel / 100.0);
            row.push_back(Table::fmt(rel, 1) + "%");

            if (mtcg.mem_sync > 0) {
                double removed =
                    100.0 *
                    (1.0 - static_cast<double>(coco.mem_sync) /
                               static_cast<double>(mtcg.mem_sync));
                mem_cols.push_back("-" + Table::fmt(removed, 1) + "%");
            } else {
                mem_cols.push_back("(none)");
            }
        }
        row.push_back(mem_cols[0]);
        row.push_back(mem_cols[1]);
        t.addRow(row);
    }
    t.addSeparator();
    t.addRow({"average",
              Table::fmt(100.0 * mean(gremio_rel), 1) + "%",
              Table::fmt(100.0 * mean(dswp_rel), 1) + "%", "", ""});
    t.print(std::cout);

    std::cout << "\nPaper reference: average 65.6% for GREMIO "
                 "(-34.4%), 76.2% for DSWP (-23.8%); best case ks + "
                 "GREMIO at 26.3% (-73.7%); >99% of memory "
                 "synchronizations removed where present; COCO never "
                 "increases communication.\n";
    return 0;
}
