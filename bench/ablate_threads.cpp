/**
 * @file
 * Ablation: thread-count scaling. The paper (§6) predicts COCO's
 * benefits grow with the number of threads, "as more threads are
 * created, the larger the number of inter-thread dependences to be
 * respected, and therefore the larger the fraction of communication
 * instructions". This sweep measures the MTCG communication fraction
 * and COCO's relative reduction for 2-4 threads under GREMIO (the
 * machine grows to one core per thread).
 */

#include <iostream>

#include "driver/bench_harness.hpp"
#include "driver/report.hpp"
#include "support/table.hpp"
#include "workloads/workload.hpp"

using namespace gmt;

int
main(int argc, char **argv)
{
    BenchHarness harness(argc, argv);
    const auto workloads = harness.workloads();

    std::vector<ExperimentCell> cells;
    for (const Workload &w : workloads) {
        for (int nt = 2; nt <= 4; ++nt) {
            PipelineOptions base;
            base.scheduler = Scheduler::Gremio;
            base.num_threads = nt;
            base.machine.num_cores = nt;
            base.use_coco = false;
            base.simulate = false;
            cells.push_back({w, base});

            PipelineOptions opt = base;
            opt.use_coco = true;
            cells.push_back({w, opt});
        }
    }
    const auto results = harness.runAll(cells);

    Table t("Ablation: GREMIO thread-count scaling "
            "(comm share under MTCG | relative comm after COCO)");
    t.setHeader({"Benchmark", "2T share", "2T COCO", "3T share",
                 "3T COCO", "4T share", "4T COCO"});
    std::vector<std::vector<double>> shares(3), rels(3);
    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        std::vector<std::string> row{workloads[wi].name};
        for (int nt = 2; nt <= 4; ++nt) {
            size_t at = wi * 6 + static_cast<size_t>(nt - 2) * 2;
            const PipelineResult &mtcg = results[at];
            const PipelineResult &coco = results[at + 1];

            double share =
                mtcg.total() ? 100.0 *
                                   static_cast<double>(
                                       mtcg.communication()) /
                                   static_cast<double>(mtcg.total())
                             : 0.0;
            double rel = 100.0 * relativeComm(coco, mtcg);
            shares[nt - 2].push_back(share);
            rels[nt - 2].push_back(rel);
            row.push_back(Table::fmt(share, 1) + "%");
            row.push_back(Table::fmt(rel, 1) + "%");
        }
        t.addRow(row);
    }
    t.addSeparator();
    t.addRow({"average", Table::fmt(mean(shares[0]), 1) + "%",
              Table::fmt(mean(rels[0]), 1) + "%",
              Table::fmt(mean(shares[1]), 1) + "%",
              Table::fmt(mean(rels[1]), 1) + "%",
              Table::fmt(mean(shares[2]), 1) + "%",
              Table::fmt(mean(rels[2]), 1) + "%"});
    t.print(std::cout);
    std::cout << "\nPaper section 6 predicts the communication share "
                 "grows with the thread count, giving COCO more to "
                 "remove.\n";
    return 0;
}
