/**
 * @file
 * Reproduces paper Figure 6(b): the selected benchmark functions and
 * their share of benchmark execution, plus the size of each kernel's
 * IR in this reproduction. Takes the shared bench flags (--only
 * filters the rows; the run flags are accepted for uniformity).
 */

#include <iostream>

#include "driver/bench_harness.hpp"
#include "support/table.hpp"
#include "workloads/workload.hpp"

using namespace gmt;

int
main(int argc, char **argv)
{
    BenchHarness harness(argc, argv);

    Table t("Figure 6(b): selected benchmark functions");
    t.setHeader({"Benchmark", "Function", "Exec. %", "IR blocks",
                 "IR instrs"});
    for (const Workload &w : harness.workloads()) {
        t.addRow({w.name, w.function_name,
                  std::to_string(w.exec_percent),
                  std::to_string(w.func.numBlocks()),
                  std::to_string(w.func.numInstrs())});
    }
    t.print(std::cout);
    return 0;
}
