/**
 * @file
 * Ablation: COCO's control-flow penalties (paper §3.1.2) on vs off.
 * Penalties steer equal-cost min-cuts away from placements that force
 * extra branches to become relevant to the target thread; turning
 * them off exposes how much replicated control flow they avoid.
 */

#include <iostream>

#include "driver/pipeline.hpp"
#include "driver/report.hpp"
#include "support/table.hpp"
#include "workloads/workload.hpp"

using namespace gmt;

int
main()
{
    Table t("Ablation: control-flow penalties in COCO's min-cut "
            "(GREMIO partitions)");
    t.setHeader({"Benchmark", "Comm (pen on)", "Comm (pen off)",
                 "ReplBr (pen on)", "ReplBr (pen off)"});
    uint64_t extra_branches_off = 0, extra_branches_on = 0;
    for (const Workload &w : allWorkloads()) {
        PipelineOptions on;
        on.scheduler = Scheduler::Gremio;
        on.use_coco = true;
        on.simulate = false;
        on.coco.control_flow_penalties = true;
        auto with_pen = runPipeline(w, on);

        PipelineOptions off = on;
        off.coco.control_flow_penalties = false;
        auto without = runPipeline(w, off);

        extra_branches_on += with_pen.duplicated_branches;
        extra_branches_off += without.duplicated_branches;
        t.addRow({w.name, std::to_string(with_pen.communication()),
                  std::to_string(without.communication()),
                  std::to_string(with_pen.duplicated_branches),
                  std::to_string(without.duplicated_branches)});
    }
    t.addSeparator();
    t.addRow({"total", "", "", std::to_string(extra_branches_on),
              std::to_string(extra_branches_off)});
    t.print(std::cout);
    std::cout << "\nPenalties may not change every benchmark: they "
                 "only matter when several min-cuts tie and one of "
                 "them would drag a branch into the target thread "
                 "(paper Figure 5).\n";
    return 0;
}
