/**
 * @file
 * Ablation: COCO's control-flow penalties (paper §3.1.2) on vs off.
 * Penalties steer equal-cost min-cuts away from placements that force
 * extra branches to become relevant to the target thread; turning
 * them off exposes how much replicated control flow they avoid.
 */

#include <iostream>

#include "driver/bench_harness.hpp"
#include "support/table.hpp"
#include "workloads/workload.hpp"

using namespace gmt;

int
main(int argc, char **argv)
{
    BenchHarness harness(argc, argv);
    const auto workloads = harness.workloads();

    std::vector<ExperimentCell> cells;
    for (const Workload &w : workloads) {
        PipelineOptions on;
        on.scheduler = Scheduler::Gremio;
        on.use_coco = true;
        on.simulate = false;
        on.coco.control_flow_penalties = true;
        cells.push_back({w, on});

        PipelineOptions off = on;
        off.coco.control_flow_penalties = false;
        cells.push_back({w, off});
    }
    const auto results = harness.runAll(cells);

    Table t("Ablation: control-flow penalties in COCO's min-cut "
            "(GREMIO partitions)");
    t.setHeader({"Benchmark", "Comm (pen on)", "Comm (pen off)",
                 "ReplBr (pen on)", "ReplBr (pen off)"});
    uint64_t extra_branches_off = 0, extra_branches_on = 0;
    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        const PipelineResult &with_pen = results[wi * 2];
        const PipelineResult &without = results[wi * 2 + 1];
        extra_branches_on += with_pen.duplicated_branches;
        extra_branches_off += without.duplicated_branches;
        t.addRow({workloads[wi].name,
                  std::to_string(with_pen.communication()),
                  std::to_string(without.communication()),
                  std::to_string(with_pen.duplicated_branches),
                  std::to_string(without.duplicated_branches)});
    }
    t.addSeparator();
    t.addRow({"total", "", "", std::to_string(extra_branches_on),
              std::to_string(extra_branches_off)});
    t.print(std::cout);
    std::cout << "\nPenalties may not change every benchmark: they "
                 "only matter when several min-cuts tie and one of "
                 "them would drag a branch into the target thread "
                 "(paper Figure 5).\n";
    return 0;
}
