#ifndef GMT_PDG_PDG_HPP
#define GMT_PDG_PDG_HPP

/**
 * @file
 * The Program Dependence Graph [5]: instruction-granularity nodes with
 * register (flow), memory, and control dependence arcs. "The PDG
 * contains all the dependences that need to be honored in order to
 * preserve the semantics of the original program" — every GMT
 * partitioner runs on it, and MTCG/COCO communicate exactly its
 * inter-thread arcs (paper Property 1).
 */

#include <vector>

#include "analysis/mem_dep.hpp"
#include "graph/digraph.hpp"
#include "ir/function.hpp"

namespace gmt
{

/** Kind of a PDG arc. */
enum class DepKind { Register, Memory, Control };

/** One dependence arc. */
struct PdgArc
{
    InstrId src = kNoInstr;
    InstrId dst = kNoInstr;
    DepKind kind = DepKind::Register;

    /** The register carried, for DepKind::Register. */
    Reg reg = kNoReg;

    /** Flow/anti/output, for DepKind::Memory. */
    MemDepKind mem_kind = MemDepKind::Flow;
};

/** Program dependence graph of one function. */
class Pdg
{
  public:
    explicit Pdg(const Function &f);

    const Function &func() const { return *func_; }

    int numArcs() const { return static_cast<int>(arcs_.size()); }
    const PdgArc &arc(int a) const { return arcs_[a]; }
    const std::vector<PdgArc> &arcs() const { return arcs_; }

    /** Arc indices leaving / entering an instruction. */
    const std::vector<int> &arcsFrom(InstrId i) const { return from_[i]; }
    const std::vector<int> &arcsTo(InstrId i) const { return to_[i]; }

    /** Add an arc (deduplicated on (src, dst, kind, reg)). */
    void addArc(PdgArc arc);

    /** The memory arcs, in arc order (the happens-before engine and
     *  COCO's per-pair enumeration both iterate exactly these). */
    std::vector<const PdgArc *> memArcs() const;

    /**
     * View as a plain digraph over InstrIds (for SCC/condensation in
     * the partitioners).
     */
    Digraph asDigraph() const;

  private:
    const Function *func_;
    std::vector<PdgArc> arcs_;
    std::vector<std::vector<int>> from_, to_;
};

} // namespace gmt

#endif // GMT_PDG_PDG_HPP
