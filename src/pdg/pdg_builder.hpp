#ifndef GMT_PDG_PDG_BUILDER_HPP
#define GMT_PDG_PDG_BUILDER_HPP

/**
 * @file
 * PDG construction: register flow arcs via reaching definitions,
 * memory arcs via the alias-class analysis, and control arcs via the
 * control-dependence relation (branch instruction -> every instruction
 * of each block it controls).
 *
 * Transitive control dependences (paper §2.1, Figure 3's D -> F) are
 * partition-dependent; they are realized later as "relevant branches"
 * by MTCG/COCO rather than materialized as PDG arcs.
 */

#include "pdg/pdg.hpp"

namespace gmt
{

/** Build the full PDG of @p f. */
Pdg buildPdg(const Function &f);

} // namespace gmt

#endif // GMT_PDG_PDG_BUILDER_HPP
