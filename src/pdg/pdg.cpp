#include "pdg/pdg.hpp"

#include "support/error.hpp"

namespace gmt
{

Pdg::Pdg(const Function &f) : func_(&f)
{
    from_.resize(f.numInstrs());
    to_.resize(f.numInstrs());
}

void
Pdg::addArc(PdgArc arc)
{
    GMT_ASSERT(arc.src != kNoInstr && arc.dst != kNoInstr);
    for (int a : from_[arc.src]) {
        const PdgArc &e = arcs_[a];
        if (e.dst == arc.dst && e.kind == arc.kind && e.reg == arc.reg)
            return; // duplicate
    }
    int id = static_cast<int>(arcs_.size());
    arcs_.push_back(arc);
    from_[arc.src].push_back(id);
    to_[arc.dst].push_back(id);
}

std::vector<const PdgArc *>
Pdg::memArcs() const
{
    std::vector<const PdgArc *> mem;
    for (const PdgArc &arc : arcs_)
        if (arc.kind == DepKind::Memory)
            mem.push_back(&arc);
    return mem;
}

Digraph
Pdg::asDigraph() const
{
    Digraph g(func_->numInstrs());
    for (const auto &arc : arcs_)
        g.addEdge(arc.src, arc.dst);
    return g;
}

} // namespace gmt
