#include "pdg/pdg_builder.hpp"

#include <vector>

#include "analysis/control_dep.hpp"
#include "analysis/dominators.hpp"
#include "analysis/mem_dep.hpp"
#include "support/bit_vector.hpp"
#include "support/error.hpp"

namespace gmt
{

namespace
{

/** Register flow arcs via iterative reaching definitions. */
void
addRegisterArcs(const Function &f, Pdg &pdg)
{
    // Enumerate definition sites.
    std::vector<InstrId> def_sites;
    std::vector<int> site_of(f.numInstrs(), -1);
    for (InstrId i = 0; i < f.numInstrs(); ++i) {
        if (f.defOf(i) != kNoReg) {
            site_of[i] = static_cast<int>(def_sites.size());
            def_sites.push_back(i);
        }
    }
    const int nd = static_cast<int>(def_sites.size());
    const int nb = f.numBlocks();

    // Per-register site lists, for KILL sets.
    std::vector<std::vector<int>> sites_of_reg(f.numRegs());
    for (int s = 0; s < nd; ++s)
        sites_of_reg[f.defOf(def_sites[s])].push_back(s);

    // Block-level GEN/KILL.
    std::vector<BitVector> gen(nb, BitVector(nd));
    std::vector<BitVector> kill(nb, BitVector(nd));
    for (BlockId b = 0; b < nb; ++b) {
        for (InstrId i : f.block(b).instrs()) {
            Reg def = f.defOf(i);
            if (def == kNoReg)
                continue;
            for (int s : sites_of_reg[def]) {
                gen[b].reset(s);
                kill[b].set(s);
            }
            gen[b].set(site_of[i]);
        }
    }

    // Forward union fixpoint.
    std::vector<BitVector> in(nb, BitVector(nd));
    std::vector<BitVector> out(nb, BitVector(nd));
    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId b = 0; b < nb; ++b) {
            BitVector new_in(nd);
            for (BlockId p : f.block(b).preds())
                new_in.unionWith(out[p]);
            BitVector new_out = new_in;
            new_out.subtract(kill[b]);
            new_out.unionWith(gen[b]);
            if (!(new_in == in[b])) {
                in[b] = std::move(new_in);
                changed = true;
            }
            if (!(new_out == out[b])) {
                out[b] = std::move(new_out);
                changed = true;
            }
        }
    }

    // Attach def -> use arcs by walking each block.
    for (BlockId b = 0; b < nb; ++b) {
        BitVector reaching = in[b];
        for (InstrId i : f.block(b).instrs()) {
            for (Reg use : f.usesOf(i)) {
                reaching.forEach([&](size_t s) {
                    InstrId def_instr = def_sites[s];
                    if (f.defOf(def_instr) == use) {
                        pdg.addArc({def_instr, i, DepKind::Register, use,
                                    MemDepKind::Flow});
                    }
                });
            }
            Reg def = f.defOf(i);
            if (def != kNoReg) {
                for (int s : sites_of_reg[def])
                    reaching.reset(s);
                reaching.set(site_of[i]);
            }
        }
    }
}

void
addMemoryArcs(const Function &f, Pdg &pdg)
{
    for (const MemDep &dep : computeMemDeps(f)) {
        pdg.addArc({dep.src, dep.dst, DepKind::Memory, kNoReg,
                    dep.kind});
    }
}

void
addControlArcs(const Function &f, Pdg &pdg)
{
    auto pdom = DominatorTree::postDominators(f);
    ControlDependence cd(f, pdom);
    for (BlockId a = 0; a < f.numBlocks(); ++a) {
        const BasicBlock &bb = f.block(a);
        if (bb.succs().size() < 2)
            continue;
        InstrId branch = bb.terminator();
        GMT_ASSERT(f.instr(branch).isBranch());
        for (BlockId c : cd.controlledBy(a)) {
            for (InstrId i : f.block(c).instrs()) {
                if (i != branch) {
                    pdg.addArc({branch, i, DepKind::Control, kNoReg,
                                MemDepKind::Flow});
                }
            }
        }
    }
}

} // namespace

Pdg
buildPdg(const Function &f)
{
    Pdg pdg(f);
    addRegisterArcs(f, pdg);
    addMemoryArcs(f, pdg);
    addControlArcs(f, pdg);
    return pdg;
}

} // namespace gmt
