#ifndef GMT_AUTOTUNE_AUTOTUNE_HPP
#define GMT_AUTOTUNE_AUTOTUNE_HPP

/**
 * @file
 * Feedback-directed re-partitioning: close the profile -> schedule
 * loop. The autotuner takes one cell's schedule plus the simulator's
 * StallReport and iterates partition -> COCO -> simulate -> profile,
 * folding each round's stall attribution back into the next round's
 * scheduling decisions:
 *
 *  - stall-charged blocks bias DSWP's stage fills and GREMIO's
 *    busy/work scoring (PartitionFeedback::block_boost),
 *  - stall-charged queues raise the communication weight of the PDG
 *    arcs they carry (PartitionFeedback::arc_boost) and the cut cost
 *    of the blocks holding their placement points (a stall-boosted
 *    EdgeProfile re-cut through COCO, warm-started from the previous
 *    round's retained residuals via CocoArenaCache),
 *  - boundary instructions (PDG SCCs) on the costliest queues are
 *    candidates to migrate between the pair's threads.
 *
 * Every candidate schedule is statically verified (mtverify, HB
 * included) and timing-simulated; the strictly best improvement at or
 * above the relative epsilon is accepted (simulated cycles are
 * monotone non-increasing by construction), and the loop stops when
 * no candidate qualifies or the iteration cap is hit. Candidate
 * generation and acceptance read only deterministic inputs and break
 * ties in canonical candidate order, so the tuned schedule, the move
 * log, and the trajectory are byte-identical at any job count, cache
 * state, and warm/cold max-flow setting.
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/control_dep.hpp"
#include "analysis/edge_profile.hpp"
#include "coco/coco.hpp"
#include "mtcg/comm_plan.hpp"
#include "obs/provenance.hpp"
#include "partition/partition.hpp"
#include "pdg/pdg.hpp"
#include "runtime/mt_interpreter.hpp"
#include "sim/cmp_simulator.hpp"
#include "sim/machine_config.hpp"

namespace gmt
{

class ThreadPool;

/** One complete schedule the loop holds or proposes. */
struct AutotuneSchedule
{
    ThreadPartition partition;
    CommPlan plan;
    int plan_coco_iterations = 0;
    MtProgram prog;
    std::vector<int> queue_of;
    uint64_t cycles = 0;
};

/** Autotuner knobs (result axes; keyed by the driver). */
struct AutotuneOptions
{
    /** Hard cap on feedback iterations. */
    int max_iterations = 8;

    /**
     * Convergence gate: a candidate is accepted only when it improves
     * simulated cycles by at least this relative fraction; otherwise
     * the loop has converged.
     */
    double min_rel_improvement = 1e-4;

    /** Stall-ranked queues considered for boundary migration. */
    int migrate_top_queues = 3;

    /** Cap on migration candidates per iteration. */
    int migrate_max_candidates = 8;

    /**
     * Execution-only test hook (never part of a cache key): called
     * with every accepted intermediate schedule, in acceptance order.
     */
    std::function<void(const AutotuneSchedule &)> on_accept;
};

/** Provenance of one considered move (accepted or rejected). */
struct AutotuneMove
{
    int iteration = 0;      ///< 1-based feedback round
    std::string kind;       ///< "recut" | "reweight" | "migrate"
    std::string detail;     ///< human-readable stall evidence
    int queue = -1;         ///< evidencing queue (migrate; else -1)
    uint64_t stall_cycles = 0; ///< evidence magnitude (cycles)
    int moved_instrs = 0;   ///< instructions whose thread changed
    uint64_t cycles = 0;    ///< simulated cycles (0 = not simulated)
    bool accepted = false;
    std::string rejected_because; ///< empty when accepted

    bool operator==(const AutotuneMove &) const = default;
};

/** Everything the loop produced. */
struct AutotuneResult
{
    AutotuneSchedule final_schedule;

    uint64_t baseline_cycles = 0;
    int iterations = 0; ///< feedback rounds executed
    int moves_accepted = 0;
    int moves_rejected = 0;

    /** Warm-started cut solves across arena-cached re-cut rounds. */
    uint64_t warm_cut_reuses = 0;

    /** Loop stopped because no candidate qualified (not the cap). */
    bool converged = false;

    /** Every considered move, in consideration order. */
    std::vector<AutotuneMove> moves;

    /** Simulated cycles: baseline, then after each accepted move. */
    std::vector<uint64_t> trajectory;

    /**
     * Block boost under which the final plan's cuts were solved
     * (empty = the base profile). Needed to re-derive placement
     * provenance for the tuned schedule.
     */
    std::vector<uint64_t> final_block_boost;

    // Dynamic instruction counts of the final schedule's MT run
    // (oracle already passed against the ST reference).
    uint64_t computation = 0;
    uint64_t duplicated_branches = 0;
    uint64_t reg_comm = 0;
    uint64_t mem_sync = 0;

    /** Execution-only: wall time of each feedback round; round 0 is
     *  cold (baseline profiling + cold cut solves), later rounds
     *  reuse retained residuals and skip duplicate candidates. */
    std::vector<double> iter_wall_ms;
};

/** Environment one autotune run needs (all pointers non-owning). */
struct AutotuneInputs
{
    const Function *f = nullptr;
    const Pdg *pdg = nullptr;
    const ControlDependence *cd = nullptr;
    const EdgeProfile *profile = nullptr;

    /** Partitioner for reweight candidates: GREMIO (else DSWP). */
    bool gremio = false;
    int num_threads = 2;

    bool use_coco = false;
    CocoOptions coco;

    /** Resolved per-queue capacity (driver default already applied). */
    int queue_capacity = 32;
    int max_queues = 0;

    MachineConfig machine;
    SimEngine engine = SimEngine::Fast;

    /** Reference input + single-threaded truth (equivalence oracle). */
    const std::vector<int64_t> *ref_args = nullptr;
    std::function<MemoryImage()> make_memory;
    const std::vector<int64_t> *st_live_outs = nullptr;
    const MemoryImage *st_final_mem = nullptr;

    /** Shared worker pool for COCO's cut solver (may be null). */
    ThreadPool *pool = nullptr;
    int coco_jobs = 1;
};

/**
 * Run the feedback loop starting from @p baseline (the standard
 * pipeline's schedule and its simulated cycles). Also bumps the
 * autotune.* metrics counters.
 */
AutotuneResult autotuneSchedule(const AutotuneInputs &in,
                                const AutotuneSchedule &baseline,
                                const AutotuneOptions &opts = {});

/**
 * Canonical JSON of the move log + trajectory (schema:1, fixed key
 * order, no execution-only fields) — the byte representation the
 * determinism tests compare and gmt-explain prints.
 */
std::string autotuneMovesJson(const AutotuneResult &r);

/**
 * Build the full decision-provenance record of the tuned schedule:
 * partition units synthesized from the tuned assignment's PDG SCCs,
 * placement decisions re-derived by an instrumented serial COCO run
 * under the final boost (asserted equal to the final plan), queue
 * decisions from the allocator. @p cell names the record
 * ("workload/SCHED[+COCO]+AT").
 */
Provenance autotuneProvenance(const AutotuneInputs &in,
                              const AutotuneResult &r,
                              const std::string &cell,
                              const std::string &workload,
                              const std::string &scheduler);

} // namespace gmt

#endif // GMT_AUTOTUNE_AUTOTUNE_HPP
