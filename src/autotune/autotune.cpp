#include "autotune/autotune.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

#include "coco/validate.hpp"
#include "graph/scc.hpp"
#include "mtcg/mtcg.hpp"
#include "mtcg/queue_alloc.hpp"
#include "mtverify/mtverify.hpp"
#include "obs/metrics.hpp"
#include "obs/stall_profile.hpp"
#include "obs/stall_report.hpp"
#include "partition/dswp.hpp"
#include "partition/gremio.hpp"
#include "sim/decoded_program.hpp"
#include "support/error.hpp"

namespace gmt
{

namespace
{

/** Internal working state: the public schedule plus its decoded form
 *  (kept so the accepted schedule is decoded once, then reused by the
 *  next round's instrumented profile run). */
struct Working
{
    AutotuneSchedule s;
    DecodedProgram decoded;
    bool has_decoded = false;
};

/** Stall evidence of one feedback round, all additive cycle charges. */
struct Feedback
{
    /** Block stall charges (BlockAttribution), for the partitioners. */
    std::vector<uint64_t> block_boost;

    /** Queue stalls mapped to the PDG arcs each queue carries. */
    std::vector<uint64_t> arc_boost;

    /** block_boost plus queue stalls charged to the blocks holding
     *  the stalled queue's current placement points — the cut costs
     *  a re-cut solves under (pushes min cuts away from both
     *  stall-charged blocks and stalled points). */
    std::vector<uint64_t> cut_boost;
};

/** A proposed schedule change, before code generation. */
struct Candidate
{
    std::string kind; ///< "recut" | "reweight" | "migrate"
    std::string detail;
    int queue = -1;
    uint64_t stall = 0;
    ThreadPartition partition;
    CommPlan plan;
    int plan_iters = 0;
};

/** PDG arcs matching one queue placement descriptor under @p part. */
bool
arcMatchesPlacement(const PdgArc &arc, const PlacementDesc &pd,
                    const ThreadPartition &part)
{
    if (part.threadOf(arc.src) != pd.src_thread ||
        part.threadOf(arc.dst) != pd.dst_thread)
        return false;
    if (pd.kind == CommKind::RegisterData)
        return arc.kind == DepKind::Register && arc.reg == pd.reg;
    return arc.kind == DepKind::Memory;
}

Feedback
deriveFeedback(const AutotuneInputs &in, const AutotuneSchedule &cur,
               const StallReport &report)
{
    const Function &f = *in.f;
    Feedback fb;
    fb.block_boost.assign(static_cast<size_t>(f.numBlocks()), 0);
    fb.arc_boost.assign(
        static_cast<size_t>(in.pdg->numArcs()), 0);

    for (const BlockAttribution &b : report.blocks)
        if (b.block >= 0 && b.block < f.numBlocks())
            fb.block_boost[static_cast<size_t>(b.block)] +=
                b.prof.total();

    fb.cut_boost = fb.block_boost;
    const auto &arcs = in.pdg->arcs();
    for (const QueueAttribution &q : report.queues) {
        uint64_t stall = q.prof.stallCycles();
        if (stall == 0)
            continue;
        for (const PlacementDesc &pd : q.placements) {
            for (size_t a = 0; a < arcs.size(); ++a)
                if (arcMatchesPlacement(arcs[a], pd, cur.partition))
                    fb.arc_boost[a] += stall;
            // Charge the stalled queue's current placement points:
            // the re-cut then prefers moving them elsewhere.
            if (pd.placement >= 0 &&
                pd.placement <
                    static_cast<int>(cur.plan.placements.size())) {
                const CommPlacement &pl =
                    cur.plan.placements[static_cast<size_t>(
                        pd.placement)];
                // Each distinct block once per (queue, placement).
                std::vector<BlockId> seen;
                for (const ProgramPoint &pt : pl.points) {
                    if (std::find(seen.begin(), seen.end(),
                                  pt.block) != seen.end())
                        continue;
                    seen.push_back(pt.block);
                    fb.cut_boost[static_cast<size_t>(pt.block)] +=
                        stall;
                }
            }
        }
    }
    return fb;
}

/** Profile-weighted dynamic cycles of the stalled queues, rendered
 *  deterministically for move details. */
std::string
u64(uint64_t v)
{
    return std::to_string(v);
}

ThreadPartition
repartition(const AutotuneInputs &in, const PartitionFeedback &fb)
{
    if (in.gremio) {
        GremioOptions o;
        o.num_threads = in.num_threads;
        o.feedback = &fb;
        return gremioPartition(*in.pdg, *in.profile, o);
    }
    DswpOptions o;
    o.num_threads = in.num_threads;
    o.feedback = &fb;
    return dswpPartition(*in.pdg, *in.profile, o);
}

/** COCO (or default MTCG) plan for a candidate partition. */
bool
planFor(const AutotuneInputs &in, const ThreadPartition &part,
        const EdgeProfile &profile, CocoArenaCache *cache,
        uint64_t *warm_reuses, CommPlan &plan, int &iters,
        std::string &reject)
{
    if (!in.use_coco) {
        plan = defaultMtcgPlan(*in.f, *in.pdg, part, *in.cd);
        iters = 0;
    } else {
        CocoExec exec;
        exec.pool = in.pool;
        exec.jobs = in.coco_jobs;
        exec.arena_cache = cache;
        CocoResult res = cocoOptimize(*in.f, *in.pdg, part, *in.cd,
                                      profile, in.coco, exec);
        if (cache != nullptr && warm_reuses != nullptr)
            *warm_reuses += res.warm_starts;
        plan = std::move(res.plan);
        iters = res.iterations;
    }
    auto problems = validatePlan(*in.f, *in.pdg, part, *in.cd, plan);
    if (!problems.empty()) {
        reject = "invalid-plan";
        return false;
    }
    return true;
}

/** Generate this round's candidates, canonical order: recut, then
 *  reweight, then migrations by stall rank. */
std::vector<Candidate>
generateCandidates(const AutotuneInputs &in, const Working &cur,
                   const StallReport &report, const Feedback &fb,
                   const SccResult &sccs,
                   CocoArenaCache &arena_cache, uint64_t &warm_reuses,
                   std::vector<std::vector<int>> &tried_partitions,
                   const AutotuneOptions &opts,
                   std::vector<AutotuneMove> &invalid_moves,
                   int iteration)
{
    std::vector<Candidate> out;
    uint64_t total_stall = report.totalStallCycles();

    auto boosted = [&](const std::vector<uint64_t> &boost) {
        return in.profile->withBlockBoost(boost);
    };

    // Reweight/migrate candidates always plan under the base profile,
    // so a partition we already planned once would reproduce the same
    // plan — skip it before paying for the cut solve and the
    // simulation. (Re-cuts plan under this round's stall boost and
    // are never skipped this way.) This is the bulk of the warm-round
    // saving: steady-state rounds regenerate mostly-seen partitions.
    auto seen_partition = [&](const std::vector<int> &assign) {
        return std::find(tried_partitions.begin(),
                         tried_partitions.end(),
                         assign) != tried_partitions.end();
    };

    // 1. Re-cut: same partition, stall-boosted cut costs, re-solved
    //    through the retained arenas (MaxFlow::resolve warm starts
    //    keyed on the stall-weight deltas).
    if (in.use_coco) {
        Candidate c;
        c.kind = "recut";
        c.detail = "stall-boosted re-cut (total stall " +
                   u64(total_stall) + ")";
        c.stall = total_stall;
        c.partition = cur.s.partition;
        EdgeProfile prof = boosted(fb.cut_boost);
        std::string reject;
        if (planFor(in, c.partition, prof, &arena_cache, &warm_reuses,
                    c.plan, c.plan_iters, reject)) {
            out.push_back(std::move(c));
        } else {
            AutotuneMove m;
            m.iteration = iteration;
            m.kind = c.kind;
            m.detail = c.detail;
            m.stall_cycles = c.stall;
            m.rejected_because = reject;
            invalid_moves.push_back(std::move(m));
        }
    }

    // 2. Re-weight: feed the boosts to the partitioner, then re-place
    //    from scratch (the partition changed, so no retained arenas).
    {
        PartitionFeedback pf{fb.block_boost, fb.arc_boost};
        Candidate c;
        c.kind = "reweight";
        c.detail = "feedback re-partition (total stall " +
                   u64(total_stall) + ")";
        c.stall = total_stall;
        c.partition = repartition(in, pf);
        auto problems = validatePartition(*in.pdg, c.partition,
                                          /*require_pipeline=*/!in.gremio);
        std::string reject;
        if (!problems.empty()) {
            reject = "invalid-partition";
        } else if (c.partition.assign == cur.s.partition.assign) {
            reject = "no-change";
        } else if (seen_partition(c.partition.assign)) {
            reject = "duplicate";
        } else {
            tried_partitions.push_back(c.partition.assign);
            if (planFor(in, c.partition, *in.profile, nullptr, nullptr,
                        c.plan, c.plan_iters, reject))
                out.push_back(std::move(c));
        }
        if (!reject.empty()) {
            AutotuneMove m;
            m.iteration = iteration;
            m.kind = "reweight";
            m.detail = c.detail;
            m.stall_cycles = c.stall;
            m.rejected_because = reject;
            invalid_moves.push_back(std::move(m));
        }
    }

    // 3. Migrations: boundary units (PDG SCCs) on the costliest
    //    queues move between the pair's threads. report.queues is
    //    already sorted by stall descending with deterministic ties.
    // Only queues whose stall evidence is worth acting on seed
    // migrations. Every round requires the queue's charged stall to
    // clear the epsilon acceptance threshold (weaker evidence cannot
    // justify a move that would be accepted anyway). Rounds after the
    // first additionally require a material share of the round's
    // total stall: once an accepted move drains the dominant queues,
    // the residue flattens across many small queues, and simulating a
    // migration for each of them is what would make steady-state
    // rounds as expensive as the cold first round. The first round
    // keeps the widest net — it sees the baseline's concentrated
    // stalls and is where most accepts happen.
    const uint64_t min_gain = std::max<uint64_t>(
        1, static_cast<uint64_t>(std::ceil(
               static_cast<double>(cur.s.cycles) *
               opts.min_rel_improvement)));
    const uint64_t min_queue_stall =
        iteration == 1 ? min_gain
                       : std::max(min_gain, (total_stall + 9) / 10);
    int queues_used = 0;
    std::vector<std::pair<int, int>> tried_moves; // (unit, to)
    int migrations = 0;
    for (const QueueAttribution &q : report.queues) {
        if (queues_used >= opts.migrate_top_queues ||
            migrations >= opts.migrate_max_candidates)
            break;
        uint64_t stall = q.prof.stallCycles();
        if (stall < min_queue_stall)
            break;
        ++queues_used;
        const auto &arcs = in.pdg->arcs();
        for (const PlacementDesc &pd : q.placements) {
            for (size_t a = 0; a < arcs.size(); ++a) {
                if (!arcMatchesPlacement(arcs[a], pd, cur.s.partition))
                    continue;
                const std::pair<int, int> ends[2] = {
                    {sccs.component[arcs[a].src], pd.dst_thread},
                    {sccs.component[arcs[a].dst], pd.src_thread}};
                for (const auto &[unit, to] : ends) {
                    if (migrations >= opts.migrate_max_candidates)
                        break;
                    if (std::find(tried_moves.begin(),
                                  tried_moves.end(),
                                  std::make_pair(unit, to)) !=
                        tried_moves.end())
                        continue;
                    tried_moves.emplace_back(unit, to);

                    ThreadPartition p = cur.s.partition;
                    for (NodeId i :
                         sccs.members[static_cast<size_t>(unit)])
                        p.assign[i] = to;
                    if (p.assign == cur.s.partition.assign)
                        continue;

                    Candidate c;
                    c.kind = "migrate";
                    c.detail = "unit " + std::to_string(unit) +
                               " -> thread " + std::to_string(to) +
                               " (queue " + std::to_string(q.queue) +
                               " stall " + u64(stall) + ")";
                    c.queue = q.queue;
                    c.stall = stall;
                    c.partition = std::move(p);
                    ++migrations;

                    std::string reject;
                    if (seen_partition(c.partition.assign))
                        reject = "duplicate";
                    auto problems =
                        reject.empty()
                            ? validatePartition(
                                  *in.pdg, c.partition,
                                  /*require_pipeline=*/!in.gremio)
                            : std::vector<std::string>{};
                    if (!problems.empty()) {
                        reject = "invalid-partition";
                    } else if (reject.empty()) {
                        // An emptied thread produces a degenerate
                        // program; never propose one.
                        std::vector<int> count(
                            static_cast<size_t>(
                                c.partition.num_threads),
                            0);
                        for (int t : c.partition.assign)
                            ++count[static_cast<size_t>(t)];
                        for (int n : count)
                            if (n == 0)
                                reject = "empties-thread";
                    }
                    if (reject.empty()) {
                        tried_partitions.push_back(c.partition.assign);
                        if (planFor(in, c.partition, *in.profile,
                                    nullptr, nullptr, c.plan,
                                    c.plan_iters, reject))
                            out.push_back(std::move(c));
                    }
                    if (!reject.empty()) {
                        AutotuneMove m;
                        m.iteration = iteration;
                        m.kind = "migrate";
                        m.detail = c.detail;
                        m.queue = c.queue;
                        m.stall_cycles = c.stall;
                        m.rejected_because = reject;
                        invalid_moves.push_back(std::move(m));
                    }
                }
            }
        }
    }
    return out;
}

/** Codegen + static verification + timing simulation of a candidate.
 *  Returns false with a reject reason instead of dying: a candidate
 *  the verifier rejects is simply not taken. */
bool
evalCandidate(const AutotuneInputs &in, const Candidate &c,
              Working &out, std::string &reject)
{
    MtcgOptions mo;
    mo.queue_capacity = in.queue_capacity;
    mo.max_queues = 0;
    out.s.partition = c.partition;
    out.s.plan = c.plan;
    out.s.plan_coco_iterations = c.plan_iters;
    out.s.prog =
        runMtcg(*in.f, *in.pdg, c.partition, c.plan, *in.cd, mo);
    out.s.queue_of.resize(c.plan.placements.size());
    for (size_t i = 0; i < out.s.queue_of.size(); ++i)
        out.s.queue_of[i] = static_cast<int>(i);
    if (in.max_queues > 0) {
        QueueAllocation alloc =
            allocateQueues(c.plan, in.max_queues);
        for (Function &tf : out.s.prog.threads) {
            for (InstrId i = 0; i < tf.numInstrs(); ++i) {
                Instr &ins = tf.instr(i);
                if (isCommunication(ins.op))
                    ins.queue = alloc.queue_of[ins.queue];
            }
        }
        out.s.prog.num_queues = alloc.num_queues;
        out.s.queue_of = alloc.queue_of;
    }

    // Every intermediate schedule must pass the static verifier (HB
    // race check included); a failing candidate is rejected, never
    // executed.
    MtVerifyInput vin;
    vin.orig = in.f;
    vin.pdg = in.pdg;
    vin.partition = &out.s.partition;
    vin.plan = &out.s.plan;
    vin.queue_of = &out.s.queue_of;
    vin.prog = &out.s.prog;
    vin.check_hb = true;
    MtVerifyResult vres = verifyMtProgram(vin);
    if (!vres.ok()) {
        reject = "verify-failed";
        return false;
    }

    MemoryImage mem = in.make_memory();
    CmpSimulator sim(in.machine, in.engine);
    SimResult r;
    if (in.engine == SimEngine::Fast) {
        out.decoded = decodeProgram(out.s.prog);
        out.has_decoded = true;
        r = sim.run(out.decoded, *in.ref_args, mem);
    } else {
        r = sim.run(out.s.prog, *in.ref_args, mem);
    }
    if (r.live_outs != *in.st_live_outs) {
        reject = "oracle-mismatch";
        return false;
    }
    out.s.cycles = r.cycles;
    return true;
}

/** Instrumented re-simulation of the current schedule -> StallReport
 *  for the next feedback round. */
StallReport
profileSchedule(const AutotuneInputs &in, const Working &w)
{
    MemoryImage mem = in.make_memory();
    CmpSimulator sim(in.machine, in.engine);
    SimProfile profile;
    sim.setProfile(&profile);
    SimResult r = w.has_decoded
                      ? sim.run(w.decoded, *in.ref_args, mem)
                      : sim.run(w.s.prog, *in.ref_args, mem);
    GMT_ASSERT(r.cycles == w.s.cycles,
               "autotune instrumented rerun diverged");
    std::string violation =
        checkStallConservation(profile, stallTotals(r));
    if (!violation.empty())
        panic("autotune stall attribution broke conservation: ",
              violation);
    return buildStallReport(profile, r.cycles, w.s.plan, w.s.queue_of,
                            w.s.prog);
}

/** The MT interpreter oracle + dynamic counts for an accepted
 *  schedule (a miscompare here is a compiler bug: die loudly). */
void
runAcceptedOracle(const AutotuneInputs &in, const AutotuneSchedule &s,
                  AutotuneResult &result)
{
    MemoryImage mem = in.make_memory();
    auto mt = interpretMt(s.prog, *in.ref_args, mem);
    if (mt.deadlock)
        fatal("autotune: deadlock in accepted schedule");
    if (!mt.queues_drained)
        fatal("autotune: queues not drained in accepted schedule");
    if (mt.live_outs != *in.st_live_outs ||
        !(mem == *in.st_final_mem))
        fatal("autotune: accepted schedule output mismatch");
    result.computation = 0;
    result.duplicated_branches = 0;
    result.reg_comm = 0;
    result.mem_sync = 0;
    for (const auto &st : mt.stats) {
        result.computation += st.computation;
        result.duplicated_branches += st.duplicated_branches;
        result.reg_comm += st.produces + st.consumes;
        result.mem_sync += st.produce_syncs + st.consume_syncs;
    }
}

int
countMovedInstrs(const ThreadPartition &a, const ThreadPartition &b)
{
    int n = 0;
    for (size_t i = 0; i < a.assign.size() && i < b.assign.size(); ++i)
        if (a.assign[i] != b.assign[i])
            ++n;
    return n;
}

} // namespace

AutotuneResult
autotuneSchedule(const AutotuneInputs &in,
                 const AutotuneSchedule &baseline,
                 const AutotuneOptions &opts)
{
    using Clock = std::chrono::steady_clock;
    GMT_ASSERT(in.f && in.pdg && in.cd && in.profile && in.ref_args &&
                   in.st_live_outs && in.st_final_mem &&
                   in.make_memory,
               "autotuneSchedule: incomplete inputs");

    AutotuneResult result;
    result.baseline_cycles = baseline.cycles;
    result.trajectory.push_back(baseline.cycles);

    // One-time setup below (baseline decode, SCC units) is charged to
    // the first iteration's wall clock: the cold round pays it, the
    // warm rounds reuse it.
    const auto setup_t0 = Clock::now();

    Working cur;
    cur.s = baseline;
    if (in.engine == SimEngine::Fast) {
        cur.decoded = decodeProgram(cur.s.prog);
        cur.has_decoded = true;
    }

    // PDG SCCs: the atomic migration units (a split SCC would create
    // a cross-thread dependence cycle).
    Digraph g = in.pdg->asDigraph();
    SccResult sccs = computeSccs(g);

    // Cross-iteration warm-start substrate for re-cut candidates
    // (flushed whenever an accepted move changes the partition).
    CocoArenaCache arena_cache;

    // Schedules already evaluated (or held): duplicates are recorded
    // but neither re-generated code for nor re-simulated, which is a
    // large share of the warm-iteration speedup.
    std::vector<std::pair<std::vector<int>, CommPlan>> tried;
    tried.emplace_back(baseline.partition.assign, baseline.plan);

    // Partitions whose base-profile plan was already solved once
    // (baseline included: passPlacement planned it under the base
    // profile) — reweight/migrate candidates reproducing one of these
    // are skipped before the cut solve.
    std::vector<std::vector<int>> tried_partitions;
    tried_partitions.push_back(baseline.partition.assign);

    // The stall report feeding each round. Round 1 profiles the
    // baseline; an accepting round profiles its new schedule before
    // closing (the profile is part of folding the accepted move's
    // feedback, so its cost is charged to the round that accepted),
    // and the next round starts from it without re-simulating.
    StallReport report;
    bool have_report = false;

    for (int it = 1; it <= opts.max_iterations; ++it) {
        auto t0 = it == 1 ? setup_t0 : Clock::now();
        result.iterations = it;

        if (!have_report)
            report = profileSchedule(in, cur);
        have_report = false;
        if (report.totalStallCycles() == 0) {
            result.converged = true;
            result.iter_wall_ms.push_back(
                std::chrono::duration<double, std::milli>(
                    Clock::now() - t0)
                    .count());
            break;
        }

        Feedback fb = deriveFeedback(in, cur.s, report);
        std::vector<AutotuneMove> invalid;
        std::vector<Candidate> cands = generateCandidates(
            in, cur, report, fb, sccs, arena_cache,
            result.warm_cut_reuses, tried_partitions, opts, invalid,
            it);

        // Invalid candidates (never simulated) are recorded first —
        // their order within the round is canonical too.
        for (AutotuneMove &m : invalid) {
            ++result.moves_rejected;
            result.moves.push_back(std::move(m));
        }

        // Acceptance threshold: relative epsilon on current cycles,
        // at least one cycle (strict improvement).
        const uint64_t min_gain = std::max<uint64_t>(
            1, static_cast<uint64_t>(std::ceil(
                   static_cast<double>(cur.s.cycles) *
                   opts.min_rel_improvement)));

        std::vector<Working> evals(cands.size());
        std::vector<size_t> move_of(cands.size());
        int best = -1;
        for (size_t ci = 0; ci < cands.size(); ++ci) {
            const Candidate &c = cands[ci];
            AutotuneMove m;
            m.iteration = it;
            m.kind = c.kind;
            m.detail = c.detail;
            m.queue = c.queue;
            m.stall_cycles = c.stall;
            m.moved_instrs =
                countMovedInstrs(cur.s.partition, c.partition);

            auto fp = std::make_pair(c.partition.assign, c.plan);
            if (std::find(tried.begin(), tried.end(), fp) !=
                tried.end()) {
                m.rejected_because = "duplicate";
            } else {
                tried.push_back(std::move(fp));
                std::string reject;
                if (!evalCandidate(in, c, evals[ci], reject)) {
                    m.rejected_because = reject;
                } else {
                    m.cycles = evals[ci].s.cycles;
                    if (m.cycles >= cur.s.cycles) {
                        m.rejected_because = "no-improvement";
                    } else if (cur.s.cycles - m.cycles < min_gain) {
                        m.rejected_because = "below-epsilon";
                    } else if (best < 0 ||
                               m.cycles <
                                   evals[static_cast<size_t>(best)]
                                       .s.cycles) {
                        best = static_cast<int>(ci);
                    }
                }
            }
            move_of[ci] = result.moves.size();
            result.moves.push_back(std::move(m));
        }

        if (best < 0) {
            for (size_t ci = 0; ci < cands.size(); ++ci)
                if (result.moves[move_of[ci]].rejected_because.empty())
                    result.moves[move_of[ci]].rejected_because =
                        "outscored";
            result.moves_rejected += static_cast<int>(cands.size());
            result.converged = true;
            result.iter_wall_ms.push_back(
                std::chrono::duration<double, std::milli>(
                    Clock::now() - t0)
                    .count());
            break;
        }

        // Accept the winner; every other candidate of the round is
        // rejected (qualifying ones as "outscored").
        for (size_t ci = 0; ci < cands.size(); ++ci) {
            AutotuneMove &m = result.moves[move_of[ci]];
            if (static_cast<int>(ci) == best) {
                m.accepted = true;
                ++result.moves_accepted;
            } else {
                if (m.rejected_because.empty())
                    m.rejected_because = "outscored";
                ++result.moves_rejected;
            }
        }

        const bool partition_changed =
            cands[static_cast<size_t>(best)].partition.assign !=
            cur.s.partition.assign;
        cur = std::move(evals[static_cast<size_t>(best)]);
        if (partition_changed)
            arena_cache.flush();
        result.final_block_boost =
            cands[static_cast<size_t>(best)].kind == "recut"
                ? fb.cut_boost
                : std::vector<uint64_t>{};

        runAcceptedOracle(in, cur.s, result);
        if (opts.on_accept)
            opts.on_accept(cur.s);
        result.trajectory.push_back(cur.s.cycles);
        if (it < opts.max_iterations) {
            report = profileSchedule(in, cur);
            have_report = true;
        }
        result.iter_wall_ms.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      t0)
                .count());
    }

    // Zero accepted moves: the final schedule is the baseline; fill
    // the dynamic counts from one oracle run so callers always get
    // them from here.
    if (result.moves_accepted == 0)
        runAcceptedOracle(in, cur.s, result);

    result.final_schedule = std::move(cur.s);

    MetricsRegistry &mr = MetricsRegistry::global();
    mr.counter("autotune.iterations")
        .add(static_cast<uint64_t>(result.iterations));
    mr.counter("autotune.moves_accepted")
        .add(static_cast<uint64_t>(result.moves_accepted));
    mr.counter("autotune.moves_rejected")
        .add(static_cast<uint64_t>(result.moves_rejected));
    mr.counter("autotune.warm_cut_reuses").add(result.warm_cut_reuses);
    return result;
}

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

std::string
autotuneMovesJson(const AutotuneResult &r)
{
    std::ostringstream os;
    os << "{\"schema\":1,\"type\":\"autotune\"";
    os << ",\"baseline_cycles\":" << r.baseline_cycles;
    os << ",\"final_cycles\":" << r.final_schedule.cycles;
    os << ",\"iterations\":" << r.iterations;
    os << ",\"converged\":" << (r.converged ? "true" : "false");
    os << ",\"moves_accepted\":" << r.moves_accepted;
    os << ",\"moves_rejected\":" << r.moves_rejected;
    os << ",\"trajectory\":[";
    for (size_t i = 0; i < r.trajectory.size(); ++i)
        os << (i ? "," : "") << r.trajectory[i];
    os << "],\"moves\":[";
    for (size_t i = 0; i < r.moves.size(); ++i) {
        const AutotuneMove &m = r.moves[i];
        if (i)
            os << ",";
        os << "{\"iteration\":" << m.iteration << ",\"kind\":\""
           << jsonEscape(m.kind) << "\",\"detail\":\""
           << jsonEscape(m.detail) << "\",\"queue\":" << m.queue
           << ",\"stall_cycles\":" << m.stall_cycles
           << ",\"moved_instrs\":" << m.moved_instrs
           << ",\"cycles\":" << m.cycles << ",\"accepted\":"
           << (m.accepted ? "true" : "false")
           << ",\"rejected_because\":\""
           << jsonEscape(m.rejected_because) << "\"}";
    }
    os << "]}";
    return os.str();
}

Provenance
autotuneProvenance(const AutotuneInputs &in, const AutotuneResult &r,
                   const std::string &cell,
                   const std::string &workload,
                   const std::string &scheduler)
{
    const AutotuneSchedule &s = r.final_schedule;
    Provenance p;
    p.cell = cell;
    p.workload = workload;
    p.scheduler = scheduler;
    p.coco = in.use_coco;
    p.num_threads = in.num_threads;

    // Partition units: the tuned assignment is SCC-atomic by
    // construction (partitioners keep SCCs whole; migrations move
    // whole SCCs), so the PDG's components are the honest unit
    // structure of the final partition.
    Digraph g = in.pdg->asDigraph();
    SccResult sccs = computeSccs(g);
    p.partition.algorithm = scheduler + "+autotune";
    p.partition.num_threads = in.num_threads;
    p.partition.unit_of.assign(sccs.component.begin(),
                               sccs.component.end());
    p.partition.thread_of.assign(s.partition.assign.begin(),
                                 s.partition.assign.end());
    p.partition.units.resize(
        static_cast<size_t>(sccs.numComponents()));
    for (int c = 0; c < sccs.numComponents(); ++c) {
        UnitDecision &d =
            p.partition.units[static_cast<size_t>(c)];
        d.unit = c;
        d.order = c;
        d.thread = -1;
        d.first_instr = -1;
    }
    for (InstrId i = 0; i < in.f->numInstrs(); ++i) {
        UnitDecision &d = p.partition.units[static_cast<size_t>(
            sccs.component[i])];
        int t = s.partition.threadOf(i);
        GMT_ASSERT(d.thread == -1 || d.thread == t,
                   "autotune partition splits an SCC for ", cell);
        d.thread = t;
        d.work += in.profile->blockWeight(in.f->instr(i).block);
        ++d.num_members;
        if (d.first_instr < 0)
            d.first_instr = i;
    }

    // Placement decisions: re-derive the final plan with the serial
    // instrumented COCO run under the final boost, asserted equal.
    if (in.use_coco) {
        EdgeProfile prof =
            r.final_block_boost.empty()
                ? *in.profile
                : in.profile->withBlockBoost(r.final_block_boost);
        CocoExec exec;
        exec.provenance = &p.placement;
        CocoResult coco = cocoOptimize(*in.f, *in.pdg, s.partition,
                                       *in.cd, prof, in.coco, exec);
        GMT_ASSERT(coco.plan == s.plan,
                   "autotune provenance placement rerun diverged for ",
                   cell);
    } else {
        p.placement.source = "mtcg-default";
        for (size_t i = 0; i < s.plan.placements.size(); ++i) {
            const CommPlacement &pl = s.plan.placements[i];
            PlacementDecision d;
            d.index = static_cast<int>(i);
            d.is_mem = pl.kind == CommKind::MemorySync;
            d.reg = pl.reg;
            d.src_thread = pl.src_thread;
            d.dst_thread = pl.dst_thread;
            d.rule = "mtcg-default";
            for (const auto &pt : pl.points)
                d.points.push_back(
                    {pt.block, pt.pos,
                     static_cast<int64_t>(
                         in.profile->pointWeight(pt)),
                     0});
            p.placement.placements.push_back(std::move(d));
        }
    }

    // Queue decisions (same derivation as the obs-provenance pass).
    if (in.max_queues <= 0) {
        p.queues.max_queues = 0;
        p.queues.num_queues = s.prog.num_queues;
        for (size_t i = 0; i < s.queue_of.size(); ++i) {
            const CommPlacement &pl = s.plan.placements[i];
            QueueDecision d;
            d.queue = s.queue_of[i];
            d.src_thread = pl.src_thread;
            d.dst_thread = pl.dst_thread;
            d.rule = "identity";
            d.pair_placements = 1;
            d.pair_queues = 1;
            d.placements.push_back(static_cast<int>(i));
            p.queues.queues.push_back(std::move(d));
        }
    } else {
        QueueAllocation alloc =
            allocateQueues(s.plan, in.max_queues, &p.queues);
        GMT_ASSERT(alloc.queue_of == s.queue_of,
                   "autotune provenance queue rerun diverged for ",
                   cell);
    }
    return p;
}

} // namespace gmt
