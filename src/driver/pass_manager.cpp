#include "driver/pass_manager.hpp"

#include <algorithm>
#include <chrono>

#include "analysis/loop_info.hpp"
#include "coco/coco.hpp"
#include "coco/validate.hpp"
#include "ir/edge_split.hpp"
#include "ir/verifier.hpp"
#include "mtcg/mtcg.hpp"
#include "mtcg/queue_alloc.hpp"
#include "mtverify/mtverify.hpp"
#include "obs/metrics.hpp"
#include "partition/dswp.hpp"
#include "partition/gremio.hpp"
#include "pdg/pdg_builder.hpp"
#include "runtime/interpreter.hpp"
#include "sim/cmp_simulator.hpp"
#include "support/error.hpp"

namespace gmt
{

namespace
{

/** Fill a fresh MemoryImage for the workload's train or ref input. */
MemoryImage
workloadMemory(const Workload &w, bool ref)
{
    MemoryImage mem;
    mem.alloc(w.mem_cells);
    if (w.fill)
        w.fill(mem, ref);
    return mem;
}

} // namespace

std::string
PipelineContext::cellId() const
{
    std::string id = workload->name;
    id += '/';
    id += schedulerName(opts.scheduler);
    if (opts.use_coco)
        id += "+COCO";
    if (opts.autotune)
        id += "+AT";
    return id;
}

// ---------------------------------------------------------------------------
// Cache keys. Every key names the stage and the exact option prefix
// that can influence the artifact; see artifact_cache.hpp.

std::string
irKey(const PipelineContext &ctx)
{
    return "ir|" + ctx.workload->cacheKey();
}

std::string
profileKey(const PipelineContext &ctx)
{
    return "profile|" + ctx.workload->cacheKey() +
           (ctx.opts.static_profile ? "|static" : "|train");
}

std::string
pdgKey(const PipelineContext &ctx)
{
    return "pdg|" + ctx.workload->cacheKey();
}

std::string
partitionKey(const PipelineContext &ctx)
{
    return std::string("partition|") + ctx.workload->cacheKey() + '|' +
           schedulerName(ctx.opts.scheduler) +
           "|nt=" + std::to_string(ctx.opts.num_threads) +
           (ctx.opts.static_profile ? "|static" : "|train");
}

std::string
planKey(const PipelineContext &ctx)
{
    std::string key = "plan|" + partitionKey(ctx);
    if (!ctx.opts.use_coco)
        return key + "|mtcg-default";
    const CocoOptions &c = ctx.opts.coco;
    key += "|coco";
    key += "|flow=" + std::to_string(static_cast<int>(c.flow_algo));
    key += c.control_flow_penalties ? "|cfp=1" : "|cfp=0";
    key += c.optimize_registers ? "|reg=1" : "|reg=0";
    key += c.optimize_memory ? "|mem=1" : "|mem=0";
    key += c.multi_pair_memory ? "|mpm=1" : "|mpm=0";
    key += "|maxit=" + std::to_string(c.max_iterations);
    return key;
}

int
resolvedQueueCapacity(const PipelineOptions &opts)
{
    if (opts.queue_capacity > 0)
        return opts.queue_capacity;
    return opts.scheduler == Scheduler::Dswp ? 32 : 1;
}

std::string
mtcgKey(const PipelineContext &ctx)
{
    return "prog|" + planKey(ctx) +
           "|qcap=" + std::to_string(resolvedQueueCapacity(ctx.opts));
}

std::string
queueAllocKey(const PipelineContext &ctx)
{
    return "qalloc|" + mtcgKey(ctx) +
           "|maxq=" + std::to_string(ctx.opts.max_queues);
}

namespace
{

/** Result axes of the autotune loop (part of every key that depends
 *  on the tuned schedule). Empty when the pass is off, so baseline
 *  cells and autotuned cells share every upstream artifact. */
std::string
autotuneAxes(const PipelineOptions &o)
{
    if (!o.autotune)
        return "";
    const AutotuneOptions &a = o.autotune_opts;
    return "|at|maxit=" + std::to_string(a.max_iterations) +
           "|eps=" + std::to_string(a.min_rel_improvement) +
           "|topq=" + std::to_string(a.migrate_top_queues) +
           "|migmax=" + std::to_string(a.migrate_max_candidates);
}

} // namespace

std::string
autotuneKey(const PipelineContext &ctx)
{
    // The loop simulates on the configured machine/engine, so both
    // are axes of the tuned schedule (unlike the codegen prefix).
    return "autotune|" + queueAllocKey(ctx) + '|' +
           machineKey(ctx.opts.machine) +
           (ctx.opts.sim_engine == SimEngine::Reference ? "|ref" : "") +
           autotuneAxes(ctx.opts);
}

std::string
obsProfileKey(const PipelineContext &ctx)
{
    // The attribution itself is engine-independent, but the keys stay
    // apart per engine so differential tests exercise both engines'
    // instrumentation instead of sharing one cached artifact. The
    // autotune axes describe the tuned schedule being profiled.
    if (!ctx.opts.simulate)
        return "obs|" + queueAllocKey(ctx) + "|nosim";
    return "obs|" + queueAllocKey(ctx) + '|' +
           machineKey(ctx.opts.machine) +
           (ctx.opts.sim_engine == SimEngine::Reference ? "|ref" : "") +
           autotuneAxes(ctx.opts);
}

std::string
provenanceKey(const PipelineContext &ctx)
{
    // Decisions are fixed once the multiplexed program is: every
    // upstream decision axis is already encoded in queueAllocKey.
    // With autotuning on, the record describes the tuned schedule,
    // which additionally depends on the loop's axes.
    return "prov|" + queueAllocKey(ctx) + autotuneAxes(ctx.opts);
}

std::string
coreMachineKey(const MachineConfig &m)
{
    auto cache = [](const CacheConfig &c) {
        return std::to_string(c.size_bytes) + ',' +
               std::to_string(c.associativity) + ',' +
               std::to_string(c.line_bytes) + ',' +
               std::to_string(c.hit_latency);
    };
    return std::to_string(m.num_cores) + ';' +
           std::to_string(m.issue_width) + ';' +
           std::to_string(m.mem_ports) + ';' +
           std::to_string(m.alu_latency) + ';' +
           std::to_string(m.mul_latency) + ';' +
           std::to_string(m.div_latency) + ';' + cache(m.l1d) + ';' +
           cache(m.l2) + ';' + cache(m.l3) + ';' +
           std::to_string(m.memory_latency);
}

std::string
machineKey(const MachineConfig &m)
{
    return coreMachineKey(m) + ';' + std::to_string(m.sa_queues) +
           ';' + std::to_string(m.sa_ports) + ';' +
           std::to_string(m.sa_latency) + ';' +
           std::to_string(m.queue_capacity);
}

// ---------------------------------------------------------------------------
// PassManager

void
PassManager::addPass(std::string name, PassFn fn)
{
    passes_.push_back(Pass{std::move(name), std::move(fn)});
}

std::vector<std::string>
PassManager::passNames() const
{
    std::vector<std::string> names;
    names.reserve(passes_.size());
    for (const Pass &p : passes_)
        names.push_back(p.name);
    return names;
}

namespace
{

/** Extra between-pass checks (PipelineOptions::check_invariants). */
void
checkInvariants(const PipelineContext &ctx, const std::string &after)
{
    if (ctx.ir)
        verifyOrDie(ctx.ir->func, {},
                    "invariant check after pass '" + after + "'");
    if (ctx.pdg && ctx.partition) {
        auto problems = validatePartition(
            ctx.pdg->pdg, ctx.partition->partition,
            ctx.opts.scheduler == Scheduler::Dswp);
        if (!problems.empty())
            panic("invariant check after pass '", after,
                  "' failed for ", ctx.cellId(), ": ", problems[0]);
    }
}

void
emitPassRecord(PipelineContext &ctx, const PassStats &ps)
{
    if (!ctx.stats)
        return;
    JsonObject rec;
    rec.num("schema", int64_t{1})
        .str("type", "pass")
        .str("cell", ctx.cellId())
        .str("workload", ctx.workload->name)
        .str("scheduler", schedulerName(ctx.opts.scheduler))
        .boolean("coco", ctx.opts.use_coco)
        .str("pass", ps.pass)
        .num("wall_ms", ps.wall_ms)
        .boolean("cached", ps.cached);
    // Counters sorted by name: record key order is part of the
    // schema, independent of the order the pass added them in.
    auto counters = ps.counters;
    std::sort(counters.begin(), counters.end());
    for (const auto &[name, value] : counters)
        rec.num(name, static_cast<int64_t>(value));
    ctx.stats->write(rec);
}

void
emitCellRecord(PipelineContext &ctx, double total_ms)
{
    if (!ctx.stats)
        return;
    const PipelineResult &r = ctx.result;
    JsonObject rec;
    rec.num("schema", int64_t{1});
    rec.str("type", "cell")
        .str("cell", ctx.cellId())
        .str("workload", r.workload)
        .str("scheduler", r.scheduler)
        .boolean("coco", r.coco)
        .num("computation", r.computation)
        .num("duplicated_branches", r.duplicated_branches)
        .num("reg_comm", r.reg_comm)
        .num("mem_sync", r.mem_sync)
        .boolean("has_mem_deps", r.has_mem_deps)
        .num("st_cycles", r.st_cycles)
        .num("mt_cycles", r.mt_cycles)
        .num("speedup", r.speedup())
        .num("coco_iterations",
             static_cast<int64_t>(r.coco_iterations));
    if (r.autotuned)
        rec.boolean("autotuned", true)
            .num("baseline_mt_cycles", r.baseline_mt_cycles)
            .num("autotune_iterations",
                 static_cast<int64_t>(r.autotune_iterations))
            .num("autotune_moves_accepted",
                 static_cast<int64_t>(r.autotune_moves_accepted))
            .num("autotune_moves_rejected",
                 static_cast<int64_t>(r.autotune_moves_rejected))
            .boolean("autotune_converged", r.autotune_converged);
    rec.num("wall_ms", total_ms);
    ctx.stats->write(rec);
}

} // namespace

void
PassManager::run(PipelineContext &ctx) const
{
    using Clock = std::chrono::steady_clock;
    auto run_start = Clock::now();

    ctx.result = PipelineResult{};
    ctx.result.workload = ctx.workload->name;
    ctx.result.scheduler = schedulerName(ctx.opts.scheduler);
    ctx.result.coco = ctx.opts.use_coco;

    for (const Pass &pass : passes_) {
        PassStats ps;
        ps.pass = pass.name;
        double trace_ts = ctx.trace ? ctx.trace->nowUs() : 0.0;
        auto t0 = Clock::now();
        pass.run(ctx, ps);
        auto t1 = Clock::now();
        ps.wall_ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (ctx.trace)
            ctx.trace->completeEvent(
                pass.name, "pass", TraceCollector::kPipelinePid,
                ctx.trace->laneForThisThread(), trace_ts,
                ctx.trace->nowUs() - trace_ts,
                {{"cell", ctx.cellId()}},
                {{"cached", ps.cached ? 1 : 0}});
        if (ctx.opts.check_invariants)
            checkInvariants(ctx, pass.name);
        MetricsRegistry &mr = MetricsRegistry::global();
        mr.counter("pipeline.passes_run").add();
        if (ps.cached)
            mr.counter("pipeline.passes_cached").add();
        mr.histogram("pipeline.pass_wall_ms").observe(ps.wall_ms);
        emitPassRecord(ctx, ps);
        ctx.pass_stats.push_back(std::move(ps));
    }
    MetricsRegistry::global().counter("pipeline.cells").add();

    // Assemble the result from the final artifacts.
    if (ctx.partition)
        ctx.result.has_mem_deps = ctx.partition->has_mem_deps;
    if (ctx.plan)
        ctx.result.coco_iterations = ctx.plan->coco_iterations;
    if (ctx.mt_run) {
        ctx.result.computation = ctx.mt_run->computation;
        ctx.result.duplicated_branches = ctx.mt_run->duplicated_branches;
        ctx.result.reg_comm = ctx.mt_run->reg_comm;
        ctx.result.mem_sync = ctx.mt_run->mem_sync;
    }
    if (ctx.st_sim)
        ctx.result.st_cycles = ctx.st_sim->cycles;
    if (ctx.mt_sim)
        ctx.result.mt_cycles = ctx.mt_sim->cycles;
    if (ctx.autotune) {
        const AutotuneResult &at = ctx.autotune->result;
        ctx.result.autotuned = true;
        ctx.result.baseline_mt_cycles = at.baseline_cycles;
        ctx.result.autotune_iterations = at.iterations;
        ctx.result.autotune_moves_accepted = at.moves_accepted;
        ctx.result.autotune_moves_rejected = at.moves_rejected;
        ctx.result.autotune_converged = at.converged;
    }

    double total_ms = std::chrono::duration<double, std::milli>(
                          Clock::now() - run_start)
                          .count();
    emitCellRecord(ctx, total_ms);
}

// ---------------------------------------------------------------------------
// The standard passes.

namespace
{

void
passBuildIr(PipelineContext &ctx, PassStats &ps)
{
    const Function &src = ctx.workload->func;
    GMT_ASSERT(src.numBlocks() > 0, "workload ", ctx.workload->name,
               " has no IR");
    ps.add("blocks", src.numBlocks());
    ps.add("instrs", src.numInstrs());
}

void
passEdgeSplit(PipelineContext &ctx, PassStats &ps)
{
    ctx.ir = ctx.cached<IrArtifact>(
        irKey(ctx),
        [&]() {
            auto art = std::make_shared<IrArtifact>();
            art->func = ctx.workload->func; // pipeline owns a copy
            splitCriticalEdges(art->func);
            return std::shared_ptr<const IrArtifact>(art);
        },
        ps);
    ps.add("blocks", ctx.ir->func.numBlocks());
    ps.add("instrs", ctx.ir->func.numInstrs());
}

void
passVerify(PipelineContext &ctx, PassStats &ps)
{
    // Always re-checked, cached IR included: this is the safety net
    // everything downstream assumes.
    verifyOrDie(ctx.ir->func, {}, "verify pass");
    ps.add("blocks", ctx.ir->func.numBlocks());
}

void
passProfile(PipelineContext &ctx, PassStats &ps)
{
    const Workload &w = *ctx.workload;
    ctx.profile = ctx.cached<ProfileArtifact>(
        profileKey(ctx),
        [&]() -> std::shared_ptr<const ProfileArtifact> {
            const Function &f = ctx.ir->func;
            auto art = std::make_shared<ProfileArtifact>();
            if (ctx.opts.static_profile) {
                auto dom = DominatorTree::dominators(f);
                LoopInfo loops(f, dom);
                art->profile = EdgeProfile::staticEstimate(f, loops);
            } else {
                // The paper profiles on the train input.
                MemoryImage mem = workloadMemory(w, /*ref=*/false);
                auto run = interpret(f, w.train_args, mem);
                art->profile = EdgeProfile::fromRun(f, run.profile);
            }
            return art;
        },
        ps);
    ps.add("static", ctx.opts.static_profile ? 1 : 0);
}

void
passPdg(PipelineContext &ctx, PassStats &ps)
{
    ctx.pdg = ctx.cached<PdgArtifact>(
        pdgKey(ctx),
        [&]() -> std::shared_ptr<const PdgArtifact> {
            const Function &f = ctx.ir->func;
            auto pdom = DominatorTree::postDominators(f);
            ControlDependence cd(f, pdom);
            return std::make_shared<PdgArtifact>(PdgArtifact{
                ctx.ir, buildPdg(f), std::move(pdom), std::move(cd)});
        },
        ps);
    ps.add("arcs", ctx.pdg->pdg.numArcs());
}

void
passPartition(PipelineContext &ctx, PassStats &ps)
{
    ctx.partition = ctx.cached<PartitionArtifact>(
        partitionKey(ctx),
        [&]() -> std::shared_ptr<const PartitionArtifact> {
            const Pdg &pdg = ctx.pdg->pdg;
            auto art = std::make_shared<PartitionArtifact>();
            art->partition =
                ctx.opts.scheduler == Scheduler::Dswp
                    ? dswpPartition(
                          pdg, ctx.profile->profile,
                          {.num_threads = ctx.opts.num_threads})
                    : gremioPartition(
                          pdg, ctx.profile->profile,
                          {.num_threads = ctx.opts.num_threads});
            auto problems = validatePartition(
                pdg, art->partition,
                ctx.opts.scheduler == Scheduler::Dswp);
            if (!problems.empty())
                fatal("partition invalid for ", ctx.workload->name,
                      ": ", problems[0]);
            for (const auto &arc : pdg.arcs()) {
                if (arc.kind == DepKind::Memory &&
                    art->partition.threadOf(arc.src) !=
                        art->partition.threadOf(arc.dst))
                    art->has_mem_deps = true;
            }
            return art;
        },
        ps);
    ps.add("threads", ctx.partition->partition.num_threads);
    ps.add("cross_arcs",
           countCrossThreadArcs(ctx.pdg->pdg,
                                ctx.partition->partition));
}

void
passPlacement(PipelineContext &ctx, PassStats &ps)
{
    ctx.plan = ctx.cached<PlanArtifact>(
        planKey(ctx),
        [&]() -> std::shared_ptr<const PlanArtifact> {
            const Function &f = ctx.ir->func;
            const Pdg &pdg = ctx.pdg->pdg;
            const ControlDependence &cd = ctx.pdg->cd;
            auto art = std::make_shared<PlanArtifact>();
            if (ctx.opts.use_coco) {
                // The plan is bit-identical at any job count (the
                // artifact may be shared across cells that differ
                // only in coco_jobs — planKey() has no jobs axis).
                CocoExec exec{ctx.pool, ctx.opts.coco_jobs,
                              ctx.trace};
                auto coco = cocoOptimize(f, pdg,
                                         ctx.partition->partition, cd,
                                         ctx.profile->profile,
                                         ctx.opts.coco, exec);
                art->plan = std::move(coco.plan);
                art->coco_iterations = coco.iterations;
                auto problems =
                    validatePlan(f, pdg, ctx.partition->partition, cd,
                                 art->plan);
                if (!problems.empty())
                    fatal("COCO plan invalid for ",
                          ctx.workload->name, ": ", problems[0]);
            } else {
                art->plan = defaultMtcgPlan(
                    f, pdg, ctx.partition->partition, cd);
            }
            return art;
        },
        ps);
    ps.add("placements",
           static_cast<int64_t>(ctx.plan->plan.placements.size()));
    ps.add("coco_iterations", ctx.plan->coco_iterations);
}

void
passMtcg(PipelineContext &ctx, PassStats &ps)
{
    ctx.prog = ctx.cached<ProgramArtifact>(
        mtcgKey(ctx),
        [&]() -> std::shared_ptr<const ProgramArtifact> {
            // Queue depth: 32-element queues for DSWP's pipeline
            // decoupling, single-element queues for GREMIO (paper
            // §4). Queues are one-per-placement here; the queue-alloc
            // pass multiplexes them onto an architected budget.
            MtcgOptions mtcg_opts;
            mtcg_opts.queue_capacity = resolvedQueueCapacity(ctx.opts);
            mtcg_opts.max_queues = 0;
            auto art = std::make_shared<ProgramArtifact>();
            art->prog = runMtcg(ctx.ir->func, ctx.pdg->pdg,
                                ctx.partition->partition,
                                ctx.plan->plan, ctx.pdg->cd, mtcg_opts);
            // max_queues == 0: placement i owns queue i.
            art->queue_of.resize(ctx.plan->plan.placements.size());
            for (size_t pi = 0; pi < art->queue_of.size(); ++pi)
                art->queue_of[pi] = static_cast<int>(pi);
            return art;
        },
        ps);
    ps.add("threads",
           static_cast<int64_t>(ctx.prog->prog.threads.size()));
    ps.add("queues", ctx.prog->prog.num_queues);
}

void
passQueueAlloc(PipelineContext &ctx, PassStats &ps)
{
    if (ctx.opts.max_queues <= 0) {
        // One queue per placement (the paper's simplification).
        ps.add("queues", ctx.prog->prog.num_queues);
        return;
    }
    ctx.prog = ctx.cached<ProgramArtifact>(
        queueAllocKey(ctx),
        [&]() -> std::shared_ptr<const ProgramArtifact> {
            // The MTCG artifact numbers queues by placement index, so
            // remapping instruction queue ids through the allocation
            // is exactly the multiplexed program.
            QueueAllocation alloc = allocateQueues(
                ctx.plan->plan, ctx.opts.max_queues);
            auto art = std::make_shared<ProgramArtifact>();
            art->prog = ctx.prog->prog;
            for (Function &tf : art->prog.threads) {
                for (InstrId i = 0; i < tf.numInstrs(); ++i) {
                    Instr &in = tf.instr(i);
                    if (isCommunication(in.op))
                        in.queue = alloc.queue_of[in.queue];
                }
            }
            art->prog.num_queues = alloc.num_queues;
            art->queue_of = alloc.queue_of;
            return art;
        },
        ps);
    ps.add("queues", ctx.prog->prog.num_queues);
    ps.add("max_queues", ctx.opts.max_queues);
}

void
passVerifyMt(PipelineContext &ctx, PassStats &ps)
{
    if (!ctx.opts.verify_mt) {
        ps.add("skipped", 1);
        return;
    }
    // Never cached: like the verify pass, this is the safety net the
    // execution stages assume, and it must re-check cached artifacts.
    MtVerifyInput in;
    in.orig = &ctx.ir->func;
    in.pdg = &ctx.pdg->pdg;
    in.partition = &ctx.partition->partition;
    in.plan = &ctx.plan->plan;
    in.queue_of = &ctx.prog->queue_of;
    in.prog = &ctx.prog->prog;
    in.check_hb = ctx.opts.verify_hb;
    MtVerifyResult res = verifyMtProgram(in);
    ps.add("diags", static_cast<int64_t>(res.diags.size()));
    ps.add("errors", res.errors());
    ps.add("warnings", res.warnings());
    ps.add("hb_pairs", res.hb_pairs);
    if (!res.ok())
        fatal("MT verification failed for ", ctx.cellId(), ":\n",
              res.render());
}

void
passMtRun(PipelineContext &ctx, PassStats &ps)
{
    const Workload &w = *ctx.workload;

    // Single-threaded reference run: the oracle's ground truth,
    // shared by every cell of the workload.
    bool st_ref_hit = false;
    {
        PassStats sub;
        ctx.st_ref = ctx.cached<StRefArtifact>(
            "stref|" + w.cacheKey(),
            [&]() -> std::shared_ptr<const StRefArtifact> {
                auto art = std::make_shared<StRefArtifact>();
                art->final_mem = workloadMemory(w, /*ref=*/true);
                auto run =
                    interpret(ctx.ir->func, w.ref_args, art->final_mem);
                art->live_outs = run.live_outs;
                return art;
            },
            sub);
        st_ref_hit = sub.cached;
    }

    auto st_ref = ctx.st_ref;
    auto prog = ctx.prog;
    ctx.mt_run = ctx.cached<MtRunArtifact>(
        "mtrun|" + queueAllocKey(ctx),
        [&, st_ref, prog]() -> std::shared_ptr<const MtRunArtifact> {
            MemoryImage mt_mem = workloadMemory(w, /*ref=*/true);
            auto mt = interpretMt(prog->prog, w.ref_args, mt_mem);
            if (mt.deadlock)
                fatal("deadlock in generated code for ", w.name);
            if (!mt.queues_drained)
                fatal("queues not drained for ", w.name);
            if (mt.live_outs != st_ref->live_outs ||
                !(mt_mem == st_ref->final_mem))
                fatal("MT output mismatch for ", w.name, " (",
                      schedulerName(ctx.opts.scheduler),
                      ctx.opts.use_coco ? "+COCO" : "", ")");
            auto art = std::make_shared<MtRunArtifact>();
            for (const auto &st : mt.stats) {
                art->computation += st.computation;
                art->duplicated_branches += st.duplicated_branches;
                art->reg_comm += st.produces + st.consumes;
                art->mem_sync += st.produce_syncs + st.consume_syncs;
            }
            return art;
        },
        ps);
    ps.add("stref_cached", st_ref_hit ? 1 : 0);
    ps.add("computation",
           static_cast<int64_t>(ctx.mt_run->computation));
    ps.add("communication",
           static_cast<int64_t>(ctx.mt_run->reg_comm +
                                ctx.mt_run->mem_sync));
}

/** One JSONL record per simulation actually executed (not cached). */
void
emitSimRecord(PipelineContext &ctx, const char *which,
              const SimResult &r)
{
    if (!ctx.stats)
        return;
    JsonObject rec;
    rec.num("schema", int64_t{1})
        .str("type", "sim")
        .str("cell", ctx.cellId())
        .str("which", which)
        .str("engine", simEngineName(r.engine.engine))
        .num("cycles", r.cycles)
        .num("iterations", r.engine.iterations)
        .num("skipped_cycles", r.engine.skipped)
        .num("skip_ratio", r.engine.skipRatio())
        .num("wall_ms", r.engine.wall_ms);
    ctx.stats->write(rec);
}

void
passSim(PipelineContext &ctx, PassStats &ps)
{
    if (!ctx.opts.simulate) {
        ps.add("skipped", 1);
        return;
    }
    const Workload &w = *ctx.workload;
    const MachineConfig cfg = ctx.opts.machine;
    const SimEngine engine = ctx.opts.sim_engine;
    // The ST baseline never touches the sync array, so it is keyed
    // on the SA-free machine prefix and shared across SA sweeps.
    // The engines' results are bit-identical, but the artifacts also
    // carry engine meta-stats — keep the cache entries apart.
    const std::string esuf =
        engine == SimEngine::Reference ? "|ref" : "";
    const std::string core_mkey = coreMachineKey(cfg) + esuf;
    const std::string mkey = machineKey(cfg) + esuf;
    auto st_ref = ctx.st_ref;

    bool st_sim_hit = false;
    {
        PassStats sub;
        auto ir = ctx.ir;
        if (engine == SimEngine::Fast) {
            // Decoding is machine-independent: one artifact per
            // workload serves every machine config.
            ctx.st_decoded = ctx.cached<StDecodedArtifact>(
                "stdecode|" + w.cacheKey(),
                [&, ir]() -> std::shared_ptr<const StDecodedArtifact> {
                    MtProgram p;
                    p.threads.push_back(ir->func);
                    p.num_queues = 0;
                    auto art = std::make_shared<StDecodedArtifact>();
                    art->prog = decodeProgram(p);
                    return art;
                },
                sub);
        }
        auto st_dec = ctx.st_decoded;
        ctx.st_sim = ctx.cached<StSimArtifact>(
            "stsim|" + w.cacheKey() + '|' + core_mkey,
            [&, ir, st_ref,
             st_dec]() -> std::shared_ptr<const StSimArtifact> {
                MemoryImage mem = workloadMemory(w, /*ref=*/true);
                SimResult st_sim;
                if (st_dec) {
                    CmpSimulator sim(cfg, engine);
                    st_sim = sim.run(st_dec->prog, w.ref_args, mem);
                } else {
                    st_sim = simulateSingleThreaded(
                        ir->func, w.ref_args, mem, cfg, engine);
                }
                GMT_ASSERT(st_sim.live_outs == st_ref->live_outs,
                           "timing sim ST mismatch");
                emitSimRecord(ctx, "st", st_sim);
                auto art = std::make_shared<StSimArtifact>();
                art->cycles = st_sim.cycles;
                art->engine = st_sim.engine;
                return art;
            },
            sub);
        st_sim_hit = sub.cached;
    }

    auto prog = ctx.prog;
    if (engine == SimEngine::Fast) {
        PassStats sub;
        ctx.mt_decoded = ctx.cached<MtDecodedArtifact>(
            "decoded|" + queueAllocKey(ctx),
            [&, prog]() -> std::shared_ptr<const MtDecodedArtifact> {
                auto art = std::make_shared<MtDecodedArtifact>();
                art->prog = decodeProgram(prog->prog);
                return art;
            },
            sub);
    }
    auto mt_dec = ctx.mt_decoded;
    ctx.mt_sim = ctx.cached<MtSimArtifact>(
        "mtsim|" + queueAllocKey(ctx) + '|' + mkey,
        [&, prog, st_ref,
         mt_dec]() -> std::shared_ptr<const MtSimArtifact> {
            MemoryImage mem = workloadMemory(w, /*ref=*/true);
            CmpSimulator sim(cfg, engine);
            auto mt_sim = mt_dec
                              ? sim.run(mt_dec->prog, w.ref_args, mem)
                              : sim.run(prog->prog, w.ref_args, mem);
            GMT_ASSERT(mt_sim.live_outs == st_ref->live_outs,
                       "timing sim MT mismatch");
            emitSimRecord(ctx, "mt", mt_sim);
            auto art = std::make_shared<MtSimArtifact>();
            art->cycles = mt_sim.cycles;
            art->engine = mt_sim.engine;
            return art;
        },
        ps);
    ps.add("stsim_cached", st_sim_hit ? 1 : 0);
    ps.add("st_cycles", static_cast<int64_t>(ctx.st_sim->cycles));
    ps.add("mt_cycles", static_cast<int64_t>(ctx.mt_sim->cycles));
    ps.add("engine_fast", engine == SimEngine::Fast ? 1 : 0);
    ps.add("mt_sim_iterations",
           static_cast<int64_t>(ctx.mt_sim->engine.iterations));
    ps.add("mt_sim_skipped",
           static_cast<int64_t>(ctx.mt_sim->engine.skipped));
}

/**
 * Environment the autotune library needs, pointing into this cell's
 * *upstream* artifacts (base profile, original function/PDG). Valid
 * only while the context's artifact shared_ptrs are alive — pass
 * functions call and consume it synchronously.
 */
AutotuneInputs
makeAutotuneInputs(const PipelineContext &ctx)
{
    const Workload &w = *ctx.workload;
    AutotuneInputs in;
    in.f = &ctx.ir->func;
    in.pdg = &ctx.pdg->pdg;
    in.cd = &ctx.pdg->cd;
    in.profile = &ctx.profile->profile;
    in.gremio = ctx.opts.scheduler == Scheduler::Gremio;
    in.num_threads = ctx.opts.num_threads;
    in.use_coco = ctx.opts.use_coco;
    in.coco = ctx.opts.coco;
    in.queue_capacity = resolvedQueueCapacity(ctx.opts);
    in.max_queues = ctx.opts.max_queues;
    in.machine = ctx.opts.machine;
    in.engine = ctx.opts.sim_engine;
    in.ref_args = &w.ref_args;
    in.make_memory = [&w]() { return workloadMemory(w, /*ref=*/true); };
    in.st_live_outs = &ctx.st_ref->live_outs;
    in.st_final_mem = &ctx.st_ref->final_mem;
    in.pool = ctx.pool;
    in.coco_jobs = ctx.opts.coco_jobs;
    return in;
}

/**
 * Close the profile -> schedule loop (src/autotune/): run the
 * feedback autotuner from this cell's schedule, then republish the
 * tuned schedule into the partition/plan/prog/mt_run/mt_decoded/
 * mt_sim slots so every downstream pass — obs-profile, obs-provenance
 * — and the assembled result describe the tuned schedule. The
 * baseline artifacts keep their un-suffixed cache keys, so a baseline
 * cell and its autotuned twin share the entire codegen + simulation
 * prefix (which is what makes warm iterations cheap).
 */
void
passAutotune(PipelineContext &ctx, PassStats &ps)
{
    if (!ctx.opts.autotune) {
        ps.add("skipped", 1);
        return;
    }
    GMT_ASSERT(ctx.opts.simulate,
               "autotune requires the timing simulation");
    GMT_ASSERT(ctx.mt_sim && ctx.st_ref,
               "autotune needs the sim pass's artifacts");

    auto part = ctx.partition;
    auto plan = ctx.plan;
    auto prog = ctx.prog;
    auto mt_sim = ctx.mt_sim;
    ctx.autotune = ctx.cached<AutotuneArtifact>(
        autotuneKey(ctx),
        [&]() -> std::shared_ptr<const AutotuneArtifact> {
            AutotuneInputs in = makeAutotuneInputs(ctx);
            AutotuneSchedule baseline;
            baseline.partition = part->partition;
            baseline.plan = plan->plan;
            baseline.plan_coco_iterations = plan->coco_iterations;
            baseline.prog = prog->prog;
            baseline.queue_of = prog->queue_of;
            baseline.cycles = mt_sim->cycles;
            auto art = std::make_shared<AutotuneArtifact>();
            art->result = autotuneSchedule(in, baseline,
                                           ctx.opts.autotune_opts);
            art->moves_json = autotuneMovesJson(art->result);
            return art;
        },
        ps);

    // Republish the tuned schedule downstream.
    const AutotuneResult &r = ctx.autotune->result;
    const AutotuneSchedule &s = r.final_schedule;
    {
        auto art = std::make_shared<PartitionArtifact>();
        art->partition = s.partition;
        for (const auto &arc : ctx.pdg->pdg.arcs())
            if (arc.kind == DepKind::Memory &&
                art->partition.threadOf(arc.src) !=
                    art->partition.threadOf(arc.dst))
                art->has_mem_deps = true;
        ctx.partition = art;
    }
    {
        auto art = std::make_shared<PlanArtifact>();
        art->plan = s.plan;
        art->coco_iterations = s.plan_coco_iterations;
        ctx.plan = art;
    }
    {
        auto art = std::make_shared<ProgramArtifact>();
        art->prog = s.prog;
        art->queue_of = s.queue_of;
        ctx.prog = art;
    }
    {
        auto art = std::make_shared<MtRunArtifact>();
        art->computation = r.computation;
        art->duplicated_branches = r.duplicated_branches;
        art->reg_comm = r.reg_comm;
        art->mem_sync = r.mem_sync;
        ctx.mt_run = art;
    }
    if (ctx.opts.sim_engine == SimEngine::Fast) {
        auto art = std::make_shared<MtDecodedArtifact>();
        art->prog = decodeProgram(s.prog);
        ctx.mt_decoded = art;
    } else {
        ctx.mt_decoded = nullptr;
    }
    {
        auto art = std::make_shared<MtSimArtifact>();
        art->cycles = s.cycles;
        ctx.mt_sim = art;
    }

    ps.add("iterations", r.iterations);
    ps.add("moves_accepted", r.moves_accepted);
    ps.add("moves_rejected", r.moves_rejected);
    ps.add("converged", r.converged ? 1 : 0);
    ps.add("warm_cut_reuses",
           static_cast<int64_t>(r.warm_cut_reuses));
    ps.add("baseline_cycles",
           static_cast<int64_t>(r.baseline_cycles));
    ps.add("tuned_cycles", static_cast<int64_t>(s.cycles));
}

/**
 * Render one profiled cell's simulator lanes into the trace: one
 * process per cell, one lane per core carrying its compute/stall
 * intervals, one counter track per queue. Timestamps are simulated
 * cycles rendered as microseconds — a different timebase than the
 * pipeline pid's wall clock, which is why the cell gets its own pid.
 * Dense queue tracks are stride-sampled down to ~4k points to keep
 * trace files loadable; the last sample is always kept so the final
 * occupancy is right.
 */
void
emitSimTrace(PipelineContext &ctx, const ObsProfileArtifact &obs)
{
    if (!ctx.trace || !obs.simulated)
        return;
    TraceCollector &tc = *ctx.trace;
    const SimTimeline &tl = obs.timeline;
    int pid = tc.registerProcess("sim " + ctx.cellId());
    for (size_t c = 0; c < tl.core.size(); ++c) {
        tc.nameThread(pid, static_cast<int64_t>(c),
                      "core " + std::to_string(c));
        for (const CoreInterval &iv : tl.core[c])
            tc.completeEvent(coreStateName(iv.state), "sim", pid,
                             static_cast<int64_t>(c),
                             static_cast<double>(iv.begin),
                             static_cast<double>(iv.end - iv.begin));
    }
    constexpr size_t kMaxQueueSamples = 4096;
    for (size_t q = 0; q < tl.queue.size(); ++q) {
        const std::vector<QueueSample> &samples = tl.queue[q];
        if (samples.empty())
            continue;
        const size_t stride =
            samples.size() > kMaxQueueSamples
                ? (samples.size() + kMaxQueueSamples - 1) /
                      kMaxQueueSamples
                : 1;
        const std::string name = "queue " + std::to_string(q);
        for (size_t i = 0; i < samples.size(); i += stride)
            tc.counterEvent(name, pid,
                            static_cast<double>(samples[i].cycle),
                            "occupancy", samples[i].occupancy);
        if (stride > 1 && (samples.size() - 1) % stride != 0)
            tc.counterEvent(
                name, pid,
                static_cast<double>(samples.back().cycle),
                "occupancy", samples.back().occupancy);
    }
}

void
passObsProfile(PipelineContext &ctx, PassStats &ps)
{
    // An attached trace collector needs the timeline even when the
    // caller did not ask for stall profiling explicitly.
    if (!ctx.opts.profile_stalls && !ctx.trace) {
        ps.add("skipped", 1);
        return;
    }
    const Workload &w = *ctx.workload;
    auto mt_run = ctx.mt_run;

    if (!ctx.opts.simulate) {
        // Counts-only mode: no simulation to attribute, but the
        // dynamic instruction counts give fig1 its breakdown.
        ctx.obs = ctx.cached<ObsProfileArtifact>(
            obsProfileKey(ctx),
            [mt_run]() -> std::shared_ptr<const ObsProfileArtifact> {
                auto art = std::make_shared<ObsProfileArtifact>();
                art->computation = mt_run->computation;
                art->duplicated_branches = mt_run->duplicated_branches;
                art->reg_comm = mt_run->reg_comm;
                art->mem_sync = mt_run->mem_sync;
                return art;
            },
            ps);
        ps.add("simulated", 0);
        return;
    }

    const MachineConfig cfg = ctx.opts.machine;
    const SimEngine engine = ctx.opts.sim_engine;
    auto prog = ctx.prog;
    auto plan = ctx.plan;
    auto mt_dec = ctx.mt_decoded;
    auto mt_sim = ctx.mt_sim;
    ctx.obs = ctx.cached<ObsProfileArtifact>(
        obsProfileKey(ctx),
        [&w, cfg, engine, prog, plan, mt_run, mt_dec,
         mt_sim]() -> std::shared_ptr<const ObsProfileArtifact> {
            MemoryImage mem = workloadMemory(w, /*ref=*/true);
            CmpSimulator sim(cfg, engine);
            SimProfile profile;
            TimelineBuilder timeline;
            sim.setProfile(&profile);
            sim.setTimeline(&timeline);
            SimResult r = mt_dec
                              ? sim.run(mt_dec->prog, w.ref_args, mem)
                              : sim.run(prog->prog, w.ref_args, mem);
            GMT_ASSERT(!mt_sim || r.cycles == mt_sim->cycles,
                       "instrumented rerun diverged from the sim "
                       "pass for ",
                       w.name);
            std::string violation =
                checkStallConservation(profile, stallTotals(r));
            if (!violation.empty())
                panic("stall attribution broke conservation for ",
                      w.name, " (", simEngineName(engine),
                      " engine): ", violation);
            auto art = std::make_shared<ObsProfileArtifact>();
            art->simulated = true;
            art->report =
                buildStallReport(profile, r.cycles, plan->plan,
                                 prog->queue_of, prog->prog);
            art->profile = std::move(profile);
            art->timeline = timeline.take();
            art->computation = mt_run->computation;
            art->duplicated_branches = mt_run->duplicated_branches;
            art->reg_comm = mt_run->reg_comm;
            art->mem_sync = mt_run->mem_sync;
            return art;
        },
        ps);
    ps.add("simulated", 1);
    ps.add("stall_cycles",
           static_cast<int64_t>(ctx.obs->report.totalStallCycles()));
    ps.add("queues",
           static_cast<int64_t>(ctx.obs->report.queues.size()));
    ps.add("hot_blocks",
           static_cast<int64_t>(ctx.obs->report.blocks.size()));
    // Lanes are emitted per cell even when the artifact was cached:
    // the trace belongs to this run, the artifact to the cache.
    emitSimTrace(ctx, *ctx.obs);
}

/**
 * Re-derive every scheduling decision with instrumented serial
 * re-runs of the deciding algorithms, each asserted equal to the
 * pipeline's own (possibly cache-hit) artifact — so the published
 * record provably describes this cell's schedule no matter which run
 * populated the cache, and is byte-identical across job counts,
 * cache states, and warm/cold max-flow.
 */
void
passObsProvenance(PipelineContext &ctx, PassStats &ps)
{
    if (!ctx.opts.record_provenance) {
        ps.add("skipped", 1);
        return;
    }
    if (ctx.opts.autotune) {
        // A tuned schedule is not re-derivable by the bare
        // partitioner: build its record from the autotuner's result
        // (SCC-synthesized units; placement re-derived by a serial
        // instrumented COCO run under the final stall boost, asserted
        // equal to the tuned plan).
        GMT_ASSERT(ctx.autotune, "autotune pass must run first");
        auto at = ctx.autotune;
        const std::string cell = ctx.cellId();
        const std::string wname = ctx.workload->name;
        const std::string sched = schedulerName(ctx.opts.scheduler);
        ctx.prov = ctx.cached<ProvenanceArtifact>(
            provenanceKey(ctx),
            [&]() -> std::shared_ptr<const ProvenanceArtifact> {
                auto art = std::make_shared<ProvenanceArtifact>();
                art->prov = autotuneProvenance(makeAutotuneInputs(ctx),
                                               at->result, cell, wname,
                                               sched);
                art->canonical_json = provenanceJson(art->prov);
                return art;
            },
            ps);
        ps.add("units",
               static_cast<int64_t>(
                   ctx.prov->prov.partition.units.size()));
        ps.add("placements",
               static_cast<int64_t>(
                   ctx.prov->prov.placement.placements.size()));
        ps.add("json_bytes",
               static_cast<int64_t>(ctx.prov->canonical_json.size()));
        return;
    }
    auto ir = ctx.ir;
    auto profile = ctx.profile;
    auto pdg_art = ctx.pdg;
    auto part = ctx.partition;
    auto plan = ctx.plan;
    auto prog = ctx.prog;
    const PipelineOptions opts = ctx.opts;
    const std::string cell = ctx.cellId();
    const std::string wname = ctx.workload->name;
    ctx.prov = ctx.cached<ProvenanceArtifact>(
        provenanceKey(ctx),
        [&]() -> std::shared_ptr<const ProvenanceArtifact> {
            auto art = std::make_shared<ProvenanceArtifact>();
            Provenance &p = art->prov;
            p.cell = cell;
            p.workload = wname;
            p.scheduler = schedulerName(opts.scheduler);
            p.coco = opts.use_coco;
            p.num_threads = opts.num_threads;

            // Partitioner decisions.
            ThreadPartition repart =
                opts.scheduler == Scheduler::Dswp
                    ? dswpPartition(
                          pdg_art->pdg, profile->profile,
                          {.num_threads = opts.num_threads},
                          &p.partition)
                    : gremioPartition(
                          pdg_art->pdg, profile->profile,
                          {.num_threads = opts.num_threads},
                          &p.partition);
            GMT_ASSERT(repart.assign == part->partition.assign,
                       "provenance partition rerun diverged for ",
                       cell);

            // Placement decisions.
            if (opts.use_coco) {
                CocoExec exec; // all inline: the serial apply walk
                exec.provenance = &p.placement;
                auto coco = cocoOptimize(
                    ir->func, pdg_art->pdg, part->partition,
                    pdg_art->cd, profile->profile, opts.coco, exec);
                GMT_ASSERT(coco.plan == plan->plan,
                           "provenance placement rerun diverged for ",
                           cell);
            } else {
                // Algorithm 1 has no search to replay: synthesize the
                // rule and per-point profile weights from the plan.
                p.placement.source = "mtcg-default";
                const auto &placements = plan->plan.placements;
                for (size_t i = 0; i < placements.size(); ++i) {
                    const CommPlacement &pl = placements[i];
                    PlacementDecision d;
                    d.index = static_cast<int>(i);
                    d.is_mem = pl.kind == CommKind::MemorySync;
                    d.reg = pl.reg;
                    d.src_thread = pl.src_thread;
                    d.dst_thread = pl.dst_thread;
                    d.rule = "mtcg-default";
                    for (const auto &pt : pl.points)
                        d.points.push_back(
                            {pt.block, pt.pos,
                             static_cast<int64_t>(
                                 profile->profile.pointWeight(pt)),
                             0});
                    p.placement.placements.push_back(std::move(d));
                }
            }

            // Queue decisions.
            if (opts.max_queues <= 0) {
                // passQueueAlloc was skipped: placement i owns
                // queue i (paper footnote 1).
                p.queues.max_queues = 0;
                p.queues.num_queues = prog->prog.num_queues;
                const auto &placements = plan->plan.placements;
                for (size_t i = 0; i < prog->queue_of.size(); ++i) {
                    const CommPlacement &pl = placements[i];
                    QueueDecision d;
                    d.queue = prog->queue_of[i];
                    d.src_thread = pl.src_thread;
                    d.dst_thread = pl.dst_thread;
                    d.rule = "identity";
                    d.pair_placements = 1;
                    d.pair_queues = 1;
                    d.placements.push_back(static_cast<int>(i));
                    p.queues.queues.push_back(std::move(d));
                }
            } else {
                QueueAllocation alloc = allocateQueues(
                    plan->plan, opts.max_queues, &p.queues);
                GMT_ASSERT(alloc.queue_of == prog->queue_of,
                           "provenance queue rerun diverged for ",
                           cell);
            }

            art->canonical_json = provenanceJson(p);
            return art;
        },
        ps);
    ps.add("units",
           static_cast<int64_t>(ctx.prov->prov.partition.units.size()));
    ps.add("placements",
           static_cast<int64_t>(
               ctx.prov->prov.placement.placements.size()));
    ps.add("elided",
           static_cast<int64_t>(ctx.prov->prov.placement.elided.size()));
    ps.add("queues",
           static_cast<int64_t>(ctx.prov->prov.queues.queues.size()));
    ps.add("json_bytes",
           static_cast<int64_t>(ctx.prov->canonical_json.size()));
}

} // namespace

PassManager
PassManager::codegenPipeline()
{
    PassManager pm;
    pm.addPass("build-ir", passBuildIr);
    pm.addPass("edge-split", passEdgeSplit);
    pm.addPass("verify", passVerify);
    pm.addPass("profile", passProfile);
    pm.addPass("pdg", passPdg);
    pm.addPass("partition", passPartition);
    pm.addPass("placement", passPlacement);
    pm.addPass("mtcg", passMtcg);
    pm.addPass("queue-alloc", passQueueAlloc);
    return pm;
}

PassManager
PassManager::standardPipeline()
{
    PassManager pm = codegenPipeline();
    pm.addPass("verify-mt", passVerifyMt);
    pm.addPass("mt-run", passMtRun);
    pm.addPass("sim", passSim);
    pm.addPass("autotune", passAutotune);
    pm.addPass("obs-profile", passObsProfile);
    pm.addPass("obs-provenance", passObsProvenance);
    return pm;
}

} // namespace gmt
