#include "driver/stats.hpp"

#include <cmath>
#include <cstdio>

#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace gmt
{

std::string
JsonObject::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonObject::key(const std::string &k)
{
    if (!body_.empty())
        body_ += ',';
    body_ += '"';
    body_ += escape(k);
    body_ += "\":";
}

JsonObject &
JsonObject::str(const std::string &k, const std::string &value)
{
    key(k);
    body_ += '"';
    body_ += escape(value);
    body_ += '"';
    return *this;
}

JsonObject &
JsonObject::num(const std::string &k, double value)
{
    key(k);
    if (!std::isfinite(value)) {
        body_ += "null";
        return *this;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    body_ += buf;
    return *this;
}

JsonObject &
JsonObject::num(const std::string &k, int64_t value)
{
    key(k);
    body_ += std::to_string(value);
    return *this;
}

JsonObject &
JsonObject::num(const std::string &k, uint64_t value)
{
    key(k);
    body_ += std::to_string(value);
    return *this;
}

JsonObject &
JsonObject::boolean(const std::string &k, bool value)
{
    key(k);
    body_ += value ? "true" : "false";
    return *this;
}

std::string
JsonObject::render() const
{
    return "{" + body_ + "}";
}

StatsSink::StatsSink(const std::string &path)
    : owned_(path, std::ios::trunc), os_(&owned_)
{
    if (!owned_)
        fatal("cannot open stats file ", path);
}

StatsSink::StatsSink(std::ostream &os) : os_(&os) {}

void
StatsSink::write(const JsonObject &record)
{
    std::string line = record.render();
    line += '\n';
    std::lock_guard<std::mutex> lock(mu_);
    *os_ << line;
    os_->flush();
    ++records_;
}

uint64_t
StatsSink::recordsWritten() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return records_;
}

void
writeMetricsRecords(const MetricsRegistry &registry, StatsSink &sink)
{
    for (const MetricSample &s : registry.snapshot()) {
        JsonObject rec;
        rec.num("schema", int64_t{1})
            .str("type", "metrics")
            .str("name", s.name)
            .str("kind", metricKindName(s.kind));
        if (s.kind == MetricSample::Kind::Histogram) {
            const Histogram::Snapshot &h = s.hist;
            // Guard the derived moments: an empty histogram has no
            // mean and a single sample has no spread — both must
            // render as 0 (0/0 and sqrt of a negative rounding
            // residue would otherwise leak NaN into the JSONL).
            double n = static_cast<double>(h.count);
            double mean = h.count ? h.sum / n : 0.0;
            double var =
                h.count >= 2 ? (h.sum_sq / n) - mean * mean : 0.0;
            double sd = var > 0.0 ? std::sqrt(var) : 0.0;
            rec.num("count", h.count)
                .num("sum", h.sum)
                .num("mean", mean)
                .num("stddev", sd)
                .num("min", h.count ? h.min : 0.0)
                .num("max", h.count ? h.max : 0.0);
            std::string buckets;
            for (int b = 0; b < Histogram::kBuckets; ++b) {
                if (!h.buckets[b])
                    continue;
                if (!buckets.empty())
                    buckets += ',';
                buckets += std::to_string(b) + ':' +
                           std::to_string(h.buckets[b]);
            }
            rec.str("buckets", buckets);
        } else {
            rec.num("value", s.value);
        }
        sink.write(rec);
    }
}

} // namespace gmt
