#ifndef GMT_DRIVER_PASS_MANAGER_HPP
#define GMT_DRIVER_PASS_MANAGER_HPP

/**
 * @file
 * The staged pass pipeline behind runPipeline(): a PipelineContext
 * owns one cell's artifacts, a PassManager runs named passes over it
 * with per-pass wall-clock timing and counters, and an optional
 * ArtifactCache shares the artifacts between cells that agree on the
 * option prefix feeding each stage.
 *
 * The standard pipeline is the paper's flow, one named pass per
 * stage:
 *
 *   build-ir -> edge-split -> verify -> profile -> pdg -> partition
 *     -> placement -> mtcg -> queue-alloc -> verify-mt -> mt-run
 *     -> sim -> autotune -> obs-profile -> obs-provenance
 *
 * Passes communicate exclusively through the context's immutable
 * shared artifacts, which is what makes both the caching and the
 * parallel experiment runner safe: a cached artifact is never
 * mutated, only replaced downstream by a new artifact under a more
 * specific key.
 */

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/control_dep.hpp"
#include "analysis/dominators.hpp"
#include "analysis/edge_profile.hpp"
#include "driver/artifact_cache.hpp"
#include "driver/pipeline.hpp"
#include "driver/stats.hpp"
#include "mtcg/comm_plan.hpp"
#include "obs/provenance.hpp"
#include "obs/stall_report.hpp"
#include "obs/timeline.hpp"
#include "obs/trace_writer.hpp"
#include "runtime/mt_interpreter.hpp"

namespace gmt
{

class ThreadPool;

/** Timing + counters for one executed pass. */
struct PassStats
{
    std::string pass;
    double wall_ms = 0.0;

    /** Artifact came from the cache (the pass did no real work). */
    bool cached = false;

    /** Named scalar counters (pdg arcs, queues, iterations, ...). */
    std::vector<std::pair<std::string, int64_t>> counters;

    void add(const std::string &name, int64_t value)
    {
        counters.emplace_back(name, value);
    }
};

// Immutable artifacts, shared between cells via the ArtifactCache.

/** Verified, edge-split copy of the workload function. */
struct IrArtifact
{
    Function func{""};
};

struct ProfileArtifact
{
    EdgeProfile profile;
};

/** PDG bundled with the CFG analyses built on the same Function. */
struct PdgArtifact
{
    /** Keeps the Function the Pdg points into alive. */
    std::shared_ptr<const IrArtifact> ir;
    Pdg pdg;
    DominatorTree pdom;
    ControlDependence cd;
};

struct PartitionArtifact
{
    ThreadPartition partition;

    /** Any cross-thread memory dependence in the PDG? */
    bool has_mem_deps = false;
};

struct PlanArtifact
{
    CommPlan plan;

    /** COCO repeat-until iterations (0 for the default placement). */
    int coco_iterations = 0;
};

struct ProgramArtifact
{
    MtProgram prog;

    /**
     * Queue assigned to each plan placement (the witness the MT
     * verifier checks emission against). Identity after mtcg; the
     * multiplexed assignment after queue-alloc.
     */
    std::vector<int> queue_of;
};

/** Single-threaded reference run (the equivalence oracle's truth). */
struct StRefArtifact
{
    std::vector<int64_t> live_outs;
    MemoryImage final_mem;
};

/** Dynamic instruction counts of the MT run (oracle already passed). */
struct MtRunArtifact
{
    uint64_t computation = 0;
    uint64_t duplicated_branches = 0;
    uint64_t reg_comm = 0;
    uint64_t mem_sync = 0;
};

/**
 * Pre-decoded instruction streams for the fast timing engine.
 * Decoding is machine-independent (sim/decoded_program.hpp), so the
 * artifacts are keyed on the program alone and shared across every
 * point of a machine-parameter sweep (ablate_comm_latency etc.).
 */
struct StDecodedArtifact
{
    DecodedProgram prog; ///< the single-threaded original, 1 thread
};

struct MtDecodedArtifact
{
    DecodedProgram prog;
};

struct StSimArtifact
{
    uint64_t cycles = 0;
    SimEngineStats engine;
};

struct MtSimArtifact
{
    uint64_t cycles = 0;
    SimEngineStats engine;
};

/**
 * Observability rollup of one cell (the obs-profile pass): the raw
 * stall attribution and execution timeline of an instrumented MT
 * timing run, plus the ranked per-queue / per-block report
 * (obs/stall_report.hpp). The attribution is engine-independent and
 * conserved — it sums exactly to the aggregate CoreStats counters,
 * checked at build time. In counts-only mode (simulate off) only the
 * dynamic instruction counts below are filled, which is all
 * bench/fig1 needs.
 */
struct ObsProfileArtifact
{
    bool simulated = false;

    SimProfile profile;   ///< raw (core, block[, queue]) charges
    SimTimeline timeline; ///< per-core intervals + queue occupancy
    StallReport report;   ///< ranked rollup (empty when !simulated)

    // Dynamic instruction counts, copied from the MtRunArtifact
    // (always filled; the fig1 breakdown sources them from here).
    uint64_t computation = 0;
    uint64_t duplicated_branches = 0;
    uint64_t reg_comm = 0;
    uint64_t mem_sync = 0;

    uint64_t communication() const { return reg_comm + mem_sync; }
};

/**
 * The autotune pass's output (src/autotune/): the feedback loop's
 * result — final schedule, move log, trajectory — plus the canonical
 * move-log JSON (autotuneMovesJson) the determinism tests compare and
 * gmt-explain prints. The pass also republishes the tuned schedule
 * into the partition/plan/prog/mt_run/mt_sim slots, so everything
 * downstream (obs-profile, obs-provenance, the result) describes the
 * tuned schedule.
 */
struct AutotuneArtifact
{
    AutotuneResult result;
    std::string moves_json;
};

/**
 * Decision provenance of one cell (the obs-provenance pass): the full
 * Provenance record re-derived by serial instrumented re-runs of the
 * partitioner, COCO, and the queue allocator — each asserted equal to
 * the pipeline's own artifacts, so a cache-hit cell carries exactly
 * the provenance of the run that populated the cache. canonical_json
 * is the byte representation (schema:1, fixed key order) determinism
 * tests and gmt-explain --diff compare; it excludes execution-only
 * fields (warm/cold solve), which live only in `prov`.
 */
struct ProvenanceArtifact
{
    Provenance prov;
    std::string canonical_json;
};

/**
 * Everything one cell's pass pipeline reads and produces. The
 * context is single-threaded; sharing happens only through the
 * (thread-safe) cache and the immutable artifacts it returns.
 */
struct PipelineContext
{
    PipelineContext(const Workload &w, const PipelineOptions &o)
        : workload(&w), opts(o)
    {
    }

    const Workload *workload;
    PipelineOptions opts;

    /** Optional cross-cell artifact cache (may be null). */
    ArtifactCache *cache = nullptr;

    /** Optional structured stats sink (may be null). */
    StatsSink *stats = nullptr;

    /**
     * Optional Chrome-trace collector (may be null). When attached,
     * PassManager::run() emits one span per executed pass and the
     * obs-profile pass — forced on by the collector — adds the cell's
     * simulator lanes.
     */
    TraceCollector *trace = nullptr;

    /**
     * Optional shared worker pool (may be null). Passes with
     * deterministic internal parallelism (placement's COCO cut
     * solver) nest their tasks here via TaskGroup, composing with the
     * experiment runner's cell-level tasks without oversubscription.
     */
    ThreadPool *pool = nullptr;

    // Stage artifacts, filled in pipeline order.
    std::shared_ptr<const IrArtifact> ir;
    std::shared_ptr<const ProfileArtifact> profile;
    std::shared_ptr<const PdgArtifact> pdg;
    std::shared_ptr<const PartitionArtifact> partition;
    std::shared_ptr<const PlanArtifact> plan;
    std::shared_ptr<const ProgramArtifact> prog;
    std::shared_ptr<const StRefArtifact> st_ref;
    std::shared_ptr<const MtRunArtifact> mt_run;
    std::shared_ptr<const StDecodedArtifact> st_decoded;
    std::shared_ptr<const MtDecodedArtifact> mt_decoded;
    std::shared_ptr<const StSimArtifact> st_sim;
    std::shared_ptr<const MtSimArtifact> mt_sim;
    std::shared_ptr<const AutotuneArtifact> autotune;
    std::shared_ptr<const ObsProfileArtifact> obs;
    std::shared_ptr<const ProvenanceArtifact> prov;

    /** Assembled by PassManager::run() after the last pass. */
    PipelineResult result;

    /** One entry per executed pass, in execution order. */
    std::vector<PassStats> pass_stats;

    /** "workload/SCHED[+COCO]" — stable id used in stats records. */
    std::string cellId() const;

    /**
     * Cache-aware compute: with a cache attached, defer to
     * getOrCompute under @p key; without one, just run @p compute.
     * Records hit/miss into @p ps.
     */
    template <typename T>
    std::shared_ptr<const T>
    cached(const std::string &key,
           const std::function<std::shared_ptr<const T>()> &compute,
           PassStats &ps)
    {
        if (!cache) {
            ps.cached = false;
            return compute();
        }
        bool hit = false;
        auto value = cache->getOrCompute<T>(key, compute, &hit);
        ps.cached = hit;
        return value;
    }
};

/**
 * An ordered list of named passes over a PipelineContext. run()
 * times every pass, appends its PassStats to the context, emits a
 * stats record per pass (when a sink is attached), optionally
 * re-checks IR/partition invariants between passes
 * (PipelineOptions::check_invariants), and assembles the final
 * PipelineResult.
 */
class PassManager
{
  public:
    using PassFn = std::function<void(PipelineContext &, PassStats &)>;

    struct Pass
    {
        std::string name;
        PassFn run;
    };

    /** Append a pass; order of addition is execution order. */
    void addPass(std::string name, PassFn fn);

    const std::vector<Pass> &passes() const { return passes_; }

    /** Names in execution order (tests, docs). */
    std::vector<std::string> passNames() const;

    /** Run every pass in order and finalize ctx.result. */
    void run(PipelineContext &ctx) const;

    /** The paper's full pipeline (the 15 standard passes). */
    static PassManager standardPipeline();

    /**
     * The code-generation prefix of the standard pipeline: build-ir
     * through queue-alloc, without verification, execution, or
     * simulation. gmt-lint uses this to materialize a cell's
     * artifacts and then run the MT verifier itself to collect (not
     * die on) diagnostics.
     */
    static PassManager codegenPipeline();

  private:
    std::vector<Pass> passes_;
};

// Cache-key builders (exposed for tests; see artifact_cache.hpp for
// the key discipline). Each returns the key of the stage's artifact
// for this context's workload + option prefix.
std::string irKey(const PipelineContext &ctx);
std::string profileKey(const PipelineContext &ctx);
std::string pdgKey(const PipelineContext &ctx);
std::string partitionKey(const PipelineContext &ctx);
std::string planKey(const PipelineContext &ctx);
std::string mtcgKey(const PipelineContext &ctx);
std::string queueAllocKey(const PipelineContext &ctx);
std::string autotuneKey(const PipelineContext &ctx);
std::string obsProfileKey(const PipelineContext &ctx);
std::string provenanceKey(const PipelineContext &ctx);
std::string machineKey(const MachineConfig &m);

/**
 * machineKey minus the synchronization-array axes (sa_queues,
 * sa_ports, sa_latency, queue_capacity). A single-threaded run never
 * touches the sync array, so its simulation artifact is keyed on
 * this prefix and shared across SA-parameter sweeps
 * (ablate_comm_latency, ablate_queue_size).
 */
std::string coreMachineKey(const MachineConfig &m);

/** Resolved queue capacity (option override or per-scheduler default). */
int resolvedQueueCapacity(const PipelineOptions &opts);

} // namespace gmt

#endif // GMT_DRIVER_PASS_MANAGER_HPP
