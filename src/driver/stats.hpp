#ifndef GMT_DRIVER_STATS_HPP
#define GMT_DRIVER_STATS_HPP

/**
 * @file
 * Structured stats sink for the pass pipeline: one JSON object per
 * line (JSONL), one record per pass execution and one per finished
 * cell, safe to write from concurrent experiment-runner workers.
 * See DESIGN.md ("Stats JSON schema") for the record fields.
 */

#include <cstdint>
#include <fstream>
#include <mutex>
#include <ostream>
#include <string>

namespace gmt
{

class MetricsRegistry;

/**
 * Builder for one flat JSON object. Keys are emitted in insertion
 * order; values are strings, numbers, or booleans. Strings are
 * escaped per RFC 8259 (the subset the pipeline produces: quotes,
 * backslashes, control characters).
 */
class JsonObject
{
  public:
    JsonObject &str(const std::string &key, const std::string &value);
    JsonObject &num(const std::string &key, double value);
    JsonObject &num(const std::string &key, int64_t value);
    JsonObject &num(const std::string &key, uint64_t value);
    JsonObject &boolean(const std::string &key, bool value);

    /** Render "{...}" (no trailing newline). */
    std::string render() const;

    static std::string escape(const std::string &s);

  private:
    void key(const std::string &k);
    std::string body_;
};

/**
 * Thread-safe JSONL sink. Records are appended atomically (one lock
 * per line), so concurrent cells never interleave within a line.
 */
class StatsSink
{
  public:
    /** Write to @p path (truncates). Throws FatalError if unopenable. */
    explicit StatsSink(const std::string &path);

    /** Write to an externally owned stream (tests). */
    explicit StatsSink(std::ostream &os);

    void write(const JsonObject &record);

    uint64_t recordsWritten() const;

  private:
    std::ofstream owned_;
    std::ostream *os_;
    mutable std::mutex mu_;
    uint64_t records_ = 0;
};

/**
 * Serialize a metrics-registry snapshot into @p sink, one
 * `type:"metrics"` JSONL record per instrument (sorted by name).
 * Counters/gauges carry `value`; histograms carry count/sum/min/max
 * plus the nonzero power-of-two buckets as a compact
 * "bucket:count,..." string. Values are cumulative for the process,
 * so the last emission wins when a harness publishes per batch.
 */
void writeMetricsRecords(const MetricsRegistry &registry,
                         StatsSink &sink);

} // namespace gmt

#endif // GMT_DRIVER_STATS_HPP
