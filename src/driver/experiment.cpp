#include "driver/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <memory>

#include "support/thread_pool.hpp"

namespace gmt
{

ExperimentRunner::ExperimentRunner(ExperimentOptions opts)
    : opts_(opts)
{
}

int
ExperimentRunner::effectiveJobs() const
{
    if (opts_.jobs > 0)
        return opts_.jobs;
    return ThreadPool::hardwareDefault();
}

std::vector<PipelineResult>
ExperimentRunner::runAll(const std::vector<ExperimentCell> &cells)
{
    using Clock = std::chrono::steady_clock;
    auto t0 = Clock::now();

    const int jobs = effectiveJobs();
    const PassManager pipeline = PassManager::standardPipeline();
    ArtifactCache *cache = opts_.use_cache ? &cache_ : nullptr;

    std::vector<PipelineResult> results(cells.size());
    std::vector<std::exception_ptr> errors(cells.size());
    obs_profiles_.assign(cells.size(), nullptr);
    provenances_.assign(cells.size(), nullptr);

    // One shared pool serves both levels of parallelism: cell tasks
    // here, and COCO's nested cut tasks (via TaskGroup, so a cell
    // blocked on its cuts executes them itself instead of holding a
    // worker idle). Size for whichever level wants more.
    const bool parallel_cells = jobs != 1 && cells.size() > 1;
    int max_coco_jobs = 1;
    for (const ExperimentCell &cell : cells)
        max_coco_jobs = std::max(max_coco_jobs, cell.opts.coco_jobs);
    std::unique_ptr<ThreadPool> pool;
    if (parallel_cells || max_coco_jobs > 1)
        pool = std::make_unique<ThreadPool>(
            std::max(parallel_cells ? jobs : 1, max_coco_jobs));

    auto run_cell = [&](size_t i) {
        try {
            PipelineContext ctx(cells[i].workload, cells[i].opts);
            ctx.cache = cache;
            ctx.stats = opts_.stats;
            ctx.trace = opts_.trace;
            ctx.pool = pool.get();
            pipeline.run(ctx);
            results[i] = std::move(ctx.result);
            obs_profiles_[i] = ctx.obs;
            provenances_[i] = ctx.prov;
        } catch (...) {
            errors[i] = std::current_exception();
        }
    };

    if (!parallel_cells) {
        for (size_t i = 0; i < cells.size(); ++i)
            run_cell(i);
    } else {
        for (size_t i = 0; i < cells.size(); ++i)
            pool->submit([&, i] { run_cell(i); });
        pool->wait();
    }

    summary_.cells = static_cast<int>(cells.size());
    summary_.jobs = jobs;
    summary_.wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0)
            .count();
    summary_.cache = cache_.counters();

    // Deterministic error reporting: first failing cell in cell order.
    for (auto &err : errors)
        if (err)
            std::rethrow_exception(err);

    return results;
}

} // namespace gmt
