#ifndef GMT_DRIVER_REPORT_HPP
#define GMT_DRIVER_REPORT_HPP

/**
 * @file
 * Small aggregation helpers shared by the bench harnesses (arithmetic
 * and geometric means, percentage formatting over PipelineResults).
 */

#include <vector>

#include "driver/pipeline.hpp"

namespace gmt
{

/** Arithmetic mean; 0 for empty input. */
double mean(const std::vector<double> &xs);

/** Geometric mean; 0 for empty input (values must be positive). */
double geomean(const std::vector<double> &xs);

/**
 * Relative dynamic communication of COCO vs MTCG for one cell
 * (1.0 = unchanged; the paper's Figure 7 y-axis).
 */
double relativeComm(const PipelineResult &with_coco,
                    const PipelineResult &baseline);

} // namespace gmt

#endif // GMT_DRIVER_REPORT_HPP
