#ifndef GMT_DRIVER_REPORT_HPP
#define GMT_DRIVER_REPORT_HPP

/**
 * @file
 * Small aggregation helpers shared by the bench harnesses (arithmetic
 * and geometric means, percentage formatting over PipelineResults).
 */

#include <vector>

#include "driver/pipeline.hpp"

namespace gmt
{

/** Arithmetic mean; 0 for empty input. */
double mean(const std::vector<double> &xs);

/**
 * Geometric mean over the positive values; non-positive entries are
 * skipped (a zero speedup means "cell not simulated", and log() of it
 * would poison the whole average). 0 when nothing positive remains.
 */
double geomean(const std::vector<double> &xs);

/** Median (mean of the middle two for even sizes); 0 for empty input. */
double median(std::vector<double> xs);

/** Population standard deviation; 0 for fewer than two values. */
double stddev(const std::vector<double> &xs);

/**
 * Relative dynamic communication of COCO vs MTCG for one cell
 * (1.0 = unchanged; the paper's Figure 7 y-axis).
 */
double relativeComm(const PipelineResult &with_coco,
                    const PipelineResult &baseline);

} // namespace gmt

#endif // GMT_DRIVER_REPORT_HPP
