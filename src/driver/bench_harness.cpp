#include "driver/bench_harness.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace gmt
{

namespace
{

[[noreturn]] void
usage(const char *argv0, int exit_code)
{
    std::fprintf(
        stderr,
        "usage: %s [--jobs N] [--serial] [--coco-jobs N] "
        "[--no-cache] [--stats FILE] [--only W1,W2,...] [--quiet] "
        "[--no-mtverify] [--sim fast|reference] [--trace FILE] "
        "[--workload-dir DIR] [--provenance FILE]\n",
        argv0);
    std::exit(exit_code);
}

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> parts;
    size_t start = 0;
    while (start <= csv.size()) {
        size_t comma = csv.find(',', start);
        if (comma == std::string::npos)
            comma = csv.size();
        if (comma > start)
            parts.push_back(csv.substr(start, comma - start));
        start = comma + 1;
    }
    return parts;
}

} // namespace

BenchOptions
parseBenchOptions(int argc, char **argv)
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n", argv[0],
                             arg.c_str());
                usage(argv[0], 2);
            }
            return argv[++i];
        };
        if (arg == "--jobs")
            opts.jobs = std::atoi(value().c_str());
        else if (arg == "--serial")
            opts.jobs = 1;
        else if (arg == "--coco-jobs")
            opts.coco_jobs = std::atoi(value().c_str());
        else if (arg == "--no-cache")
            opts.use_cache = false;
        else if (arg == "--stats")
            opts.stats_path = value();
        else if (arg == "--only")
            opts.only = splitCsv(value());
        else if (arg == "--quiet")
            opts.quiet = true;
        else if (arg == "--no-mtverify")
            opts.verify_mt = false;
        else if (arg == "--sim") {
            std::string engine = value();
            if (engine == "fast")
                opts.sim_engine = SimEngine::Fast;
            else if (engine == "reference")
                opts.sim_engine = SimEngine::Reference;
            else {
                std::fprintf(stderr,
                             "%s: --sim wants 'fast' or 'reference', "
                             "got '%s'\n",
                             argv[0], engine.c_str());
                usage(argv[0], 2);
            }
        }
        else if (arg == "--trace")
            opts.trace_path = value();
        else if (arg == "--workload-dir")
            opts.workload_dir = value();
        else if (arg == "--provenance")
            opts.provenance_path = value();
        else if (arg == "--help" || arg == "-h")
            usage(argv[0], 0);
        else {
            std::fprintf(stderr, "%s: unknown flag %s\n", argv[0],
                         arg.c_str());
            usage(argv[0], 2);
        }
    }
    return opts;
}

BenchHarness::BenchHarness(int argc, char **argv)
    : BenchHarness(parseBenchOptions(argc, argv))
{
}

BenchHarness::BenchHarness(const BenchOptions &opts) : opts_(opts)
{
    if (!opts_.stats_path.empty()) {
        try {
            stats_ = std::make_unique<StatsSink>(opts_.stats_path);
        } catch (const FatalError &e) {
            std::fprintf(stderr, "%s\n", e.what());
            std::exit(2);
        }
    }
    if (!opts_.trace_path.empty())
        trace_ = std::make_unique<TraceCollector>();
    ExperimentOptions eo;
    eo.jobs = opts_.jobs;
    eo.use_cache = opts_.use_cache;
    eo.stats = stats_.get();
    eo.trace = trace_.get();
    runner_ = std::make_unique<ExperimentRunner>(eo);
}

std::vector<Workload>
BenchHarness::workloads() const
{
    WorkloadRegistry registry;
    if (!opts_.workload_dir.empty()) {
        try {
            registry.loadDirectory(opts_.workload_dir);
        } catch (const FatalError &e) {
            std::fprintf(stderr, "%s\n", e.what());
            std::exit(2);
        }
    }
    std::vector<Workload> all = registry.take();
    if (opts_.only.empty())
        return all;
    for (const auto &name : opts_.only) {
        bool known =
            std::any_of(all.begin(), all.end(), [&](const Workload &w) {
                return w.name == name;
            });
        if (!known) {
            std::fprintf(stderr,
                         "--only: unknown workload '%s'; known names:",
                         name.c_str());
            for (const auto &w : all)
                std::fprintf(stderr, " %s", w.name.c_str());
            std::fprintf(stderr, "\n");
            std::exit(2);
        }
    }
    std::vector<Workload> picked;
    for (auto &w : all) {
        if (std::find(opts_.only.begin(), opts_.only.end(), w.name) !=
            opts_.only.end())
            picked.push_back(std::move(w));
    }
    return picked;
}

std::vector<PipelineResult>
BenchHarness::runAll(const std::vector<ExperimentCell> &cells)
{
    std::vector<ExperimentCell> batch = cells;
    for (ExperimentCell &cell : batch) {
        if (!opts_.verify_mt)
            cell.opts.verify_mt = false;
        cell.opts.sim_engine = opts_.sim_engine;
        if (opts_.coco_jobs > 0)
            cell.opts.coco_jobs = opts_.coco_jobs;
        if (!opts_.provenance_path.empty())
            cell.opts.record_provenance = true;
    }
    auto results = runner_->runAll(batch);
    if (!opts_.quiet) {
        const ExperimentSummary &s = runner_->summary();
        uint64_t lookups = s.cache.hits + s.cache.misses;
        std::fprintf(
            stderr,
            "[bench] %d cells, %d jobs, %.0f ms wall, cache %llu/%llu "
            "hits (%.0f%%)\n",
            s.cells, s.jobs, s.wall_ms,
            static_cast<unsigned long long>(s.cache.hits),
            static_cast<unsigned long long>(lookups),
            lookups ? 100.0 * static_cast<double>(s.cache.hits) /
                          static_cast<double>(lookups)
                    : 0.0);
    }
    if (trace_) {
        trace_->writeFile(opts_.trace_path);
        if (!opts_.quiet)
            std::fprintf(stderr, "[bench] trace: %s (%zu events)\n",
                         opts_.trace_path.c_str(),
                         trace_->numEvents());
    }
    if (!opts_.provenance_path.empty()) {
        std::ofstream os(opts_.provenance_path);
        if (!os)
            throw FatalError("cannot write provenance file: " +
                             opts_.provenance_path);
        os << "{\"schema\":1,\"type\":\"provenance-batch\",\"cells\":[";
        size_t written = 0;
        for (const auto &prov : runner_->provenances()) {
            if (!prov)
                continue;
            if (written++)
                os << ",";
            os << prov->canonical_json;
        }
        os << "]}\n";
        if (!opts_.quiet)
            std::fprintf(stderr, "[bench] provenance: %s (%zu cells)\n",
                         opts_.provenance_path.c_str(), written);
    }
    if (stats_)
        writeMetricsRecords(MetricsRegistry::global(), *stats_);
    return results;
}

} // namespace gmt
