#include "driver/artifact_cache.hpp"

namespace gmt
{

ArtifactCache::Counters
ArtifactCache::counters() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Counters c;
    c.hits = hits_;
    c.misses = misses_;
    c.entries = map_.size();
    return c;
}

void
ArtifactCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    hits_ = 0;
    misses_ = 0;
}

} // namespace gmt
