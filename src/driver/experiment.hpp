#ifndef GMT_DRIVER_EXPERIMENT_HPP
#define GMT_DRIVER_EXPERIMENT_HPP

/**
 * @file
 * The parallel experiment runner: executes a batch of independent
 * (workload, options) cells over a fixed-size thread pool, sharing
 * one ArtifactCache so cells that agree on an option prefix (the
 * common case in every figure: COCO on/off pairs per scheduler)
 * compute the shared stages once.
 *
 * Results come back in cell order and are bit-identical to serial
 * execution: every pass is a deterministic function of its cell's
 * options, and cached artifacts are immutable, so scheduling order
 * cannot leak into any PipelineResult (asserted by
 * tests/test_pass_manager.cpp).
 */

#include <string>
#include <vector>

#include "driver/artifact_cache.hpp"
#include "driver/pass_manager.hpp"
#include "driver/pipeline.hpp"
#include "driver/stats.hpp"
#include "workloads/workload.hpp"

namespace gmt
{

/** One cell of an experiment grid. */
struct ExperimentCell
{
    Workload workload;
    PipelineOptions opts;
};

/** Runner configuration. */
struct ExperimentOptions
{
    /** Worker threads; 0 = one per hardware thread, 1 = serial. */
    int jobs = 0;

    /** Share artifacts between cells (off = recompute everything). */
    bool use_cache = true;

    /** Optional per-pass/per-cell JSONL sink (not owned). */
    StatsSink *stats = nullptr;

    /**
     * Optional Chrome-trace collector (not owned). Attached to every
     * cell's context: passes emit spans, and the obs-profile pass is
     * forced on so profiled cells contribute simulator lanes.
     */
    TraceCollector *trace = nullptr;
};

/** Aggregate numbers of one runAll() batch. */
struct ExperimentSummary
{
    int cells = 0;
    int jobs = 1;
    double wall_ms = 0.0;
    ArtifactCache::Counters cache;
};

/** Thread-pooled executor of pipeline cells. */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(ExperimentOptions opts = {});

    /**
     * Run every cell (concurrently when jobs != 1) and return the
     * results in cell order. If any cell fails, the first failing
     * cell's error (in cell order) is rethrown after the batch
     * drains.
     */
    std::vector<PipelineResult> runAll(
        const std::vector<ExperimentCell> &cells);

    /** Summary of the most recent runAll(). */
    const ExperimentSummary &summary() const { return summary_; }

    /**
     * Observability artifacts of the most recent runAll(), parallel
     * to its result vector. Null for cells whose obs-profile pass was
     * skipped (no profile_stalls, no trace). PipelineResult stays a
     * plain value (the determinism oracle compares it with ==), so
     * the artifacts travel beside it, not inside it.
     */
    const std::vector<std::shared_ptr<const ObsProfileArtifact>> &
    obsProfiles() const
    {
        return obs_profiles_;
    }

    /**
     * Decision-provenance artifacts of the most recent runAll(),
     * parallel to its result vector. Null for cells that did not set
     * PipelineOptions::record_provenance.
     */
    const std::vector<std::shared_ptr<const ProvenanceArtifact>> &
    provenances() const
    {
        return provenances_;
    }

    ArtifactCache &cache() { return cache_; }

    /** Resolved worker count for this configuration. */
    int effectiveJobs() const;

  private:
    ExperimentOptions opts_;
    ArtifactCache cache_;
    ExperimentSummary summary_;
    std::vector<std::shared_ptr<const ObsProfileArtifact>> obs_profiles_;
    std::vector<std::shared_ptr<const ProvenanceArtifact>> provenances_;
};

} // namespace gmt

#endif // GMT_DRIVER_EXPERIMENT_HPP
