#include "driver/report.hpp"

#include <algorithm>
#include <cmath>

namespace gmt
{

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    double log_sum = 0;
    size_t n = 0;
    for (double x : xs) {
        if (x <= 0)
            continue; // unsimulated / degenerate cells
        log_sum += std::log(x);
        ++n;
    }
    if (n == 0)
        return 0.0;
    return std::exp(log_sum / static_cast<double>(n));
}

double
median(std::vector<double> xs)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    size_t mid = xs.size() / 2;
    if (xs.size() % 2 == 1)
        return xs[mid];
    return (xs[mid - 1] + xs[mid]) / 2.0;
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double sq = 0;
    for (double x : xs)
        sq += (x - m) * (x - m);
    return std::sqrt(sq / static_cast<double>(xs.size()));
}

double
relativeComm(const PipelineResult &with_coco,
             const PipelineResult &baseline)
{
    if (baseline.communication() == 0)
        return 1.0;
    return static_cast<double>(with_coco.communication()) /
           static_cast<double>(baseline.communication());
}

} // namespace gmt
