#include "driver/report.hpp"

#include <cmath>

#include "support/error.hpp"

namespace gmt
{

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0;
    for (double x : xs) {
        GMT_ASSERT(x > 0, "geomean of non-positive value");
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
relativeComm(const PipelineResult &with_coco,
             const PipelineResult &baseline)
{
    if (baseline.communication() == 0)
        return 1.0;
    return static_cast<double>(with_coco.communication()) /
           static_cast<double>(baseline.communication());
}

} // namespace gmt
