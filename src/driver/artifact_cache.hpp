#ifndef GMT_DRIVER_ARTIFACT_CACHE_HPP
#define GMT_DRIVER_ARTIFACT_CACHE_HPP

/**
 * @file
 * Cache of immutable pipeline artifacts shared between experiment
 * cells. Keys are stage-prefix strings (see pass_manager.cpp's
 * *Key() builders): a key encodes the workload plus exactly the
 * option prefix that can influence the artifact, so cells agreeing
 * on that prefix (e.g. DSWP with and without COCO) compute the
 * artifact once, and any option change lands on a different key —
 * invalidation by construction.
 *
 * getOrCompute() is safe under concurrency with compute-once
 * semantics: the first thread to claim a key runs the compute
 * function, every other thread blocks on the shared future. A
 * compute that throws poisons the entry, so identical cells fail
 * identically instead of racing to recompute.
 */

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <typeindex>
#include <unordered_map>

#include "support/error.hpp"

namespace gmt
{

/** Keyed store of shared_ptr<const T> artifacts. */
class ArtifactCache
{
  public:
    struct Counters
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t entries = 0;
    };

    /**
     * Return the artifact under @p key, running @p compute on first
     * use. @p hit (optional) reports whether this call reused an
     * existing entry.
     */
    template <typename T>
    std::shared_ptr<const T>
    getOrCompute(const std::string &key,
                 const std::function<std::shared_ptr<const T>()> &compute,
                 bool *hit = nullptr)
    {
        std::promise<Stored> promise;
        std::shared_future<Stored> future;
        bool owner = false;
        {
            std::lock_guard<std::mutex> lock(mu_);
            auto it = map_.find(key);
            if (it == map_.end()) {
                future = promise.get_future().share();
                map_.emplace(key, future);
                owner = true;
                ++misses_;
            } else {
                future = it->second;
                ++hits_;
            }
        }
        if (hit)
            *hit = !owner;
        if (owner) {
            try {
                std::shared_ptr<const T> value = compute();
                promise.set_value(Stored{
                    std::static_pointer_cast<const void>(value),
                    std::type_index(typeid(T))});
            } catch (...) {
                promise.set_exception(std::current_exception());
            }
        }
        const Stored &stored = future.get(); // rethrows compute errors
        GMT_ASSERT(stored.type == std::type_index(typeid(T)),
                   "artifact type mismatch for key ", key);
        return std::static_pointer_cast<const T>(stored.value);
    }

    Counters counters() const;

    /** Drop every entry (counters reset too). */
    void clear();

  private:
    struct Stored
    {
        std::shared_ptr<const void> value;
        std::type_index type{typeid(void)};
    };

    mutable std::mutex mu_;
    std::unordered_map<std::string, std::shared_future<Stored>> map_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

} // namespace gmt

#endif // GMT_DRIVER_ARTIFACT_CACHE_HPP
