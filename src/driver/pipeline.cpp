#include "driver/pipeline.hpp"

#include "analysis/control_dep.hpp"
#include "analysis/dominators.hpp"
#include "analysis/edge_profile.hpp"
#include "analysis/loop_info.hpp"
#include "coco/validate.hpp"
#include "ir/edge_split.hpp"
#include "ir/verifier.hpp"
#include "mtcg/mtcg.hpp"
#include "partition/dswp.hpp"
#include "partition/gremio.hpp"
#include "pdg/pdg_builder.hpp"
#include "runtime/interpreter.hpp"
#include "sim/cmp_simulator.hpp"
#include "support/error.hpp"

namespace gmt
{

const char *
schedulerName(Scheduler s)
{
    return s == Scheduler::Dswp ? "DSWP" : "GREMIO";
}

PipelineResult
runPipeline(const Workload &workload, const PipelineOptions &opts)
{
    PipelineResult result;
    result.workload = workload.name;
    result.scheduler = schedulerName(opts.scheduler);
    result.coco = opts.use_coco;

    // The function is copied so the pipeline owns a stable instance.
    Function f = workload.func;
    splitCriticalEdges(f);
    verifyOrDie(f);

    // Train-input profile (the paper profiles on train, runs on ref),
    // or the static loop-depth estimate.
    EdgeProfile profile = [&] {
        if (opts.static_profile) {
            auto dom = DominatorTree::dominators(f);
            LoopInfo loops(f, dom);
            return EdgeProfile::staticEstimate(f, loops);
        }
        MemoryImage train_mem;
        train_mem.alloc(workload.mem_cells);
        if (workload.fill)
            workload.fill(train_mem, /*ref=*/false);
        auto train_run = interpret(f, workload.train_args, train_mem);
        return EdgeProfile::fromRun(f, train_run.profile);
    }();

    Pdg pdg = buildPdg(f);
    auto pdom = DominatorTree::postDominators(f);
    ControlDependence cd(f, pdom);

    ThreadPartition partition =
        opts.scheduler == Scheduler::Dswp
            ? dswpPartition(pdg, profile,
                            {.num_threads = opts.num_threads})
            : gremioPartition(pdg, profile,
                              {.num_threads = opts.num_threads});
    {
        auto problems = validatePartition(
            pdg, partition, opts.scheduler == Scheduler::Dswp);
        if (!problems.empty())
            fatal("partition invalid for ", workload.name, ": ",
                  problems[0]);
    }
    for (const auto &arc : pdg.arcs()) {
        if (arc.kind == DepKind::Memory &&
            partition.threadOf(arc.src) != partition.threadOf(arc.dst))
            result.has_mem_deps = true;
    }

    CommPlan plan;
    if (opts.use_coco) {
        auto coco = cocoOptimize(f, pdg, partition, cd, profile,
                                 opts.coco);
        plan = std::move(coco.plan);
        result.coco_iterations = coco.iterations;
        auto problems = validatePlan(f, pdg, partition, cd, plan);
        if (!problems.empty())
            fatal("COCO plan invalid for ", workload.name, ": ",
                  problems[0]);
    } else {
        plan = defaultMtcgPlan(f, pdg, partition, cd);
    }

    // Queue depth: 32-element queues for DSWP's pipeline decoupling,
    // single-element queues for GREMIO (paper §4).
    MtcgOptions mtcg_opts;
    mtcg_opts.queue_capacity =
        opts.queue_capacity > 0
            ? opts.queue_capacity
            : (opts.scheduler == Scheduler::Dswp ? 32 : 1);
    mtcg_opts.max_queues = opts.max_queues;
    MtProgram prog = runMtcg(f, pdg, partition, plan, cd, mtcg_opts);

    // Reference run + equivalence oracle.
    MemoryImage ref_mem;
    ref_mem.alloc(workload.mem_cells);
    if (workload.fill)
        workload.fill(ref_mem, /*ref=*/true);
    auto st_ref = interpret(f, workload.ref_args, ref_mem);

    MemoryImage mt_mem;
    mt_mem.alloc(workload.mem_cells);
    if (workload.fill)
        workload.fill(mt_mem, /*ref=*/true);
    auto mt = interpretMt(prog, workload.ref_args, mt_mem);
    if (mt.deadlock)
        fatal("deadlock in generated code for ", workload.name);
    if (!mt.queues_drained)
        fatal("queues not drained for ", workload.name);
    if (mt.live_outs != st_ref.live_outs || !(mt_mem == ref_mem))
        fatal("MT output mismatch for ", workload.name, " (",
              result.scheduler, result.coco ? "+COCO" : "", ")");

    for (const auto &st : mt.stats) {
        result.computation += st.computation;
        result.duplicated_branches += st.duplicated_branches;
        result.reg_comm += st.produces + st.consumes;
        result.mem_sync += st.produce_syncs + st.consume_syncs;
    }

    if (opts.simulate) {
        MachineConfig cfg = opts.machine;
        {
            MemoryImage sim_mem;
            sim_mem.alloc(workload.mem_cells);
            if (workload.fill)
                workload.fill(sim_mem, /*ref=*/true);
            auto st_sim = simulateSingleThreaded(
                f, workload.ref_args, sim_mem, cfg);
            GMT_ASSERT(st_sim.live_outs == st_ref.live_outs,
                       "timing sim ST mismatch");
            result.st_cycles = st_sim.cycles;
        }
        {
            MemoryImage sim_mem;
            sim_mem.alloc(workload.mem_cells);
            if (workload.fill)
                workload.fill(sim_mem, /*ref=*/true);
            CmpSimulator sim(cfg);
            auto mt_sim = sim.run(prog, workload.ref_args, sim_mem);
            GMT_ASSERT(mt_sim.live_outs == st_ref.live_outs,
                       "timing sim MT mismatch");
            result.mt_cycles = mt_sim.cycles;
        }
    }
    return result;
}

} // namespace gmt
