#include "driver/pipeline.hpp"

#include <memory>

#include "driver/pass_manager.hpp"
#include "support/thread_pool.hpp"

namespace gmt
{

const char *
schedulerName(Scheduler s)
{
    return s == Scheduler::Dswp ? "DSWP" : "GREMIO";
}

// Compatibility wrapper: one uncached, serial run of the standard
// pass pipeline (see pass_manager.hpp). Batch callers should use
// ExperimentRunner (driver/experiment.hpp) to get artifact caching
// and the thread pool.
PipelineResult
runPipeline(const Workload &workload, const PipelineOptions &opts)
{
    PipelineContext ctx(workload, opts);
    std::unique_ptr<ThreadPool> pool;
    if (opts.coco_jobs > 1) {
        pool = std::make_unique<ThreadPool>(opts.coco_jobs);
        ctx.pool = pool.get();
    }
    PassManager::standardPipeline().run(ctx);
    return ctx.result;
}

} // namespace gmt
