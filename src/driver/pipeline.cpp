#include "driver/pipeline.hpp"

#include "driver/pass_manager.hpp"

namespace gmt
{

const char *
schedulerName(Scheduler s)
{
    return s == Scheduler::Dswp ? "DSWP" : "GREMIO";
}

// Compatibility wrapper: one uncached, serial run of the standard
// pass pipeline (see pass_manager.hpp). Batch callers should use
// ExperimentRunner (driver/experiment.hpp) to get artifact caching
// and the thread pool.
PipelineResult
runPipeline(const Workload &workload, const PipelineOptions &opts)
{
    PipelineContext ctx(workload, opts);
    PassManager::standardPipeline().run(ctx);
    return ctx.result;
}

} // namespace gmt
