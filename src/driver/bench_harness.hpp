#ifndef GMT_DRIVER_BENCH_HARNESS_HPP
#define GMT_DRIVER_BENCH_HARNESS_HPP

/**
 * @file
 * Shared command-line harness for the bench binaries: every figure
 * and ablation driver accepts the same flags and runs its cell grid
 * through one parallel, artifact-cached ExperimentRunner.
 *
 *   --jobs N        worker threads (default: hardware threads)
 *   --serial        shorthand for --jobs 1
 *   --coco-jobs N   nested tasks for COCO's cut solver (default 1 =
 *                   serial; the plan is bit-identical at any value)
 *   --no-cache      recompute every artifact (the seed behaviour)
 *   --stats FILE    per-pass / per-cell JSONL records (see stats.hpp)
 *   --only CSV      restrict to the named workloads (e.g. ks,mcf)
 *   --quiet         suppress the run summary line
 *   --no-mtverify   skip the static verify-mt pass on generated code
 *   --sim ENGINE    timing engine: fast (default) or reference (the
 *                   lock-step loop, for differential testing)
 *   --trace FILE    write a Chrome trace-event JSON timeline (pass
 *                   spans + per-core simulator lanes; load the file
 *                   in Perfetto / chrome://tracing)
 *   --workload-dir D  load every *.gmt cell in D into the registry
 *                   (same-name cells replace built-ins, new names
 *                   append; see workloads/serialize.hpp)
 *   --provenance FILE  record decision provenance for every cell and
 *                   write one schema:1 JSON document with the cells'
 *                   canonical provenance records (gmt-explain's
 *                   input; purely observational — results are
 *                   byte-identical with or without it)
 */

#include <memory>
#include <string>
#include <vector>

#include "driver/experiment.hpp"
#include "workloads/workload.hpp"

namespace gmt
{

/** Parsed harness flags. */
struct BenchOptions
{
    int jobs = 0; ///< 0 = hardware default

    /** COCO solver tasks per cell; 0 = leave the cells' own values. */
    int coco_jobs = 0;

    bool use_cache = true;
    std::string stats_path;
    std::vector<std::string> only; ///< empty = all workloads
    bool quiet = false;
    bool verify_mt = true;
    SimEngine sim_engine = SimEngine::Fast;
    std::string trace_path;      ///< empty = no trace
    std::string workload_dir;    ///< empty = built-ins only
    std::string provenance_path; ///< empty = no provenance file
};

/**
 * Parse the shared flags. Unknown flags (and --help) print usage and
 * exit. @p argv[0] is used in the usage text.
 */
BenchOptions parseBenchOptions(int argc, char **argv);

/**
 * One per bench binary: owns the stats sink and the runner, filters
 * the workload list, and prints a one-line run summary (cells, jobs,
 * wall clock, cache hit rate) after each batch.
 */
class BenchHarness
{
  public:
    BenchHarness(int argc, char **argv);
    explicit BenchHarness(const BenchOptions &opts);

    /**
     * The registry (built-ins overlaid with --workload-dir cells)
     * filtered by --only (order preserved).
     */
    std::vector<Workload> workloads() const;

    /**
     * Run the batch; prints the summary line unless --quiet. After
     * the batch: rewrites the --trace file (the collector is
     * cumulative, so the final batch's write covers the whole run)
     * and republishes the global metrics registry into --stats as
     * type:"metrics" records (cumulative; readers keep the last
     * record per name).
     */
    std::vector<PipelineResult> runAll(
        const std::vector<ExperimentCell> &cells);

    ExperimentRunner &runner() { return *runner_; }
    StatsSink *stats() { return stats_.get(); }
    TraceCollector *trace() { return trace_.get(); }

  private:
    BenchOptions opts_;
    std::unique_ptr<StatsSink> stats_;
    std::unique_ptr<TraceCollector> trace_;
    std::unique_ptr<ExperimentRunner> runner_;
};

} // namespace gmt

#endif // GMT_DRIVER_BENCH_HARNESS_HPP
