#ifndef GMT_DRIVER_PIPELINE_HPP
#define GMT_DRIVER_PIPELINE_HPP

/**
 * @file
 * End-to-end experiment pipeline, one call per (workload, scheduler,
 * COCO on/off) cell of the paper's figures:
 *
 *   build IR -> split critical edges -> verify -> profile on train
 *   input -> PDG -> partition (DSWP or GREMIO) -> placement (MTCG
 *   default or COCO) -> MTCG -> run on ref input (MT interpreter:
 *   dynamic instruction counts + equivalence oracle) -> timing
 *   simulation (cycles, vs the single-threaded baseline).
 */

#include <cstdint>
#include <string>

#include "autotune/autotune.hpp"
#include "coco/coco.hpp"
#include "sim/cmp_simulator.hpp"
#include "sim/machine_config.hpp"
#include "workloads/workload.hpp"

namespace gmt
{

/** Which GMT partitioner to run. */
enum class Scheduler { Dswp, Gremio };

const char *schedulerName(Scheduler s);

/** Pipeline configuration. */
struct PipelineOptions
{
    Scheduler scheduler = Scheduler::Dswp;
    int num_threads = 2;

    /** Apply COCO (otherwise the default MTCG placement). */
    bool use_coco = false;
    CocoOptions coco;

    /**
     * Worker tasks for COCO's cut solver (nested in the experiment
     * runner's shared pool); <= 1 solves serially. The comm plan is
     * bit-identical at any value — this is an execution resource, not
     * a result axis, so it is deliberately absent from planKey().
     */
    int coco_jobs = 1;

    MachineConfig machine = MachineConfig::paperDefault();

    /** Run the timing simulation (skippable for instruction-count
     *  only experiments). */
    bool simulate = true;

    /**
     * Timing-simulator engine: the event-driven fast path by
     * default, or the lock-step reference loop (--sim=reference in
     * the bench harness) for differential testing. Results are
     * bit-identical by contract.
     */
    SimEngine sim_engine = SimEngine::Fast;

    /**
     * Queue depth override; 0 picks the paper's per-scheduler default
     * (32 for DSWP, 1 for GREMIO).
     */
    int queue_capacity = 0;

    /**
     * Architected queue budget for the queue allocator (paper
     * footnote 1); 0 = one queue per placement.
     */
    int max_queues = 0;

    /**
     * Use the static (loop-depth) profile estimate instead of the
     * train-input run — the paper cites [28] for static estimates
     * being nearly as accurate.
     */
    bool static_profile = false;

    /**
     * Re-check IR and partition invariants between passes (pass
     * manager only; the in-pass validations always run).
     */
    bool check_invariants = false;

    /**
     * Statically verify the generated MT program (dependence
     * preservation, queue balance, deadlock freedom — see
     * mtverify/mtverify.hpp) before running it. On by default; the
     * bench harness exposes --no-mtverify to skip it.
     */
    bool verify_mt = true;

    /**
     * Within verify-mt, run the happens-before race check (theorem 4,
     * mtverify/hb.hpp). On by default; gmt-lint exposes --no-hb.
     */
    bool verify_hb = true;

    /**
     * Run the obs-profile pass: re-simulate the MT program with stall
     * attribution and timeline collection attached and publish the
     * rollup as an ObsProfileArtifact (dies if the attribution does
     * not sum exactly to the aggregate stall counters). With simulate
     * off, the artifact carries only the dynamic instruction counts
     * (bench/fig1's counts-only mode). Also forced on by an attached
     * trace collector.
     */
    bool profile_stalls = false;

    /**
     * Run the obs-provenance pass: re-derive every scheduling
     * decision (partitioner steps, COCO cuts, queue shares) with
     * instrumented serial re-runs asserted equal to the pipeline's
     * artifacts, and publish the record as a ProvenanceArtifact
     * (obs/provenance.hpp). Purely observational: plans, programs,
     * and results are byte-identical with this on or off.
     */
    bool record_provenance = false;

    /**
     * Run the autotune pass: close the profile -> schedule loop
     * (src/autotune/) starting from this cell's schedule, folding the
     * simulator's stall attribution back into re-cuts, re-partitions,
     * and boundary migrations until the relative improvement drops
     * below autotune_opts.min_rel_improvement. Requires simulate; the
     * downstream artifacts (program, cycles, counts, provenance)
     * describe the tuned schedule, and the result carries both
     * baseline and tuned cycles. Deterministic at any jobs/cache
     * setting.
     */
    bool autotune = false;
    AutotuneOptions autotune_opts;
};

/** Everything the figures need from one cell. */
struct PipelineResult
{
    std::string workload;
    std::string scheduler;
    bool coco = false;

    // Reference-input dynamic instruction counts (MT interpreter).
    uint64_t computation = 0;         ///< original-instruction copies
    uint64_t duplicated_branches = 0; ///< control-dep replicas
    uint64_t reg_comm = 0;            ///< produce + consume
    uint64_t mem_sync = 0;            ///< produce.sync + consume.sync

    uint64_t communication() const { return reg_comm + mem_sync; }
    uint64_t total() const
    {
        return computation + duplicated_branches + communication();
    }

    /** Cross-thread memory dependences present in the PDG? */
    bool has_mem_deps = false;

    // Timing (reference input).
    uint64_t st_cycles = 0;
    uint64_t mt_cycles = 0;
    double speedup() const
    {
        return mt_cycles ? static_cast<double>(st_cycles) /
                               static_cast<double>(mt_cycles)
                         : 0.0;
    }

    /** COCO repeat-until iterations (0 when COCO is off). */
    int coco_iterations = 0;

    // Autotune (all zero when the pass is off). mt_cycles above is
    // the TUNED cycle count when autotuning ran.
    bool autotuned = false;
    uint64_t baseline_mt_cycles = 0; ///< pre-autotune mt_cycles
    int autotune_iterations = 0;
    int autotune_moves_accepted = 0;
    int autotune_moves_rejected = 0;
    bool autotune_converged = false;

    /** Field-wise equality (the parallel-vs-serial determinism oracle). */
    bool operator==(const PipelineResult &) const = default;
};

/**
 * Run the full pipeline. Throws (via the library's fatal/panic) if
 * anything fails; asserts that the generated code's observable
 * behaviour matches the single-threaded reference on the ref input.
 */
PipelineResult runPipeline(const Workload &workload,
                           const PipelineOptions &opts);

} // namespace gmt

#endif // GMT_DRIVER_PIPELINE_HPP
