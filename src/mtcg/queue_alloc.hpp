#ifndef GMT_MTCG_QUEUE_ALLOC_HPP
#define GMT_MTCG_QUEUE_ALLOC_HPP

/**
 * @file
 * Queue allocation (paper footnote 1: "a separate queue is used just
 * for simplicity. Later, a queue-allocation algorithm can reduce the
 * number of queues necessary").
 *
 * The synchronization array has 256 architected queues; a plan with
 * more placements must multiplex. Sharing is safe within an ordered
 * thread pair: both threads visit the plan's points in the same order
 * along any execution path, so tokens of different placements
 * interleave identically on both sides and FIFO order delivers each
 * consume its matching produce. Blocking on a shared full queue is
 * backpressure, not deadlock: if the producer is blocked at point p,
 * it has already produced everything before p, so the consumer can
 * always advance to the oldest outstanding consume.
 *
 * The allocator distributes each thread pair's placements round-robin
 * over the pair's share of the architected queues, which preserves
 * decoupling better than funneling a pair through one queue.
 */

#include <vector>

#include "mtcg/comm_plan.hpp"
#include "obs/provenance.hpp"

namespace gmt
{

/** Result of queue allocation. */
struct QueueAllocation
{
    /** queue_of[placement index] = assigned queue id. */
    std::vector<int> queue_of;

    /** Number of distinct queues used (<= the requested maximum). */
    int num_queues = 0;
};

/**
 * Assign queues to @p plan's placements using at most @p max_queues
 * queues. Requires max_queues >= number of ordered thread pairs with
 * at least one placement (each pair needs one private queue to keep
 * the safety argument pairwise).
 *
 * When @p prov is non-null, records one QueueDecision per allocated
 * queue (pair share, rule, multiplexed placement indices).
 */
QueueAllocation allocateQueues(const CommPlan &plan, int max_queues,
                               QueueProvenance *prov = nullptr);

} // namespace gmt

#endif // GMT_MTCG_QUEUE_ALLOC_HPP
