#include "mtcg/mtcg.hpp"

#include <map>

#include "analysis/dominators.hpp"
#include "ir/verifier.hpp"
#include "mtcg/queue_alloc.hpp"
#include "support/error.hpp"

namespace gmt
{

namespace
{

/** Per-point communication operations, kept in global plan order. */
struct PointOps
{
    // placement indices producing / consuming at this point.
    std::vector<int> ops;
};

} // namespace

MtProgram
runMtcg(const Function &f, const Pdg &pdg,
        const ThreadPartition &partition, const CommPlan &plan,
        const ControlDependence &cd, const MtcgOptions &opts)
{
    (void)pdg;
    const int nt = partition.num_threads;

    // Queue assignment: one queue per placement, or multiplexed onto
    // an architected budget.
    std::vector<int> queue_of(plan.placements.size());
    int num_queues;
    if (opts.max_queues > 0) {
        QueueAllocation alloc = allocateQueues(plan, opts.max_queues);
        queue_of = alloc.queue_of;
        num_queues = alloc.num_queues;
    } else {
        for (size_t pi = 0; pi < queue_of.size(); ++pi)
            queue_of[pi] = static_cast<int>(pi);
        num_queues = plan.numQueues();
    }

    MtProgram prog;
    prog.num_queues = num_queues;
    prog.queue_capacity = opts.queue_capacity;

    RelevantSets relevant(f, cd, partition, plan);
    auto pdom = DominatorTree::postDominators(f);

    // Index plan points: (block, pos) -> placement indices, plan order.
    std::map<ProgramPoint, PointOps> point_ops;
    for (int pi = 0; pi < static_cast<int>(plan.placements.size());
         ++pi) {
        for (const auto &p : plan.placements[pi].points)
            point_ops[p].ops.push_back(pi);
    }

    for (int t = 0; t < nt; ++t) {
        Function out("thread" + std::to_string(t) + "_" + f.name());
        out.ensureRegs(f.numRegs());
        for (Reg r : f.params())
            out.addParam(r);

        const BitVector &needed = relevant.neededBlocks(t);

        // Map original block -> new block.
        std::vector<BlockId> new_block(f.numBlocks(), kNoBlock);
        needed.forEach([&](size_t b) {
            new_block[b] =
                out.addBlock(f.block(static_cast<BlockId>(b)).label());
        });

        // Branch-target fixing ([16] §2.2.3): the first needed block
        // at-or-below `b` in the post-dominator tree.
        auto retarget = [&](BlockId b) {
            while (!needed.test(b)) {
                b = pdom.idom(b);
                GMT_ASSERT(b != kNoBlock, "retarget fell off exit");
            }
            return b;
        };

        bool owns_ret = false;

        needed.forEach([&](size_t ob) {
            BlockId orig = static_cast<BlockId>(ob);
            BlockId nb = new_block[orig];
            const BasicBlock &bb = f.block(orig);
            const int size = static_cast<int>(bb.size());

            auto emitCommAt = [&](int pos) {
                auto it = point_ops.find(ProgramPoint{orig, pos});
                if (it == point_ops.end())
                    return;
                for (int pi : it->second.ops) {
                    const CommPlacement &pl = plan.placements[pi];
                    if (pl.src_thread == t) {
                        if (pl.kind == CommKind::RegisterData) {
                            out.append(nb, {.op = Opcode::Produce,
                                            .src1 = pl.reg,
                                            .queue = queue_of[pi]});
                        } else {
                            out.append(nb, {.op = Opcode::ProduceSync,
                                            .queue = queue_of[pi]});
                        }
                    }
                    if (pl.dst_thread == t) {
                        if (pl.kind == CommKind::RegisterData) {
                            out.append(nb, {.op = Opcode::Consume,
                                            .dst = pl.reg,
                                            .queue = queue_of[pi]});
                        } else {
                            out.append(nb, {.op = Opcode::ConsumeSync,
                                            .queue = queue_of[pi]});
                        }
                    }
                }
            };

            // Body: communication first at each point, then the
            // owned copy of the instruction at that position.
            for (int pos = 0; pos < size - 1; ++pos) {
                emitCommAt(pos);
                InstrId id = bb.instrs()[pos];
                if (partition.threadOf(id) == t) {
                    Instr copy = f.instr(id);
                    copy.origin = id;
                    out.append(nb, copy);
                }
            }
            emitCommAt(size - 1); // points right before the terminator

            // Terminator.
            InstrId term_id = bb.terminator();
            const Instr &term = f.instr(term_id);
            switch (term.op) {
              case Opcode::Ret: {
                Instr copy{.op = Opcode::Ret, .origin = term_id};
                if (partition.threadOf(term_id) == t) {
                    owns_ret = true;
                    out.setLiveOuts(f.liveOuts());
                }
                out.append(nb, copy);
                out.setSuccs(nb, {});
                break;
              }
              case Opcode::Jmp: {
                BlockId target = retarget(bb.succs()[0]);
                out.append(nb, {.op = Opcode::Jmp, .origin = term_id});
                out.setSuccs(nb, {new_block[target]});
                break;
              }
              case Opcode::Br: {
                BlockId t0 = retarget(bb.succs()[0]);
                BlockId t1 = retarget(bb.succs()[1]);
                bool is_relevant = relevant.isRelevantBranch(t, orig);
                if (!is_relevant) {
                    GMT_ASSERT(t0 == t1,
                               "irrelevant branch with diverging "
                               "relevant targets");
                }
                if (t0 == t1) {
                    // Demoted: control cannot diverge for this thread.
                    out.append(nb,
                               {.op = Opcode::Jmp, .origin = term_id});
                    out.setSuccs(nb, {new_block[t0]});
                } else {
                    Instr copy{.op = Opcode::Br, .src1 = term.src1,
                               .origin = term_id};
                    copy.duplicated =
                        (partition.threadOf(term_id) != t);
                    out.append(nb, copy);
                    out.setSuccs(nb, {new_block[t0], new_block[t1]});
                }
                break;
              }
              default:
                panic("block not ending in terminator");
            }
        });

        if (!owns_ret)
            out.setLiveOuts({});
        out.setEntry(new_block[retarget(f.entry())]);

        verifyOrDie(out,
                    {.num_queues = num_queues,
                     .unique_placement_queues = opts.max_queues <= 0},
                    "mtcg emission, thread " + std::to_string(t));
        prog.threads.push_back(std::move(out));
    }

    return prog;
}

} // namespace gmt
