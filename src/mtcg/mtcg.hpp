#ifndef GMT_MTCG_MTCG_HPP
#define GMT_MTCG_MTCG_HPP

/**
 * @file
 * Multi-Threaded Code Generation (Algorithm 1 of [16], the paper's
 * §2.1), generalized to consume any CommPlan:
 *
 *  1. per thread, create a CFG containing its needed blocks;
 *  2. insert the thread's instructions at their original positions;
 *  3. insert produce/consume pairs at the plan's points;
 *  4. replicate relevant branches and fix branch targets through the
 *     post-dominance relation ([16] §2.2.3).
 *
 * With defaultMtcgPlan() this is the original MTCG; with a COCO plan
 * it is the paper's "slightly modified version of MTCG".
 */

#include "mtcg/comm_plan.hpp"
#include "runtime/mt_interpreter.hpp"

namespace gmt
{

/** Options for code generation. */
struct MtcgOptions
{
    /** Per-queue capacity recorded in the emitted program. */
    int queue_capacity = 32;

    /**
     * Architected queue budget: placements are multiplexed onto at
     * most this many queues (see mtcg/queue_alloc.hpp). 0 = one
     * queue per placement (the paper's simplification).
     */
    int max_queues = 0;
};

/**
 * Generate one function per thread.
 *
 * @param f          verified original function (critical edges split).
 * @param pdg        its PDG (used for sanity checks only).
 * @param partition  instruction-to-thread assignment.
 * @param plan       communication placements (e.g. defaultMtcgPlan).
 * @param cd         control dependence of @p f.
 */
MtProgram runMtcg(const Function &f, const Pdg &pdg,
                  const ThreadPartition &partition, const CommPlan &plan,
                  const ControlDependence &cd,
                  const MtcgOptions &opts = {});

} // namespace gmt

#endif // GMT_MTCG_MTCG_HPP
