#include "mtcg/queue_alloc.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "support/error.hpp"

namespace gmt
{

QueueAllocation
allocateQueues(const CommPlan &plan, int max_queues,
               QueueProvenance *prov)
{
    QueueAllocation alloc;
    alloc.queue_of.assign(plan.placements.size(), -1);
    if (prov)
        prov->max_queues = max_queues;

    // Group placement indices by ordered thread pair.
    std::map<std::pair<int, int>, std::vector<int>> groups;
    for (size_t pi = 0; pi < plan.placements.size(); ++pi) {
        const CommPlacement &pl = plan.placements[pi];
        groups[{pl.src_thread, pl.dst_thread}].push_back(
            static_cast<int>(pi));
    }
    if (groups.empty())
        return alloc;

    int num_pairs = static_cast<int>(groups.size());
    if (max_queues < num_pairs)
        fatal("queue allocation needs at least ", num_pairs,
              " queues (one per communicating thread pair), got ",
              max_queues);

    // Proportional shares, at least one queue per pair.
    int total_placements = static_cast<int>(plan.placements.size());
    int next_queue = 0;
    for (auto &[pair, members] : groups) {
        int share = static_cast<int>(
            static_cast<long long>(members.size()) *
            (max_queues - num_pairs) / std::max(total_placements, 1));
        int queues = 1 + share;
        queues = std::min<int>(queues,
                               static_cast<int>(members.size()));
        // Round-robin members over this pair's queue range; both
        // threads derive the same mapping from the plan order, so
        // produce/consume streams stay aligned.
        for (size_t k = 0; k < members.size(); ++k) {
            alloc.queue_of[members[k]] =
                next_queue + static_cast<int>(k % queues);
        }
        if (prov) {
            for (int q = 0; q < queues; ++q) {
                QueueDecision d;
                d.queue = next_queue + q;
                d.src_thread = pair.first;
                d.dst_thread = pair.second;
                d.rule = queues == static_cast<int>(members.size())
                             ? "identity"
                             : "pair-share";
                d.pair_placements = static_cast<int>(members.size());
                d.pair_queues = queues;
                for (size_t k = 0; k < members.size(); ++k)
                    if (static_cast<int>(k % queues) == q)
                        d.placements.push_back(members[k]);
                prov->queues.push_back(std::move(d));
            }
        }
        next_queue += queues;
    }
    alloc.num_queues = next_queue;
    if (prov)
        prov->num_queues = alloc.num_queues;
    GMT_ASSERT(alloc.num_queues <= max_queues);
    return alloc;
}

} // namespace gmt
