#ifndef GMT_MTCG_COMM_PLAN_HPP
#define GMT_MTCG_COMM_PLAN_HPP

/**
 * @file
 * Communication plans and relevant-branch sets.
 *
 * A CommPlan says, for every inter-thread dependence, *where* in the
 * original CFG its produce/consume pair executes. MTCG's Algorithm 1
 * strategy ("communicate each dependence at the point of its source
 * instruction") is defaultMtcgPlan(); COCO emits the same structure
 * with min-cut-chosen points, and the single emission engine in
 * mtcg.hpp consumes either — matching the paper's note that COCO's
 * annotations "can be directly used to place communications in a
 * slightly modified version of MTCG".
 */

#include <vector>

#include "analysis/control_dep.hpp"
#include "ir/function.hpp"
#include "partition/partition.hpp"
#include "pdg/pdg.hpp"
#include "support/bit_vector.hpp"

namespace gmt
{

/** What a placement transports. */
enum class CommKind {
    RegisterData, ///< produce/consume of a register value
    MemorySync,   ///< produce.sync/consume.sync ordering token
};

/**
 * One produce/consume pair (one queue): the source thread produces at
 * every listed point, the target thread consumes at the same points.
 * Both threads visit the points in the same order along any execution
 * path, which keeps every queue balanced and deadlock-free.
 */
struct CommPlacement
{
    CommKind kind = CommKind::RegisterData;
    Reg reg = kNoReg; ///< register carried (RegisterData only)
    int src_thread = 0;
    int dst_thread = 0;
    std::vector<ProgramPoint> points;

    bool operator==(const CommPlacement &) const = default;
};

/** A full communication plan for one partition. */
struct CommPlan
{
    std::vector<CommPlacement> placements;

    /** One queue per placement. */
    int numQueues() const { return static_cast<int>(placements.size()); }

    bool operator==(const CommPlan &) const = default;
};

/**
 * Per-thread relevant-branch and needed-block sets (paper
 * Definitions 1 and 2, generalized over an arbitrary CommPlan).
 */
class RelevantSets
{
  public:
    /**
     * Fixpoint per thread T over "needed blocks":
     *  - blocks holding instructions assigned to T,
     *  - blocks holding any point of a placement with src or dst T,
     *  - blocks of branches already relevant to T;
     * a branch block becomes relevant when it controls a needed block
     * (or is assigned to T).
     */
    RelevantSets(const Function &f, const ControlDependence &cd,
                 const ThreadPartition &partition, const CommPlan &plan);

    int numThreads() const { return static_cast<int>(branches_.size()); }

    /** Is @p b's terminating branch relevant to thread @p t? */
    bool
    isRelevantBranch(int t, BlockId b) const
    {
        return branches_[t].test(b);
    }

    /** Blocks thread @p t's generated CFG must contain. */
    const BitVector &neededBlocks(int t) const { return needed_[t]; }

    /**
     * Paper Definition 2: a point is relevant to @p t iff every branch
     * its block is control dependent on is relevant to @p t.
     */
    bool isRelevantPoint(int t, BlockId b,
                         const ControlDependence &cd) const;

  private:
    std::vector<BitVector> branches_; // [thread] -> branch blocks
    std::vector<BitVector> needed_;   // [thread] -> needed blocks
};

/**
 * The original MTCG placement (Algorithm 1):
 *  - each cross-thread register dependence communicated right after
 *    its defining instruction;
 *  - each cross-thread memory dependence synchronized right after its
 *    source (shared per (source instruction, target thread));
 *  - each branch relevant to a thread that does not own it gets its
 *    operand produced by the owning thread right before the branch.
 */
CommPlan defaultMtcgPlan(const Function &f, const Pdg &pdg,
                         const ThreadPartition &partition,
                         const ControlDependence &cd);

} // namespace gmt

#endif // GMT_MTCG_COMM_PLAN_HPP
