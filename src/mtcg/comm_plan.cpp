#include "mtcg/comm_plan.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "support/error.hpp"

namespace gmt
{

RelevantSets::RelevantSets(const Function &f, const ControlDependence &cd,
                           const ThreadPartition &partition,
                           const CommPlan &plan)
{
    const int nt = partition.num_threads;
    const int nb = f.numBlocks();
    branches_.assign(nt, BitVector(nb));
    needed_.assign(nt, BitVector(nb));

    for (int t = 0; t < nt; ++t) {
        BitVector &needed = needed_[t];
        BitVector &relevant = branches_[t];
        std::vector<BlockId> work;

        auto need = [&](BlockId b) {
            if (!needed.test(b)) {
                needed.set(b);
                work.push_back(b);
            }
        };

        // Seed 1: blocks of instructions assigned to t (and mark
        // branches assigned to t relevant — Definition 1 rule 1).
        for (InstrId i = 0; i < f.numInstrs(); ++i) {
            if (partition.threadOf(i) != t)
                continue;
            need(f.instr(i).block);
            if (f.instr(i).isBranch())
                relevant.set(f.instr(i).block);
        }
        // Seed 2: blocks of communication points involving t.
        for (const auto &pl : plan.placements) {
            if (pl.src_thread != t && pl.dst_thread != t)
                continue;
            for (const auto &p : pl.points)
                need(p.block);
        }
        // Seed 3: the exit block (every thread terminates).
        need(f.exitBlock());

        // Fixpoint: branches controlling needed blocks are relevant,
        // and relevant-branch blocks are needed (Definition 1 rules
        // 2 and 3).
        while (!work.empty()) {
            BlockId b = work.back();
            work.pop_back();
            for (BlockId branch_block : cd.dependsOn(b)) {
                if (!relevant.test(branch_block)) {
                    relevant.set(branch_block);
                    need(branch_block);
                }
            }
        }
        // Relevant branch blocks seeded by rule 1 must be needed too.
        relevant.forEach([&](size_t b) {
            need(static_cast<BlockId>(b));
        });
        while (!work.empty()) {
            BlockId b = work.back();
            work.pop_back();
            for (BlockId branch_block : cd.dependsOn(b)) {
                if (!relevant.test(branch_block)) {
                    relevant.set(branch_block);
                    need(branch_block);
                }
            }
        }
    }
}

bool
RelevantSets::isRelevantPoint(int t, BlockId b,
                              const ControlDependence &cd) const
{
    for (BlockId branch_block : cd.dependsOn(b)) {
        if (!branches_[t].test(branch_block))
            return false;
    }
    return true;
}

CommPlan
defaultMtcgPlan(const Function &f, const Pdg &pdg,
                const ThreadPartition &partition,
                const ControlDependence &cd)
{
    CommPlan plan;

    // Register dependences: communicate right after the def. One
    // placement per (def, register, target thread) — an instruction
    // sourcing several dependences into one thread communicates once
    // (the optimization noted below Algorithm 1).
    std::map<std::tuple<InstrId, Reg, int>, bool> reg_done;
    // Memory dependences: one sync per (source, target thread); arcs
    // about disjoint locations share it for free at the same point.
    std::map<std::pair<InstrId, int>, bool> mem_done;

    for (const auto &arc : pdg.arcs()) {
        int ts = partition.threadOf(arc.src);
        int tt = partition.threadOf(arc.dst);
        if (ts == tt)
            continue;
        if (arc.kind == DepKind::Register) {
            auto key = std::make_tuple(arc.src, arc.reg, tt);
            if (reg_done.count(key))
                continue;
            reg_done[key] = true;
            ProgramPoint after_def{f.instr(arc.src).block,
                                   f.positionOf(arc.src) + 1};
            plan.placements.push_back({CommKind::RegisterData, arc.reg,
                                       ts, tt, {after_def}});
        } else if (arc.kind == DepKind::Memory) {
            auto key = std::make_pair(arc.src, tt);
            if (mem_done.count(key))
                continue;
            mem_done[key] = true;
            ProgramPoint after_src{f.instr(arc.src).block,
                                   f.positionOf(arc.src) + 1};
            plan.placements.push_back({CommKind::MemorySync, kNoReg, ts,
                                       tt, {after_src}});
        }
        // Control arcs carry no data; they are realized through the
        // relevant-branch sets and the operand placements below.
    }

    // Branch-operand communication: every branch relevant to a thread
    // that does not own it has its register operand produced by the
    // owning thread right before the branch (Algorithm 1 lines 17-19).
    RelevantSets relevant(f, cd, partition, plan);
    for (int t = 0; t < partition.num_threads; ++t) {
        for (BlockId b = 0; b < f.numBlocks(); ++b) {
            if (!relevant.isRelevantBranch(t, b))
                continue;
            InstrId branch = f.block(b).terminator();
            if (!f.instr(branch).isBranch())
                continue; // relevant "branch block" ending in Jmp/Ret
            int owner = partition.threadOf(branch);
            if (owner == t)
                continue;
            ProgramPoint before{b, f.positionOf(branch)};
            plan.placements.push_back({CommKind::RegisterData,
                                       f.instr(branch).src1, owner, t,
                                       {before}});
        }
    }
    return plan;
}

} // namespace gmt
