#include "workloads/workload.hpp"

#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace gmt
{

namespace
{

constexpr int64_t kMaxPly = 4096; // number of positions scored
constexpr int64_t kBoard = 0;                      // class 1
constexpr int64_t kPsqPawn = kBoard + kMaxPly;     // class 2
constexpr int64_t kPsqKnight = kPsqPawn + 64;      // class 2
constexpr int64_t kPsqRook = kPsqKnight + 64;      // class 2
constexpr int64_t kPhase = kPsqRook + 64;          // class 3
constexpr int64_t kCells = kPhase + 64;

constexpr AliasClass kBoardCls = 1, kPsqCls = 2, kPhaseCls = 3;

} // namespace

/**
 * 458.sjeng std_eval (26% of execution): static position evaluation.
 * A walk over squares with a piece-type dispatch chain (empty, pawn,
 * knight, rook, queen-as-default), piece-square table lookups, and a
 * side-to-move sign flip — evaluation is almost pure control flow
 * over loaded data, the opposite extreme from gromacs.
 */
Workload
makeSjeng()
{
    FunctionBuilder b("std_eval");
    Reg n = b.param(); // squares to scan (multiple positions)

    BlockId entry = b.newBlock("entry");
    BlockId head = b.newBlock("head");
    BlockId body = b.newBlock("body");
    BlockId pawn = b.newBlock("pawn");
    BlockId knight_chk = b.newBlock("knight_chk");
    BlockId knight = b.newBlock("knight");
    BlockId rook_chk = b.newBlock("rook_chk");
    BlockId rook = b.newBlock("rook");
    BlockId queen = b.newBlock("queen");
    BlockId sign = b.newBlock("sign");
    BlockId flip = b.newBlock("flip");
    BlockId next = b.newBlock("next");
    BlockId done = b.newBlock("done");

    b.setBlock(entry);
    Reg one = b.constI(1);
    Reg score = b.constI(0);
    Reg i = b.constI(0);
    Reg mask63 = b.constI(63);
    b.jmp(head);

    b.setBlock(head);
    Reg more = b.cmpLt(i, n);
    b.br(more, body, done);

    b.setBlock(body);
    Reg piece = b.load(i, kBoard, kBoardCls);
    Reg sq = b.andr(i, mask63);
    Reg kind = b.andr(piece, b.constI(7));
    Reg delta = b.func().newReg();
    b.constInto(delta, 0);
    Reg empty = b.cmpEq(kind, b.constI(0));
    b.br(empty, next, pawn);

    b.setBlock(pawn);
    Reg is_pawn = b.cmpEq(kind, one);
    b.br(is_pawn, knight, knight_chk); // then-block reused below

    // Dispatch chain: pawn -> knight -> rook -> queen(default).
    b.setBlock(knight_chk);
    Reg is_knight = b.cmpEq(kind, b.constI(2));
    b.br(is_knight, rook, rook_chk);

    b.setBlock(knight); // pawn hit
    Reg pv = b.load(sq, kPsqPawn, kPsqCls);
    b.binopInto(Opcode::Add, delta, pv, b.constI(100));
    b.jmp(sign);

    b.setBlock(rook_chk);
    Reg is_rook = b.cmpEq(kind, b.constI(3));
    b.br(is_rook, queen, sign); // default: queen value below

    b.setBlock(rook); // knight hit
    Reg kv = b.load(sq, kPsqKnight, kPsqCls);
    b.binopInto(Opcode::Add, delta, kv, b.constI(300));
    b.jmp(sign);

    b.setBlock(queen); // rook hit
    Reg rv = b.load(sq, kPsqRook, kPsqCls);
    b.binopInto(Opcode::Add, delta, rv, b.constI(500));
    b.jmp(sign);

    b.setBlock(sign);
    // Other side's pieces are worth negative points.
    Reg side = b.andr(piece, b.constI(8));
    Reg theirs = b.cmpNe(side, b.constI(0));
    b.br(theirs, flip, next);

    b.setBlock(flip);
    b.unopInto(Opcode::Neg, delta, delta);
    b.jmp(next);

    b.setBlock(next);
    // Game-phase interpolation and mobility bonus: the scoring side
    // of std_eval is itself a chunk of work fed by the dispatch
    // chain's delta.
    Reg phase = b.load(sq, kPhase, kPhaseCls);
    Reg weighted = b.shr(b.mul(delta, phase), b.constI(4));
    Reg mobility = b.andr(b.add(weighted, delta), b.constI(255));
    b.addInto(score, score, weighted);
    b.addInto(score, score, mobility);
    b.addInto(i, i, one);
    b.jmp(head);

    b.setBlock(done);
    b.ret({score});

    Workload w;
    w.name = "458.sjeng";
    w.function_name = "std_eval";
    w.exec_percent = 26;
    w.func = b.finish();
    w.mem_cells = kCells;
    w.train_args = {512};
    w.ref_args = {4000};
    w.fill = [](MemoryImage &mem, bool ref) {
        Rng rng(ref ? 458 : 229);
        for (int64_t i = 0; i < kMaxPly; ++i) {
            // ~half the squares empty, like a midgame board.
            int64_t piece =
                rng.nextBool(0.5)
                    ? 0
                    : static_cast<int64_t>(1 + rng.nextBelow(5)) |
                          (rng.nextBool() ? 8 : 0);
            mem.write(kBoard + i, piece);
        }
        for (int64_t s = 0; s < 64; ++s) {
            mem.write(kPsqPawn + s, rng.nextRange(-20, 20));
            mem.write(kPsqKnight + s, rng.nextRange(-30, 30));
            mem.write(kPsqRook + s, rng.nextRange(-15, 15));
            mem.write(kPhase + s, rng.nextRange(4, 20));
        }
    };
    return w;
}

} // namespace gmt
