#include "workloads/workload.hpp"

#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace gmt
{

namespace
{

constexpr int64_t kMaxMod = 512;  // modules
constexpr int64_t kDim = 16;      // weight row width
constexpr int64_t kD = 0;                       // gains, class 1
constexpr int64_t kW = kD + kMaxMod;            // weights, class 2
constexpr int64_t kS = kW + kMaxMod * kDim;     // swap stats, class 3
constexpr int64_t kCells = kS + kMaxMod;

constexpr AliasClass kDCls = 1, kWCls = 2, kSCls = 3;

} // namespace

/**
 * Pointer-Intensive ks, FindMaxGpAndSwap: each Kernighan-Lin pass
 * first scans the gain array for the best unswapped module (a loop
 * whose *only* products are the final maxgain/best values), then
 * applies the swap by updating every module's gain with the chosen
 * row's weights, and separately logs the move in the swap statistics.
 * Under GREMIO the scan loop lands on one thread and the update work
 * on the other; MTCG then replicates the scan loop in the second
 * thread just to consume maxgain/best every iteration — the paper's
 * headline COCO case (73.7% of dynamic communication removed, the
 * Figure 4 pattern at benchmark scale).
 */
Workload
makeKs()
{
    FunctionBuilder b("FindMaxGpAndSwap");
    Reg nmod = b.param();
    Reg passes = b.param();

    BlockId entry = b.newBlock("entry");
    BlockId pass_head = b.newBlock("pass_head");
    BlockId scan_init = b.newBlock("scan_init");
    BlockId scan_head = b.newBlock("scan_head");
    BlockId scan_body = b.newBlock("scan_body");
    BlockId scan_better = b.newBlock("scan_better");
    BlockId scan_next = b.newBlock("scan_next");
    BlockId upd_head = b.newBlock("upd_head");
    BlockId upd_body = b.newBlock("upd_body");
    BlockId log_head = b.newBlock("log_head");
    BlockId log_body = b.newBlock("log_body");
    BlockId pass_next = b.newBlock("pass_next");
    BlockId done = b.newBlock("done");

    b.setBlock(entry);
    Reg zero = b.constI(0);
    Reg one = b.constI(1);
    Reg dimmask = b.constI(kDim - 1);
    Reg total = b.constI(0);
    Reg pass = b.constI(0);
    b.jmp(pass_head);

    b.setBlock(pass_head);
    Reg pmore = b.cmpLt(pass, passes);
    b.br(pmore, scan_init, done);

    // --- Scan loop: find the best candidate (live-outs only). -------
    b.setBlock(scan_init);
    Reg maxgain = b.func().newReg();
    b.constInto(maxgain, -(int64_t{1} << 40));
    Reg best = b.func().newReg();
    b.constInto(best, 0);
    Reg a = b.func().newReg();
    b.constInto(a, 0);
    b.jmp(scan_head);

    b.setBlock(scan_head);
    Reg amore = b.cmpLt(a, nmod);
    b.br(amore, scan_body, upd_head);

    b.setBlock(scan_body);
    Reg da = b.load(a, kD, kDCls);
    Reg improved = b.cmpGt(da, maxgain);
    b.br(improved, scan_better, scan_next);

    b.setBlock(scan_better);
    b.movInto(maxgain, da);
    b.movInto(best, a);
    b.jmp(scan_next);

    b.setBlock(scan_next);
    b.addInto(a, a, one);
    b.jmp(scan_head);

    // --- Update loop: refresh every gain with the chosen row. -------
    b.setBlock(upd_head);
    Reg m = b.func().newReg();
    b.constInto(m, 0);
    Reg rowbase = b.mul(best, b.constI(kDim));
    Reg adj = b.shr(maxgain, b.constI(6));
    b.jmp(upd_body);

    b.setBlock(upd_body);
    Reg wv = b.load(b.add(rowbase, b.andr(m, dimmask)), kW, kWCls);
    Reg dm = b.load(m, kD, kDCls);
    Reg dnew = b.sub(b.add(dm, wv), adj);
    b.store(m, kD, dnew, kDCls);
    b.addInto(m, m, one);
    Reg umore = b.cmpLt(m, nmod);
    b.br(umore, upd_body, log_head);

    // --- Log loop: independent swap statistics (overlappable). ------
    b.setBlock(log_head);
    Reg q = b.func().newReg();
    b.constInto(q, 0);
    b.jmp(log_body);

    b.setBlock(log_body);
    Reg sv = b.load(q, kS, kSCls);
    Reg contrib = b.add(b.mul(maxgain, b.cmpEq(q, best)), one);
    b.store(q, kS, b.add(sv, contrib), kSCls);
    b.addInto(q, q, one);
    Reg lmore = b.cmpLt(q, nmod);
    b.br(lmore, log_body, pass_next);

    b.setBlock(pass_next);
    b.addInto(total, total, maxgain);
    b.addInto(pass, pass, one);
    b.jmp(pass_head);

    b.setBlock(done);
    b.ret({total});

    Workload w;
    w.name = "ks";
    w.function_name = "FindMaxGpAndSwap";
    w.exec_percent = 100;
    w.func = b.finish();
    w.mem_cells = kCells;
    w.train_args = {60, 12};
    w.ref_args = {400, 40};
    w.fill = [](MemoryImage &mem, bool ref) {
        Rng rng(ref ? 4242 : 2121);
        for (int64_t i = 0; i < kMaxMod; ++i)
            mem.write(kD + i, rng.nextRange(-200, 200));
        for (int64_t i = 0; i < kMaxMod * kDim; ++i)
            mem.write(kW + i, rng.nextRange(-3, 3));
    };
    return w;
}

} // namespace gmt
