#ifndef GMT_WORKLOADS_GENERATE_HPP
#define GMT_WORKLOADS_GENERATE_HPP

/**
 * @file
 * Seeded random workload generator and greedy repro reducer — the
 * instance factory behind tools/gmt_fuzz.cpp (ROADMAP item 4: mass-
 * produced stress corpus for the schedulers).
 *
 * Generated cells are always valid and always terminate:
 *  - the CFG is reducible by construction (structured if/else hammocks
 *    and natural while loops, like tests/testgen.cpp);
 *  - every loop is bounded: the single outer loop trips `n` times
 *    (the cell's argument), inner whiles count down from `|x| %
 *    max_loop_trips`;
 *  - every address is `base + |x| % region`, so memory accesses never
 *    leave the image;
 *  - alias classes are sound: class k accesses stay inside class k's
 *    region of the image, disjoint from every other class, and only
 *    kAliasAny roams the whole image. Two differently-classed
 *    accesses therefore never touch the same cell, which is exactly
 *    the contract mem_dep derives dependences from — so the
 *    fast==reference and MT==ST oracles hold on generated cells by
 *    construction, and any violation the fuzzer finds is a real
 *    scheduler bug.
 *
 * The returned function is canonicalized through print->parse, so its
 * arena order matches block order and a dumped `.gmt` repro reloads
 * bit-identically (same InstrIds, same digest).
 */

#include <cstdint>
#include <functional>

#include "workloads/workload.hpp"

namespace gmt
{

/** Distribution knobs for generateWorkload. */
struct GenOptions
{
    int max_depth = 3;         ///< structured nesting depth
    int max_stmts = 6;         ///< max statements per sequence
    int pool_regs = 8;         ///< size of the working register pool
    int num_alias_classes = 3; ///< distinct non-Any classes
    int64_t class_cells = 64;  ///< image cells per alias-class region
    double mem_prob = 0.35;    ///< memory-op probability per statement
    int max_loop_trips = 8;    ///< inner bounded-loop trip cap
    int64_t train_iters = 12;  ///< outer-loop trips, train input
    int64_t ref_iters = 64;    ///< outer-loop trips, ref input
    int fill_pairs = 24;       ///< random nonzero input cells
};

/**
 * Generate the cell for @p seed: name "gen<seed>", verified function,
 * sparse random fill, train/ref args = the outer trip counts. The
 * same (seed, opts) always yields the same cell.
 */
Workload generateWorkload(uint64_t seed, const GenOptions &opts = {});

/** Does this candidate still reproduce the failure under reduction? */
using FailurePredicate = std::function<bool(const Workload &)>;

/**
 * Greedily shrink @p w while @p fails stays true: branches collapse
 * to jumps (unreachable blocks pruned), non-terminator instructions
 * are deleted in exponentially shrinking batches, live-outs and fill
 * cells are dropped. Candidates are pre-screened (verifier clean,
 * terminates quickly under the single-threaded interpreter) before
 * the predicate pays for a pipeline run, and the result is
 * canonicalized through the cell text so the dumped repro reloads
 * bit-identically. @p fails must be true of @p w itself.
 */
Workload reduceWorkload(const Workload &w, const FailurePredicate &fails);

} // namespace gmt

#endif // GMT_WORKLOADS_GENERATE_HPP
