#include "workloads/serialize.hpp"

#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "support/error.hpp"

namespace gmt
{

namespace
{

using MemPairs = std::vector<std::pair<int64_t, int64_t>>;

/** Run @p w's fill for one input and record the nonzero cells. */
MemPairs
materializeFill(const Workload &w, bool ref)
{
    MemPairs pairs;
    if (!w.fill)
        return pairs;
    MemoryImage mi;
    mi.alloc(w.mem_cells);
    w.fill(mi, ref);
    for (int64_t a = 0; a < mi.size(); ++a) {
        int64_t v = mi.read(a);
        if (v != 0)
            pairs.emplace_back(a, v);
    }
    return pairs;
}

void
emitArgs(std::ostringstream &os, const char *key,
         const std::vector<int64_t> &args)
{
    os << key;
    for (int64_t a : args)
        os << " " << a;
    os << "\n";
}

void
emitMem(std::ostringstream &os, const char *key, const MemPairs &pairs)
{
    for (const auto &[addr, val] : pairs)
        os << key << " " << addr << " " << val << "\n";
}

std::vector<int64_t>
parseInts(std::istringstream &rest, int line_no)
{
    std::vector<int64_t> vals;
    int64_t v;
    while (rest >> v)
        vals.push_back(v);
    if (!rest.eof())
        fatal("gmt-cell parse error at line ", line_no,
              ": expected integers");
    return vals;
}

} // namespace

uint64_t
fnv1a64(std::string_view s)
{
    uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::string
hexDigest(uint64_t h)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[i] = digits[h & 0xf];
        h >>= 4;
    }
    return out;
}

std::string
workloadToText(const Workload &w)
{
    std::ostringstream os;
    os << "gmt-cell v1\n";
    os << "name " << w.name << "\n";
    os << "function " << w.function_name << "\n";
    os << "exec " << w.exec_percent << "\n";
    os << "cells " << w.mem_cells << "\n";
    emitArgs(os, "train-args", w.train_args);
    emitArgs(os, "ref-args", w.ref_args);
    emitMem(os, "train-mem", materializeFill(w, /*ref=*/false));
    emitMem(os, "ref-mem", materializeFill(w, /*ref=*/true));
    printFunction(w.func, os);
    return os.str();
}

Workload
workloadFromText(std::string_view text, const std::string &source)
{
    Workload w;
    MemPairs train_mem, ref_mem;
    bool saw_magic = false, saw_name = false, saw_cells = false;

    // Metadata lines up to the `func` header; the function body is
    // handed to the IR parser with the enclosing line number so its
    // errors point into the cell text.
    size_t start = 0;
    int line_no = 0;
    while (start <= text.size()) {
        size_t nl = text.find('\n', start);
        if (nl == std::string_view::npos)
            nl = text.size();
        std::string line(text.substr(start, nl - start));
        ++line_no;

        if (line.rfind("func ", 0) == 0 || line.rfind("func@", 0) == 0) {
            if (!saw_magic || !saw_name || !saw_cells)
                fatal("gmt-cell parse error at line ", line_no,
                      ": function before name/cells metadata");
            int used = 0;
            std::string_view body = text.substr(start);
            w.func = parseFunction(body, line_no, &used);
            // Nothing but blank lines may follow the function.
            size_t tail = 0;
            for (int i = 0; i < used; ++i) {
                size_t tnl = body.find('\n', tail);
                if (tnl == std::string_view::npos) {
                    tail = body.size();
                    break;
                }
                tail = tnl + 1;
            }
            if (body.find_first_not_of(" \n", tail) !=
                std::string_view::npos)
                fatal("gmt-cell parse error at line ", line_no + used,
                      ": text after the function body");
            if (w.function_name.empty())
                w.function_name = w.func.name();
            else if (w.function_name != w.func.name())
                fatal("gmt-cell parse error: 'function ",
                      w.function_name, "' does not match '@",
                      w.func.name(), "'");

            verifyOrDie(w.func, {}, "gmt-cell " + w.name);

            w.fill = [train_mem, ref_mem](MemoryImage &mi, bool ref) {
                for (const auto &[addr, val] :
                     ref ? ref_mem : train_mem)
                    mi.write(addr, val);
            };
            w.source = source;
            w.digest = hexDigest(fnv1a64(workloadToText(w)));
            return w;
        }

        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key.empty()) {
            // blank line
        } else if (key == "gmt-cell") {
            std::string ver;
            ls >> ver;
            if (ver != "v1")
                fatal("gmt-cell parse error at line ", line_no,
                      ": unsupported version '", ver, "'");
            saw_magic = true;
        } else if (!saw_magic) {
            fatal("gmt-cell parse error at line ", line_no,
                  ": missing 'gmt-cell v1' header");
        } else if (key == "name") {
            ls >> w.name;
            if (w.name.empty())
                fatal("gmt-cell parse error at line ", line_no,
                      ": empty name");
            saw_name = true;
        } else if (key == "function") {
            ls >> w.function_name;
        } else if (key == "exec") {
            ls >> w.exec_percent;
        } else if (key == "cells") {
            ls >> w.mem_cells;
            if (w.mem_cells < 0)
                fatal("gmt-cell parse error at line ", line_no,
                      ": negative cells");
            saw_cells = true;
        } else if (key == "train-args") {
            w.train_args = parseInts(ls, line_no);
        } else if (key == "ref-args") {
            w.ref_args = parseInts(ls, line_no);
        } else if (key == "train-mem" || key == "ref-mem") {
            int64_t addr, val;
            if (!(ls >> addr >> val))
                fatal("gmt-cell parse error at line ", line_no,
                      ": expected '", key, " ADDR VALUE'");
            if (addr < 0 || addr >= w.mem_cells)
                fatal("gmt-cell parse error at line ", line_no,
                      ": address ", addr, " outside 0..",
                      w.mem_cells - 1);
            (key[0] == 't' ? train_mem : ref_mem)
                .emplace_back(addr, val);
        } else {
            fatal("gmt-cell parse error at line ", line_no,
                  ": unknown key '", key, "'");
        }

        if (nl == text.size())
            break;
        start = nl + 1;
    }
    fatal("gmt-cell parse error: no 'func @...' body in ", source);
}

Workload
loadWorkloadFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open workload cell '", path, "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return workloadFromText(buf.str(), path);
}

void
saveWorkloadFile(const Workload &w, const std::string &path)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("cannot write workload cell '", path, "'");
    out << workloadToText(w);
    out.flush();
    if (!out)
        fatal("write failed for workload cell '", path, "'");
}

} // namespace gmt
