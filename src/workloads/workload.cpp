#include "workloads/workload.hpp"

namespace gmt
{

std::vector<Workload>
allWorkloads()
{
    std::vector<Workload> all;
    all.push_back(makeAdpcmDec());
    all.push_back(makeAdpcmEnc());
    all.push_back(makeKs());
    all.push_back(makeMpeg2Enc());
    all.push_back(makeMesa());
    all.push_back(makeMcf());
    all.push_back(makeEquake());
    all.push_back(makeAmmp());
    all.push_back(makeTwolf());
    all.push_back(makeGromacs());
    all.push_back(makeSjeng());
    return all;
}

} // namespace gmt
