#include "workloads/workload.hpp"

#include <algorithm>
#include <filesystem>

#include "support/error.hpp"
#include "workloads/serialize.hpp"

namespace gmt
{

WorkloadRegistry::WorkloadRegistry() : cells_(allWorkloads())
{
}

WorkloadRegistry
WorkloadRegistry::empty()
{
    WorkloadRegistry r;
    r.cells_.clear();
    return r;
}

void
WorkloadRegistry::add(Workload w)
{
    auto it = std::find_if(
        cells_.begin(), cells_.end(),
        [&](const Workload &have) { return have.name == w.name; });
    if (it != cells_.end())
        *it = std::move(w);
    else
        cells_.push_back(std::move(w));
}

int
WorkloadRegistry::loadDirectory(const std::string &dir)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    if (!fs::is_directory(dir, ec))
        fatal("--workload-dir: '", dir, "' is not a directory");
    std::vector<std::string> paths;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".gmt")
            paths.push_back(entry.path().string());
    }
    if (ec)
        fatal("--workload-dir: cannot read '", dir, "': ",
              ec.message());
    std::sort(paths.begin(), paths.end());
    for (const std::string &path : paths)
        add(loadWorkloadFile(path));
    return static_cast<int>(paths.size());
}

std::vector<Workload>
allWorkloads()
{
    std::vector<Workload> all;
    all.push_back(makeAdpcmDec());
    all.push_back(makeAdpcmEnc());
    all.push_back(makeKs());
    all.push_back(makeMpeg2Enc());
    all.push_back(makeMesa());
    all.push_back(makeMcf());
    all.push_back(makeEquake());
    all.push_back(makeAmmp());
    all.push_back(makeTwolf());
    all.push_back(makeGromacs());
    all.push_back(makeSjeng());
    return all;
}

} // namespace gmt
