#include "workloads/workload.hpp"

#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace gmt
{

namespace
{

constexpr int64_t kMaxNets = 512;
constexpr int64_t kTermsPerNet = 8;
constexpr int64_t kMaxTerms = kMaxNets * kTermsPerNet;
constexpr int64_t kXc = 0;                        // class 1
constexpr int64_t kYc = kXc + kMaxTerms;          // class 1
constexpr int64_t kDelta = kYc + kMaxTerms;       // class 2
constexpr int64_t kCost = kDelta + kMaxNets;      // class 3
constexpr int64_t kCells = kCost + kMaxNets;

constexpr AliasClass kCoordCls = 1, kDeltaCls = 2, kCostCls = 3;

} // namespace

/**
 * 300.twolf new_dbox_a (30% of execution): recompute the half-
 * perimeter bounding-box cost of each net touched by a cell move.
 * The per-net terminal loop computes the bounding box through
 * branchy running min/max updates; only the final box feeds the cost
 * update and the stored per-net cost — inner-loop live-outs consumed
 * at the net level, the structure COCO hoists.
 */
Workload
makeTwolf()
{
    FunctionBuilder b("new_dbox_a");
    Reg nets = b.param();

    BlockId entry = b.newBlock("entry");
    BlockId net_head = b.newBlock("net_head");
    BlockId net_body = b.newBlock("net_body");
    BlockId term_head = b.newBlock("term_head");
    BlockId term_body = b.newBlock("term_body");
    BlockId xlo_do = b.newBlock("xlo_do");
    BlockId xhi_chk = b.newBlock("xhi_chk");
    BlockId xhi_do = b.newBlock("xhi_do");
    BlockId ylo_chk = b.newBlock("ylo_chk");
    BlockId ylo_do = b.newBlock("ylo_do");
    BlockId yhi_chk = b.newBlock("yhi_chk");
    BlockId yhi_do = b.newBlock("yhi_do");
    BlockId term_next = b.newBlock("term_next");
    BlockId net_done = b.newBlock("net_done");
    BlockId done = b.newBlock("done");

    b.setBlock(entry);
    Reg one = b.constI(1);
    Reg big = b.constI(1 << 30);
    Reg tpn = b.constI(kTermsPerNet);
    Reg total = b.constI(0);
    Reg net = b.constI(0);
    b.jmp(net_head);

    b.setBlock(net_head);
    Reg nmore = b.cmpLt(net, nets);
    b.br(nmore, net_body, done);

    b.setBlock(net_body);
    Reg delta = b.load(net, kDelta, kDeltaCls);
    Reg xlo = b.func().newReg();
    b.movInto(xlo, big);
    Reg xhi = b.func().newReg();
    b.binopInto(Opcode::Sub, xhi, b.constI(0), big);
    Reg ylo = b.func().newReg();
    b.movInto(ylo, big);
    Reg yhi = b.func().newReg();
    b.binopInto(Opcode::Sub, yhi, b.constI(0), big);
    Reg base = b.mul(net, tpn);
    Reg t = b.func().newReg();
    b.constInto(t, 0);
    b.jmp(term_head);

    b.setBlock(term_head);
    Reg tmore = b.cmpLt(t, tpn);
    b.br(tmore, term_body, net_done);

    b.setBlock(term_body);
    Reg addr = b.add(base, t);
    Reg x = b.add(b.load(addr, kXc, kCoordCls), delta);
    Reg y = b.load(addr, kYc, kCoordCls);
    Reg xlt = b.cmpLt(x, xlo);
    b.br(xlt, xlo_do, xhi_chk);

    b.setBlock(xlo_do);
    b.movInto(xlo, x);
    b.jmp(xhi_chk);

    b.setBlock(xhi_chk);
    Reg xgt = b.cmpGt(x, xhi);
    b.br(xgt, xhi_do, ylo_chk);

    b.setBlock(xhi_do);
    b.movInto(xhi, x);
    b.jmp(ylo_chk);

    b.setBlock(ylo_chk);
    Reg ylt = b.cmpLt(y, ylo);
    b.br(ylt, ylo_do, yhi_chk);

    b.setBlock(ylo_do);
    b.movInto(ylo, y);
    b.jmp(yhi_chk);

    b.setBlock(yhi_chk);
    Reg ygt = b.cmpGt(y, yhi);
    b.br(ygt, yhi_do, term_next);

    b.setBlock(yhi_do);
    b.movInto(yhi, y);
    b.jmp(term_next);

    b.setBlock(term_next);
    b.addInto(t, t, one);
    b.jmp(term_head);

    // Only the final bounding box leaves the terminal loop.
    b.setBlock(net_done);
    Reg half = b.add(b.sub(xhi, xlo), b.sub(yhi, ylo));
    Reg old_cost = b.load(net, kCost, kCostCls);
    b.store(net, kCost, half, kCostCls);
    b.addInto(total, total, b.sub(half, old_cost));
    b.addInto(net, net, one);
    b.jmp(net_head);

    b.setBlock(done);
    b.ret({total});

    Workload w;
    w.name = "300.twolf";
    w.function_name = "new_dbox_a";
    w.exec_percent = 30;
    w.func = b.finish();
    w.mem_cells = kCells;
    w.train_args = {64};
    w.ref_args = {480};
    w.fill = [](MemoryImage &mem, bool ref) {
        Rng rng(ref ? 300 : 150);
        for (int64_t t = 0; t < kMaxTerms; ++t) {
            mem.write(kXc + t, rng.nextRange(0, 10000));
            mem.write(kYc + t, rng.nextRange(0, 10000));
        }
        for (int64_t n = 0; n < kMaxNets; ++n) {
            mem.write(kDelta + n, rng.nextRange(-40, 40));
            mem.write(kCost + n, rng.nextRange(0, 20000));
        }
    };
    return w;
}

} // namespace gmt
