#ifndef GMT_WORKLOADS_WORKLOAD_HPP
#define GMT_WORKLOADS_WORKLOAD_HPP

/**
 * @file
 * The benchmark kernels of the paper's Figure 6(b).
 *
 * The paper parallelizes one hot function from each of 11 MediaBench /
 * SPEC-CPU / Pointer-Intensive applications. The originals are not
 * redistributable, so each kernel here is a hand-written IR program
 * that mirrors the corresponding function's loop structure, control
 * flow, data recurrences, and memory access pattern (the features the
 * partitioners and COCO react to) — see DESIGN.md's substitution
 * table. Profiles are collected on `train` inputs and all measurements
 * run on larger `ref` inputs, matching the paper's methodology.
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ir/function.hpp"
#include "runtime/memory_image.hpp"

namespace gmt
{

/** One benchmark kernel plus its inputs. */
struct Workload
{
    std::string name;          ///< e.g. "adpcmdec"
    std::string function_name; ///< e.g. "adpcm_decoder"
    int exec_percent = 100;    ///< Figure 6(b) "Exec. %"

    Function func{""};

    /** Cells of data memory the kernel addresses. */
    int64_t mem_cells = 0;

    std::vector<int64_t> train_args;
    std::vector<int64_t> ref_args;

    /**
     * Deterministically fill input regions of a fresh MemoryImage
     * (which already has mem_cells allocated). @p ref selects the
     * reference (vs train) input content.
     */
    std::function<void(MemoryImage &, bool ref)> fill;

    /**
     * Where the cell came from: empty for built-in builders, the file
     * path for cells loaded from a `.gmt` corpus, "<fuzz>" for
     * generated cells.
     */
    std::string source;

    /**
     * Hex FNV-1a digest of the cell's canonical text (see
     * workloads/serialize.hpp); empty for built-in builders.
     */
    std::string digest;

    /**
     * ArtifactCache identity of the cell. Built-ins keep the bare name
     * (so cache keys — and thus figure outputs — are unchanged from
     * the hard-coded era); loaded/generated cells append the content
     * digest so two different cells sharing a name never collide.
     */
    std::string
    cacheKey() const
    {
        return digest.empty() ? name : name + "#" + digest;
    }
};

/** Factories, one per Figure 6(b) row. */
Workload makeAdpcmDec();
Workload makeAdpcmEnc();
Workload makeKs();
Workload makeMpeg2Enc();
Workload makeMesa();
Workload makeMcf();
Workload makeEquake();
Workload makeAmmp();
Workload makeTwolf();
Workload makeGromacs();
Workload makeSjeng();

/**
 * The workload registry: the 11 built-in builders plus any `.gmt`
 * cells loaded from corpus directories. A loaded cell whose name
 * matches an existing entry replaces it in place (keeping the paper's
 * ordering — this is how the built-vs-loaded bit-identity check swaps
 * the matrix out from under the figure drivers); new names append in
 * filename order.
 */
class WorkloadRegistry
{
  public:
    /** Starts with the 11 built-ins in the paper's order. */
    WorkloadRegistry();

    /** Empty registry (e.g. for corpus-only tools). */
    static WorkloadRegistry empty();

    /**
     * Load every `*.gmt` file in @p dir (sorted by filename) via
     * loadWorkloadFile, replace-or-append as described above.
     * @return the number of cells loaded. Throws FatalError if the
     * directory is unreadable or any cell is malformed.
     */
    int loadDirectory(const std::string &dir);

    /** Replace-or-append one cell. */
    void add(Workload w);

    const std::vector<Workload> &workloads() const { return cells_; }
    std::vector<Workload> take() { return std::move(cells_); }

  private:
    std::vector<Workload> cells_;
};

/** All 11 built-in kernels in the paper's order. */
std::vector<Workload> allWorkloads();

} // namespace gmt

#endif // GMT_WORKLOADS_WORKLOAD_HPP
