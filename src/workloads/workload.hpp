#ifndef GMT_WORKLOADS_WORKLOAD_HPP
#define GMT_WORKLOADS_WORKLOAD_HPP

/**
 * @file
 * The benchmark kernels of the paper's Figure 6(b).
 *
 * The paper parallelizes one hot function from each of 11 MediaBench /
 * SPEC-CPU / Pointer-Intensive applications. The originals are not
 * redistributable, so each kernel here is a hand-written IR program
 * that mirrors the corresponding function's loop structure, control
 * flow, data recurrences, and memory access pattern (the features the
 * partitioners and COCO react to) — see DESIGN.md's substitution
 * table. Profiles are collected on `train` inputs and all measurements
 * run on larger `ref` inputs, matching the paper's methodology.
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ir/function.hpp"
#include "runtime/memory_image.hpp"

namespace gmt
{

/** One benchmark kernel plus its inputs. */
struct Workload
{
    std::string name;          ///< e.g. "adpcmdec"
    std::string function_name; ///< e.g. "adpcm_decoder"
    int exec_percent = 100;    ///< Figure 6(b) "Exec. %"

    Function func{""};

    /** Cells of data memory the kernel addresses. */
    int64_t mem_cells = 0;

    std::vector<int64_t> train_args;
    std::vector<int64_t> ref_args;

    /**
     * Deterministically fill input regions of a fresh MemoryImage
     * (which already has mem_cells allocated). @p ref selects the
     * reference (vs train) input content.
     */
    std::function<void(MemoryImage &, bool ref)> fill;
};

/** Factories, one per Figure 6(b) row. */
Workload makeAdpcmDec();
Workload makeAdpcmEnc();
Workload makeKs();
Workload makeMpeg2Enc();
Workload makeMesa();
Workload makeMcf();
Workload makeEquake();
Workload makeAmmp();
Workload makeTwolf();
Workload makeGromacs();
Workload makeSjeng();

/** All 11 kernels in the paper's order. */
std::vector<Workload> allWorkloads();

} // namespace gmt

#endif // GMT_WORKLOADS_WORKLOAD_HPP
