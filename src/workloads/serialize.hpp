#ifndef GMT_WORKLOADS_SERIALIZE_HPP
#define GMT_WORKLOADS_SERIALIZE_HPP

/**
 * @file
 * The `.gmt` workload-cell format: a Workload as a loadable, dumpable
 * text artifact (ROADMAP item 4 / "workloads as data").
 *
 *   gmt-cell v1
 *   name adpcmdec
 *   function adpcm_decoder
 *   exec 100
 *   cells 4200
 *   train-args 40
 *   ref-args 200
 *   train-mem 16 88
 *   ...                     ; sparse nonzero cells, ascending address
 *   ref-mem 16 1021
 *   ...
 *   func @adpcm_decoder(r0) regs 31 {
 *   ...                     ; ir/printer.hpp form, parsed by ir/parser
 *   }
 *
 * The `fill` callback of a built-in workload is materialized at dump
 * time by running it against a fresh image and recording the nonzero
 * cells for both inputs; loading rebuilds an equivalent callback from
 * the recorded pairs. Since every builder's fill is deterministic,
 * dump -> load -> run is observationally identical to the built-in.
 *
 * workloadToText is canonical: field order, spacing, and the printer's
 * function text are all fixed, so text(load(text(w))) == text(w) and
 * the FNV-1a content digest of the text identifies the cell for
 * ArtifactCache keying (Workload::cacheKey).
 */

#include <cstdint>
#include <string>
#include <string_view>

#include "workloads/workload.hpp"

namespace gmt
{

/** FNV-1a 64-bit hash of @p s. */
uint64_t fnv1a64(std::string_view s);

/** 16-hex-digit rendering of @p h. */
std::string hexDigest(uint64_t h);

/** Serialize @p w in the canonical `.gmt` cell form. */
std::string workloadToText(const Workload &w);

/**
 * Parse a `.gmt` cell. The returned workload has `digest` set to the
 * hex FNV-1a of its canonical re-serialization and `source` set to
 * @p source (a file path or a marker like "<fuzz>"). The contained
 * function is verified with verifyOrDie before returning; malformed
 * input throws FatalError.
 */
Workload workloadFromText(std::string_view text,
                          const std::string &source = "<text>");

/** Read @p path and workloadFromText it (source = path). */
Workload loadWorkloadFile(const std::string &path);

/** Write workloadToText(w) to @p path (throws FatalError on I/O). */
void saveWorkloadFile(const Workload &w, const std::string &path);

} // namespace gmt

#endif // GMT_WORKLOADS_SERIALIZE_HPP
