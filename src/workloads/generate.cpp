#include "workloads/generate.hpp"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "ir/builder.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "runtime/interpreter.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "workloads/serialize.hpp"

namespace gmt
{

namespace
{

using MemPairs = std::vector<std::pair<int64_t, int64_t>>;

int64_t
totalCells(const GenOptions &opts)
{
    return std::max(1, opts.num_alias_classes) * opts.class_cells;
}

/** Structured random program generator (testgen.cpp's shape, but with
 *  unique labels, sound alias regions, and an outer loop over the
 *  cell argument). */
class CellGenerator
{
  public:
    CellGenerator(Rng &rng, const GenOptions &opts, std::string name)
        : rng_(rng), opts_(opts), builder_(std::move(name))
    {
    }

    Function
    run()
    {
        n_ = builder_.param();
        Reg x = builder_.param();

        BlockId entry = newBlock("entry");
        builder_.setBlock(entry);
        pool_.push_back(x);
        for (int i = 1; i < opts_.pool_regs; ++i)
            pool_.push_back(builder_.constI(rng_.nextRange(-64, 64)));
        one_ = builder_.constI(1);
        i_ = builder_.constI(0);

        BlockId head = newBlock("head");
        BlockId body = newBlock("body");
        BlockId done = newBlock("done");
        builder_.jmp(head);

        builder_.setBlock(head);
        Reg more = builder_.cmpLt(i_, n_);
        builder_.br(more, body, done);

        builder_.setBlock(body);
        emitSequence(opts_.max_depth);
        builder_.addInto(i_, i_, one_);
        builder_.jmp(head);

        builder_.setBlock(done);
        builder_.ret(pool_);
        return builder_.finish();
    }

  private:
    BlockId
    newBlock(const std::string &prefix)
    {
        return builder_.newBlock(prefix + std::to_string(label_++));
    }

    Reg
    randomPool()
    {
        return pool_[rng_.nextBelow(pool_.size())];
    }

    AliasClass
    randomAlias()
    {
        if (opts_.num_alias_classes == 0)
            return kAliasAny;
        return static_cast<AliasClass>(
            rng_.nextBelow(opts_.num_alias_classes + 1));
    }

    /**
     * In-bounds address for @p alias: class k stays inside class k's
     * region, only kAliasAny roams the whole image — so the alias
     * annotation is sound and the differential oracles hold.
     */
    Reg
    emitAddress(AliasClass alias)
    {
        Reg v = builder_.abs(randomPool());
        if (alias == kAliasAny) {
            Reg cells = builder_.constI(totalCells(opts_));
            return builder_.rem(v, cells);
        }
        Reg region = builder_.constI(opts_.class_cells);
        Reg off = builder_.rem(v, region);
        return builder_.addImm(off, (alias - 1) * opts_.class_cells);
    }

    void
    emitSimpleStmt()
    {
        if (rng_.nextDouble() < opts_.mem_prob) {
            AliasClass alias = randomAlias();
            Reg addr = emitAddress(alias);
            if (rng_.nextBool())
                builder_.loadInto(randomPool(), addr, 0, alias);
            else
                builder_.store(addr, 0, randomPool(), alias);
            return;
        }
        static const Opcode kOps[] = {
            Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::Div,
            Opcode::Rem, Opcode::And, Opcode::Or,  Opcode::Xor,
            Opcode::Shl, Opcode::Shr, Opcode::Min, Opcode::Max,
            Opcode::CmpLt, Opcode::CmpEq};
        Opcode op = kOps[rng_.nextBelow(std::size(kOps))];
        builder_.binopInto(op, randomPool(), randomPool(),
                           randomPool());
    }

    void
    emitSequence(int depth)
    {
        int n = 1 + static_cast<int>(rng_.nextBelow(
                        static_cast<uint64_t>(opts_.max_stmts)));
        for (int i = 0; i < n; ++i) {
            double roll = rng_.nextDouble();
            if (depth > 0 && roll < 0.2)
                emitIf(depth - 1);
            else if (depth > 0 && roll < 0.35)
                emitWhile(depth - 1);
            else
                emitSimpleStmt();
        }
    }

    void
    emitIf(int depth)
    {
        Reg cond = builder_.cmpLt(randomPool(), randomPool());
        BlockId then_b = newBlock("then");
        BlockId else_b = newBlock("else");
        BlockId join_b = newBlock("join");
        builder_.br(cond, then_b, else_b);
        builder_.setBlock(then_b);
        emitSequence(depth);
        builder_.jmp(join_b);
        builder_.setBlock(else_b);
        if (rng_.nextBool())
            emitSequence(depth);
        builder_.jmp(join_b);
        builder_.setBlock(join_b);
    }

    void
    emitWhile(int depth)
    {
        // Bounded, data-dependent trip count: |pool| % max_trips.
        Reg v = builder_.abs(randomPool());
        Reg bound = builder_.constI(opts_.max_loop_trips);
        Reg counter = builder_.mov(builder_.rem(v, bound));

        BlockId head = newBlock("whead");
        BlockId body = newBlock("wbody");
        BlockId exit = newBlock("wexit");
        builder_.jmp(head);
        builder_.setBlock(head);
        Reg zero = builder_.constI(0);
        Reg cond = builder_.cmpGt(counter, zero);
        builder_.br(cond, body, exit);
        builder_.setBlock(body);
        emitSequence(depth);
        builder_.binopInto(Opcode::Sub, counter, counter, one_);
        builder_.jmp(head);
        builder_.setBlock(exit);
    }

    Rng &rng_;
    GenOptions opts_;
    FunctionBuilder builder_;
    std::vector<Reg> pool_;
    Reg n_ = kNoReg;
    Reg i_ = kNoReg;
    Reg one_ = kNoReg;
    int label_ = 0;
};

/** Nonzero cells of @p w's materialized fill. */
MemPairs
materializePairs(const Workload &w, bool ref)
{
    MemPairs pairs;
    if (!w.fill)
        return pairs;
    MemoryImage mi;
    mi.alloc(w.mem_cells);
    w.fill(mi, ref);
    for (int64_t a = 0; a < mi.size(); ++a) {
        if (int64_t v = mi.read(a))
            pairs.emplace_back(a, v);
    }
    return pairs;
}

std::function<void(MemoryImage &, bool)>
fillFromPairs(MemPairs train, MemPairs ref)
{
    return [train = std::move(train),
            ref = std::move(ref)](MemoryImage &mi, bool is_ref) {
        for (const auto &[addr, val] : is_ref ? ref : train)
            mi.write(addr, val);
    };
}

// ---------------------------------------------------------------------------
// Reducer.

/**
 * Rebuild @p src with @p drop[i] instructions removed and Br
 * terminators of blocks in @p to_jmp collapsed to a Jmp onto the kept
 * successor; blocks that become unreachable are pruned. Returns false
 * (leaving @p out untouched) if the result does not verify.
 */
bool
rebuildFunction(const Function &src, const std::vector<char> &drop,
                const std::map<BlockId, BlockId> &to_jmp,
                const std::vector<Reg> &live_outs, Function *out)
{
    // New successor lists, then reachability over them.
    std::vector<std::vector<BlockId>> succs(src.numBlocks());
    for (BlockId b = 0; b < src.numBlocks(); ++b) {
        auto it = to_jmp.find(b);
        if (it != to_jmp.end())
            succs[b] = {it->second};
        else
            succs[b] = src.block(b).succs();
    }
    std::vector<char> reach(src.numBlocks(), 0);
    std::vector<BlockId> stack = {src.entry()};
    reach[src.entry()] = 1;
    while (!stack.empty()) {
        BlockId b = stack.back();
        stack.pop_back();
        for (BlockId s : succs[b]) {
            if (!reach[s]) {
                reach[s] = 1;
                stack.push_back(s);
            }
        }
    }

    Function f(src.name());
    f.ensureRegs(src.numRegs());
    for (Reg p : src.params())
        f.addParam(p);
    std::vector<BlockId> remap(src.numBlocks(), kNoBlock);
    for (BlockId b = 0; b < src.numBlocks(); ++b) {
        if (reach[b])
            remap[b] = f.addBlock(src.block(b).label());
    }
    if (remap[src.entry()] == kNoBlock)
        return false;
    for (BlockId b = 0; b < src.numBlocks(); ++b) {
        if (!reach[b])
            continue;
        for (InstrId i : src.block(b).instrs()) {
            Instr in = src.instr(i);
            bool is_term = in.isTerminator();
            if (!is_term && drop[i])
                continue;
            if (is_term && in.op == Opcode::Br && to_jmp.count(b)) {
                Instr j;
                j.op = Opcode::Jmp;
                f.append(remap[b], j);
                continue;
            }
            in.block = kNoBlock; // append() re-owns it
            f.append(remap[b], in);
        }
        std::vector<BlockId> mapped;
        for (BlockId s : succs[b])
            mapped.push_back(remap[s]);
        f.setSuccs(remap[b], mapped);
    }
    f.setEntry(remap[src.entry()]);
    f.setLiveOuts(live_outs);
    if (!verifyFunction(f).empty())
        return false;
    *out = std::move(f);
    return true;
}

/** Cheap sanity gate before paying for a pipeline run: the candidate
 *  must still terminate promptly under the reference interpreter. */
bool
terminatesQuickly(const Workload &w)
{
    try {
        MemoryImage mem;
        mem.alloc(w.mem_cells);
        if (w.fill)
            w.fill(mem, true);
        interpret(w.func, w.ref_args, mem, 20'000'000);
        return true;
    } catch (const FatalError &) {
        return false;
    } catch (const PanicError &) {
        return false;
    }
}

struct ReduceState
{
    Workload cur;
    MemPairs train, ref;
    const FailurePredicate &fails;

    Workload
    candidate(Function f, MemPairs t, MemPairs r) const
    {
        Workload c = cur;
        c.func = std::move(f);
        c.fill = fillFromPairs(std::move(t), std::move(r));
        return c;
    }

    bool
    accept(Workload c)
    {
        if (!terminatesQuickly(c) || !fails(c))
            return false;
        train = materializePairs(c, false);
        ref = materializePairs(c, true);
        cur = std::move(c);
        return true;
    }
};

/** Copy of the function with a different live-out list (if valid). */
bool
withLiveOuts(const Function &src, std::vector<Reg> outs, Function *out)
{
    std::vector<char> drop(src.numInstrs(), 0);
    return rebuildFunction(src, drop, {}, std::move(outs), out);
}

bool
tryBranchCollapse(ReduceState &st)
{
    const Function &f = st.cur.func;
    for (BlockId b = 0; b < f.numBlocks(); ++b) {
        InstrId t = f.block(b).terminator();
        if (t == kNoInstr || f.instr(t).op != Opcode::Br)
            continue;
        for (BlockId target : f.block(b).succs()) {
            Function cand(f.name());
            std::vector<char> drop(f.numInstrs(), 0);
            if (!rebuildFunction(f, drop, {{b, target}}, f.liveOuts(),
                                 &cand))
                continue;
            if (st.accept(st.candidate(std::move(cand), st.train,
                                       st.ref)))
                return true;
        }
    }
    return false;
}

bool
tryDropInstrs(ReduceState &st)
{
    const Function &f = st.cur.func;
    std::vector<InstrId> droppable;
    for (BlockId b = 0; b < f.numBlocks(); ++b) {
        for (InstrId i : f.block(b).instrs()) {
            if (!f.instr(i).isTerminator())
                droppable.push_back(i);
        }
    }
    // Exponentially shrinking batches: halves first, singletons last.
    for (size_t chunk = std::max<size_t>(droppable.size() / 2, 1);;
         chunk /= 2) {
        for (size_t at = 0; at < droppable.size(); at += chunk) {
            std::vector<char> drop(f.numInstrs(), 0);
            for (size_t k = at;
                 k < std::min(at + chunk, droppable.size()); ++k)
                drop[droppable[k]] = 1;
            Function cand(f.name());
            if (!rebuildFunction(f, drop, {}, f.liveOuts(), &cand))
                continue;
            if (st.accept(st.candidate(std::move(cand), st.train,
                                       st.ref)))
                return true;
        }
        if (chunk <= 1)
            return false;
    }
}

bool
tryShrinkLiveOuts(ReduceState &st)
{
    const std::vector<Reg> &outs = st.cur.func.liveOuts();
    if (outs.size() <= 1)
        return false;
    for (size_t i = 0; i < outs.size(); ++i) {
        std::vector<Reg> fewer = outs;
        fewer.erase(fewer.begin() + static_cast<long>(i));
        Function cand(st.cur.func.name());
        if (!withLiveOuts(st.cur.func, std::move(fewer), &cand))
            continue;
        if (st.accept(
                st.candidate(std::move(cand), st.train, st.ref)))
            return true;
    }
    return false;
}

bool
tryDropFillPairs(ReduceState &st)
{
    for (bool ref : {false, true}) {
        const MemPairs &pairs = ref ? st.ref : st.train;
        if (pairs.empty())
            continue;
        for (size_t chunk = std::max<size_t>(pairs.size() / 2, 1);;
             chunk /= 2) {
            for (size_t at = 0; at < pairs.size(); at += chunk) {
                MemPairs fewer;
                for (size_t k = 0; k < pairs.size(); ++k) {
                    if (k < at || k >= at + chunk)
                        fewer.push_back(pairs[k]);
                }
                Function cand = st.cur.func; // unchanged
                Workload c = st.candidate(
                    std::move(cand), ref ? st.train : fewer,
                    ref ? fewer : st.ref);
                if (st.accept(std::move(c)))
                    return true;
            }
            if (chunk <= 1)
                break;
        }
    }
    return false;
}

} // namespace

Workload
generateWorkload(uint64_t seed, const GenOptions &opts)
{
    Rng rng(seed ^ 0x67656e63656c6cull); // "gencell"
    std::string name = "gen" + std::to_string(seed);

    CellGenerator gen(rng, opts, name);
    Function raw = gen.run();

    Workload w;
    w.name = name;
    w.function_name = name;
    w.exec_percent = 100;
    // Canonicalize: arena order == block order, so a dumped repro
    // reloads with identical ids and digest.
    w.func = parseFunction(functionToString(raw));
    w.mem_cells = totalCells(opts);
    w.train_args = {opts.train_iters, rng.nextRange(-1000, 1000)};
    w.ref_args = {opts.ref_iters, rng.nextRange(-1000, 1000)};

    MemPairs train, ref;
    for (int i = 0; i < opts.fill_pairs; ++i) {
        train.emplace_back(
            static_cast<int64_t>(
                rng.nextBelow(static_cast<uint64_t>(w.mem_cells))),
            rng.nextRange(-512, 512));
        ref.emplace_back(
            static_cast<int64_t>(
                rng.nextBelow(static_cast<uint64_t>(w.mem_cells))),
            rng.nextRange(-512, 512));
    }
    w.fill = fillFromPairs(std::move(train), std::move(ref));
    w.source = "<fuzz>";
    w.digest = hexDigest(fnv1a64(workloadToText(w)));

    verifyOrDie(w.func, {}, "generated " + name);
    return w;
}

Workload
reduceWorkload(const Workload &w, const FailurePredicate &fails)
{
    ReduceState st{w, materializePairs(w, false),
                   materializePairs(w, true), fails};
    st.cur.fill = fillFromPairs(st.train, st.ref);
    if (!fails(st.cur))
        return w;

    // Each accepted step strictly shrinks (instrs, blocks, branches,
    // live-outs, fill pairs), so this terminates.
    bool changed = true;
    while (changed) {
        changed = false;
        while (tryBranchCollapse(st))
            changed = true;
        while (tryDropInstrs(st))
            changed = true;
        if (tryShrinkLiveOuts(st))
            changed = true;
        if (tryDropFillPairs(st))
            changed = true;
    }

    // Canonicalize so saveWorkloadFile(result) reloads bit-identically.
    Workload out = workloadFromText(workloadToText(st.cur), "<reduce>");
    out.source = w.source;
    return out;
}

} // namespace gmt
