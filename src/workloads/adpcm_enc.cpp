#include "workloads/workload.hpp"

#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace gmt
{

namespace
{

constexpr int64_t kMaxN = 4096;
constexpr int64_t kIn = 0;              // PCM samples, class 1
constexpr int64_t kOut = kIn + kMaxN;   // 4-bit codes, class 2
constexpr int64_t kStep = kOut + kMaxN; // step-size table, class 3
constexpr int64_t kIdx = kStep + 89;    // index adjust, class 4
constexpr int64_t kCells = kIdx + 16;

constexpr AliasClass kInCls = 1, kOutCls = 2, kStepCls = 3,
                     kIdxCls = 4;

} // namespace

/**
 * MediaBench adpcm_coder: quantize the prediction error into a 4-bit
 * code by successive step comparisons, reconstruct the predictor the
 * same way the decoder will, saturate, and advance the step index.
 * Longer dependence recurrence than the decoder (the quantization
 * feeds the reconstruction), with three data-dependent hammocks.
 */
Workload
makeAdpcmEnc()
{
    FunctionBuilder b("adpcm_coder");
    Reg n = b.param();

    BlockId entry = b.newBlock("entry");
    BlockId head = b.newBlock("head");
    BlockId body = b.newBlock("body");
    BlockId neg = b.newBlock("diff_neg");
    BlockId quant = b.newBlock("quant");
    BlockId q4 = b.newBlock("q4");
    BlockId q2chk = b.newBlock("q2chk");
    BlockId q2 = b.newBlock("q2");
    BlockId q1chk = b.newBlock("q1chk");
    BlockId q1 = b.newBlock("q1");
    BlockId recon = b.newBlock("recon");
    BlockId vneg = b.newBlock("vneg");
    BlockId vpos = b.newBlock("vpos");
    BlockId emit = b.newBlock("emit");
    BlockId done = b.newBlock("done");

    b.setBlock(entry);
    Reg i = b.constI(0);
    Reg valpred = b.constI(0);
    Reg index = b.constI(0);
    Reg zero = b.constI(0);
    Reg one = b.constI(1);
    Reg stepbase = b.constI(kStep);
    Reg idxbase = b.constI(kIdx);
    b.jmp(head);

    b.setBlock(head);
    Reg more = b.cmpLt(i, n);
    b.br(more, body, done);

    b.setBlock(body);
    Reg sample = b.load(i, kIn, kInCls);
    Reg diff = b.sub(sample, valpred);
    Reg sign = b.func().newReg();
    b.constInto(sign, 0);
    Reg is_neg = b.cmpLt(diff, zero);
    b.br(is_neg, neg, quant);

    b.setBlock(neg);
    b.constInto(sign, 8);
    b.unopInto(Opcode::Neg, diff, diff);
    b.jmp(quant);

    // Quantize: delta = 0..7 by successive halving of step.
    b.setBlock(quant);
    Reg stepaddr = b.add(stepbase, index);
    Reg step = b.load(stepaddr, 0, kStepCls);
    Reg delta = b.func().newReg();
    b.constInto(delta, 0);
    Reg tmpstep = b.mov(step);
    Reg vpdiff = b.mov(b.shr(step, b.constI(3)));
    Reg ge4 = b.cmpGe(diff, tmpstep);
    b.br(ge4, q4, q2chk);

    b.setBlock(q4);
    b.binopInto(Opcode::Or, delta, delta, b.constI(4));
    b.binopInto(Opcode::Sub, diff, diff, tmpstep);
    b.addInto(vpdiff, vpdiff, tmpstep);
    b.jmp(q2chk);

    b.setBlock(q2chk);
    b.binopInto(Opcode::Shr, tmpstep, tmpstep, one);
    Reg ge2 = b.cmpGe(diff, tmpstep);
    b.br(ge2, q2, q1chk);

    b.setBlock(q2);
    b.binopInto(Opcode::Or, delta, delta, b.constI(2));
    b.binopInto(Opcode::Sub, diff, diff, tmpstep);
    b.addInto(vpdiff, vpdiff, tmpstep);
    b.jmp(q1chk);

    b.setBlock(q1chk);
    b.binopInto(Opcode::Shr, tmpstep, tmpstep, one);
    Reg ge1 = b.cmpGe(diff, tmpstep);
    b.br(ge1, q1, recon);

    b.setBlock(q1);
    b.binopInto(Opcode::Or, delta, delta, one);
    b.addInto(vpdiff, vpdiff, tmpstep);
    b.jmp(recon);

    // Reconstruct predictor with the sign applied.
    b.setBlock(recon);
    Reg was_neg = b.cmpNe(sign, zero);
    b.br(was_neg, vneg, vpos);

    b.setBlock(vneg);
    b.binopInto(Opcode::Sub, valpred, valpred, vpdiff);
    b.jmp(emit);

    b.setBlock(vpos);
    b.addInto(valpred, valpred, vpdiff);
    b.jmp(emit);

    b.setBlock(emit);
    // Saturate (branch-free here; the decoder uses branches).
    b.binopInto(Opcode::Min, valpred, valpred, b.constI(32767));
    b.binopInto(Opcode::Max, valpred, valpred, b.constI(-32768));
    // index += indexTable[delta]; clamp.
    Reg code = b.orr(delta, sign);
    Reg idxaddr = b.add(idxbase, code);
    Reg adj = b.load(idxaddr, 0, kIdxCls);
    b.addInto(index, index, adj);
    b.binopInto(Opcode::Max, index, index, zero);
    b.binopInto(Opcode::Min, index, index, b.constI(88));
    b.store(i, kOut, code, kOutCls);
    b.addInto(i, i, one);
    b.jmp(head);

    b.setBlock(done);
    b.ret({valpred, index});

    Workload w;
    w.name = "adpcmenc";
    w.function_name = "adpcm_coder";
    w.exec_percent = 100;
    w.func = b.finish();
    w.mem_cells = kCells;
    w.train_args = {600};
    w.ref_args = {4000};
    w.fill = [](MemoryImage &mem, bool ref) {
        Rng rng(ref ? 91 : 17);
        int64_t n = ref ? 4000 : 600;
        // A wandering waveform: sums of small random steps.
        int64_t v = 0;
        for (int64_t k = 0; k < n; ++k) {
            v += rng.nextRange(-500, 500);
            if (v > 30000)
                v = 30000;
            if (v < -30000)
                v = -30000;
            mem.write(kIn + k, v);
        }
        int64_t step = 7;
        for (int64_t k = 0; k < 89; ++k) {
            mem.write(kStep + k, step);
            step = step + step / 10 + 1;
        }
        static const int64_t kAdjust[16] = {-1, -1, -1, -1, 2, 4, 6, 8,
                                            -1, -1, -1, -1, 2, 4, 6, 8};
        for (int64_t k = 0; k < 16; ++k)
            mem.write(kIdx + k, kAdjust[k]);
    };
    return w;
}

} // namespace gmt
