#include "workloads/workload.hpp"

#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace gmt
{

namespace
{

constexpr int64_t kMaxJ = 4096;
constexpr int64_t kJx = 0;                   // class 1
constexpr int64_t kJy = kJx + kMaxJ;         // class 1
constexpr int64_t kJz = kJy + kMaxJ;         // class 1
constexpr int64_t kQ = kJz + kMaxJ;          // class 2 (charges)
constexpr int64_t kFOut = kQ + kMaxJ;        // class 3 (forces)
constexpr int64_t kCells = kFOut + 3 * kMaxJ;

constexpr AliasClass kPosCls = 1, kChargeCls = 2, kFCls = 3;

} // namespace

/**
 * 435.gromacs inl1130 (75% of execution): the water-water Coulomb +
 * Lennard-Jones inner loop. Per j-particle: gather coordinates and
 * charge, compute the squared distance, a fixed-point inverse-r via
 * two Newton-Raphson refinement steps (multiply-heavy, exactly why
 * this kernel pipelines so well), combine Coulomb and LJ terms, and
 * scatter the force components. Arithmetic dominates; memory is a
 * regular gather/scatter.
 */
Workload
makeGromacs()
{
    FunctionBuilder b("inl1130");
    Reg nj = b.param();

    BlockId entry = b.newBlock("entry");
    BlockId head = b.newBlock("head");
    BlockId body = b.newBlock("body");
    BlockId red_head = b.newBlock("red_head");
    BlockId red_body = b.newBlock("red_body");
    BlockId done = b.newBlock("done");

    b.setBlock(entry);
    Reg one = b.constI(1);
    Reg three = b.constI(3);
    Reg shift = b.constI(12);
    Reg scale = b.constI(1 << 24);
    Reg ix = b.constI(5 << 6);
    Reg iy = b.constI(3 << 6);
    Reg iz = b.constI(7 << 6);
    Reg vctot = b.constI(0);
    Reg vnbtot = b.constI(0);
    Reg j = b.constI(0);
    b.jmp(head);

    b.setBlock(head);
    Reg more = b.cmpLt(j, nj);
    b.br(more, body, red_head);

    b.setBlock(body);
    Reg jx = b.load(j, kJx, kPosCls);
    Reg jy = b.load(j, kJy, kPosCls);
    Reg jz = b.load(j, kJz, kPosCls);
    Reg q = b.load(j, kQ, kChargeCls);
    Reg dx = b.sub(ix, jx);
    Reg dy = b.sub(iy, jy);
    Reg dz = b.sub(iz, jz);
    Reg rsq = b.add(b.add(b.mul(dx, dx), b.mul(dy, dy)),
                    b.mul(dz, dz));
    b.binopInto(Opcode::Max, rsq, rsq, one);
    // Fixed-point inverse: seed then two Newton-Raphson steps
    // (x <- x*(2 - r*x), all in Q12).
    Reg two_fp = b.constI(2 << 12);
    Reg x0 = b.div(scale, rsq);
    Reg t1 = b.shr(b.mul(rsq, x0), shift);
    Reg x1 = b.shr(b.mul(x0, b.sub(two_fp, t1)), shift);
    Reg t2 = b.shr(b.mul(rsq, x1), shift);
    Reg rinvsq = b.shr(b.mul(x1, b.sub(two_fp, t2)), shift);
    // Coulomb ~ q * rinv; LJ ~ c12*rinvsq^6 - c6*rinvsq^3 (folded).
    Reg vcoul = b.shr(b.mul(q, rinvsq), shift);
    Reg r4 = b.shr(b.mul(rinvsq, rinvsq), shift);
    Reg r6 = b.shr(b.mul(r4, rinvsq), shift);
    Reg vnb = b.sub(b.mul(r6, three), r4);
    b.addInto(vctot, vctot, vcoul);
    b.addInto(vnbtot, vnbtot, vnb);
    Reg fs = b.add(vcoul, vnb);
    b.store(b.mul(j, three), kFOut, b.mul(fs, dx), kFCls);
    b.store(b.add(b.mul(j, three), one), kFOut, b.mul(fs, dy),
            kFCls);
    b.store(b.add(b.mul(j, three), b.constI(2)), kFOut,
            b.mul(fs, dz), kFCls);
    b.addInto(j, j, one);
    b.jmp(head);

    // The i-particle force reduction: sum the scattered j-forces
    // back into the water molecule's net force (inl1130 updates
    // fix/fiy/fiz after the j loop). Reads the force array the inner
    // loop wrote — a one-directional memory dependence between the
    // two loops.
    b.setBlock(red_head);
    Reg k = b.func().newReg();
    b.constInto(k, 0);
    Reg fsum = b.func().newReg();
    b.constInto(fsum, 0);
    b.jmp(red_body);

    b.setBlock(red_body);
    Reg fv = b.load(k, kFOut, kFCls);
    b.addInto(fsum, fsum, fv);
    b.addInto(k, k, one);
    Reg rmore = b.cmpLt(k, b.mul(nj, three));
    b.br(rmore, red_body, done);

    b.setBlock(done);
    b.ret({vctot, vnbtot, fsum});

    Workload w;
    w.name = "435.gromacs";
    w.function_name = "inl1130";
    w.exec_percent = 75;
    w.func = b.finish();
    w.mem_cells = kCells;
    w.train_args = {400};
    w.ref_args = {3500};
    w.fill = [](MemoryImage &mem, bool ref) {
        Rng rng(ref ? 435 : 217);
        for (int64_t j = 0; j < kMaxJ; ++j) {
            mem.write(kJx + j, rng.nextRange(-512, 512));
            mem.write(kJy + j, rng.nextRange(-512, 512));
            mem.write(kJz + j, rng.nextRange(-512, 512));
            mem.write(kQ + j, rng.nextRange(1, 4096));
        }
    };
    return w;
}

} // namespace gmt
