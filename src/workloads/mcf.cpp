#include "workloads/workload.hpp"

#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace gmt
{

namespace
{

constexpr int64_t kMaxNodes = 4096;
constexpr int64_t kParent = 0;                       // class 1
constexpr int64_t kOrient = kParent + kMaxNodes;     // class 2
constexpr int64_t kCost = kOrient + kMaxNodes;       // class 3
constexpr int64_t kPot = kCost + kMaxNodes;          // class 4
constexpr int64_t kCells = kPot + kMaxNodes;

constexpr AliasClass kParCls = 1, kOriCls = 2, kCostCls = 3,
                     kPotCls = 4;

} // namespace

/**
 * 181.mcf refresh_potential (32% of execution): walk the spanning
 * tree in preorder (parents precede children) and recompute each
 * node's potential from its parent's — a read of potential[parent]
 * followed by a write of potential[node] through the same array,
 * i.e. a loop-carried dependence through memory, plus the
 * up/down-arc orientation branch.
 */
Workload
makeMcf()
{
    FunctionBuilder b("refresh_potential");
    Reg n = b.param();

    BlockId entry = b.newBlock("entry");
    BlockId head = b.newBlock("head");
    BlockId body = b.newBlock("body");
    BlockId up = b.newBlock("up_arc");
    BlockId down = b.newBlock("down_arc");
    BlockId next = b.newBlock("next");
    BlockId done = b.newBlock("done");

    b.setBlock(entry);
    Reg one = b.constI(1);
    Reg zero = b.constI(0);
    Reg big = b.constI(1 << 24);
    // Root potential.
    b.store(zero, kPot, big, kPotCls);
    Reg checksum = b.constI(0);
    Reg i = b.constI(1);
    b.jmp(head);

    b.setBlock(head);
    Reg more = b.cmpLt(i, n);
    b.br(more, body, done);

    b.setBlock(body);
    Reg parent = b.load(i, kParent, kParCls);
    Reg ppot = b.load(parent, kPot, kPotCls); // reads earlier store
    Reg cost = b.load(i, kCost, kCostCls);
    Reg orient = b.load(i, kOrient, kOriCls);
    Reg pot = b.func().newReg();
    Reg is_up = b.cmpNe(orient, zero);
    b.br(is_up, up, down);

    b.setBlock(up);
    b.binopInto(Opcode::Sub, pot, ppot, cost);
    b.jmp(next);

    b.setBlock(down);
    b.binopInto(Opcode::Add, pot, ppot, cost);
    b.jmp(next);

    b.setBlock(next);
    b.store(i, kPot, pot, kPotCls);
    b.addInto(checksum, checksum, pot);
    b.addInto(i, i, one);
    b.jmp(head);

    b.setBlock(done);
    b.ret({checksum});

    Workload w;
    w.name = "181.mcf";
    w.function_name = "refresh_potential";
    w.exec_percent = 32;
    w.func = b.finish();
    w.mem_cells = kCells;
    w.train_args = {500};
    w.ref_args = {4000};
    w.fill = [](MemoryImage &mem, bool ref) {
        Rng rng(ref ? 363 : 181);
        int64_t n = ref ? 4000 : 500;
        for (int64_t i = 1; i < n; ++i) {
            // Preorder tree: parent strictly before the child.
            mem.write(kParent + i, rng.nextBelow(i));
            mem.write(kOrient + i, rng.nextBelow(2));
            mem.write(kCost + i, rng.nextRange(1, 1000));
        }
    };
    return w;
}

} // namespace gmt
