#include "workloads/workload.hpp"

#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace gmt
{

namespace
{

constexpr int64_t kSpan = 2048;     // pixels per call
constexpr int64_t kTexDim = 64;     // 64x64 texture
constexpr int64_t kTex = 0;                          // class 1
constexpr int64_t kFb = kTex + kTexDim * kTexDim;    // class 2
constexpr int64_t kZb = kFb + kSpan;                 // class 3
constexpr int64_t kCells = kZb + kSpan;

constexpr AliasClass kTexCls = 1, kFbCls = 2, kZbCls = 3;

} // namespace

/**
 * 177.mesa general_textured_triangle (32% of execution): a span walk
 * with fixed-point interpolation of z and the texture coordinates, a
 * z-buffer test per pixel, and texel fetch + framebuffer/z-buffer
 * writes on pass. The z-buffer is read *and* written through the same
 * alias class, so a GREMIO split of this loop carries inter-thread
 * memory dependences — one of the two benchmarks where COCO removes
 * >99% of the dynamic memory synchronizations.
 */
Workload
makeMesa()
{
    FunctionBuilder b("general_textured_triangle");
    Reg n = b.param();      // pixels in the span
    Reg dzdx = b.param();   // z slope (fixed point)

    BlockId entry = b.newBlock("entry");
    BlockId head = b.newBlock("head");
    BlockId body = b.newBlock("body");
    BlockId zpass = b.newBlock("zpass");
    BlockId next = b.newBlock("next");
    BlockId blend_head = b.newBlock("blend_head");
    BlockId blend_body = b.newBlock("blend_body");
    BlockId done = b.newBlock("done");

    b.setBlock(entry);
    Reg one = b.constI(1);
    Reg eight = b.constI(8);
    Reg texmask = b.constI(kTexDim - 1);
    Reg texdim = b.constI(kTexDim);
    Reg i = b.constI(0);
    Reg z = b.constI(1 << 20);
    Reg sc = b.constI(0);            // s texture coordinate
    Reg tc = b.constI(0);            // t texture coordinate
    Reg dsdx = b.constI(97);         // fixed-point coordinate slopes
    Reg dtdx = b.constI(53);
    Reg shade = b.constI(11);
    Reg written = b.constI(0);
    b.jmp(head);

    b.setBlock(head);
    Reg more = b.cmpLt(i, n);
    b.br(more, body, blend_head);

    b.setBlock(body);
    // Fixed-point interpolation (incremental adds, like the span
    // rasterizer's inner loop).
    b.addInto(z, z, dzdx);
    b.addInto(sc, sc, dsdx);
    b.addInto(tc, tc, dtdx);
    Reg zval = b.load(i, kZb, kZbCls);
    Reg pass = b.cmpLt(z, zval);
    b.br(pass, zpass, next);

    b.setBlock(zpass);
    // texel = texture[(t>>8 & mask)*dim + (s>>8 & mask)]
    Reg su = b.andr(b.shr(sc, eight), texmask);
    Reg tu = b.andr(b.shr(tc, eight), texmask);
    Reg taddr = b.add(b.mul(tu, texdim), su);
    Reg texel = b.load(taddr, kTex, kTexCls);
    Reg color = b.add(texel, shade);
    b.store(i, kFb, color, kFbCls);
    b.store(i, kZb, z, kZbCls);
    b.addInto(written, written, one);
    b.jmp(next);

    b.setBlock(next);
    b.addInto(i, i, one);
    b.jmp(head);

    // Second pass: blend the rendered span against the previous row
    // (the rasterizer emits spans back to back; this pass reads the
    // framebuffer the first loop wrote, a one-directional memory
    // dependence a thread split must synchronize).
    b.setBlock(blend_head);
    Reg k = b.func().newReg();
    b.constInto(k, 1);
    Reg blend_acc = b.func().newReg();
    b.constInto(blend_acc, 0);
    b.jmp(blend_body);

    b.setBlock(blend_body);
    Reg c0 = b.load(k, kFb - 1, kFbCls);
    Reg c1 = b.load(k, kFb, kFbCls);
    Reg mixed = b.shr(b.add(c0, c1), one);
    b.addInto(blend_acc, blend_acc, mixed);
    b.addInto(k, k, one);
    Reg bmore = b.cmpLt(k, n);
    b.br(bmore, blend_body, done);

    b.setBlock(done);
    b.ret({written, z, blend_acc});

    Workload w;
    w.name = "177.mesa";
    w.function_name = "general_textured_triangle";
    w.exec_percent = 32;
    w.func = b.finish();
    w.mem_cells = kCells;
    w.train_args = {300, 37};
    w.ref_args = {2000, 37};
    w.fill = [](MemoryImage &mem, bool ref) {
        Rng rng(ref ? 808 : 404);
        for (int64_t i = 0; i < kTexDim * kTexDim; ++i)
            mem.write(kTex + i, rng.nextRange(0, 255));
        for (int64_t i = 0; i < kSpan; ++i)
            mem.write(kZb + i, rng.nextRange(1 << 19, 1 << 22));
    };
    return w;
}

} // namespace gmt
