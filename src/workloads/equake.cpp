#include "workloads/workload.hpp"

#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace gmt
{

namespace
{

constexpr int64_t kMaxRows = 1024;
constexpr int64_t kNzPerRow = 8;
constexpr int64_t kMaxNz = kMaxRows * kNzPerRow;
constexpr int64_t kRowPtr = 0;                      // class 1
constexpr int64_t kCol = kRowPtr + kMaxRows + 1;    // class 2
constexpr int64_t kVal = kCol + kMaxNz;             // class 3
constexpr int64_t kX = kVal + kMaxNz;               // class 4
constexpr int64_t kY = kX + kMaxRows;               // class 5
constexpr int64_t kCells = kY + kMaxRows;

constexpr AliasClass kRpCls = 1, kColCls = 2, kValCls = 3, kXCls = 4,
                     kYCls = 5;

} // namespace

/**
 * 183.equake smvp (63% of execution): symmetric sparse matrix-vector
 * product in CSR form. Each nonzero contributes to the current row's
 * accumulator *and* scatters into y[col] (read-modify-write), so the
 * y array carries loop-borne memory dependences besides the gather
 * loads — the classic DSWP pipeline kernel.
 */
Workload
makeEquake()
{
    FunctionBuilder b("smvp");
    Reg rows = b.param();

    BlockId entry = b.newBlock("entry");
    BlockId rhead = b.newBlock("row_head");
    BlockId rbody = b.newBlock("row_body");
    BlockId khead = b.newBlock("nz_head");
    BlockId kbody = b.newBlock("nz_body");
    BlockId rdone = b.newBlock("row_done");
    BlockId done = b.newBlock("done");

    b.setBlock(entry);
    Reg one = b.constI(1);
    Reg checksum = b.constI(0);
    Reg r = b.constI(0);
    b.jmp(rhead);

    b.setBlock(rhead);
    Reg more = b.cmpLt(r, rows);
    b.br(more, rbody, done);

    b.setBlock(rbody);
    Reg k = b.load(r, kRowPtr, kRpCls);
    Reg kend = b.load(r, kRowPtr + 1, kRpCls);
    Reg xr = b.load(r, kX, kXCls);
    Reg sum = b.func().newReg();
    b.constInto(sum, 0);
    b.jmp(khead);

    b.setBlock(khead);
    Reg kmore = b.cmpLt(k, kend);
    b.br(kmore, kbody, rdone);

    b.setBlock(kbody);
    Reg c = b.load(k, kCol, kColCls);
    Reg v = b.load(k, kVal, kValCls);
    Reg xc = b.load(c, kX, kXCls);
    b.addInto(sum, sum, b.mul(v, xc));
    // Symmetric scatter: y[c] += v * x[r].
    Reg yc = b.load(c, kY, kYCls);
    b.store(c, kY, b.add(yc, b.mul(v, xr)), kYCls);
    b.addInto(k, k, one);
    b.jmp(khead);

    b.setBlock(rdone);
    Reg yr = b.load(r, kY, kYCls);
    b.store(r, kY, b.add(yr, sum), kYCls);
    b.addInto(checksum, checksum, sum);
    b.addInto(r, r, one);
    b.jmp(rhead);

    b.setBlock(done);
    b.ret({checksum});

    Workload w;
    w.name = "183.equake";
    w.function_name = "smvp";
    w.exec_percent = 63;
    w.func = b.finish();
    w.mem_cells = kCells;
    w.train_args = {128};
    w.ref_args = {1000};
    w.fill = [](MemoryImage &mem, bool ref) {
        Rng rng(ref ? 919 : 515);
        int64_t rows = ref ? 1000 : 128;
        int64_t nz = 0;
        for (int64_t r = 0; r < rows; ++r) {
            mem.write(kRowPtr + r, nz);
            int64_t count = 1 + rng.nextBelow(kNzPerRow);
            for (int64_t j = 0; j < count; ++j) {
                mem.write(kCol + nz, rng.nextBelow(rows));
                mem.write(kVal + nz, rng.nextRange(-8, 8));
                ++nz;
            }
        }
        mem.write(kRowPtr + rows, nz);
        for (int64_t r = 0; r < rows; ++r)
            mem.write(kX + r, rng.nextRange(-100, 100));
    };
    return w;
}

} // namespace gmt
