#include "workloads/workload.hpp"

#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace gmt
{

namespace
{

constexpr int64_t kBlocks = 64; // macroblock pairs available
constexpr int64_t kBlk1 = 0;                        // class 1
constexpr int64_t kBlk2 = kBlk1 + kBlocks * 256;    // class 2
constexpr int64_t kCells = kBlk2 + kBlocks * 256;

constexpr AliasClass kB1Cls = 1, kB2Cls = 2;

} // namespace

/**
 * mpeg2enc dist1 (58% of execution): 16x16 sum of absolute
 * differences with the early-exit distlim test after each row, and
 * the |a-b| hammock per element — the "register communication in
 * various hammocks" the paper credits COCO's gains on this benchmark
 * to. An outer loop sweeps candidate blocks, like motion estimation
 * calling dist1 repeatedly.
 */
Workload
makeMpeg2Enc()
{
    FunctionBuilder b("dist1");
    Reg nblocks = b.param();
    Reg distlim = b.param();

    BlockId entry = b.newBlock("entry");
    BlockId mb_head = b.newBlock("mb_head");
    BlockId row_init = b.newBlock("row_init");
    BlockId row_head = b.newBlock("row_head");
    BlockId col_head = b.newBlock("col_head");
    BlockId col_body = b.newBlock("col_body");
    BlockId neg_fix = b.newBlock("neg_fix");
    BlockId accum = b.newBlock("accum");
    BlockId row_done = b.newBlock("row_done");
    BlockId early_out = b.newBlock("early_out");
    BlockId mb_next = b.newBlock("mb_next");
    BlockId done = b.newBlock("done");

    b.setBlock(entry);
    Reg zero = b.constI(0);
    Reg one = b.constI(1);
    Reg sixteen = b.constI(16);
    Reg total = b.constI(0);
    Reg best = b.constI(int64_t{1} << 40);
    Reg mb = b.constI(0);
    b.jmp(mb_head);

    b.setBlock(mb_head);
    Reg mb_more = b.cmpLt(mb, nblocks);
    b.br(mb_more, row_init, done);

    b.setBlock(row_init);
    Reg s = b.func().newReg();
    b.constInto(s, 0);
    Reg y = b.func().newReg();
    b.constInto(y, 0);
    Reg base = b.mul(mb, b.constI(256));
    b.jmp(row_head);

    b.setBlock(row_head);
    Reg x = b.func().newReg();
    b.constInto(x, 0);
    Reg rowoff = b.add(base, b.mul(y, sixteen));
    b.jmp(col_head);

    b.setBlock(col_head);
    Reg addr = b.add(rowoff, x);
    Reg v1 = b.load(addr, kBlk1, kB1Cls);
    Reg v2 = b.load(addr, kBlk2, kB2Cls);
    Reg d = b.sub(v1, v2);
    Reg isneg = b.cmpLt(d, zero);
    b.br(isneg, neg_fix, accum); // the |a-b| hammock

    b.setBlock(col_body); // row finished: early-exit check
    Reg over = b.cmpGt(s, distlim);
    b.br(over, early_out, row_done);

    b.setBlock(neg_fix);
    b.unopInto(Opcode::Neg, d, d);
    b.jmp(accum);

    b.setBlock(accum);
    b.addInto(s, s, d);
    b.addInto(x, x, one);
    Reg col_more = b.cmpLt(x, sixteen);
    b.br(col_more, col_head, col_body);

    b.setBlock(row_done);
    b.addInto(y, y, one);
    Reg row_more = b.cmpLt(y, sixteen);
    b.br(row_more, row_head, early_out);

    b.setBlock(early_out);
    b.addInto(total, total, s);
    b.binopInto(Opcode::Min, best, best, s);
    b.jmp(mb_next);

    b.setBlock(mb_next);
    b.addInto(mb, mb, one);
    b.jmp(mb_head);

    b.setBlock(done);
    b.ret({total, best});

    Workload w;
    w.name = "mpeg2enc";
    w.function_name = "dist1";
    w.exec_percent = 58;
    w.func = b.finish();
    w.mem_cells = kCells;
    w.train_args = {8, 1200};
    w.ref_args = {48, 1200};
    w.fill = [](MemoryImage &mem, bool ref) {
        Rng rng(ref ? 5150 : 2525);
        for (int64_t i = 0; i < kBlocks * 256; ++i) {
            int64_t p = rng.nextRange(0, 255);
            mem.write(kBlk1 + i, p);
            // blk2 correlated with blk1 so early exit sometimes fires
            // and sometimes does not.
            mem.write(kBlk2 + i, p + rng.nextRange(-30, 30));
        }
    };
    return w;
}

} // namespace gmt
