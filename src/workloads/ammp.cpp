#include "workloads/workload.hpp"

#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace gmt
{

namespace
{

constexpr int64_t kMaxAtoms = 1024;
constexpr int64_t kWindow = 6; // neighbor window
constexpr int64_t kPx = 0;                     // class 1
constexpr int64_t kPy = kPx + kMaxAtoms;       // class 1
constexpr int64_t kPz = kPy + kMaxAtoms;       // class 1
constexpr int64_t kFx = kPz + kMaxAtoms;       // class 2
constexpr int64_t kFy = kFx + kMaxAtoms;       // class 2
constexpr int64_t kFz = kFy + kMaxAtoms;       // class 2
constexpr int64_t kCells = kFz + kMaxAtoms;

constexpr AliasClass kPosCls = 1, kForceCls = 2;

} // namespace

/**
 * 188.ammp mm_fv_update_nonbon (79% of execution): the non-bonded
 * force update. For each atom pair inside the neighbor window,
 * compute the squared distance in fixed point, apply the cutoff
 * branch, derive an inverse-square force (integer division stands in
 * for the reciprocal), and accumulate equal-and-opposite forces —
 * read-modify-write traffic on the force arrays under control flow.
 */
Workload
makeAmmp()
{
    FunctionBuilder b("mm_fv_update_nonbon");
    Reg atoms = b.param();
    Reg cutoff = b.param();

    BlockId entry = b.newBlock("entry");
    BlockId ihead = b.newBlock("i_head");
    BlockId ibody = b.newBlock("i_body");
    BlockId jhead = b.newBlock("j_head");
    BlockId jbody = b.newBlock("j_body");
    BlockId apply = b.newBlock("apply");
    BlockId jnext = b.newBlock("j_next");
    BlockId inext = b.newBlock("i_next");
    BlockId done = b.newBlock("done");

    b.setBlock(entry);
    Reg one = b.constI(1);
    Reg window = b.constI(kWindow);
    Reg kscale = b.constI(1 << 16);
    Reg energy = b.constI(0);
    Reg i = b.constI(0);
    b.jmp(ihead);

    b.setBlock(ihead);
    Reg imax = b.sub(atoms, window);
    Reg imore = b.cmpLt(i, imax);
    b.br(imore, ibody, done);

    b.setBlock(ibody);
    Reg xi = b.load(i, kPx, kPosCls);
    Reg yi = b.load(i, kPy, kPosCls);
    Reg zi = b.load(i, kPz, kPosCls);
    Reg j = b.func().newReg();
    b.binopInto(Opcode::Add, j, i, one);
    Reg jend = b.add(i, window);
    b.jmp(jhead);

    b.setBlock(jhead);
    Reg jmore = b.cmpLe(j, jend);
    b.br(jmore, jbody, inext);

    b.setBlock(jbody);
    Reg xj = b.load(j, kPx, kPosCls);
    Reg yj = b.load(j, kPy, kPosCls);
    Reg zj = b.load(j, kPz, kPosCls);
    Reg dx = b.sub(xi, xj);
    Reg dy = b.sub(yi, yj);
    Reg dz = b.sub(zi, zj);
    Reg r2 = b.add(b.add(b.mul(dx, dx), b.mul(dy, dy)),
                   b.mul(dz, dz));
    Reg inside = b.cmpLt(r2, cutoff);
    b.br(inside, apply, jnext);

    b.setBlock(apply);
    // f = kscale / (r2 + 1): integer reciprocal-square stand-in.
    Reg f = b.div(kscale, b.add(r2, one));
    Reg fxi = b.load(i, kFx, kForceCls);
    b.store(i, kFx, b.add(fxi, b.mul(f, dx)), kForceCls);
    Reg fyi = b.load(i, kFy, kForceCls);
    b.store(i, kFy, b.add(fyi, b.mul(f, dy)), kForceCls);
    Reg fzi = b.load(i, kFz, kForceCls);
    b.store(i, kFz, b.add(fzi, b.mul(f, dz)), kForceCls);
    Reg fxj = b.load(j, kFx, kForceCls);
    b.store(j, kFx, b.sub(fxj, b.mul(f, dx)), kForceCls);
    Reg fyj = b.load(j, kFy, kForceCls);
    b.store(j, kFy, b.sub(fyj, b.mul(f, dy)), kForceCls);
    Reg fzj = b.load(j, kFz, kForceCls);
    b.store(j, kFz, b.sub(fzj, b.mul(f, dz)), kForceCls);
    b.addInto(energy, energy, f);
    b.jmp(jnext);

    b.setBlock(jnext);
    b.addInto(j, j, one);
    b.jmp(jhead);

    b.setBlock(inext);
    b.addInto(i, i, one);
    b.jmp(ihead);

    b.setBlock(done);
    b.ret({energy});

    Workload w;
    w.name = "188.ammp";
    w.function_name = "mm_fv_update_nonbon";
    w.exec_percent = 79;
    w.func = b.finish();
    w.mem_cells = kCells;
    w.train_args = {100, 600};
    w.ref_args = {900, 600};
    w.fill = [](MemoryImage &mem, bool ref) {
        Rng rng(ref ? 787 : 393);
        for (int64_t a = 0; a < kMaxAtoms; ++a) {
            mem.write(kPx + a, rng.nextRange(-12, 12));
            mem.write(kPy + a, rng.nextRange(-12, 12));
            mem.write(kPz + a, rng.nextRange(-12, 12));
        }
    };
    return w;
}

} // namespace gmt
