#include "workloads/workload.hpp"

#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace gmt
{

namespace
{

// Memory layout (cell indices).
constexpr int64_t kMaxN = 4096;
constexpr int64_t kIn = 0;              // delta stream, class 1
constexpr int64_t kOut = kIn + kMaxN;   // decoded samples, class 2
constexpr int64_t kStep = kOut + kMaxN; // step-size table, class 3
constexpr int64_t kIdx = kStep + 89;    // index-adjust table, class 4
constexpr int64_t kCells = kIdx + 16;

constexpr AliasClass kInCls = 1, kOutCls = 2, kStepCls = 3,
                     kIdxCls = 4;

} // namespace

/**
 * MediaBench adpcm_decoder: for each 4-bit delta, rebuild vpdiff from
 * the current step size, update the predicted value with sign logic
 * and saturation, advance the step index through the adjustment
 * table, and emit the sample. Tight linear recurrence on
 * (valpred, index) plus table loads — the paper's 100%-of-execution
 * kernel.
 */
Workload
makeAdpcmDec()
{
    FunctionBuilder b("adpcm_decoder");
    Reg n = b.param();

    BlockId entry = b.newBlock("entry");
    BlockId head = b.newBlock("loop_head");
    BlockId body = b.newBlock("body");
    BlockId sign_neg = b.newBlock("sign_neg");
    BlockId sign_pos = b.newBlock("sign_pos");
    BlockId clamp_hi = b.newBlock("clamp_hi");
    BlockId clamp_hi_do = b.newBlock("clamp_hi_do");
    BlockId clamp_lo = b.newBlock("clamp_lo");
    BlockId clamp_lo_do = b.newBlock("clamp_lo_do");
    BlockId emit = b.newBlock("emit");
    BlockId done = b.newBlock("done");

    b.setBlock(entry);
    Reg i = b.constI(0);
    Reg valpred = b.constI(0);
    Reg index = b.constI(0);
    Reg zero = b.constI(0);
    Reg one = b.constI(1);
    Reg two = b.constI(2);
    Reg three = b.constI(3);
    Reg stepbase = b.constI(kStep);
    Reg idxbase = b.constI(kIdx);
    b.jmp(head);

    b.setBlock(head);
    Reg more = b.cmpLt(i, n);
    b.br(more, body, done);

    b.setBlock(body);
    Reg delta = b.load(i, kIn, kInCls);
    // step = stepsizeTable[index]
    Reg stepaddr = b.add(stepbase, index);
    Reg step = b.load(stepaddr, 0, kStepCls);
    // vpdiff = step >> 3, plus step components per delta bit.
    Reg vpdiff = b.mov(b.shr(step, three));
    Reg bit4 = b.andr(delta, b.constI(4));
    Reg add4 = b.mul(b.cmpNe(bit4, zero), step);
    b.addInto(vpdiff, vpdiff, add4);
    Reg bit2 = b.andr(delta, two);
    Reg add2 = b.mul(b.cmpNe(bit2, zero), b.shr(step, one));
    b.addInto(vpdiff, vpdiff, add2);
    Reg bit1 = b.andr(delta, one);
    Reg add1 = b.mul(b.cmpNe(bit1, zero), b.shr(step, two));
    b.addInto(vpdiff, vpdiff, add1);
    // Sign bit: subtract or add.
    Reg bit8 = b.andr(delta, b.constI(8));
    Reg negative = b.cmpNe(bit8, zero);
    b.br(negative, sign_neg, sign_pos);

    b.setBlock(sign_neg);
    b.binopInto(Opcode::Sub, valpred, valpred, vpdiff);
    b.jmp(clamp_hi);

    b.setBlock(sign_pos);
    b.addInto(valpred, valpred, vpdiff);
    b.jmp(clamp_hi);

    // Saturate to 16-bit range with explicit control flow (as the C
    // source does).
    b.setBlock(clamp_hi);
    Reg hi = b.constI(32767);
    Reg over = b.cmpGt(valpred, hi);
    b.br(over, clamp_hi_do, clamp_lo);

    b.setBlock(clamp_hi_do);
    b.movInto(valpred, hi);
    b.jmp(clamp_lo);

    b.setBlock(clamp_lo);
    Reg lo = b.constI(-32768);
    Reg under = b.cmpLt(valpred, lo);
    b.br(under, clamp_lo_do, emit);

    b.setBlock(clamp_lo_do);
    b.movInto(valpred, lo);
    b.jmp(emit);

    b.setBlock(emit);
    // index += indexTable[delta]; clamp to [0, 88] (min/max form).
    Reg idxaddr = b.add(idxbase, delta);
    Reg adj = b.load(idxaddr, 0, kIdxCls);
    b.addInto(index, index, adj);
    b.binopInto(Opcode::Max, index, index, zero);
    b.binopInto(Opcode::Min, index, index, b.constI(88));
    b.store(i, kOut, valpred, kOutCls);
    b.addInto(i, i, one);
    b.jmp(head);

    b.setBlock(done);
    b.ret({valpred, index});

    Workload w;
    w.name = "adpcmdec";
    w.function_name = "adpcm_decoder";
    w.exec_percent = 100;
    w.func = b.finish();
    w.mem_cells = kCells;
    w.train_args = {600};
    w.ref_args = {4000};
    w.fill = [](MemoryImage &mem, bool ref) {
        Rng rng(ref ? 777 : 333);
        int64_t n = ref ? 4000 : 600;
        for (int64_t k = 0; k < n; ++k)
            mem.write(kIn + k, static_cast<int64_t>(rng.nextBelow(16)));
        // Step-size table: the standard geometric ~1.1x progression.
        int64_t step = 7;
        for (int64_t k = 0; k < 89; ++k) {
            mem.write(kStep + k, step);
            step = step + step / 10 + 1;
        }
        static const int64_t kAdjust[16] = {-1, -1, -1, -1, 2, 4, 6, 8,
                                            -1, -1, -1, -1, 2, 4, 6, 8};
        for (int64_t k = 0; k < 16; ++k)
            mem.write(kIdx + k, kAdjust[k]);
    };
    return w;
}

} // namespace gmt
