#include "partition/dswp.hpp"

#include <vector>

#include "graph/scc.hpp"
#include "support/error.hpp"

namespace gmt
{

ThreadPartition
dswpPartition(const Pdg &pdg, const EdgeProfile &profile,
              const DswpOptions &opts, PartitionProvenance *prov)
{
    const Function &f = pdg.func();
    GMT_ASSERT(opts.num_threads >= 1);

    // SCCs of the PDG; component ids are already topologically
    // ordered, so assigning non-decreasing stages in id order keeps
    // every dependence flowing forward.
    Digraph g = pdg.asDigraph();
    SccResult sccs = computeSccs(g);

    // Profile-weighted cost per component.
    std::vector<uint64_t> comp_weight(sccs.numComponents(), 0);
    uint64_t total = 0;
    for (InstrId i = 0; i < f.numInstrs(); ++i) {
        uint64_t w = profile.blockWeight(f.instr(i).block);
        if (opts.feedback)
            w += opts.feedback->blockBoost(f.instr(i).block);
        comp_weight[sccs.component[i]] += w;
        total += w;
    }

    // Greedy pipeline fill: move to the next stage when the current
    // one reaches its share of the total weight.
    std::vector<int> stage_of_comp(sccs.numComponents(), 0);
    uint64_t target = total / opts.num_threads + 1;
    int stage = 0;
    uint64_t acc = 0;
    for (int c = 0; c < sccs.numComponents(); ++c) {
        stage_of_comp[c] = stage;
        if (prov) {
            UnitDecision d;
            d.unit = c;
            d.thread = stage;
            d.order = c;
            d.work = comp_weight[c];
            d.acc_before = acc;
            d.target = target;
            prov->units.push_back(std::move(d));
        }
        acc += comp_weight[c];
        if (acc >= target && stage + 1 < opts.num_threads) {
            ++stage;
            acc = 0;
        }
    }

    ThreadPartition p;
    p.num_threads = opts.num_threads;
    p.assign.resize(f.numInstrs());
    for (InstrId i = 0; i < f.numInstrs(); ++i)
        p.assign[i] = stage_of_comp[sccs.component[i]];

    if (prov) {
        prov->algorithm = "DSWP";
        prov->num_threads = opts.num_threads;
        prov->unit_of.assign(sccs.component.begin(),
                             sccs.component.end());
        prov->thread_of.assign(p.assign.begin(), p.assign.end());
        for (UnitDecision &d : prov->units) {
            d.num_members = 0;
            d.first_instr = -1;
        }
        for (InstrId i = 0; i < f.numInstrs(); ++i) {
            UnitDecision &d = prov->units[sccs.component[i]];
            ++d.num_members;
            if (d.first_instr < 0)
                d.first_instr = i;
        }
    }
    return p;
}

} // namespace gmt
