#include "partition/partition.hpp"

#include <sstream>

#include "support/error.hpp"

namespace gmt
{

std::vector<InstrId>
ThreadPartition::membersOf(int t) const
{
    std::vector<InstrId> members;
    for (InstrId i = 0; i < static_cast<InstrId>(assign.size()); ++i) {
        if (assign[i] == t)
            members.push_back(i);
    }
    return members;
}

ThreadPartition
singleThreadPartition(const Function &f)
{
    ThreadPartition p;
    p.num_threads = 1;
    p.assign.assign(f.numInstrs(), 0);
    return p;
}

std::vector<std::string>
validatePartition(const Pdg &pdg, const ThreadPartition &p,
                  bool require_pipeline)
{
    std::vector<std::string> problems;
    const Function &f = pdg.func();
    if (static_cast<int>(p.assign.size()) != f.numInstrs()) {
        problems.push_back("assignment size mismatch");
        return problems;
    }
    for (InstrId i = 0; i < f.numInstrs(); ++i) {
        if (p.assign[i] < 0 || p.assign[i] >= p.num_threads) {
            std::ostringstream os;
            os << "instr i" << i << " assigned to bad thread "
               << p.assign[i];
            problems.push_back(os.str());
        }
    }
    if (require_pipeline) {
        for (const auto &arc : pdg.arcs()) {
            if (p.assign[arc.src] > p.assign[arc.dst]) {
                std::ostringstream os;
                os << "pipeline violation: arc i" << arc.src << " (T"
                   << p.assign[arc.src] << ") -> i" << arc.dst << " (T"
                   << p.assign[arc.dst] << ")";
                problems.push_back(os.str());
            }
        }
    }
    return problems;
}

int
countCrossThreadArcs(const Pdg &pdg, const ThreadPartition &p)
{
    int n = 0;
    for (const auto &arc : pdg.arcs())
        n += (p.assign[arc.src] != p.assign[arc.dst]);
    return n;
}

} // namespace gmt
