#ifndef GMT_PARTITION_DSWP_HPP
#define GMT_PARTITION_DSWP_HPP

/**
 * @file
 * Decoupled Software Pipelining partitioner [16].
 *
 * DSWP groups the PDG's strongly connected components — which must
 * stay on one thread, since a split SCC would create a cross-thread
 * dependence cycle — and assigns them to a pipeline of threads such
 * that every dependence flows from an earlier to a later stage. Stage
 * loads are balanced on profile-weighted instruction cost.
 */

#include "analysis/edge_profile.hpp"
#include "obs/provenance.hpp"
#include "partition/partition.hpp"

namespace gmt
{

/** DSWP knobs. */
struct DswpOptions
{
    int num_threads = 2;

    /**
     * Optional stall-feedback boosts (autotuner). Stall-charged
     * blocks weigh more during the greedy stage fill, pulling stage
     * boundaries toward an even split of *observed* cost rather than
     * raw profile weight. Not owned; may be null.
     */
    const PartitionFeedback *feedback = nullptr;
};

/**
 * Partition @p pdg into a pipeline. Guaranteed to satisfy the
 * pipeline invariant (validatePartition with require_pipeline).
 *
 * When @p prov is non-null, records per-component greedy-fill
 * decisions (unit ids = SCC component ids) into it.
 */
ThreadPartition dswpPartition(const Pdg &pdg, const EdgeProfile &profile,
                              const DswpOptions &opts = {},
                              PartitionProvenance *prov = nullptr);

} // namespace gmt

#endif // GMT_PARTITION_DSWP_HPP
