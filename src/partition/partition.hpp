#ifndef GMT_PARTITION_PARTITION_HPP
#define GMT_PARTITION_PARTITION_HPP

/**
 * @file
 * A thread partition: the assignment of every instruction to a thread.
 * This is the interface between the pluggable partitioners (DSWP,
 * GREMIO, or anything else) and MTCG/COCO — exactly the P input of
 * Algorithms 1 and 2 in the paper.
 */

#include <string>
#include <vector>

#include "pdg/pdg.hpp"

namespace gmt
{

/** Assignment of instructions to threads. */
struct ThreadPartition
{
    int num_threads = 1;

    /** assign[InstrId] = thread index in [0, num_threads). */
    std::vector<int> assign;

    int
    threadOf(InstrId i) const
    {
        return assign[i];
    }

    /** Instructions assigned to thread @p t, ascending. */
    std::vector<InstrId> membersOf(int t) const;
};

/** Everything-in-thread-0 partition (sanity baseline). */
ThreadPartition singleThreadPartition(const Function &f);

/**
 * Stall-derived boosts folded into the next partitioning round by the
 * feedback-directed autotuner (autotune/autotune.hpp). Both vectors
 * are additive cycle charges: block_boost biases the work accounting
 * (DSWP stage fills, GREMIO busy/work terms) toward stall-charged
 * blocks, arc_boost raises the communication cost GREMIO sees for the
 * PDG arcs a stall-charged queue carries. Either vector may be empty
 * (no boost); when present it must be indexed by BlockId / PDG arc id
 * respectively.
 */
struct PartitionFeedback
{
    std::vector<uint64_t> block_boost;
    std::vector<uint64_t> arc_boost;

    uint64_t
    blockBoost(BlockId b) const
    {
        size_t idx = static_cast<size_t>(b);
        return idx < block_boost.size() ? block_boost[idx] : 0;
    }

    uint64_t
    arcBoost(int arc) const
    {
        size_t idx = static_cast<size_t>(arc);
        return idx < arc_boost.size() ? arc_boost[idx] : 0;
    }

    bool
    empty() const
    {
        for (uint64_t v : block_boost)
            if (v)
                return false;
        for (uint64_t v : arc_boost)
            if (v)
                return false;
        return true;
    }
};

/**
 * Check a partition: every instruction assigned to a valid thread.
 * With @p require_pipeline, additionally check the DSWP invariant
 * that every PDG arc flows to an equal-or-later thread.
 * @return problems (empty = valid).
 */
std::vector<std::string> validatePartition(const Pdg &pdg,
                                           const ThreadPartition &p,
                                           bool require_pipeline);

/**
 * Count inter-thread PDG arcs under @p p — a quick static measure of
 * how much communication a partition implies.
 */
int countCrossThreadArcs(const Pdg &pdg, const ThreadPartition &p);

} // namespace gmt

#endif // GMT_PARTITION_PARTITION_HPP
