#ifndef GMT_PARTITION_PARTITION_HPP
#define GMT_PARTITION_PARTITION_HPP

/**
 * @file
 * A thread partition: the assignment of every instruction to a thread.
 * This is the interface between the pluggable partitioners (DSWP,
 * GREMIO, or anything else) and MTCG/COCO — exactly the P input of
 * Algorithms 1 and 2 in the paper.
 */

#include <string>
#include <vector>

#include "pdg/pdg.hpp"

namespace gmt
{

/** Assignment of instructions to threads. */
struct ThreadPartition
{
    int num_threads = 1;

    /** assign[InstrId] = thread index in [0, num_threads). */
    std::vector<int> assign;

    int
    threadOf(InstrId i) const
    {
        return assign[i];
    }

    /** Instructions assigned to thread @p t, ascending. */
    std::vector<InstrId> membersOf(int t) const;
};

/** Everything-in-thread-0 partition (sanity baseline). */
ThreadPartition singleThreadPartition(const Function &f);

/**
 * Check a partition: every instruction assigned to a valid thread.
 * With @p require_pipeline, additionally check the DSWP invariant
 * that every PDG arc flows to an equal-or-later thread.
 * @return problems (empty = valid).
 */
std::vector<std::string> validatePartition(const Pdg &pdg,
                                           const ThreadPartition &p,
                                           bool require_pipeline);

/**
 * Count inter-thread PDG arcs under @p p — a quick static measure of
 * how much communication a partition implies.
 */
int countCrossThreadArcs(const Pdg &pdg, const ThreadPartition &p);

} // namespace gmt

#endif // GMT_PARTITION_PARTITION_HPP
