#include "partition/gremio.hpp"

#include <algorithm>
#include <vector>

#include "analysis/dominators.hpp"
#include "analysis/loop_info.hpp"
#include "graph/scc.hpp"
#include "support/error.hpp"

namespace gmt
{

namespace
{

int
latencyOf(const Instr &in, const GremioOptions &opts)
{
    if (in.isMemoryAccess())
        return opts.mem_latency;
    return opts.alu_latency;
}

} // namespace

/**
 * GREMIO-style hierarchical scheduling, approximated in two levels:
 *
 *  1. Atomic units are the PDG's strongly connected components
 *     (recurrences cannot be split without creating a fully
 *     serializing cross-thread cycle). Mirroring GREMIO's
 *     hierarchical treatment of control regions, all units living
 *     entirely inside one innermost loop are merged into a single
 *     unit when that loop fits into a thread's fair share of the
 *     total profile-weighted work — whole inner regions then move
 *     between threads as units, which is what produces the
 *     loop-boundary communication the paper observes.
 *  2. Units are list-scheduled in dependence order onto threads by
 *     estimated finish time: a unit starts when its cross-thread
 *     inputs have arrived (communication latency scaled by the
 *     dependence's dynamic frequency) and its thread is free.
 *     Cyclic inter-thread dependences are permitted (unlike DSWP).
 */
ThreadPartition
gremioPartition(const Pdg &pdg, const EdgeProfile &profile,
                const GremioOptions &opts, PartitionProvenance *prov)
{
    const Function &f = pdg.func();
    GMT_ASSERT(opts.num_threads >= 1);

    if (prov) {
        prov->algorithm = "GREMIO";
        prov->num_threads = opts.num_threads;
    }

    ThreadPartition p;
    p.num_threads = opts.num_threads;
    p.assign.assign(f.numInstrs(), 0);
    if (opts.num_threads == 1) {
        if (prov) {
            prov->unit_of.assign(f.numInstrs(), 0);
            prov->thread_of.assign(f.numInstrs(), 0);
            UnitDecision d;
            d.num_members = f.numInstrs();
            d.first_instr = f.numInstrs() > 0 ? 0 : -1;
            prov->units.push_back(std::move(d));
        }
        return p;
    }

    // --- Level 1: units ---------------------------------------------
    Digraph g = pdg.asDigraph();
    SccResult sccs = computeSccs(g);
    std::vector<int> unit_of(f.numInstrs());
    for (InstrId i = 0; i < f.numInstrs(); ++i)
        unit_of[i] = sccs.component[i];
    int num_units = sccs.numComponents();

    // Weighted work per instruction and total.
    auto instr_work = [&](InstrId i) -> uint64_t {
        const Instr &in = f.instr(i);
        uint64_t w = static_cast<uint64_t>(latencyOf(in, opts)) *
                     std::max<uint64_t>(profile.blockWeight(in.block), 1);
        if (opts.feedback)
            w += opts.feedback->blockBoost(in.block);
        return w;
    };
    uint64_t total_work = 0;
    for (InstrId i = 0; i < f.numInstrs(); ++i)
        total_work += instr_work(i);
    uint64_t fair_share =
        total_work / static_cast<uint64_t>(opts.num_threads);

    // Merge units inside one innermost loop when the loop fits a
    // thread's share.
    auto dom = DominatorTree::dominators(f);
    LoopInfo loops(f, dom);
    if (loops.numLoops() > 0) {
        // Work per loop (innermost attribution).
        std::vector<uint64_t> loop_work(loops.numLoops(), 0);
        for (InstrId i = 0; i < f.numInstrs(); ++i) {
            int l = loops.loopOf(f.instr(i).block);
            if (l >= 0)
                loop_work[l] += instr_work(i);
        }
        // Union units sharing a mergeable innermost loop. A unit
        // whose members span several loops keeps its smallest member
        // loop only if all members agree.
        std::vector<int> unit_loop(num_units, -2); // -2 unset, -1 none
        for (InstrId i = 0; i < f.numInstrs(); ++i) {
            int l = loops.loopOf(f.instr(i).block);
            int &ul = unit_loop[unit_of[i]];
            if (ul == -2)
                ul = l;
            else if (ul != l)
                ul = -1;
        }
        std::vector<int> loop_unit(loops.numLoops(), -1);
        std::vector<int> remap(num_units);
        int next = 0;
        for (int u = 0; u < num_units; ++u) {
            int l = unit_loop[u];
            if (l >= 0 && loop_work[l] <= fair_share) {
                if (loop_unit[l] == -1)
                    loop_unit[l] = next++;
                remap[u] = loop_unit[l];
            } else {
                remap[u] = next++;
            }
        }
        for (InstrId i = 0; i < f.numInstrs(); ++i)
            unit_of[i] = remap[unit_of[i]];
        if (prov)
            prov->loop_merges += num_units - next;
        num_units = next;
    }

    // Loop merging can create cycles between units (e.g. a memory
    // recurrence tying two loops together). Cyclic cross-thread
    // dependences between fine-grained units serialize every
    // iteration through two communication latencies, so mutually
    // cyclic units are merged until the unit graph is acyclic.
    while (true) {
        Digraph ug(num_units);
        for (const auto &arc : pdg.arcs()) {
            int us = unit_of[arc.src];
            int ud = unit_of[arc.dst];
            if (us != ud)
                ug.addEdge(us, ud);
        }
        SccResult merged = computeSccs(ug);
        if (merged.numComponents() == num_units)
            break;
        for (InstrId i = 0; i < f.numInstrs(); ++i)
            unit_of[i] = merged.component[unit_of[i]];
        if (prov)
            prov->cycle_merges += num_units - merged.numComponents();
        num_units = merged.numComponents();
    }

    // --- Level 2: list scheduling ------------------------------------
    Digraph units(num_units);
    for (const auto &arc : pdg.arcs()) {
        int us = unit_of[arc.src];
        int ud = unit_of[arc.dst];
        if (us != ud)
            units.addEdge(us, ud);
    }
    std::vector<uint64_t> unit_work(num_units, 0);
    for (InstrId i = 0; i < f.numInstrs(); ++i)
        unit_work[unit_of[i]] += instr_work(i);

    // Dependence order (the merged unit graph is acyclic).
    std::vector<int> order = units.topoSort();
    GMT_ASSERT(static_cast<int>(order.size()) == num_units,
               "unit graph still cyclic after merging");

    std::vector<int> unit_thread(num_units, -1);
    std::vector<uint64_t> busy(opts.num_threads, 0);

    // Member lists to avoid rescanning every instruction per unit.
    std::vector<std::vector<InstrId>> members(num_units);
    for (InstrId i = 0; i < f.numInstrs(); ++i)
        members[unit_of[i]].push_back(i);

    // Balance-vs-communication greedy: place each unit (dependence
    // order) on the thread minimizing its load after placement plus
    // the dynamic cost of the cross-thread values it would consume —
    // a produce/consume pair plus the communication latency per
    // occurrence, deduplicated per producing instruction. Values
    // produced at region boundaries (loop live-outs, hammock joins)
    // are orders of magnitude cheaper to cross than values produced
    // every iteration, so splits gravitate to region boundaries, the
    // behaviour GREMIO's hierarchical scheduling exhibits; within a
    // hot region, load imbalance eventually outweighs a per-iteration
    // crossing and the region splits anyway (cyclic inter-thread
    // dependences are allowed, unlike DSWP).
    const uint64_t comm_cost_per_value =
        2 + static_cast<uint64_t>(opts.comm_latency);
    int decision_order = 0;
    for (int u : order) {
        uint64_t best_score = ~uint64_t{0};
        int best_t = 0;
        std::vector<ThreadCandidate> candidates;
        for (int t = 0; t < opts.num_threads; ++t) {
            uint64_t comm = 0;
            std::vector<InstrId> counted;
            for (InstrId i : members[u]) {
                for (int a : pdg.arcsTo(i)) {
                    InstrId src = pdg.arc(a).src;
                    int su = unit_of[src];
                    if (su == u || unit_thread[su] == -1 ||
                        unit_thread[su] == t)
                        continue;
                    // Stall feedback is per arc (per queue carried),
                    // charged before the per-producer dedup below.
                    if (opts.feedback)
                        comm += opts.feedback->arcBoost(a);
                    if (std::find(counted.begin(), counted.end(),
                                  src) != counted.end())
                        continue;
                    counted.push_back(src);
                    uint64_t freq = std::max<uint64_t>(
                        profile.blockWeight(f.instr(src).block), 1);
                    comm += comm_cost_per_value * freq;
                }
            }
            uint64_t score = busy[t] + unit_work[u] + comm;
            if (prov)
                candidates.push_back({t, busy[t], comm, score, false});
            if (score < best_score ||
                (score == best_score && busy[t] < busy[best_t])) {
                best_score = score;
                best_t = t;
            }
        }
        if (prov) {
            candidates[best_t].chosen = true;
            UnitDecision d;
            d.unit = u;
            d.thread = best_t;
            d.order = decision_order++;
            d.work = unit_work[u];
            d.num_members = static_cast<int>(members[u].size());
            d.first_instr = members[u].empty() ? -1 : members[u][0];
            d.candidates = std::move(candidates);
            prov->units.push_back(std::move(d));
        }
        unit_thread[u] = best_t;
        busy[best_t] += unit_work[u];
    }

    for (InstrId i = 0; i < f.numInstrs(); ++i)
        p.assign[i] = unit_thread[unit_of[i]];

    if (prov) {
        prov->unit_of = unit_of;
        prov->thread_of.assign(p.assign.begin(), p.assign.end());
    }
    return p;
}

} // namespace gmt
