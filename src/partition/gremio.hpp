#ifndef GMT_PARTITION_GREMIO_HPP
#define GMT_PARTITION_GREMIO_HPP

/**
 * @file
 * GREMIO partitioner [15] (Global REsource-constrained Multi-threaded
 * Instruction scheduling Orchestrator).
 *
 * Unlike DSWP, GREMIO permits cyclic inter-thread dependences. It
 * performs list scheduling over the PDG guided by each instruction's
 * estimated ready time: every instruction is placed on the thread
 * where it can start earliest, where a cross-thread operand adds the
 * communication latency, with a load-balance tie-break. Instructions
 * are considered in control-relation order (program order of a
 * reverse-postorder block walk), mirroring the paper's description of
 * scheduling "based on their control relations and an estimate of
 * when instructions will be ready to execute".
 */

#include "analysis/edge_profile.hpp"
#include "obs/provenance.hpp"
#include "partition/partition.hpp"

namespace gmt
{

/** GREMIO knobs. */
struct GremioOptions
{
    int num_threads = 2;

    /** Estimated produce->consume latency in cycles. */
    int comm_latency = 2;

    /** Latency charged per ALU instruction. */
    int alu_latency = 1;

    /** Latency charged per memory access. */
    int mem_latency = 2;

    /**
     * Optional stall-feedback boosts (autotuner). block_boost joins
     * each instruction's work term (biasing busy/work scoring toward
     * stall-charged blocks); arc_boost is added to the communication
     * cost of keeping the corresponding PDG arc cross-thread. Not
     * owned; may be null.
     */
    const PartitionFeedback *feedback = nullptr;
};

/**
 * Partition @p pdg by ready-time list scheduling.
 *
 * When @p prov is non-null, records the unit-formation merges and,
 * per list-scheduled unit, every thread's (busy, comm, score)
 * candidate triple with the winner flagged.
 */
ThreadPartition gremioPartition(const Pdg &pdg, const EdgeProfile &profile,
                                const GremioOptions &opts = {},
                                PartitionProvenance *prov = nullptr);

} // namespace gmt

#endif // GMT_PARTITION_GREMIO_HPP
