#ifndef GMT_SUPPORT_ERROR_HPP
#define GMT_SUPPORT_ERROR_HPP

/**
 * @file
 * Error-reporting helpers.
 *
 * Follows the gem5 fatal/panic split: fatal() is a user-input problem
 * (malformed IR handed to the library, impossible configuration), panic()
 * is an internal invariant violation (a bug in this library).
 */

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace gmt
{

/** Thrown for user-level errors (bad input IR, bad configuration). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Thrown for internal invariant violations (library bugs). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

namespace detail
{

inline void
streamInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
streamInto(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    streamInto(os, rest...);
}

} // namespace detail

/** Report an unrecoverable user error by throwing FatalError. */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::ostringstream os;
    detail::streamInto(os, args...);
    throw FatalError(os.str());
}

/** Report an internal invariant violation by throwing PanicError. */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::ostringstream os;
    detail::streamInto(os, args...);
    throw PanicError(os.str());
}

/** Assert an internal invariant; active in all build types. */
#define GMT_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::gmt::panic("assertion failed: " #cond " at ", __FILE__, ":",  \
                         __LINE__, " ", ##__VA_ARGS__);                     \
        }                                                                   \
    } while (0)

} // namespace gmt

#endif // GMT_SUPPORT_ERROR_HPP
