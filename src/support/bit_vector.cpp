#include "support/bit_vector.hpp"

#include "support/error.hpp"

namespace gmt
{

void
BitVector::setAll()
{
    for (auto &w : words_)
        w = ~uint64_t{0};
    trimTail();
}

void
BitVector::clearAll()
{
    for (auto &w : words_)
        w = 0;
}

bool
BitVector::empty() const
{
    for (auto w : words_) {
        if (w)
            return false;
    }
    return true;
}

size_t
BitVector::count() const
{
    size_t n = 0;
    for (auto w : words_)
        n += __builtin_popcountll(w);
    return n;
}

bool
BitVector::unionWith(const BitVector &other)
{
    GMT_ASSERT(size_ == other.size_);
    bool changed = false;
    for (size_t i = 0; i < words_.size(); ++i) {
        uint64_t before = words_[i];
        words_[i] |= other.words_[i];
        changed |= (words_[i] != before);
    }
    return changed;
}

bool
BitVector::intersectWith(const BitVector &other)
{
    GMT_ASSERT(size_ == other.size_);
    bool changed = false;
    for (size_t i = 0; i < words_.size(); ++i) {
        uint64_t before = words_[i];
        words_[i] &= other.words_[i];
        changed |= (words_[i] != before);
    }
    return changed;
}

bool
BitVector::subtract(const BitVector &other)
{
    GMT_ASSERT(size_ == other.size_);
    bool changed = false;
    for (size_t i = 0; i < words_.size(); ++i) {
        uint64_t before = words_[i];
        words_[i] &= ~other.words_[i];
        changed |= (words_[i] != before);
    }
    return changed;
}

void
BitVector::trimTail()
{
    size_t tail = size_ % kBits;
    if (tail != 0 && !words_.empty())
        words_.back() &= (uint64_t{1} << tail) - 1;
}

} // namespace gmt
