#ifndef GMT_SUPPORT_RNG_HPP
#define GMT_SUPPORT_RNG_HPP

/**
 * @file
 * Deterministic pseudo-random number generator (splitmix64 seeded
 * xoshiro256**). Used everywhere randomness appears — workload input
 * generation, randomized thread schedules, property-test program
 * generation — so every run of the test suite and benches is repeatable.
 */

#include <cstdint>

namespace gmt
{

/** Deterministic xoshiro256** generator. */
class Rng
{
  public:
    explicit Rng(uint64_t seed);

    /** Uniform 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound). @p bound must be > 0. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** True with probability @p p. */
    bool nextBool(double p = 0.5);

  private:
    uint64_t state_[4];
};

} // namespace gmt

#endif // GMT_SUPPORT_RNG_HPP
