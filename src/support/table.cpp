#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "support/error.hpp"

namespace gmt
{

Table::Table(std::string title) : title_(std::move(title)) {}

void
Table::setHeader(std::vector<std::string> names, std::vector<Align> aligns)
{
    header_ = std::move(names);
    if (aligns.empty()) {
        aligns_.assign(header_.size(), Align::Right);
        if (!aligns_.empty())
            aligns_[0] = Align::Left;
    } else {
        GMT_ASSERT(aligns.size() == header_.size());
        aligns_ = std::move(aligns);
    }
}

void
Table::addRow(std::vector<std::string> cells)
{
    GMT_ASSERT(cells.size() == header_.size(), "row width mismatch");
    rows_.push_back(std::move(cells));
}

void
Table::addSeparator()
{
    separators_.push_back(rows_.size());
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto rule = [&](char fill) {
        os << '+';
        for (auto w : widths)
            os << std::string(w + 2, fill) << '+';
        os << '\n';
    };
    auto emit = [&](const std::vector<std::string> &row) {
        os << '|';
        for (size_t c = 0; c < row.size(); ++c) {
            size_t pad = widths[c] - row[c].size();
            os << ' ';
            if (aligns_[c] == Align::Right)
                os << std::string(pad, ' ') << row[c];
            else
                os << row[c] << std::string(pad, ' ');
            os << " |";
        }
        os << '\n';
    };

    os << title_ << '\n';
    rule('-');
    emit(header_);
    rule('=');
    for (size_t r = 0; r < rows_.size(); ++r) {
        if (std::find(separators_.begin(), separators_.end(), r) !=
            separators_.end()) {
            rule('-');
        }
        emit(rows_[r]);
    }
    rule('-');
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            os << row[c];
        }
        os << '\n';
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
Table::fmt(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string
Table::pct(double fraction, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+.*f%%", digits, fraction * 100.0);
    return buf;
}

} // namespace gmt
