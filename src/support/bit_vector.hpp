#ifndef GMT_SUPPORT_BIT_VECTOR_HPP
#define GMT_SUPPORT_BIT_VECTOR_HPP

/**
 * @file
 * A fixed-size dense bit vector with the set operations data-flow
 * analyses need (union, intersection, difference, change detection).
 */

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gmt
{

/**
 * Dense bit vector sized at construction.
 *
 * All binary operations require operands of equal size; this is an
 * invariant of the data-flow frameworks built on top (one bit per
 * register / instruction / block).
 */
class BitVector
{
  public:
    BitVector() = default;

    /** Create a vector of @p size bits, all clear. */
    explicit BitVector(size_t size)
        : size_(size), words_((size + kBits - 1) / kBits, 0)
    {
    }

    size_t size() const { return size_; }

    bool
    test(size_t i) const
    {
        return (words_[i / kBits] >> (i % kBits)) & 1;
    }

    void
    set(size_t i)
    {
        words_[i / kBits] |= (uint64_t{1} << (i % kBits));
    }

    void
    reset(size_t i)
    {
        words_[i / kBits] &= ~(uint64_t{1} << (i % kBits));
    }

    void setAll();
    void clearAll();

    /** True if no bit is set. */
    bool empty() const;

    /** Number of set bits. */
    size_t count() const;

    /** this |= other. @return true if this changed. */
    bool unionWith(const BitVector &other);

    /** this &= other. @return true if this changed. */
    bool intersectWith(const BitVector &other);

    /** this -= other (clear every bit set in other). @return changed. */
    bool subtract(const BitVector &other);

    bool operator==(const BitVector &other) const = default;

    /** Call @p fn with the index of every set bit, ascending. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (size_t w = 0; w < words_.size(); ++w) {
            uint64_t word = words_[w];
            while (word) {
                unsigned bit = __builtin_ctzll(word);
                fn(w * kBits + bit);
                word &= word - 1;
            }
        }
    }

  private:
    static constexpr size_t kBits = 64;

    /** Clear any bits beyond size_ in the last word. */
    void trimTail();

    size_t size_ = 0;
    std::vector<uint64_t> words_;
};

} // namespace gmt

#endif // GMT_SUPPORT_BIT_VECTOR_HPP
