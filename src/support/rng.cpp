#include "support/rng.hpp"

#include "support/error.hpp"

namespace gmt
{

namespace
{

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    for (auto &s : state_)
        s = splitmix64(seed);
}

uint64_t
Rng::next()
{
    uint64_t result = rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    GMT_ASSERT(bound > 0);
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = -bound % bound;
    while (true) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    GMT_ASSERT(lo <= hi);
    return lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

} // namespace gmt
