#include "support/thread_pool.hpp"

#include <algorithm>

namespace gmt
{

ThreadPool::ThreadPool(int num_threads)
{
    int n = std::max(1, num_threads);
    workers_.reserve(n);
    for (int i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    work_ready_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(job));
    }
    work_ready_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

int
ThreadPool::hardwareDefault()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? static_cast<int>(n) : 1;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_ready_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and drained
            job = std::move(queue_.front());
            queue_.pop_front();
            ++in_flight_;
        }
        job();
        {
            std::lock_guard<std::mutex> lock(mu_);
            --in_flight_;
            if (queue_.empty() && in_flight_ == 0)
                idle_.notify_all();
        }
    }
}

} // namespace gmt
