#include "support/thread_pool.hpp"

#include <algorithm>
#include <cstdio>

#if defined(__linux__)
#include <pthread.h>
#endif

namespace gmt
{

namespace
{

void
nameWorker(std::thread &t, int index)
{
#if defined(__linux__)
    // Comm names are capped at 15 chars + NUL; "gmt-worker-N" fits
    // for any realistic pool size.
    char name[16];
    std::snprintf(name, sizeof(name), "gmt-worker-%d", index);
    pthread_setname_np(t.native_handle(), name);
#else
    (void)t;
    (void)index;
#endif
}

} // namespace

ThreadPool::ThreadPool(int num_threads)
{
    int n = std::max(1, num_threads);
    workers_.reserve(n);
    for (int i = 0; i < n; ++i) {
        workers_.emplace_back([this] { workerLoop(); });
        nameWorker(workers_.back(), i);
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    work_ready_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(job));
    }
    work_ready_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

TaskGroup::TaskGroup(ThreadPool &pool)
    : pool_(pool), st_(std::make_shared<State>())
{
}

void
TaskGroup::runClaimed(const std::shared_ptr<State> &st,
                      const std::shared_ptr<Item> &item)
{
    item->fn();
    item->fn = nullptr; // release captures eagerly
    std::lock_guard<std::mutex> lock(st->mu);
    if (--st->pending == 0)
        st->done.notify_all();
}

void
TaskGroup::run(std::function<void()> job)
{
    auto item = std::make_shared<Item>();
    item->fn = std::move(job);
    {
        std::lock_guard<std::mutex> lock(st_->mu);
        st_->items.push_back(item);
        ++st_->pending;
        // Wake a concurrent wait(): group jobs may grow their own
        // group, and the waiter must notice the new unclaimed item.
        st_->done.notify_all();
    }
    // The pool wrapper holds the state alive on its own, so the
    // TaskGroup may be destroyed while lost-race wrappers still sit
    // in the pool queue.
    std::shared_ptr<State> st = st_;
    pool_.submit([st, item] {
        {
            std::lock_guard<std::mutex> lock(st->mu);
            if (item->claimed)
                return;
            item->claimed = true;
        }
        runClaimed(st, item);
    });
}

void
TaskGroup::wait()
{
    std::unique_lock<std::mutex> lock(st_->mu);
    for (;;) {
        // Claim the next not-yet-started job and run it inline.
        std::shared_ptr<Item> mine;
        while (st_->scan_from < st_->items.size()) {
            const auto &item = st_->items[st_->scan_from];
            if (!item->claimed) {
                item->claimed = true;
                mine = item;
                break;
            }
            ++st_->scan_from;
        }
        if (mine) {
            lock.unlock();
            runClaimed(st_, mine);
            lock.lock();
            continue;
        }
        if (st_->pending == 0) {
            st_->items.clear();
            st_->scan_from = 0;
            return;
        }
        // Everything is claimed but still running on pool workers.
        // New run() calls also signal `done` so freshly queued jobs
        // get picked up by this loop.
        st_->done.wait(lock);
    }
}

int
ThreadPool::hardwareDefault()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? static_cast<int>(n) : 1;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_ready_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and drained
            job = std::move(queue_.front());
            queue_.pop_front();
            ++in_flight_;
        }
        job();
        {
            std::lock_guard<std::mutex> lock(mu_);
            --in_flight_;
            if (queue_.empty() && in_flight_ == 0)
                idle_.notify_all();
        }
    }
}

} // namespace gmt
