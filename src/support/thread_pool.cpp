#include "support/thread_pool.hpp"

#include <algorithm>
#include <cstdio>

#if defined(__linux__)
#include <pthread.h>
#endif

namespace gmt
{

namespace
{

void
nameWorker(std::thread &t, int index)
{
#if defined(__linux__)
    // Comm names are capped at 15 chars + NUL; "gmt-worker-N" fits
    // for any realistic pool size.
    char name[16];
    std::snprintf(name, sizeof(name), "gmt-worker-%d", index);
    pthread_setname_np(t.native_handle(), name);
#else
    (void)t;
    (void)index;
#endif
}

} // namespace

ThreadPool::ThreadPool(int num_threads)
{
    int n = std::max(1, num_threads);
    workers_.reserve(n);
    for (int i = 0; i < n; ++i) {
        workers_.emplace_back([this] { workerLoop(); });
        nameWorker(workers_.back(), i);
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    work_ready_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(job));
    }
    work_ready_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

int
ThreadPool::hardwareDefault()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? static_cast<int>(n) : 1;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_ready_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and drained
            job = std::move(queue_.front());
            queue_.pop_front();
            ++in_flight_;
        }
        job();
        {
            std::lock_guard<std::mutex> lock(mu_);
            --in_flight_;
            if (queue_.empty() && in_flight_ == 0)
                idle_.notify_all();
        }
    }
}

} // namespace gmt
