#ifndef GMT_SUPPORT_THREAD_POOL_HPP
#define GMT_SUPPORT_THREAD_POOL_HPP

/**
 * @file
 * A fixed-size worker pool for the experiment runner: jobs are
 * submitted as plain closures, workers drain them FIFO, and wait()
 * blocks until every submitted job has finished. Exceptions must be
 * handled inside the job (the pool aborts the process otherwise, the
 * same policy as an escaped exception on any std::thread).
 */

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gmt
{

/** Fixed set of worker threads executing queued jobs in FIFO order. */
class ThreadPool
{
  public:
    /** @param num_threads worker count; clamped to >= 1. */
    explicit ThreadPool(int num_threads);

    /** Joins the workers; pending jobs are still executed. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a job. Must not throw out of the closure. */
    void submit(std::function<void()> job);

    /** Block until the queue is empty and no job is running. */
    void wait();

    int numThreads() const { return static_cast<int>(workers_.size()); }

    /** Worker count for "use the whole machine" defaults (>= 1). */
    static int hardwareDefault();

  private:
    void workerLoop();

    std::mutex mu_;
    std::condition_variable work_ready_;
    std::condition_variable idle_;
    std::deque<std::function<void()>> queue_;
    int in_flight_ = 0;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

} // namespace gmt

#endif // GMT_SUPPORT_THREAD_POOL_HPP
