#ifndef GMT_SUPPORT_THREAD_POOL_HPP
#define GMT_SUPPORT_THREAD_POOL_HPP

/**
 * @file
 * A fixed-size worker pool for the experiment runner: jobs are
 * submitted as plain closures, workers drain them FIFO, and wait()
 * blocks until every submitted job has finished. Exceptions must be
 * handled inside the job (the pool aborts the process otherwise, the
 * same policy as an escaped exception on any std::thread).
 *
 * Nested submission: a job running *on* a pool worker may submit
 * further jobs through a TaskGroup and block on TaskGroup::wait()
 * without deadlocking the pool — the waiter executes its group's
 * still-queued jobs inline instead of sleeping while every worker is
 * occupied. Cell-level tasks (driver/experiment.cpp) and cut-level
 * tasks (coco/coco.cpp) compose this way on one shared pool without
 * oversubscription: the pool never grows beyond its worker count and
 * the waiting thread is never idle while its own work is runnable.
 */

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gmt
{

/** Fixed set of worker threads executing queued jobs in FIFO order. */
class ThreadPool
{
  public:
    /** @param num_threads worker count; clamped to >= 1. */
    explicit ThreadPool(int num_threads);

    /** Joins the workers; pending jobs are still executed. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a job. Must not throw out of the closure. */
    void submit(std::function<void()> job);

    /**
     * Block until the queue is empty and no job is running. Only
     * meaningful from a non-worker thread (a worker calling this
     * would wait for itself); nested jobs use TaskGroup::wait().
     */
    void wait();

    int numThreads() const { return static_cast<int>(workers_.size()); }

    /** Worker count for "use the whole machine" defaults (>= 1). */
    static int hardwareDefault();

  private:
    void workerLoop();

    std::mutex mu_;
    std::condition_variable work_ready_;
    std::condition_variable idle_;
    std::deque<std::function<void()>> queue_;
    int in_flight_ = 0;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

/**
 * A waitable batch of jobs on a ThreadPool, safe to use from inside
 * another pool job (nested submission).
 *
 * Every job is offered to the pool *and* kept on the group's own
 * claim list. Whoever gets to a job first — a pool worker or the
 * thread blocked in wait() — claims and runs it; the other side sees
 * the claim and skips it. wait() therefore makes progress even when
 * all workers are busy with (or blocked waiting on) other work, which
 * is what makes multi-level submission deadlock-free: a waiter never
 * sleeps while one of its own jobs is still unclaimed.
 *
 * The group's bookkeeping outlives the TaskGroup object itself
 * (shared state), so pool-queued wrappers that lost the claim race
 * may drain after the group is destroyed.
 */
class TaskGroup
{
  public:
    explicit TaskGroup(ThreadPool &pool);

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /** Enqueue a job into the group. Must not throw out of it. */
    void run(std::function<void()> job);

    /**
     * Block until every job submitted so far has finished, executing
     * unclaimed group jobs inline. Callable from a pool worker.
     */
    void wait();

  private:
    struct Item
    {
        std::function<void()> fn;
        bool claimed = false;
    };

    struct State
    {
        std::mutex mu;
        std::condition_variable done;
        std::vector<std::shared_ptr<Item>> items;
        size_t scan_from = 0; ///< first possibly-unclaimed item
        int pending = 0;      ///< submitted minus finished
    };

    static void runClaimed(const std::shared_ptr<State> &st,
                           const std::shared_ptr<Item> &item);

    ThreadPool &pool_;
    std::shared_ptr<State> st_;
};

} // namespace gmt

#endif // GMT_SUPPORT_THREAD_POOL_HPP
