#ifndef GMT_SUPPORT_TABLE_HPP
#define GMT_SUPPORT_TABLE_HPP

/**
 * @file
 * Plain-text table rendering for the benchmark harnesses. Every bench
 * binary prints the rows of one paper table/figure through this class so
 * the output format is uniform and diffable.
 */

#include <iosfwd>
#include <string>
#include <vector>

namespace gmt
{

/** Column alignment. */
enum class Align { Left, Right };

/**
 * A simple monospaced table: set headers once, add rows of strings,
 * render with aligned columns. Also exports CSV for downstream plotting.
 */
class Table
{
  public:
    /** @param title caption printed above the table. */
    explicit Table(std::string title);

    /** Define columns; call before addRow(). */
    void setHeader(std::vector<std::string> names,
                   std::vector<Align> aligns = {});

    void addRow(std::vector<std::string> cells);

    /** Insert a horizontal separator before the next row. */
    void addSeparator();

    /** Render with box-drawing to @p os. */
    void print(std::ostream &os) const;

    /** Render as CSV (no title) to @p os. */
    void printCsv(std::ostream &os) const;

    /** Format helper: fixed-point with @p digits decimals. */
    static std::string fmt(double value, int digits = 2);

    /** Format helper: percentage with sign, e.g. "-34.4%". */
    static std::string pct(double fraction, int digits = 1);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<Align> aligns_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<size_t> separators_; // row indices preceded by a rule
};

} // namespace gmt

#endif // GMT_SUPPORT_TABLE_HPP
