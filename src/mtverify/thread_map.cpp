#include "mtverify/thread_map.hpp"

namespace gmt
{

ThreadCodeMap
buildThreadCodeMap(const Function &orig, const Function &emitted,
                   int thread, std::vector<MtvDiag> &diags)
{
    ThreadCodeMap map;
    map.thread = thread;
    map.orig_block.assign(emitted.numBlocks(), kNoBlock);
    map.emitted_block.assign(orig.numBlocks(), kNoBlock);
    map.copies_of.assign(orig.numInstrs(), {});

    auto complain = [&](BlockId eb, std::string msg) {
        diags.push_back({.code = MtvCode::BlockMapBroken,
                         .thread = thread,
                         .block = eb,
                         .message = std::move(msg)});
        map.broken = true;
    };

    for (BlockId eb = 0; eb < emitted.numBlocks(); ++eb) {
        InstrId term = emitted.block(eb).terminator();
        if (term == kNoInstr) {
            complain(eb, "emitted block is empty");
            continue;
        }
        InstrId o = emitted.instr(term).origin;
        if (o == kNoInstr || o < 0 || o >= orig.numInstrs()) {
            complain(eb, "terminator has no valid origin");
            continue;
        }
        if (!orig.instr(o).isTerminator()) {
            complain(eb, "terminator origin is not a terminator");
            continue;
        }
        BlockId ob = orig.instr(o).block;
        if (map.emitted_block[ob] != kNoBlock) {
            complain(eb, "two emitted blocks map to original block " +
                             orig.block(ob).label());
            continue;
        }
        map.orig_block[eb] = ob;
        map.emitted_block[ob] = eb;
    }

    // Only instructions reachable through a block list are part of
    // the program; the arena may hold detached leftovers.
    for (BlockId eb = 0; eb < emitted.numBlocks(); ++eb) {
        for (InstrId ei : emitted.block(eb).instrs()) {
            InstrId o = emitted.instr(ei).origin;
            if (o >= 0 && o < orig.numInstrs())
                map.copies_of[o].push_back(ei);
        }
    }

    return map;
}

} // namespace gmt
