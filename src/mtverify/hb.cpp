#include "mtverify/hb.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "analysis/mem_dep.hpp"
#include "support/bit_vector.hpp"

namespace gmt
{

namespace
{

bool
isProduce(Opcode op)
{
    return op == Opcode::Produce || op == Opcode::ProduceSync;
}

bool
isConsume(Opcode op)
{
    return op == Opcode::Consume || op == Opcode::ConsumeSync;
}

/** One node of a block's happens-before graph: a communication op or
 *  a memory-access copy some thread executes in its image of the
 *  block. */
struct HbEvent
{
    int thread = -1;
    InstrId instr = kNoInstr; ///< emitted instruction
    bool produce = false;
    bool consume = false;
    QueueId queue = kNoQueue;
};

/**
 * Happens-before graph of one original block's instance, with its
 * transitive closure and the block-level summaries the cross-instance
 * walk consumes.
 *
 * Edges are exactly the real ordering constraints of one traversal of
 * the block: program order within each thread's image, match edges
 * from the k-th produce on a queue to the k-th consume (the consume
 * cannot retire before the value exists), and capacity edges from the
 * k-th consume back to the (k + capacity)-th produce (a full queue
 * blocks the producer). Matching the k-th produce with the k-th
 * consume inside the block is justified by queue balance (theorem 2):
 * in plan-faithful code both endpoints visit the shared placement
 * points in the same order, so no token is in flight across a block
 * boundary.
 */
struct BlockHbGraph
{
    std::vector<HbEvent> events;

    /** events[i] -> set of events reachable from i (reflexive). */
    std::vector<BitVector> reach;

    /** thread -> index of its first event here, or -1. */
    std::vector<int> first_of;

    /**
     * Block-level sync-chain transfer: bit d of transfer[s] is set
     * iff a thread ordered-after-x at this block's entry as s leaves
     * the block with d ordered-after-x too (s reaches some event of d
     * through the closure; trivially d == s).
     */
    std::vector<uint32_t> transfer;

    /** (thread, emitted InstrId) -> event index. */
    std::map<std::pair<int, InstrId>, int> index;

    int
    eventOf(int thread, InstrId instr) const
    {
        auto it = index.find({thread, instr});
        return it == index.end() ? -1 : it->second;
    }

    /** Threads ordered after event @p e once the block completes. */
    uint32_t
    maskFrom(int e) const
    {
        uint32_t mask = 0;
        for (size_t j = 0; j < events.size(); ++j)
            if (reach[e].test(j))
                mask |= uint32_t{1} << events[j].thread;
        return mask;
    }

    /**
     * Is event @p e ordered after some thread of @p mask, given that
     * every thread in @p mask was ordered-after-x when this block's
     * instance began? Its own thread orders it by program order; any
     * other thread t must reach @p e from t's first event here.
     */
    bool
    orderedAtEntry(uint32_t mask, int e) const
    {
        if (mask & (uint32_t{1} << events[e].thread))
            return true;
        for (size_t t = 0; t < first_of.size(); ++t) {
            if (!(mask & (uint32_t{1} << t)) || first_of[t] < 0)
                continue;
            if (reach[first_of[t]].test(e))
                return true;
        }
        return false;
    }
};

BlockHbGraph
buildBlockGraph(const MtProgram &prog,
                const std::vector<ThreadCodeMap> &maps, BlockId ob,
                std::vector<std::vector<bool>> &direct_sync)
{
    int nt = static_cast<int>(prog.threads.size());
    BlockHbGraph g;
    g.first_of.assign(nt, -1);

    std::vector<std::vector<int>> by_thread(nt);
    for (int t = 0; t < nt; ++t) {
        BlockId eb = maps[t].emitted_block.empty()
                         ? kNoBlock
                         : maps[t].emitted_block[ob];
        if (eb == kNoBlock)
            continue;
        for (InstrId ei : prog.threads[t].block(eb).instrs()) {
            const Instr &in = prog.threads[t].instr(ei);
            if (!in.isCommunication() && !in.isMemoryAccess())
                continue;
            int idx = static_cast<int>(g.events.size());
            by_thread[t].push_back(idx);
            g.index[{t, ei}] = idx;
            g.events.push_back({t, ei, isProduce(in.op),
                                isConsume(in.op), in.queue});
            if (g.first_of[t] < 0)
                g.first_of[t] = idx;
        }
    }

    int n = static_cast<int>(g.events.size());
    std::vector<std::vector<int>> adj(n);

    // Program order within each thread's image.
    for (int t = 0; t < nt; ++t)
        for (size_t k = 1; k < by_thread[t].size(); ++k)
            adj[by_thread[t][k - 1]].push_back(by_thread[t][k]);

    // Match and capacity edges per queue (same structure as the
    // deadlock checker's wait-for graph, here read as ordering).
    std::map<QueueId, std::pair<std::vector<int>, std::vector<int>>>
        per_queue;
    for (int i = 0; i < n; ++i) {
        if (!g.events[i].produce && !g.events[i].consume)
            continue;
        auto &[prods, conss] = per_queue[g.events[i].queue];
        (g.events[i].produce ? prods : conss).push_back(i);
    }
    for (auto &[q, pc] : per_queue) {
        auto &[prods, conss] = pc;
        size_t matched = std::min(prods.size(), conss.size());
        for (size_t k = 0; k < matched; ++k) {
            adj[prods[k]].push_back(conss[k]);
            direct_sync[g.events[prods[k]].thread]
                       [g.events[conss[k]].thread] = true;
        }
        size_t cap = static_cast<size_t>(prog.queue_capacity);
        for (size_t k = 0; k + cap < prods.size(); ++k)
            if (k < conss.size())
                adj[conss[k]].push_back(prods[k + cap]);
    }

    // Transitive closure by union fixpoint (graphs are tiny; a cycle
    // here is a deadlock, reported by theorem 3).
    g.reach.assign(n, BitVector(n));
    for (int i = 0; i < n; ++i)
        g.reach[i].set(i);
    bool changed = true;
    while (changed) {
        changed = false;
        for (int v = n - 1; v >= 0; --v)
            for (int w : adj[v])
                changed |= g.reach[v].unionWith(g.reach[w]);
    }

    g.transfer.assign(nt, 0);
    for (int t = 0; t < nt; ++t) {
        g.transfer[t] = uint32_t{1} << t;
        if (g.first_of[t] >= 0)
            g.transfer[t] |= g.maskFrom(g.first_of[t]);
    }
    return g;
}

/** One conflicting cross-thread pair to prove ordered. */
struct ConflictPair
{
    InstrId src = kNoInstr;
    InstrId dst = kNoInstr;
};

/**
 * Cross-instance ordering: walk the original CFG from src's block,
 * carrying the monotone set of threads whose next action is known to
 * happen after src. Produce->consume chains (any token kind) grow the
 * set via the per-block transfer summaries; every arrival at dst's
 * block must find dst ordered. Visited-state pruning keeps minimal
 * masks per block, so the walk covers paths of any length (and any
 * loop iteration count) in finite state.
 */
bool
orderedAcrossInstances(const Function &orig,
                       const std::vector<BlockHbGraph> &graphs,
                       int src_event, BlockId src_block,
                       int dst_event, BlockId dst_block)
{
    uint32_t start = graphs[src_block].maskFrom(src_event);
    std::vector<std::vector<uint32_t>> visited(orig.numBlocks());
    std::vector<std::pair<BlockId, uint32_t>> work;
    for (BlockId s : orig.block(src_block).succs())
        work.push_back({s, start});

    while (!work.empty()) {
        auto [b, mask] = work.back();
        work.pop_back();
        bool dominated = false;
        for (uint32_t v : visited[b])
            if ((v & mask) == v) {
                dominated = true;
                break;
            }
        if (dominated)
            continue;
        visited[b].push_back(mask);

        if (b == dst_block &&
            !graphs[b].orderedAtEntry(mask, dst_event))
            return false;

        uint32_t out = 0;
        for (size_t t = 0; t < graphs[b].transfer.size(); ++t)
            if (mask & (uint32_t{1} << t))
                out |= graphs[b].transfer[t];
        for (BlockId s : orig.block(b).succs())
            work.push_back({s, out});
    }
    return true;
}

} // namespace

HbStats
checkHappensBefore(const Function &orig, const Pdg &pdg,
                   const ThreadPartition &partition,
                   const CommPlan &plan, const MtProgram &prog,
                   const std::vector<ThreadCodeMap> &maps,
                   std::vector<MtvDiag> &diags)
{
    HbStats stats;
    int nt = static_cast<int>(prog.threads.size());
    if (nt > 32)
        return stats; // mask width; far beyond any real partition

    // The obligation set: cross-thread memory PDG arcs, unioned with
    // the conflicting pairs re-derived from alias classes so a
    // corrupted PDG cannot shrink what we must prove.
    std::set<std::pair<InstrId, InstrId>> pair_set;
    for (const PdgArc *arc : pdg.memArcs()) {
        if (partition.threadOf(arc->src) == partition.threadOf(arc->dst))
            continue;
        ++stats.arcs_checked;
        pair_set.insert({arc->src, arc->dst});
    }
    for (const MemDep &dep : computeMemDeps(orig))
        if (partition.threadOf(dep.src) != partition.threadOf(dep.dst))
            pair_set.insert({dep.src, dep.dst});

    // Which (src thread, dst thread) pairs have at least one
    // conflicting pair — the redundancy oracle for sync placements.
    std::vector<std::vector<bool>> conflicting(
        nt, std::vector<bool>(nt, false));
    for (const auto &[x, y] : pair_set)
        conflicting[partition.threadOf(x)][partition.threadOf(y)] =
            true;

    // A memory-sync placement between threads with nothing to order
    // is a cut wider than the dependence set: legal, but each token
    // costs a queue slot and an M-slot on both cores every traversal.
    for (size_t pi = 0; pi < plan.placements.size(); ++pi) {
        const CommPlacement &pl = plan.placements[pi];
        if (pl.kind != CommKind::MemorySync)
            continue;
        ++stats.sync_placements;
        if (pl.src_thread < 0 || pl.src_thread >= nt ||
            pl.dst_thread < 0 || pl.dst_thread >= nt)
            continue; // malformed plan; validatePlan's problem
        if (conflicting[pl.src_thread][pl.dst_thread])
            continue;
        std::ostringstream msg;
        msg << "memory-sync placement " << pi << " (T" << pl.src_thread
            << " -> T" << pl.dst_thread
            << ") orders no conflicting memory operations";
        diags.push_back(
            {.code = MtvCode::HbRedundantSync,
             .severity = MtvSeverity::Warning,
             .thread = pl.src_thread,
             .block = pl.points.empty() ? kNoBlock
                                        : pl.points.front().block,
             .pos = pl.points.empty() ? -1 : pl.points.front().pos,
             .message = msg.str()});
    }

    if (pair_set.empty())
        return stats;

    for (const ThreadCodeMap &m : maps)
        if (m.broken)
            return stats; // block images unusable; already reported

    // Per-block happens-before closures, and the set of thread pairs
    // with any direct produce->consume edge (for classifying an
    // unordered pair as missing sync vs. misplaced sync).
    std::vector<std::vector<bool>> direct(nt,
                                          std::vector<bool>(nt, false));
    std::vector<BlockHbGraph> graphs;
    graphs.reserve(orig.numBlocks());
    for (BlockId b = 0; b < orig.numBlocks(); ++b)
        graphs.push_back(buildBlockGraph(prog, maps, b, direct));

    auto copyEvent = [&](InstrId oi, int t, BlockId ob) -> int {
        const auto &copies = maps[t].copies_of[oi];
        if (copies.size() != 1)
            return -1; // missing/duplicated copy: reported elsewhere
        const Instr &c = prog.threads[t].instr(copies[0]);
        if (maps[t].emitted_block.empty() ||
            maps[t].emitted_block[ob] != c.block)
            return -1; // wrong block: reported elsewhere
        return graphs[ob].eventOf(t, copies[0]);
    };

    for (const auto &[x, y] : pair_set) {
        ++stats.pairs_checked;
        int tx = partition.threadOf(x);
        int ty = partition.threadOf(y);
        BlockId bx = orig.instr(x).block;
        BlockId by = orig.instr(y).block;
        int ex = copyEvent(x, tx, bx);
        int ey = copyEvent(y, ty, by);
        if (ex < 0 || ey < 0)
            continue;

        bool ordered = true;
        bool same_instance_case =
            bx == by && orig.positionOf(x) < orig.positionOf(y);
        if (same_instance_case)
            ordered = graphs[bx].reach[ex].test(ey);
        if (ordered)
            ordered = orderedAcrossInstances(orig, graphs, ex, bx, ey,
                                             by);
        if (ordered)
            continue;

        std::ostringstream msg;
        msg << "conflicting memory ops i" << x << " (T" << tx
            << ") and i" << y << " (T" << ty << "): ";
        MtvCode code;
        if (direct[tx][ty]) {
            code = MtvCode::HbSyncWrongPath;
            msg << "synchronization from T" << tx << " to T" << ty
                << " exists but does not order the pair on every path";
        } else {
            code = MtvCode::HbDataRace;
            msg << "no happens-before ordering on any sync chain";
        }
        diags.push_back({.code = code,
                         .thread = ty,
                         .block = by,
                         .pos = orig.positionOf(y),
                         .instr = y,
                         .message = msg.str()});
    }
    return stats;
}

} // namespace gmt
