#include "mtverify/diag.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <tuple>

#include "support/error.hpp"

namespace gmt
{

std::string_view
mtvCodeName(MtvCode code)
{
    switch (code) {
      case MtvCode::Structural:            return "structural";
      case MtvCode::DepUncovered:          return "dep-uncovered";
      case MtvCode::DepIntraThreadOrder:   return "dep-intra-order";
      case MtvCode::ControlUncovered:      return "control-uncovered";
      case MtvCode::MissingInstr:          return "missing-instr";
      case MtvCode::MangledInstr:          return "mangled-instr";
      case MtvCode::OrphanInstr:           return "orphan-instr";
      case MtvCode::InstrWrongBlock:       return "instr-wrong-block";
      case MtvCode::InterfaceMismatch:     return "interface-mismatch";
      case MtvCode::DupFlagWrong:          return "dup-flag-wrong";
      case MtvCode::BlockMapBroken:        return "block-map-broken";
      case MtvCode::MissingProduce:        return "missing-produce";
      case MtvCode::MissingConsume:        return "missing-consume";
      case MtvCode::MissingSyncToken:      return "missing-sync-token";
      case MtvCode::ExtraComm:             return "extra-comm";
      case MtvCode::QueueMismatch:         return "queue-mismatch";
      case MtvCode::RegMismatch:           return "reg-mismatch";
      case MtvCode::CommKindMismatch:      return "comm-kind-mismatch";
      case MtvCode::BadQueueId:            return "bad-queue-id";
      case MtvCode::QueueEndpointConflict: return "queue-endpoint-conflict";
      case MtvCode::QueueImbalance:        return "queue-imbalance";
      case MtvCode::TokenKindMismatch:     return "token-kind-mismatch";
      case MtvCode::DeadlockCycle:         return "deadlock-cycle";
      case MtvCode::HbDataRace:            return "hb-data-race";
      case MtvCode::HbSyncWrongPath:       return "hb-sync-wrong-path";
      case MtvCode::HbRedundantSync:       return "hb-redundant-sync";
      case MtvCode::PlanInvalidPoint:      return "plan-invalid-point";
      case MtvCode::PlanSourceIrrelevant:  return "plan-source-irrelevant";
      case MtvCode::PlanUnsafePoint:       return "plan-unsafe-point";
      case MtvCode::PlanUncoveredArc:      return "plan-uncovered-arc";
    }
    panic("unknown MtvCode ", static_cast<int>(code));
}

std::string_view
mtvSeverityName(MtvSeverity sev)
{
    return sev == MtvSeverity::Error ? "error" : "warning";
}

std::string
renderDiag(const MtvDiag &d)
{
    std::ostringstream os;
    os << '[' << mtvSeverityName(d.severity) << ' '
       << mtvCodeName(d.code) << ']';
    if (d.thread >= 0)
        os << " T" << d.thread;
    if (d.block != kNoBlock) {
        os << " B" << d.block;
        if (d.pos >= 0)
            os << ':' << d.pos;
    }
    if (d.instr != kNoInstr)
        os << " i" << d.instr;
    if (d.queue != kNoQueue)
        os << " q" << d.queue;
    os << ": " << d.message;
    return os.str();
}

void
dedupeDiags(std::vector<MtvDiag> &diags)
{
    std::set<std::tuple<int, int, int, BlockId, int, InstrId, QueueId,
                        std::string>>
        seen;
    std::vector<MtvDiag> unique;
    unique.reserve(diags.size());
    for (auto &d : diags) {
        auto key = std::make_tuple(
            static_cast<int>(d.code), static_cast<int>(d.severity),
            d.thread, d.block, d.pos, d.instr, d.queue, d.message);
        if (seen.insert(std::move(key)).second)
            unique.push_back(std::move(d));
    }
    diags = std::move(unique);
}

void
sortDiags(std::vector<MtvDiag> &diags)
{
    std::stable_sort(
        diags.begin(), diags.end(),
        [](const MtvDiag &a, const MtvDiag &b) {
            return std::tie(a.code, a.block, a.pos, a.instr, a.queue,
                            a.thread, a.severity, a.message) <
                   std::tie(b.code, b.block, b.pos, b.instr, b.queue,
                            b.thread, b.severity, b.message);
        });
}

int
countErrors(const std::vector<MtvDiag> &diags)
{
    return static_cast<int>(
        std::count_if(diags.begin(), diags.end(), [](const MtvDiag &d) {
            return d.severity == MtvSeverity::Error;
        }));
}

} // namespace gmt
