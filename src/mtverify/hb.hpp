#ifndef GMT_MTVERIFY_HB_HPP
#define GMT_MTVERIFY_HB_HPP

/**
 * @file
 * Theorem 4 of the MT verifier: race freedom via happens-before.
 *
 * The COCO memory-sync cut (and plain MTCG's source-point sync) is
 * supposed to guarantee that every pair of conflicting memory
 * operations assigned to different threads is *ordered* in every
 * execution. The other theorems prove arc coverage, queue balance,
 * and deadlock freedom — none of them proves ordering. This engine
 * does, over the emitted code alone:
 *
 *  - Every queue produce -> consume match is a cross-thread
 *    synchronization edge, for BOTH token kinds: a register produce
 *    orders memory just as well as a produce.sync does (the consumer
 *    cannot pass the consume before the producer executed the
 *    produce).
 *  - Within one original block's instance, those edges compose with
 *    intra-thread program order and queue-capacity back-edges into a
 *    per-block happens-before graph (the same per-block walk
 *    structure deadlock.cpp uses); its transitive closure is the
 *    intra-instance ordering relation.
 *  - Across block instances, ordering is propagated by a sync-chain
 *    walk over the original CFG: a set of "synchronized" threads
 *    grows monotonically along each path as produce->consume matches
 *    hand the ordering token from thread to thread, and block-level
 *    transfer matrices (derived from the per-block closures) apply
 *    one block's chains in a single step.
 *
 * Checked pairs are the cross-thread memory PDG arcs plus every
 * conflicting memory-operation pair re-derived from computeMemDeps
 * alias classes (so a corrupted PDG cannot silently shrink the
 * obligation set). An unordered pair is a data race; if
 * synchronization between the two threads exists but misses a path,
 * the sharper sync-on-wrong-path code fires instead. A memory-sync
 * placement between two threads with no conflicting pair at all is
 * flagged as redundant (warning).
 *
 * See DESIGN.md "Happens-before verification" for the relation
 * definition and the soundness argument for the per-block closure.
 */

#include <vector>

#include "mtcg/comm_plan.hpp"
#include "mtverify/diag.hpp"
#include "mtverify/thread_map.hpp"
#include "partition/partition.hpp"
#include "pdg/pdg.hpp"
#include "runtime/mt_interpreter.hpp"

namespace gmt
{

/** Aggregate counters for stats records (pass manager, gmt-lint). */
struct HbStats
{
    int pairs_checked = 0;   ///< distinct conflicting pairs examined
    int arcs_checked = 0;    ///< cross-thread memory PDG arcs seen
    int sync_placements = 0; ///< memory-sync placements examined
};

/**
 * Run the happens-before race check. @p plan is the witness used only
 * for the redundant-sync diagnostic; ordering itself is derived from
 * the emitted code via @p maps. Findings are appended to @p diags.
 */
HbStats checkHappensBefore(const Function &orig, const Pdg &pdg,
                           const ThreadPartition &partition,
                           const CommPlan &plan, const MtProgram &prog,
                           const std::vector<ThreadCodeMap> &maps,
                           std::vector<MtvDiag> &diags);

} // namespace gmt

#endif // GMT_MTVERIFY_HB_HPP
