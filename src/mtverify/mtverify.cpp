#include "mtverify/mtverify.hpp"

#include <map>
#include <set>
#include <sstream>

#include "ir/verifier.hpp"
#include "mtverify/deadlock.hpp"
#include "mtverify/hb.hpp"
#include "obs/metrics.hpp"
#include "mtverify/queue_balance.hpp"
#include "support/error.hpp"

namespace gmt
{

namespace
{

/** One communication op the plan expects a thread to emit in the
 *  image of an original block, in (point, plan) order. */
struct ExpectedComm
{
    Opcode op = Opcode::Produce;
    Reg reg = kNoReg; ///< kNoReg for sync tokens
    QueueId queue = kNoQueue;
    int pos = 0; ///< original-block position of the point
    int placement = -1;
};

MtvCode
missingCodeFor(Opcode op)
{
    switch (op) {
      case Opcode::Produce:
        return MtvCode::MissingProduce;
      case Opcode::Consume:
        return MtvCode::MissingConsume;
      default:
        return MtvCode::MissingSyncToken;
    }
}

bool
exactMatch(const Instr &in, const ExpectedComm &e)
{
    if (in.op != e.op || in.queue != e.queue)
        return false;
    switch (e.op) {
      case Opcode::Produce:
        return in.src1 == e.reg;
      case Opcode::Consume:
        return in.dst == e.reg;
      default:
        return true; // sync tokens carry no register
    }
}

/** Per-thread, per-original-block expected comm sequences. */
std::vector<std::vector<std::vector<ExpectedComm>>>
expectedCommByBlock(const MtVerifyInput &in)
{
    const CommPlan &plan = *in.plan;
    int nt = in.partition->num_threads;
    std::vector<std::vector<std::vector<ExpectedComm>>> exp(
        nt, std::vector<std::vector<ExpectedComm>>(
                in.orig->numBlocks()));

    // (point -> placement indices) sorted by point, plan order within
    // a point — exactly MTCG's emission order.
    std::map<ProgramPoint, std::vector<int>> point_ops;
    for (int pi = 0; pi < static_cast<int>(plan.placements.size());
         ++pi)
        for (const auto &p : plan.placements[pi].points)
            point_ops[p].push_back(pi);

    for (const auto &[point, ops] : point_ops) {
        if (point.block < 0 || point.block >= in.orig->numBlocks())
            continue; // validatePlan's problem, not emission's
        for (int pi : ops) {
            const CommPlacement &pl = plan.placements[pi];
            QueueId q = in.queue_of ? (*in.queue_of)[pi]
                                    : static_cast<QueueId>(pi);
            bool sync = pl.kind == CommKind::MemorySync;
            Reg reg = sync ? kNoReg : pl.reg;
            exp[pl.src_thread][point.block].push_back(
                {sync ? Opcode::ProduceSync : Opcode::Produce, reg, q,
                 point.pos, pi});
            exp[pl.dst_thread][point.block].push_back(
                {sync ? Opcode::ConsumeSync : Opcode::Consume, reg, q,
                 point.pos, pi});
        }
    }
    return exp;
}

/**
 * Walk one emitted block against the plan's expected comm sequence.
 * Non-communication copies advance an "original position" cursor that
 * flushes expected entries whose point has been passed.
 */
void
walkBlock(const MtVerifyInput &in, int t, const ThreadCodeMap &map,
          BlockId ob, const std::vector<ExpectedComm> &expected,
          std::vector<MtvDiag> &diags)
{
    const Function &emitted = in.prog->threads[t];
    BlockId eb = map.emitted_block[ob];

    auto reportMissing = [&](const ExpectedComm &e) {
        std::ostringstream msg;
        msg << "plan placement " << e.placement << " expects "
            << opcodeName(e.op) << " on q" << e.queue;
        if (e.reg != kNoReg)
            msg << " of r" << e.reg;
        msg << " at " << in.orig->block(ob).label() << ":" << e.pos
            << "; not emitted";
        diags.push_back({.code = missingCodeFor(e.op),
                         .thread = t,
                         .block = ob,
                         .pos = e.pos,
                         .queue = e.queue,
                         .message = msg.str()});
    };

    size_t xi = 0;
    if (eb == kNoBlock) {
        // Thread never emitted this block; every expected op is gone.
        for (const auto &e : expected)
            reportMissing(e);
        return;
    }

    constexpr size_t kLookahead = 8;
    for (InstrId ei : emitted.block(eb).instrs()) {
        const Instr &ins = emitted.instr(ei);
        if (!ins.isCommunication()) {
            if (ins.origin == kNoInstr)
                continue; // orphan; reported elsewhere
            // Passing the copy of original position p means every
            // point at positions <= p should already have fired.
            int opos = in.orig->positionOf(ins.origin);
            while (xi < expected.size() && expected[xi].pos <= opos)
                reportMissing(expected[xi++]);
            continue;
        }

        if (xi >= expected.size()) {
            diags.push_back(
                {.code = MtvCode::ExtraComm,
                 .thread = t,
                 .block = ob,
                 .queue = ins.queue,
                 .message = std::string(opcodeName(ins.op)) +
                            " not justified by any plan point"});
            continue;
        }

        if (exactMatch(ins, expected[xi])) {
            ++xi;
            continue;
        }

        // Resynchronize: if a later expected entry matches exactly,
        // the ones skipped over were simply not emitted.
        size_t limit = std::min(expected.size(), xi + 1 + kLookahead);
        size_t found = 0;
        for (size_t j = xi + 1; j < limit; ++j) {
            if (exactMatch(ins, expected[j])) {
                found = j;
                break;
            }
        }
        if (found) {
            for (size_t j = xi; j < found; ++j)
                reportMissing(expected[j]);
            xi = found + 1;
            continue;
        }

        // No resync: diagnose the disagreement with expected[xi].
        const ExpectedComm &e = expected[xi];
        bool same_dir =
            (ins.op == Opcode::Produce ||
             ins.op == Opcode::ProduceSync) ==
            (e.op == Opcode::Produce || e.op == Opcode::ProduceSync);
        Reg in_reg = ins.op == Opcode::Produce ? ins.src1
                     : ins.op == Opcode::Consume ? ins.dst
                                                 : kNoReg;
        std::ostringstream msg;
        if (ins.op == e.op && in_reg == e.reg &&
            ins.queue != e.queue) {
            msg << opcodeName(ins.op) << " carries q" << ins.queue
                << " where the plan assigns q" << e.queue;
            diags.push_back({.code = MtvCode::QueueMismatch,
                             .thread = t,
                             .block = ob,
                             .pos = e.pos,
                             .queue = ins.queue,
                             .message = msg.str()});
            ++xi;
        } else if (ins.op == e.op && ins.queue == e.queue &&
                   in_reg != e.reg) {
            msg << opcodeName(ins.op) << " carries r" << in_reg
                << " where the plan expects r" << e.reg;
            diags.push_back({.code = MtvCode::RegMismatch,
                             .thread = t,
                             .block = ob,
                             .pos = e.pos,
                             .queue = e.queue,
                             .message = msg.str()});
            ++xi;
        } else if (same_dir && ins.op != e.op &&
                   ins.queue == e.queue) {
            msg << opcodeName(ins.op) << " emitted where the plan "
                << "expects " << opcodeName(e.op);
            diags.push_back({.code = MtvCode::CommKindMismatch,
                             .thread = t,
                             .block = ob,
                             .pos = e.pos,
                             .queue = e.queue,
                             .message = msg.str()});
            ++xi;
        } else {
            msg << opcodeName(ins.op) << " on q" << ins.queue
                << " not justified by any plan point";
            diags.push_back({.code = MtvCode::ExtraComm,
                             .thread = t,
                             .block = ob,
                             .queue = ins.queue,
                             .message = msg.str()});
        }
    }
    while (xi < expected.size())
        reportMissing(expected[xi++]);
}

/** Copies of original instructions: presence, uniqueness, field
 *  fidelity, block placement, duplicated-flag hygiene, interfaces. */
void
checkCopies(const MtVerifyInput &in,
            const std::vector<ThreadCodeMap> &maps,
            std::vector<MtvDiag> &diags)
{
    const Function &orig = *in.orig;
    const ThreadPartition &part = *in.partition;
    int nt = part.num_threads;

    for (InstrId oi = 0; oi < orig.numInstrs(); ++oi) {
        const Instr &o = orig.instr(oi);
        int owner = part.threadOf(oi);

        for (int t = 0; t < nt; ++t) {
            const Function &emitted = in.prog->threads[t];
            const auto &copies = maps[t].copies_of[oi];

            if (!o.isTerminator()) {
                if (t == owner) {
                    if (copies.empty()) {
                        diags.push_back(
                            {.code = MtvCode::MissingInstr,
                             .thread = t,
                             .block = o.block,
                             .instr = oi,
                             .message =
                                 "owned instruction has no copy"});
                        continue;
                    }
                    if (copies.size() > 1)
                        diags.push_back(
                            {.code = MtvCode::MangledInstr,
                             .thread = t,
                             .block = o.block,
                             .instr = oi,
                             .message =
                                 "owned instruction copied " +
                                 std::to_string(copies.size()) +
                                 " times"});
                } else if (!copies.empty()) {
                    diags.push_back(
                        {.code = MtvCode::OrphanInstr,
                         .thread = t,
                         .block = o.block,
                         .instr = oi,
                         .message = "non-terminator copied into a "
                                    "thread that does not own it"});
                    continue;
                }
            }

            for (InstrId ci : copies) {
                const Instr &c = emitted.instr(ci);

                // Field fidelity. Terminators may be demoted Br->Jmp;
                // a Br copy must keep its condition register.
                if (!o.isTerminator()) {
                    if (c.op != o.op || c.dst != o.dst ||
                        c.src1 != o.src1 || c.src2 != o.src2 ||
                        c.imm != o.imm || c.alias != o.alias)
                        diags.push_back(
                            {.code = MtvCode::MangledInstr,
                             .thread = t,
                             .block = o.block,
                             .instr = oi,
                             .message =
                                 "copy disagrees with the original's "
                                 "operands"});
                } else if (c.op == Opcode::Br &&
                           c.src1 != o.src1) {
                    diags.push_back(
                        {.code = MtvCode::MangledInstr,
                         .thread = t,
                         .block = o.block,
                         .instr = oi,
                         .message = "branch copy lost its condition "
                                    "register"});
                }

                // Block placement.
                BlockId mapped = maps[t].orig_block[c.block];
                if (mapped != kNoBlock && mapped != o.block)
                    diags.push_back(
                        {.code = MtvCode::InstrWrongBlock,
                         .thread = t,
                         .block = o.block,
                         .instr = oi,
                         .message = "copy emitted into the image of " +
                                    orig.block(mapped).label()});

                // Duplicated-branch labeling (stats hygiene only).
                bool should_dup =
                    c.op == Opcode::Br && part.threadOf(oi) != t;
                if (c.isBranch() && c.duplicated != should_dup)
                    diags.push_back(
                        {.code = MtvCode::DupFlagWrong,
                         .severity = MtvSeverity::Warning,
                         .thread = t,
                         .block = o.block,
                         .instr = oi,
                         .message = should_dup
                                        ? "replicated branch not "
                                          "flagged duplicated"
                                        : "owned branch flagged "
                                          "duplicated"});
            }
        }
    }

    // Emitted instructions must be either comm or valid copies.
    for (int t = 0; t < nt; ++t) {
        const Function &emitted = in.prog->threads[t];
        for (BlockId eb = 0; eb < emitted.numBlocks(); ++eb) {
            for (InstrId ei : emitted.block(eb).instrs()) {
                const Instr &e = emitted.instr(ei);
                if (e.isCommunication())
                    continue;
                if (e.origin < 0 || e.origin >= orig.numInstrs())
                    diags.push_back(
                        {.code = MtvCode::OrphanInstr,
                         .thread = t,
                         .block = maps[t].orig_block[eb],
                         .message = "emitted instruction has no "
                                    "valid origin"});
            }
        }
    }

    // Interfaces: params everywhere, live-outs only at the Ret owner.
    InstrId ret = orig.block(orig.exitBlock()).terminator();
    int ret_owner = part.threadOf(ret);
    for (int t = 0; t < nt; ++t) {
        const Function &emitted = in.prog->threads[t];
        if (emitted.params() != orig.params())
            diags.push_back({.code = MtvCode::InterfaceMismatch,
                             .thread = t,
                             .message = "thread params differ from "
                                        "the original function's"});
        const std::vector<Reg> expect_lo =
            t == ret_owner ? orig.liveOuts() : std::vector<Reg>{};
        if (emitted.liveOuts() != expect_lo)
            diags.push_back(
                {.code = MtvCode::InterfaceMismatch,
                 .thread = t,
                 .message =
                     t == ret_owner
                         ? "Ret-owning thread's live-outs differ "
                           "from the original function's"
                         : "non-Ret thread declares live-outs"});
    }
}

/**
 * True if some instruction-level CFG path from @p start reaches the
 * point just before @p target without crossing @p barrier; a
 * redefinition of @p kill_reg kills the dependence along a path.
 * (Same search as coco/validate.cpp, run here against the plan that
 * actually drove emission.)
 */
bool
pathEscapes(const Function &f, ProgramPoint start, InstrId target,
            const std::set<ProgramPoint> &barrier, Reg kill_reg)
{
    ProgramPoint goal{f.instr(target).block, f.positionOf(target)};
    std::set<ProgramPoint> seen;
    std::vector<ProgramPoint> work{start};
    while (!work.empty()) {
        ProgramPoint p = work.back();
        work.pop_back();
        if (barrier.count(p))
            continue;
        if (p == goal)
            return true;
        if (!seen.insert(p).second)
            continue;
        const BasicBlock &bb = f.block(p.block);
        int size = static_cast<int>(bb.size());
        GMT_ASSERT(p.pos >= 0 && p.pos < size);
        InstrId here = bb.instrs()[p.pos];
        if (kill_reg != kNoReg && f.defOf(here) == kill_reg)
            continue;
        if (p.pos < size - 1) {
            work.push_back({p.block, p.pos + 1});
        } else {
            for (BlockId s : bb.succs())
                work.push_back({s, 0});
        }
    }
    return false;
}

/** Theorem 1 over the PDG arcs. */
void
checkDependences(const MtVerifyInput &in,
                 const std::vector<ThreadCodeMap> &maps,
                 std::vector<MtvDiag> &diags)
{
    const Function &orig = *in.orig;
    const ThreadPartition &part = *in.partition;

    for (const PdgArc &arc : in.pdg->arcs()) {
        int ts = part.threadOf(arc.src);
        int tt = part.threadOf(arc.dst);

        if (arc.kind == DepKind::Control) {
            // The controlled thread must carry some copy of the
            // branch. (A Jmp copy means MTCG proved control cannot
            // diverge for this thread — the retargets coincide — so
            // that also discharges the dependence.)
            if (maps[tt].copies_of[arc.src].empty())
                diags.push_back(
                    {.code = MtvCode::ControlUncovered,
                     .thread = tt,
                     .block = orig.instr(arc.src).block,
                     .instr = arc.src,
                     .message = "thread depends on this branch but "
                                "has no copy of it"});
            continue;
        }

        if (ts == tt) {
            // Intra-thread: copies in the same block image must keep
            // the original relative order (cross-block order is the
            // CFG's job, which structural checks cover).
            if (orig.instr(arc.src).block != orig.instr(arc.dst).block)
                continue;
            const auto &sc = maps[ts].copies_of[arc.src];
            const auto &dc = maps[ts].copies_of[arc.dst];
            if (sc.empty() || dc.empty())
                continue; // missing copies already reported
            const Function &emitted = in.prog->threads[ts];
            if (emitted.instr(sc[0]).block !=
                emitted.instr(dc[0]).block)
                continue; // wrong block already reported
            int so = orig.positionOf(arc.src);
            int de = orig.positionOf(arc.dst);
            int se = emitted.positionOf(sc[0]);
            int dee = emitted.positionOf(dc[0]);
            if ((so < de) != (se < dee))
                diags.push_back(
                    {.code = MtvCode::DepIntraThreadOrder,
                     .thread = ts,
                     .block = orig.instr(arc.src).block,
                     .instr = arc.dst,
                     .message = "copies of i" +
                                std::to_string(arc.src) + " and i" +
                                std::to_string(arc.dst) +
                                " lost their original order"});
            continue;
        }

        // Cross-thread data dependence: some matching placement must
        // cut every path from the source to the destination.
        std::set<ProgramPoint> barrier;
        for (const CommPlacement &pl : in.plan->placements) {
            bool matches =
                pl.src_thread == ts && pl.dst_thread == tt &&
                ((arc.kind == DepKind::Register &&
                  pl.kind == CommKind::RegisterData &&
                  pl.reg == arc.reg) ||
                 (arc.kind == DepKind::Memory &&
                  pl.kind == CommKind::MemorySync));
            if (matches)
                barrier.insert(pl.points.begin(), pl.points.end());
        }
        ProgramPoint start{orig.instr(arc.src).block,
                           orig.positionOf(arc.src) + 1};
        Reg kill = arc.kind == DepKind::Register ? arc.reg : kNoReg;
        if (pathEscapes(orig, start, arc.dst, barrier, kill)) {
            std::ostringstream msg;
            if (arc.kind == DepKind::Register)
                msg << "register r" << arc.reg;
            else
                msg << "memory";
            msg << " dependence i" << arc.src << " -> i" << arc.dst
                << " (T" << ts << " -> T" << tt
                << ") has a path uncovered by any produce/consume";
            diags.push_back({.code = MtvCode::DepUncovered,
                             .thread = tt,
                             .block = orig.instr(arc.dst).block,
                             .instr = arc.dst,
                             .message = msg.str()});
        }
    }
}

} // namespace

std::string
MtVerifyResult::render() const
{
    std::ostringstream os;
    for (size_t i = 0; i < diags.size(); ++i) {
        if (i)
            os << '\n';
        os << renderDiag(diags[i]);
    }
    return os.str();
}

MtVerifyResult
verifyMtProgram(const MtVerifyInput &in)
{
    GMT_ASSERT(in.orig && in.pdg && in.partition && in.plan && in.prog,
               "verifyMtProgram: missing input");
    GMT_ASSERT(!in.queue_of ||
                   in.queue_of->size() == in.plan->placements.size(),
               "verifyMtProgram: queue assignment size mismatch");

    MtVerifyResult res;
    int nt = in.partition->num_threads;
    GMT_ASSERT(static_cast<int>(in.prog->threads.size()) == nt,
               "verifyMtProgram: thread count mismatch");

    // Structural soundness per thread first; the deeper checks assume
    // well-formed CFGs.
    for (int t = 0; t < nt; ++t)
        for (const std::string &p :
             verifyFunction(in.prog->threads[t]))
            res.diags.push_back({.code = MtvCode::Structural,
                                 .thread = t,
                                 .message = p});

    std::vector<ThreadCodeMap> maps;
    maps.reserve(nt);
    for (int t = 0; t < nt; ++t)
        maps.push_back(buildThreadCodeMap(*in.orig,
                                          in.prog->threads[t], t,
                                          res.diags));

    checkCopies(in, maps, res.diags);

    // Theorem 1: plan fidelity + PDG coverage.
    auto expected = expectedCommByBlock(in);
    for (int t = 0; t < nt; ++t) {
        if (maps[t].broken)
            continue; // block images unusable; already reported
        for (BlockId ob = 0; ob < in.orig->numBlocks(); ++ob)
            walkBlock(in, t, maps[t], ob, expected[t][ob], res.diags);
    }
    checkDependences(in, maps, res.diags);

    // Theorems 2 and 3, from the emitted code alone.
    checkQueueBalance(*in.orig, *in.prog, maps, res.diags);
    checkDeadlockFreedom(*in.orig, *in.prog, maps, res.diags);

    // Theorem 4: race freedom via happens-before (also from the
    // emitted code; the plan only feeds the redundancy warning).
    MetricsRegistry &mr = MetricsRegistry::global();
    if (in.check_hb) {
        HbStats hb = checkHappensBefore(*in.orig, *in.pdg,
                                        *in.partition, *in.plan,
                                        *in.prog, maps, res.diags);
        res.hb_pairs = hb.pairs_checked;
        mr.counter("mtverify.hb_pairs").add(hb.pairs_checked);
    }

    sortDiags(res.diags);
    dedupeDiags(res.diags);
    mr.counter("mtverify.runs").add();
    mr.counter("mtverify.diags").add(res.diags.size());
    return res;
}

} // namespace gmt
