#include "mtverify/queue_balance.hpp"

#include <deque>
#include <limits>
#include <sstream>

namespace gmt
{

namespace
{

bool
isProduce(Opcode op)
{
    return op == Opcode::Produce || op == Opcode::ProduceSync;
}

bool
isConsume(Opcode op)
{
    return op == Opcode::Consume || op == Opcode::ConsumeSync;
}

bool
isSync(Opcode op)
{
    return op == Opcode::ProduceSync || op == Opcode::ConsumeSync;
}

/** Comm ops of thread t's copy of original block ob, in emitted
 *  order, restricted to queue q and a produce/consume role. */
std::vector<InstrId>
commSeq(const Function &emitted, const ThreadCodeMap &map, BlockId ob,
        QueueId q, bool produces)
{
    std::vector<InstrId> seq;
    BlockId eb = ob < static_cast<BlockId>(map.emitted_block.size())
                     ? map.emitted_block[ob]
                     : kNoBlock;
    if (eb == kNoBlock)
        return seq;
    for (InstrId ei : emitted.block(eb).instrs()) {
        const Instr &in = emitted.instr(ei);
        if (!in.isCommunication() || in.queue != q)
            continue;
        if (produces ? isProduce(in.op) : isConsume(in.op))
            seq.push_back(ei);
    }
    return seq;
}

} // namespace

std::vector<QueueEndpoints>
queueEndpoints(const MtProgram &prog)
{
    std::vector<QueueEndpoints> ends(prog.num_queues);
    for (int t = 0; t < static_cast<int>(prog.threads.size()); ++t) {
        const Function &f = prog.threads[t];
        for (BlockId b = 0; b < f.numBlocks(); ++b) {
            for (InstrId i : f.block(b).instrs()) {
                const Instr &in = f.instr(i);
                if (!in.isCommunication())
                    continue;
                if (in.queue < 0 || in.queue >= prog.num_queues)
                    continue; // out of range; BadQueueId reports it
                QueueEndpoints &e = ends[in.queue];
                int &slot = isProduce(in.op) ? e.producer : e.consumer;
                if (slot != -1 && slot != t)
                    e.conflict = true;
                slot = t;
            }
        }
    }
    for (auto &e : ends)
        if (e.producer != -1 && e.producer == e.consumer)
            e.conflict = true;
    return ends;
}

void
checkQueueBalance(const Function &orig, const MtProgram &prog,
                  const std::vector<ThreadCodeMap> &maps,
                  std::vector<MtvDiag> &diags)
{
    // --- queue ids in range -----------------------------------------
    for (int t = 0; t < static_cast<int>(prog.threads.size()); ++t) {
        const Function &f = prog.threads[t];
        for (BlockId b = 0; b < f.numBlocks(); ++b) {
            for (InstrId i : f.block(b).instrs()) {
                const Instr &in = f.instr(i);
                if (!in.isCommunication())
                    continue;
                if (in.queue < 0 || in.queue >= prog.num_queues)
                    diags.push_back(
                        {.code = MtvCode::BadQueueId,
                         .thread = t,
                         .block = b,
                         .queue = in.queue,
                         .message =
                             "queue id outside [0, " +
                             std::to_string(prog.num_queues) + ")"});
            }
        }
    }

    // --- endpoint roles ---------------------------------------------
    std::vector<QueueEndpoints> ends = queueEndpoints(prog);
    for (QueueId q = 0; q < prog.num_queues; ++q) {
        if (!ends[q].conflict)
            continue;
        std::ostringstream msg;
        msg << "queue has conflicting endpoints (producer T"
            << ends[q].producer << ", consumer T" << ends[q].consumer
            << ")";
        diags.push_back({.code = MtvCode::QueueEndpointConflict,
                         .queue = q,
                         .message = msg.str()});
    }

    // --- per-queue token-count dataflow on the original CFG ---------
    constexpr int kUnvisited = std::numeric_limits<int>::min();
    constexpr int kTop = std::numeric_limits<int>::min() + 1;

    for (QueueId q = 0; q < prog.num_queues; ++q) {
        const QueueEndpoints &e = ends[q];
        if (e.conflict)
            continue; // roles are already broken; counts are moot
        if (e.producer == -1 && e.consumer == -1)
            continue; // unused queue (multiplexing slack)

        // Net token delta and per-block sequences. A missing endpoint
        // thread contributes empty sequences, which the dataflow then
        // reports as an imbalance at the exit.
        std::vector<int> net(orig.numBlocks(), 0);
        std::vector<std::vector<InstrId>> prod_seq(orig.numBlocks());
        std::vector<std::vector<InstrId>> cons_seq(orig.numBlocks());
        for (BlockId b = 0; b < orig.numBlocks(); ++b) {
            if (e.producer != -1)
                prod_seq[b] = commSeq(prog.threads[e.producer],
                                      maps[e.producer], b, q, true);
            if (e.consumer != -1)
                cons_seq[b] = commSeq(prog.threads[e.consumer],
                                      maps[e.consumer], b, q, false);
            net[b] = static_cast<int>(prod_seq[b].size()) -
                     static_cast<int>(cons_seq[b].size());
        }

        std::vector<int> in(orig.numBlocks(), kUnvisited);
        in[orig.entry()] = 0;
        std::deque<BlockId> work{orig.entry()};
        bool reported_merge = false;
        while (!work.empty()) {
            BlockId b = work.front();
            work.pop_front();
            int out = in[b] == kTop ? kTop : in[b] + net[b];
            for (BlockId s : orig.block(b).succs()) {
                int merged;
                if (in[s] == kUnvisited || in[s] == out)
                    merged = out;
                else
                    merged = kTop;
                if (merged == kTop && !reported_merge) {
                    reported_merge = true;
                    diags.push_back(
                        {.code = MtvCode::QueueImbalance,
                         .block = s,
                         .queue = q,
                         .message =
                             "in-flight token count diverges between "
                             "paths reaching " +
                             orig.block(s).label()});
                }
                if (merged != in[s]) {
                    in[s] = merged;
                    work.push_back(s);
                }
            }
        }

        BlockId ex = orig.exitBlock();
        int at_exit = in[ex] == kTop || in[ex] == kUnvisited
                          ? in[ex]
                          : in[ex] + net[ex];
        if (at_exit != 0 && at_exit != kTop && at_exit != kUnvisited) {
            std::ostringstream msg;
            msg << "queue ends with " << at_exit
                << " unmatched token(s) at exit (produces vs consumes "
                   "diverge)";
            diags.push_back({.code = MtvCode::QueueImbalance,
                             .block = ex,
                             .queue = q,
                             .message = msg.str()});
        }

        // --- token-kind mirroring per block -------------------------
        // Only where the in-flight count is known to be zero at block
        // entry and the block's counts agree: there the k-th produce
        // feeds exactly the k-th consume, so data/sync kinds must
        // match pairwise. (Guarding on zero avoids cascading noise
        // when an imbalance already offset the pairing.)
        if (e.producer == -1 || e.consumer == -1)
            continue;
        for (BlockId b = 0; b < orig.numBlocks(); ++b) {
            if (in[b] != 0 || prod_seq[b].size() != cons_seq[b].size())
                continue;
            for (size_t k = 0; k < prod_seq[b].size(); ++k) {
                Opcode po =
                    prog.threads[e.producer].instr(prod_seq[b][k]).op;
                Opcode co =
                    prog.threads[e.consumer].instr(cons_seq[b][k]).op;
                if (isSync(po) == isSync(co))
                    continue;
                std::ostringstream msg;
                msg << "token " << k << " produced as "
                    << opcodeName(po) << " but consumed as "
                    << opcodeName(co);
                diags.push_back({.code = MtvCode::TokenKindMismatch,
                                 .block = b,
                                 .pos = static_cast<int>(k),
                                 .queue = q,
                                 .message = msg.str()});
            }
        }
    }
}

} // namespace gmt
