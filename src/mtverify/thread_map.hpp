#ifndef GMT_MTVERIFY_THREAD_MAP_HPP
#define GMT_MTVERIFY_THREAD_MAP_HPP

/**
 * @file
 * Mapping from one emitted thread function back to the original
 * function, reconstructed from the `origin` back-references MTCG
 * stamps on every copy. Every emitted block's terminator is a copy of
 * the original block's terminator, so the block image is recoverable
 * even for blocks holding nothing but communication ops. All the
 * mtverify checks consume this map; none of them trust MTCG's own
 * bookkeeping beyond the per-instruction origin field itself.
 */

#include <vector>

#include "ir/function.hpp"
#include "mtverify/diag.hpp"

namespace gmt
{

/** Back-mapping of one emitted thread function. */
struct ThreadCodeMap
{
    int thread = 0;

    /** emitted block -> original block (kNoBlock if unmappable). */
    std::vector<BlockId> orig_block;

    /** original block -> emitted block (kNoBlock if not needed). */
    std::vector<BlockId> emitted_block;

    /** original instr -> emitted InstrIds carrying that origin. */
    std::vector<std::vector<InstrId>> copies_of;

    /** Some block could not be mapped; downstream checks that need
     *  the block image skip what they cannot see. */
    bool broken = false;
};

/**
 * Build the map for thread @p thread of the program. Structural
 * problems (terminator without origin, two emitted blocks claiming
 * the same original) are reported into @p diags as BlockMapBroken.
 */
ThreadCodeMap buildThreadCodeMap(const Function &orig,
                                 const Function &emitted, int thread,
                                 std::vector<MtvDiag> &diags);

} // namespace gmt

#endif // GMT_MTVERIFY_THREAD_MAP_HPP
