#ifndef GMT_MTVERIFY_DEADLOCK_HPP
#define GMT_MTVERIFY_DEADLOCK_HPP

/**
 * @file
 * Theorem 3 of the MT verifier: deadlock freedom.
 *
 * For each original block we build the happens-before graph over the
 * communication events that all threads execute while traversing that
 * block: program-order edges within a thread, match edges from the
 * k-th produce on a queue to the k-th consume (a consume cannot
 * complete before its value exists), and capacity edges from the k-th
 * consume back to the (k+capacity)-th produce (a produce blocks until
 * the synchronization array has room). A cycle in this graph means no
 * interleaving can make progress through the block — a guaranteed
 * deadlock, e.g. two threads that each consume what the other has not
 * yet produced. Because every edge is a real blocking constraint, a
 * reported cycle is never a false positive.
 */

#include <vector>

#include "mtverify/diag.hpp"
#include "mtverify/thread_map.hpp"
#include "runtime/mt_interpreter.hpp"

namespace gmt
{

/** Run the per-block wait-for cycle check. */
void checkDeadlockFreedom(const Function &orig, const MtProgram &prog,
                          const std::vector<ThreadCodeMap> &maps,
                          std::vector<MtvDiag> &diags);

} // namespace gmt

#endif // GMT_MTVERIFY_DEADLOCK_HPP
