#include "mtverify/deadlock.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace gmt
{

namespace
{

bool
isProduce(Opcode op)
{
    return op == Opcode::Produce || op == Opcode::ProduceSync;
}

/** One communication event inside a block's happens-before graph. */
struct Event
{
    int thread = -1;
    QueueId queue = kNoQueue;
    bool produce = false;
    InstrId instr = kNoInstr; ///< emitted instruction
};

/** Find one cycle via iterative DFS; @return its node indices. */
std::vector<int>
findCycle(const std::vector<std::vector<int>> &adj)
{
    int n = static_cast<int>(adj.size());
    // 0 = white, 1 = on stack, 2 = done.
    std::vector<int> color(n, 0), parent(n, -1);
    for (int root = 0; root < n; ++root) {
        if (color[root] != 0)
            continue;
        std::vector<std::pair<int, size_t>> stack{{root, 0}};
        color[root] = 1;
        while (!stack.empty()) {
            auto &[v, edge] = stack.back();
            if (edge == adj[v].size()) {
                color[v] = 2;
                stack.pop_back();
                continue;
            }
            int w = adj[v][edge++];
            if (color[w] == 1) {
                // Found a back edge v -> w: unwind v..w.
                std::vector<int> cycle{w};
                for (int u = v; u != w; u = parent[u])
                    cycle.push_back(u);
                std::reverse(cycle.begin(), cycle.end());
                return cycle;
            }
            if (color[w] == 0) {
                color[w] = 1;
                parent[w] = v;
                stack.push_back({w, 0});
            }
        }
    }
    return {};
}

} // namespace

void
checkDeadlockFreedom(const Function &orig, const MtProgram &prog,
                     const std::vector<ThreadCodeMap> &maps,
                     std::vector<MtvDiag> &diags)
{
    int num_threads = static_cast<int>(prog.threads.size());

    for (BlockId ob = 0; ob < orig.numBlocks(); ++ob) {
        // Gather every thread's communication events for this block,
        // in that thread's program order.
        std::vector<Event> events;
        std::vector<std::vector<int>> by_thread(num_threads);
        for (int t = 0; t < num_threads; ++t) {
            BlockId eb = maps[t].emitted_block.empty()
                             ? kNoBlock
                             : maps[t].emitted_block[ob];
            if (eb == kNoBlock)
                continue;
            for (InstrId ei : prog.threads[t].block(eb).instrs()) {
                const Instr &in = prog.threads[t].instr(ei);
                if (!in.isCommunication())
                    continue;
                by_thread[t].push_back(static_cast<int>(events.size()));
                events.push_back({t, in.queue, isProduce(in.op), ei});
            }
        }
        if (events.empty())
            continue;

        std::vector<std::vector<int>> adj(events.size());

        // Program order within each thread.
        for (int t = 0; t < num_threads; ++t)
            for (size_t k = 1; k < by_thread[t].size(); ++k)
                adj[by_thread[t][k - 1]].push_back(by_thread[t][k]);

        // Match and capacity edges per queue: the k-th produce must
        // precede the k-th consume; the k-th consume must precede the
        // (k + capacity)-th produce.
        std::map<QueueId, std::pair<std::vector<int>, std::vector<int>>>
            per_queue; // queue -> (produces, consumes) in order
        for (size_t i = 0; i < events.size(); ++i) {
            auto &[prods, conss] = per_queue[events[i].queue];
            (events[i].produce ? prods : conss)
                .push_back(static_cast<int>(i));
        }
        for (auto &[q, pc] : per_queue) {
            auto &[prods, conss] = pc;
            size_t matched = std::min(prods.size(), conss.size());
            for (size_t k = 0; k < matched; ++k)
                adj[prods[k]].push_back(conss[k]);
            size_t cap = static_cast<size_t>(prog.queue_capacity);
            for (size_t k = 0; k + cap < prods.size(); ++k)
                if (k < conss.size())
                    adj[conss[k]].push_back(prods[k + cap]);
        }

        std::vector<int> cycle = findCycle(adj);
        if (cycle.empty())
            continue;

        std::ostringstream msg;
        msg << "wait-for cycle among communication ops in "
            << orig.block(ob).label() << ":";
        for (int idx : cycle) {
            const Event &e = events[idx];
            msg << " T" << e.thread
                << (e.produce ? " produce(q" : " consume(q") << e.queue
                << ")";
        }
        diags.push_back({.code = MtvCode::DeadlockCycle,
                         .block = ob,
                         .queue = events[cycle.front()].queue,
                         .message = msg.str()});
    }
}

} // namespace gmt
