#ifndef GMT_MTVERIFY_QUEUE_BALANCE_HPP
#define GMT_MTVERIFY_QUEUE_BALANCE_HPP

/**
 * @file
 * Theorem 2 of the MT verifier: queue balance.
 *
 * For every queue, the producing and consuming threads must agree on
 * the number and kind of tokens transferred along every execution
 * path of the original CFG. The check is a forward dataflow analysis
 * over the original CFG computing, per queue, the net in-flight token
 * count at each block boundary; any merge of unequal counts (a path
 * divergence) or a nonzero count at the exit is a balance violation
 * that would leave the synchronization array wedged or leaking.
 *
 * This works on the emitted code alone — it does not trust the
 * communication plan — so it catches emission bugs the fidelity walk
 * could only find if the plan itself were right.
 */

#include <vector>

#include "mtverify/diag.hpp"
#include "mtverify/thread_map.hpp"
#include "runtime/mt_interpreter.hpp"

namespace gmt
{

/** Which threads touch a queue, as observed in the emitted code. */
struct QueueEndpoints
{
    int producer = -1; ///< unique producing thread, or -1 if none
    int consumer = -1; ///< unique consuming thread, or -1 if none
    bool conflict = false; ///< multiple producers/consumers or self-loop
};

/** Observed endpoints of every queue (size prog.num_queues). */
std::vector<QueueEndpoints> queueEndpoints(const MtProgram &prog);

/**
 * Run the balance checks: queue-id range, endpoint roles, per-path
 * token-count dataflow, and per-block token-kind mirroring.
 */
void checkQueueBalance(const Function &orig, const MtProgram &prog,
                       const std::vector<ThreadCodeMap> &maps,
                       std::vector<MtvDiag> &diags);

} // namespace gmt

#endif // GMT_MTVERIFY_QUEUE_BALANCE_HPP
