#ifndef GMT_MTVERIFY_DIAG_HPP
#define GMT_MTVERIFY_DIAG_HPP

/**
 * @file
 * Structured diagnostics for the MT verifier (and for the plan
 * validator in coco/validate.hpp, which shares the code space).
 *
 * Every finding carries a stable machine-readable code, a severity,
 * and coordinates into the *original* function's CFG — thread index,
 * block, position, instruction, queue — so a failure is attributable
 * without re-running anything under a debugger, and so the mutation
 * harness in tests/test_mtverify.cpp can assert that a specific bug
 * class trips a specific code.
 */

#include <string>
#include <vector>

#include "ir/instr.hpp"

namespace gmt
{

/** Severity of a finding. Errors fail verify-mt; warnings only fail
 *  gmt-lint under --werror. */
enum class MtvSeverity { Error, Warning };

/** Stable diagnostic codes, grouped by the check that emits them. */
enum class MtvCode {
    // Structural (per-thread IR verifier findings, re-wrapped).
    Structural,

    // Theorem 1: dependence preservation.
    DepUncovered,        ///< cross-thread PDG arc has an uncovered path
    DepIntraThreadOrder, ///< intra-thread copies out of original order
    ControlUncovered,    ///< control arc target thread lacks the branch
    MissingInstr,        ///< owned original instruction has no copy
    MangledInstr,        ///< copy disagrees with the original's fields
    OrphanInstr,         ///< emitted instruction maps to no valid origin
    InstrWrongBlock,     ///< copy emitted into the wrong block's image
    InterfaceMismatch,   ///< params/live-outs disagree with the original
    DupFlagWrong,        ///< duplicated-branch flag mislabeled (warning)
    BlockMapBroken,      ///< emitted block unmappable to an original

    // Theorem 1, emission fidelity against the communication plan.
    MissingProduce,   ///< plan point lacks its produce
    MissingConsume,   ///< plan point lacks its consume
    MissingSyncToken, ///< plan point lacks its memory-sync token
    ExtraComm,        ///< communication op not justified by any point
    QueueMismatch,    ///< op carries a different queue than assigned
    RegMismatch,      ///< op carries a different register than planned
    CommKindMismatch, ///< data op where a sync op belongs (or reverse)

    // Theorem 2: queue balance (emitted code only, plan-independent).
    BadQueueId,            ///< queue id outside [0, num_queues)
    QueueEndpointConflict, ///< queue produced/consumed by wrong threads
    QueueImbalance,        ///< produce/consume counts diverge on a path
    TokenKindMismatch,     ///< matched ops disagree data vs sync

    // Theorem 3: deadlock freedom.
    DeadlockCycle, ///< wait-for cycle not broken by queue capacity

    // Theorem 4: race freedom (happens-before engine, hb.hpp).
    HbDataRace,      ///< conflicting cross-thread pair never ordered
    HbSyncWrongPath, ///< sync exists but misses a path to the pair
    HbRedundantSync, ///< sync placement orders nothing (warning)

    // Plan validation (coco/validate.cpp).
    PlanInvalidPoint,     ///< placement point outside the CFG
    PlanSourceIrrelevant, ///< Property 2 violated
    PlanUnsafePoint,      ///< Property 3 violated
    PlanUncoveredArc,     ///< cross-thread arc not cut on every path
};

/** Stable kebab-case name of a code (JSON output, test assertions). */
std::string_view mtvCodeName(MtvCode code);

/** "error" / "warning". */
std::string_view mtvSeverityName(MtvSeverity sev);

/**
 * One finding. Coordinates refer to the ORIGINAL function's CFG
 * (block/pos/instr) plus the emitted thread index; any field may be
 * absent (-1 / kNoBlock / kNoInstr / kNoQueue) when not applicable.
 */
struct MtvDiag
{
    MtvCode code = MtvCode::Structural;
    MtvSeverity severity = MtvSeverity::Error;
    int thread = -1;
    BlockId block = kNoBlock;
    int pos = -1;
    InstrId instr = kNoInstr;
    QueueId queue = kNoQueue;
    std::string message;

    bool operator==(const MtvDiag &) const = default;
};

/** "[error dep-uncovered] T1 B3:2 i17 q5: message". */
std::string renderDiag(const MtvDiag &d);

/**
 * Drop exact repeats, preserving first-occurrence order. (The same
 * root cause frequently surfaces once per affected point; one report
 * per distinct finding keeps logs readable.)
 */
void dedupeDiags(std::vector<MtvDiag> &diags);

/**
 * Deterministic order: by code, then block, pos, instr, queue,
 * thread, severity, message. Renders and JSON streams sorted this way
 * are stable across worker counts and discovery order, which keeps
 * fuzz-repro signatures and CI greps reproducible.
 */
void sortDiags(std::vector<MtvDiag> &diags);

/** Number of entries at Error severity. */
int countErrors(const std::vector<MtvDiag> &diags);

} // namespace gmt

#endif // GMT_MTVERIFY_DIAG_HPP
