#ifndef GMT_MTVERIFY_MTVERIFY_HPP
#define GMT_MTVERIFY_MTVERIFY_HPP

/**
 * @file
 * Static verifier for MTCG-generated multi-threaded code.
 *
 * Given the original function, its PDG, the thread partition, the
 * communication plan that drove emission, and the emitted program,
 * verifyMtProgram statically proves three theorems and reports every
 * violation as a structured MtvDiag:
 *
 *  1. Dependence preservation — every register/memory/control PDG arc
 *     is honored by intra-thread program order or by a produce→consume
 *     chain on some queue, checked by mapping emitted instructions
 *     back to their originals (thread_map.hpp) and walking each
 *     emitted block against the plan.
 *  2. Queue balance — produce/consume multiplicities and token kinds
 *     agree between the endpoint threads of every queue along every
 *     path of the original CFG (queue_balance.hpp).
 *  3. Deadlock freedom — the per-block wait-for graph over
 *     communication events has no cycle unbroken by queue capacity
 *     (deadlock.hpp).
 *  4. Race freedom — every pair of conflicting memory operations in
 *     different threads is ordered by a produce->consume sync chain
 *     on every path, proven by the happens-before engine (hb.hpp)
 *     over the emitted code; skippable via check_hb.
 *
 * The plan and queue assignment serve as the *witness*: emission is
 * checked faithful to the plan, and the plan is checked to cover the
 * PDG, so a clean report means the composition is sound. Checks 2 and
 * 3 deliberately re-derive everything from the emitted code alone, so
 * a bug that corrupts plan bookkeeping and emission consistently is
 * still caught.
 */

#include <string>
#include <vector>

#include "mtcg/comm_plan.hpp"
#include "mtverify/diag.hpp"
#include "partition/partition.hpp"
#include "pdg/pdg.hpp"
#include "runtime/mt_interpreter.hpp"

namespace gmt
{

/** Everything the verifier needs. All pointers must be non-null
 *  except queue_of (null means the identity assignment: placement i
 *  uses queue i, which is what MTCG does with max_queues == 0). */
struct MtVerifyInput
{
    const Function *orig = nullptr;
    const Pdg *pdg = nullptr;
    const ThreadPartition *partition = nullptr;
    const CommPlan *plan = nullptr;
    const std::vector<int> *queue_of = nullptr;
    const MtProgram *prog = nullptr;

    /** Run the happens-before race check (theorem 4). On by default;
     *  gmt-lint --no-hb and PipelineOptions::verify_hb gate it. */
    bool check_hb = true;
};

/** Verification outcome: the deduplicated findings. */
struct MtVerifyResult
{
    std::vector<MtvDiag> diags;

    /** Conflicting cross-thread memory pairs the happens-before
     *  engine proved ordered (0 when check_hb was off). */
    int hb_pairs = 0;

    int errors() const { return countErrors(diags); }

    int
    warnings() const
    {
        return static_cast<int>(diags.size()) - errors();
    }

    bool ok() const { return errors() == 0; }

    /** All findings rendered one per line. */
    std::string render() const;
};

/** Run all checks over @p in. */
MtVerifyResult verifyMtProgram(const MtVerifyInput &in);

} // namespace gmt

#endif // GMT_MTVERIFY_MTVERIFY_HPP
