#ifndef GMT_GRAPH_DIGRAPH_HPP
#define GMT_GRAPH_DIGRAPH_HPP

/**
 * @file
 * A lightweight directed graph over dense integer node ids. The PDG, the
 * thread graph, and the condensations used by the partitioners are all
 * instances of this class with side tables for their payloads.
 */

#include <cstdint>
#include <vector>

namespace gmt
{

/** Node handle type for Digraph. */
using NodeId = int32_t;

/** Directed graph with dense NodeId handles and adjacency lists. */
class Digraph
{
  public:
    Digraph() = default;

    /** Create a graph with @p n initial nodes. */
    explicit Digraph(int n) : succs_(n), preds_(n) {}

    /** Add a node and return its id (ids are 0..numNodes()-1). */
    NodeId addNode();

    /**
     * Add the edge u -> v. Parallel edges are collapsed: adding an
     * existing edge is a no-op (dependence graphs are relations).
     */
    void addEdge(NodeId u, NodeId v);

    bool hasEdge(NodeId u, NodeId v) const;

    int numNodes() const { return static_cast<int>(succs_.size()); }
    int numEdges() const { return numEdges_; }

    const std::vector<NodeId> &succs(NodeId u) const { return succs_[u]; }
    const std::vector<NodeId> &preds(NodeId u) const { return preds_[u]; }

    /**
     * Topological order of a DAG (Kahn's algorithm).
     * @return node ids in topological order; empty if the graph is
     *         cyclic (callers use this as a cycle test as well).
     */
    std::vector<NodeId> topoSort() const;

    /** True if the graph contains no directed cycle. */
    bool isAcyclic() const;

    /** Nodes reachable from @p start (including it). */
    std::vector<bool> reachableFrom(NodeId start) const;

  private:
    std::vector<std::vector<NodeId>> succs_;
    std::vector<std::vector<NodeId>> preds_;
    int numEdges_ = 0;
};

} // namespace gmt

#endif // GMT_GRAPH_DIGRAPH_HPP
