#ifndef GMT_GRAPH_SCC_HPP
#define GMT_GRAPH_SCC_HPP

/**
 * @file
 * Strongly connected components (iterative Tarjan) and the condensation
 * DAG. DSWP partitions the PDG's condensation, so both live here.
 */

#include <vector>

#include "graph/digraph.hpp"

namespace gmt
{

/** Result of an SCC decomposition. */
struct SccResult
{
    /** Component index of each node; components are numbered so that
     *  every edge of the condensation goes from a lower-numbered
     *  component to a higher-numbered one (topological order). */
    std::vector<int> component;

    /** Members of each component, in input-node order. */
    std::vector<std::vector<NodeId>> members;

    int numComponents() const { return static_cast<int>(members.size()); }
};

/** Decompose @p g into strongly connected components. */
SccResult computeSccs(const Digraph &g);

/** Build the condensation DAG of @p g given its SCC decomposition. */
Digraph condense(const Digraph &g, const SccResult &sccs);

} // namespace gmt

#endif // GMT_GRAPH_SCC_HPP
