#include "graph/multi_cut.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace gmt
{

MultiCutResult
multiPairMinCut(FlowNetwork &net,
                const std::vector<std::pair<int, int>> &pairs,
                FlowAlgorithm algo, CutSide side, MaxFlow *arena)
{
    MultiCutResult result;
    MaxFlow local(algo);
    MaxFlow &mf = arena ? *arena : local;
    mf.setAlgorithm(algo);
    std::vector<bool> cut_already(net.numArcs(), false);
    for (auto [s, t] : pairs) {
        GMT_ASSERT(s != t, "degenerate memory dependence pair");
        mf.attach(net);
        mf.reset();
        mf.solve(s, t);
        if (!mf.finite()) {
            result.finite = false;
            continue;
        }
        // Sink-side cuts sit as late as possible, which maximizes how
        // often later pairs can reuse arcs already cut.
        for (int arc : mf.minCutArcs(side)) {
            if (!cut_already[arc]) {
                cut_already[arc] = true;
                result.arcs.push_back(arc);
                result.cost += net.arcCapacity(arc);
            }
            // Removing the arc lets this cut help later pairs.
            net.removeArc(arc);
        }
    }
    std::sort(result.arcs.begin(), result.arcs.end());
    return result;
}

MultiCutResult
superPairMinCut(FlowNetwork &net,
                const std::vector<std::pair<int, int>> &pairs,
                FlowAlgorithm algo, MaxFlow *arena, int *super_s_out,
                int *super_t_out)
{
    MultiCutResult result;
    if (pairs.empty())
        return result;

    int super_s = net.addNode();
    int super_t = net.addNode();
    for (auto [s, t] : pairs) {
        net.addArc(super_s, s, kInfCapacity);
        net.addArc(t, super_t, kInfCapacity);
    }
    if (super_s_out)
        *super_s_out = super_s;
    if (super_t_out)
        *super_t_out = super_t;

    MaxFlow local(algo);
    MaxFlow &mf = arena ? *arena : local;
    mf.setAlgorithm(algo);
    mf.attach(net);
    mf.reset();
    mf.solve(super_s, super_t);
    result.finite = mf.finite();
    for (int arc : mf.minCutArcs()) {
        result.arcs.push_back(arc);
        result.cost += net.arcCapacity(arc);
    }
    return result;
}

} // namespace gmt
