#include "graph/multi_cut.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace gmt
{

MultiCutResult
multiPairMinCut(FlowNetwork &net,
                const std::vector<std::pair<int, int>> &pairs,
                FlowAlgorithm algo, CutSide side)
{
    MultiCutResult result;
    std::vector<bool> cut_already(net.numArcs(), false);
    for (auto [s, t] : pairs) {
        GMT_ASSERT(s != t, "degenerate memory dependence pair");
        MaxFlow mf(net, algo);
        mf.reset();
        mf.solve(s, t);
        if (!mf.finite()) {
            result.finite = false;
            continue;
        }
        // Sink-side cuts sit as late as possible, which maximizes how
        // often later pairs can reuse arcs already cut.
        for (int arc : mf.minCutArcs(side)) {
            if (!cut_already[arc]) {
                cut_already[arc] = true;
                result.arcs.push_back(arc);
                result.cost += net.arcCapacity(arc);
            }
            // Removing the arc lets this cut help later pairs.
            net.removeArc(arc);
        }
    }
    std::sort(result.arcs.begin(), result.arcs.end());
    return result;
}

MultiCutResult
superPairMinCut(FlowNetwork &net,
                const std::vector<std::pair<int, int>> &pairs,
                FlowAlgorithm algo)
{
    MultiCutResult result;
    if (pairs.empty())
        return result;

    int super_s = net.addNode();
    int super_t = net.addNode();
    for (auto [s, t] : pairs) {
        net.addArc(super_s, s, kInfCapacity);
        net.addArc(t, super_t, kInfCapacity);
    }

    MaxFlow mf(net, algo);
    mf.reset();
    mf.solve(super_s, super_t);
    result.finite = mf.finite();
    for (int arc : mf.minCutArcs()) {
        result.arcs.push_back(arc);
        result.cost += net.arcCapacity(arc);
    }
    return result;
}

} // namespace gmt
