#include "graph/scc.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace gmt
{

SccResult
computeSccs(const Digraph &g)
{
    const int n = g.numNodes();
    SccResult result;
    result.component.assign(n, -1);

    // Iterative Tarjan. Nodes are pushed on tarjan_stack in discovery
    // order; a component is popped when its root finishes.
    std::vector<int> index(n, -1), lowlink(n, 0);
    std::vector<bool> on_stack(n, false);
    std::vector<NodeId> tarjan_stack;
    int next_index = 0;

    struct Frame
    {
        NodeId node;
        size_t succ_pos;
    };
    std::vector<Frame> call_stack;

    for (NodeId start = 0; start < n; ++start) {
        if (index[start] != -1)
            continue;
        call_stack.push_back({start, 0});
        index[start] = lowlink[start] = next_index++;
        tarjan_stack.push_back(start);
        on_stack[start] = true;

        while (!call_stack.empty()) {
            Frame &frame = call_stack.back();
            NodeId u = frame.node;
            const auto &succs = g.succs(u);
            if (frame.succ_pos < succs.size()) {
                NodeId v = succs[frame.succ_pos++];
                if (index[v] == -1) {
                    index[v] = lowlink[v] = next_index++;
                    tarjan_stack.push_back(v);
                    on_stack[v] = true;
                    call_stack.push_back({v, 0});
                } else if (on_stack[v]) {
                    lowlink[u] = std::min(lowlink[u], index[v]);
                }
            } else {
                if (lowlink[u] == index[u]) {
                    // u is a root: pop its component.
                    std::vector<NodeId> comp;
                    NodeId w;
                    do {
                        w = tarjan_stack.back();
                        tarjan_stack.pop_back();
                        on_stack[w] = false;
                        result.component[w] =
                            static_cast<int>(result.members.size());
                        comp.push_back(w);
                    } while (w != u);
                    std::sort(comp.begin(), comp.end());
                    result.members.push_back(std::move(comp));
                }
                call_stack.pop_back();
                if (!call_stack.empty()) {
                    NodeId parent = call_stack.back().node;
                    lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
                }
            }
        }
    }

    // Tarjan emits components in reverse topological order; renumber so
    // component ids follow topological order of the condensation.
    int num_comps = result.numComponents();
    for (auto &c : result.component)
        c = num_comps - 1 - c;
    std::reverse(result.members.begin(), result.members.end());
    return result;
}

Digraph
condense(const Digraph &g, const SccResult &sccs)
{
    Digraph dag(sccs.numComponents());
    for (NodeId u = 0; u < g.numNodes(); ++u) {
        for (NodeId v : g.succs(u)) {
            int cu = sccs.component[u];
            int cv = sccs.component[v];
            if (cu != cv)
                dag.addEdge(cu, cv);
        }
    }
    GMT_ASSERT(dag.isAcyclic(), "condensation must be a DAG");
    return dag;
}

} // namespace gmt
