#ifndef GMT_GRAPH_MAX_FLOW_HPP
#define GMT_GRAPH_MAX_FLOW_HPP

/**
 * @file
 * Max-flow / min-cut over directed networks with integer capacities.
 *
 * COCO models every communication-placement decision as a min-cut
 * (paper §3.1): a cut arc is a program point where a produce/consume
 * pair is inserted. The paper's implementation uses Edmonds-Karp and
 * notes that preflow-push algorithms are available if compile time
 * matters; we provide Edmonds-Karp (the paper's choice), Dinic, a
 * reverse-BFS-pruned Dinic fast path, and highest-label push-relabel
 * with the gap heuristic and periodic global relabeling behind one
 * interface, compared in bench/micro_mincut.
 *
 * Both FlowNetwork and MaxFlow are arena-friendly: reset(n) rewinds a
 * network without releasing its arc storage, and one MaxFlow instance
 * can be re-attached to successive networks, reusing its traversal
 * scratch. COCO's parallel cut solver keeps one of each per worker
 * and solves thousands of problems without re-allocating
 * (coco/coco.cpp).
 *
 * Incremental solving: COCO's repeat-until loop re-solves networks
 * that differ from a previous solve by a handful of arc costs.
 * resolve() accepts such capacity deltas against the residual state
 * of the previous solve of the same (s, t) pair: increases simply
 * widen the residual and keep pushing; decreases below the flow an
 * arc currently carries are repaired by rerouting through the
 * residual graph and cancelling the remainder by flow decomposition
 * (the surplus walks back to a terminal along reverses of the flow
 * paths that fed it). Because the source-side and sink-side minimum
 * cuts of a network are each unique across all maximum flows, and
 * minCutArcs() always derives the cut from a fresh residual
 * reachability pass, a warm-started resolve reports byte-identical
 * cuts to a from-scratch solve — asserted against a cold Edmonds-Karp
 * run whenever the cross-check is compiled in (debug builds, or any
 * build with GMT_FLOW_CROSSCHECK defined).
 */

#include <cstdint>
#include <vector>

namespace gmt
{

/** Arc capacities / flow values. */
using Capacity = int64_t;

/** Effectively-infinite capacity for arcs that must not be cut. */
inline constexpr Capacity kInfCapacity = int64_t{1} << 50;

/**
 * Which augmenting algorithm MaxFlow::solve uses. DinicPruned levels
 * by reverse BFS from the sink, so blocking-flow search never walks
 * into subgraphs that cannot reach t; PushRelabel is highest-label
 * preflow-push with gap + global-relabel heuristics. All four find
 * the identical min cut (the source-side minimum cut of a network is
 * unique across maximum flows), asserted by the compiled-in
 * cross-check.
 */
enum class FlowAlgorithm { EdmondsKarp, Dinic, PushRelabel, DinicPruned };

/**
 * Which minimum cut to report when several have equal cost: the one
 * closest to the source (earliest program points — better pipelining
 * for register communication, paper §5) or closest to the sink
 * (latest points — maximizes sharing between memory-dependence pairs
 * in the sequential multi-pair heuristic). Both sides are unique
 * across all maximum flows (the min-cut family forms a lattice whose
 * extreme elements are flow-independent), so the reported cut does
 * not depend on which algorithm ran or on warm-start history.
 */
enum class CutSide { Source, Sink };

/**
 * One capacity change against a previously solved network, consumed
 * by MaxFlow::resolve(). @c remove marks the arc deleted (capacity
 * zero and excluded from minCutArcs(), like FlowNetwork::removeArc);
 * a later delta with remove == false resurrects it at @c cap.
 */
struct ArcDelta
{
    int arc = -1;
    Capacity cap = 0;
    bool remove = false;
};

/**
 * A flow network. Arcs are directed and identified by the dense id
 * returned from addArc(); reverse residual arcs are internal.
 *
 * Typical use:
 * @code
 *   FlowNetwork net(n);
 *   int a = net.addArc(u, v, weight);
 *   MaxFlow mf(net);
 *   Capacity value = mf.solve(s, t);
 *   std::vector<int> cut = mf.minCutArcs();   // ids like a
 * @endcode
 */
class FlowNetwork
{
  public:
    explicit FlowNetwork(int num_nodes);

    /**
     * Rewind to an empty network of @p num_nodes nodes, keeping all
     * previously grown storage (no deallocation): the arena-reuse
     * path for solvers that build many graphs in sequence.
     */
    void reset(int num_nodes);

    /** Add a node, returning its id. */
    int addNode();

    /**
     * Add arc u -> v with capacity @p cap.
     * @return the arc id used by minCutArcs() / removeArc().
     */
    int addArc(int u, int v, Capacity cap);

    /**
     * Mark an arc deleted (used by the multi-pair heuristic): zero
     * residual in both directions and excluded from minCutArcs().
     * The original capacity is retained so clearRemoved() +
     * restoreResiduals() can rewind the network to its built state.
     */
    void removeArc(int arc);

    /** Un-delete every removed arc (restoreResiduals() revives them). */
    void clearRemoved();

    /** True if removeArc() deleted @p arc (and no delta revived it). */
    bool arcRemoved(int arc) const { return removed_[arc] != 0; }

    /**
     * Overwrite an arc's capacity without touching residual state.
     * Used by the cold warm-refresh path (COCO's flow-graph diff
     * mode); pair with restoreResiduals() before solving again.
     */
    void setArcCapacity(int arc, Capacity cap);

    /**
     * Restore every arc's residual to its capacity (removed arcs stay
     * at zero): the network is back in its freshly built state.
     */
    void restoreResiduals();

    int numNodes() const { return num_nodes_; }
    int numArcs() const { return static_cast<int>(arcs_.size()) / 2; }

    int arcTail(int arc) const { return tails_[2 * arc]; }
    int arcHead(int arc) const { return arcs_[2 * arc].to; }
    Capacity arcCapacity(int arc) const { return original_cap_[arc]; }

    /** Flow currently routed through @p arc (reverse residual). */
    Capacity arcFlow(int arc) const { return arcs_[2 * arc + 1].residual; }

  private:
    friend class MaxFlow;

    struct Arc
    {
        int to;
        Capacity residual; // remaining capacity in this direction
    };

    // Arcs stored as interleaved forward/backward pairs: external arc
    // id a is internal arcs 2a (forward) and 2a+1 (backward).
    std::vector<Arc> arcs_;
    std::vector<int> tails_;
    std::vector<Capacity> original_cap_;
    std::vector<char> removed_;

    // Adjacency slots [0, num_nodes_) are live; slots beyond (left by
    // a shrinking reset) are dirty and re-cleared on reuse.
    std::vector<std::vector<int>> first_out_; // node -> internal arc ids
    int num_nodes_ = 0;
};

/**
 * Max-flow solver over a FlowNetwork. The network's residual state is
 * mutated by solve(); call reset() to restore original capacities.
 * One instance can serve many networks via attach(), keeping its
 * traversal scratch vectors across solves.
 */
class MaxFlow
{
  public:
    explicit MaxFlow(FlowNetwork &net,
                     FlowAlgorithm algo = FlowAlgorithm::EdmondsKarp);

    /** Detached solver for arena reuse; attach() before solve(). */
    explicit MaxFlow(FlowAlgorithm algo = FlowAlgorithm::EdmondsKarp);

    /** Rebind to another network (and optionally another algorithm). */
    void attach(FlowNetwork &net);

    /**
     * Rebind to a network whose residual state already encodes a
     * completed max-flow of value @p flow for (@p s, @p t) — e.g. a
     * network retained by COCO's per-worker arena between iterations.
     * resolve() may then be called directly, without a fresh solve().
     */
    void attachSolved(FlowNetwork &net, int s, int t, Capacity flow);

    void setAlgorithm(FlowAlgorithm algo) { algo_ = algo; }

    /** Work counters, accumulated across solve() calls. */
    struct Stats
    {
        /** Augmentations (EK/Dinic) or saturating pushes (preflow). */
        uint64_t augmenting_paths = 0;

        /** Exact-distance global relabelings (PushRelabel only). */
        uint64_t global_relabels = 0;

        /** Gap-heuristic firings (PushRelabel only). */
        uint64_t gap_relabels = 0;

        /** Warm-started resolve() calls. */
        uint64_t warm_resolves = 0;
    };

    /** Compute the max flow from @p s to @p t. */
    Capacity solve(int s, int t);

    /**
     * Warm-started re-solve: apply @p deltas to the previously solved
     * network (same terminals as the last solve()/attachSolved()) and
     * bring the flow back to maximum without starting from zero.
     * Capacity increases keep the whole residual; decreases below the
     * arc's current flow are repaired by rerouting through the
     * residual graph and flow decomposition of the remainder.
     * @return the new max-flow value.
     */
    Capacity resolve(const std::vector<ArcDelta> &deltas);

    /**
     * Arc ids of a minimum s-t cut (callable after solve). With
     * CutSide::Source: arcs leaving the set reachable from s in the
     * residual graph; with CutSide::Sink: arcs entering the set that
     * reaches t in the residual graph. Always derived from a fresh
     * reachability pass over the current residual, so the reported
     * cut is independent of solve history (warm or cold).
     */
    std::vector<int> minCutArcs(CutSide side = CutSide::Source) const;

    /** True if the last solve found a cut of finite value. */
    bool finite() const { return last_flow_ < kInfCapacity / 2; }

    /** Max-flow value of the last solve()/resolve(). */
    Capacity lastFlow() const { return last_flow_; }

    /** Restore all residual capacities to the original capacities. */
    void reset();

    const Stats &stats() const { return stats_; }

  private:
    Capacity solveEdmondsKarp(int s, int t);
    Capacity solveDinic(int s, int t, bool reverse_levels);
    Capacity solvePushRelabel(int s, int t);

    /** Dispatch on algo_ over the current residual state. */
    Capacity runAlgorithm(int s, int t);

    /**
     * Push at most @p limit units from @p from to @p to along
     * residual paths (shortest-path augmentations). Returns the
     * amount actually pushed. The repair primitive of resolve().
     */
    Capacity augmentLimited(int from, int to, Capacity limit);

    /** Net flow out of @p s under the current residual state. */
    Capacity currentFlowValue(int s) const;

    /** Exact-distance heights for push-relabel (reverse BFS). */
    void globalRelabel(int s, int t);

    /** Nodes reachable from s in the residual graph. */
    std::vector<bool> residualReachable(int s) const;

    /** Nodes that can reach t in the residual graph. */
    std::vector<bool> residualReaching(int t) const;

#if !defined(NDEBUG) || defined(GMT_FLOW_CROSSCHECK)
    /** Differential gate: cold Edmonds-Karp must agree exactly. */
    void crosscheckAgainstReference(const char *what);
#endif

    FlowNetwork *net_;
    FlowAlgorithm algo_;
    int last_s_ = -1;
    int last_t_ = -1;
    Capacity last_flow_ = 0;
    Stats stats_;

    // Traversal scratch, reused across solves (and, via attach(),
    // across networks).
    std::vector<int> level_, iter_, pred_arc_, path_;
    std::vector<Capacity> excess_;
    std::vector<int> height_;
    std::vector<int> height_count_;        // push-relabel gap heuristic
    std::vector<std::vector<int>> bucket_; // active nodes by height
};

} // namespace gmt

#endif // GMT_GRAPH_MAX_FLOW_HPP
