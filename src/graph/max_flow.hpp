#ifndef GMT_GRAPH_MAX_FLOW_HPP
#define GMT_GRAPH_MAX_FLOW_HPP

/**
 * @file
 * Max-flow / min-cut over directed networks with integer capacities.
 *
 * COCO models every communication-placement decision as a min-cut
 * (paper §3.1): a cut arc is a program point where a produce/consume
 * pair is inserted. The paper's implementation uses Edmonds-Karp and
 * notes that preflow-push algorithms are available if compile time
 * matters; we provide Edmonds-Karp (the paper's choice), Dinic, a
 * reverse-BFS-pruned Dinic fast path, and FIFO push-relabel behind
 * one interface, compared in bench/micro_mincut.
 *
 * Both FlowNetwork and MaxFlow are arena-friendly: reset(n) rewinds a
 * network without releasing its arc storage, and one MaxFlow instance
 * can be re-attached to successive networks, reusing its traversal
 * scratch. COCO's parallel cut solver keeps one of each per worker
 * and solves thousands of problems without re-allocating
 * (coco/coco.cpp).
 */

#include <cstdint>
#include <vector>

namespace gmt
{

/** Arc capacities / flow values. */
using Capacity = int64_t;

/** Effectively-infinite capacity for arcs that must not be cut. */
inline constexpr Capacity kInfCapacity = int64_t{1} << 50;

/**
 * Which augmenting algorithm MaxFlow::solve uses. DinicPruned levels
 * by reverse BFS from the sink, so blocking-flow search never walks
 * into subgraphs that cannot reach t; its min cut is identical to the
 * other algorithms' (the source-side minimum cut of a network is
 * unique across maximum flows), asserted in debug builds.
 */
enum class FlowAlgorithm { EdmondsKarp, Dinic, PushRelabel, DinicPruned };

/**
 * Which minimum cut to report when several have equal cost: the one
 * closest to the source (earliest program points — better pipelining
 * for register communication, paper §5) or closest to the sink
 * (latest points — maximizes sharing between memory-dependence pairs
 * in the sequential multi-pair heuristic).
 */
enum class CutSide { Source, Sink };

/**
 * A flow network. Arcs are directed and identified by the dense id
 * returned from addArc(); reverse residual arcs are internal.
 *
 * Typical use:
 * @code
 *   FlowNetwork net(n);
 *   int a = net.addArc(u, v, weight);
 *   MaxFlow mf(net);
 *   Capacity value = mf.solve(s, t);
 *   std::vector<int> cut = mf.minCutArcs();   // ids like a
 * @endcode
 */
class FlowNetwork
{
  public:
    explicit FlowNetwork(int num_nodes);

    /**
     * Rewind to an empty network of @p num_nodes nodes, keeping all
     * previously grown storage (no deallocation): the arena-reuse
     * path for solvers that build many graphs in sequence.
     */
    void reset(int num_nodes);

    /** Add a node, returning its id. */
    int addNode();

    /**
     * Add arc u -> v with capacity @p cap.
     * @return the arc id used by minCutArcs() / removeArc().
     */
    int addArc(int u, int v, Capacity cap);

    /** Zero an arc's capacity (used by the multi-pair heuristic). */
    void removeArc(int arc);

    int numNodes() const { return num_nodes_; }
    int numArcs() const { return static_cast<int>(arcs_.size()) / 2; }

    int arcTail(int arc) const { return tails_[2 * arc]; }
    int arcHead(int arc) const { return arcs_[2 * arc].to; }
    Capacity arcCapacity(int arc) const { return original_cap_[arc]; }

  private:
    friend class MaxFlow;

    struct Arc
    {
        int to;
        Capacity residual; // remaining capacity in this direction
    };

    // Arcs stored as interleaved forward/backward pairs: external arc
    // id a is internal arcs 2a (forward) and 2a+1 (backward).
    std::vector<Arc> arcs_;
    std::vector<int> tails_;
    std::vector<Capacity> original_cap_;

    // Adjacency slots [0, num_nodes_) are live; slots beyond (left by
    // a shrinking reset) are dirty and re-cleared on reuse.
    std::vector<std::vector<int>> first_out_; // node -> internal arc ids
    int num_nodes_ = 0;
};

/**
 * Max-flow solver over a FlowNetwork. The network's residual state is
 * mutated by solve(); call reset() to restore original capacities.
 * One instance can serve many networks via attach(), keeping its
 * traversal scratch vectors across solves.
 */
class MaxFlow
{
  public:
    explicit MaxFlow(FlowNetwork &net,
                     FlowAlgorithm algo = FlowAlgorithm::EdmondsKarp);

    /** Detached solver for arena reuse; attach() before solve(). */
    explicit MaxFlow(FlowAlgorithm algo = FlowAlgorithm::EdmondsKarp);

    /** Rebind to another network (and optionally another algorithm). */
    void attach(FlowNetwork &net);
    void setAlgorithm(FlowAlgorithm algo) { algo_ = algo; }

    /** Work counters, accumulated across solve() calls. */
    struct Stats
    {
        /** Augmentations (EK/Dinic) or saturating pushes (preflow). */
        uint64_t augmenting_paths = 0;
    };

    /** Compute the max flow from @p s to @p t. */
    Capacity solve(int s, int t);

    /**
     * Arc ids of a minimum s-t cut (callable after solve). With
     * CutSide::Source: arcs leaving the set reachable from s in the
     * residual graph; with CutSide::Sink: arcs entering the set that
     * reaches t in the residual graph.
     */
    std::vector<int> minCutArcs(CutSide side = CutSide::Source) const;

    /** True if the last solve found a cut of finite value. */
    bool finite() const { return last_flow_ < kInfCapacity / 2; }

    /** Restore all residual capacities to the original capacities. */
    void reset();

    const Stats &stats() const { return stats_; }

  private:
    Capacity solveEdmondsKarp(int s, int t);
    Capacity solveDinic(int s, int t, bool reverse_levels);
    Capacity solvePushRelabel(int s, int t);

    /** Nodes reachable from s in the residual graph. */
    std::vector<bool> residualReachable(int s) const;

    /** Nodes that can reach t in the residual graph. */
    std::vector<bool> residualReaching(int t) const;

    FlowNetwork *net_;
    FlowAlgorithm algo_;
    int last_s_ = -1;
    int last_t_ = -1;
    Capacity last_flow_ = 0;
    Stats stats_;

    // Traversal scratch, reused across solves (and, via attach(),
    // across networks).
    std::vector<int> level_, iter_, pred_arc_, path_;
    std::vector<Capacity> excess_;
    std::vector<int> height_;
};

} // namespace gmt

#endif // GMT_GRAPH_MAX_FLOW_HPP
