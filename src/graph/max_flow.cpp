#include "graph/max_flow.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>

#include "support/error.hpp"

namespace gmt
{

FlowNetwork::FlowNetwork(int num_nodes)
{
    reset(num_nodes);
}

void
FlowNetwork::reset(int num_nodes)
{
    GMT_ASSERT(num_nodes >= 0);
    // Clear exactly the slots the new epoch starts with; stale slots
    // beyond num_nodes are re-cleared by addNode() on reuse. Inner
    // vectors keep their capacity — that is the arena win.
    int have = static_cast<int>(first_out_.size());
    for (int i = 0; i < num_nodes && i < have; ++i)
        first_out_[i].clear();
    if (have < num_nodes)
        first_out_.resize(num_nodes);
    num_nodes_ = num_nodes;
    arcs_.clear();
    tails_.clear();
    original_cap_.clear();
}

int
FlowNetwork::addNode()
{
    if (num_nodes_ < static_cast<int>(first_out_.size()))
        first_out_[num_nodes_].clear(); // stale slot from a reset
    else
        first_out_.emplace_back();
    return num_nodes_++;
}

int
FlowNetwork::addArc(int u, int v, Capacity cap)
{
    GMT_ASSERT(u >= 0 && u < numNodes() && v >= 0 && v < numNodes());
    GMT_ASSERT(cap >= 0);
    int fwd = static_cast<int>(arcs_.size());
    arcs_.push_back({v, cap});
    arcs_.push_back({u, 0});
    tails_.push_back(u);
    tails_.push_back(v);
    original_cap_.push_back(cap);
    first_out_[u].push_back(fwd);
    first_out_[v].push_back(fwd + 1);
    return fwd / 2;
}

void
FlowNetwork::removeArc(int arc)
{
    GMT_ASSERT(arc >= 0 && arc < numArcs());
    // -1 marks deletion; minCutArcs() must still report arcs whose
    // original capacity is zero (a zero profile weight does not make
    // a program point impossible, only free to cut).
    original_cap_[arc] = -1;
    arcs_[2 * arc].residual = 0;
    arcs_[2 * arc + 1].residual = 0;
}

MaxFlow::MaxFlow(FlowNetwork &net, FlowAlgorithm algo)
    : net_(&net), algo_(algo)
{
}

MaxFlow::MaxFlow(FlowAlgorithm algo) : net_(nullptr), algo_(algo) {}

void
MaxFlow::attach(FlowNetwork &net)
{
    net_ = &net;
    last_s_ = -1;
    last_t_ = -1;
    last_flow_ = 0;
}

void
MaxFlow::reset()
{
    for (int a = 0; a < net_->numArcs(); ++a) {
        // Deleted arcs (capacity -1) stay at zero residual.
        net_->arcs_[2 * a].residual =
            std::max<Capacity>(net_->original_cap_[a], 0);
        net_->arcs_[2 * a + 1].residual = 0;
    }
    last_s_ = -1;
    last_flow_ = 0;
}

Capacity
MaxFlow::solve(int s, int t)
{
    GMT_ASSERT(net_, "solve() on a detached MaxFlow");
    GMT_ASSERT(s != t);
    last_s_ = s;
    last_t_ = t;
    switch (algo_) {
      case FlowAlgorithm::EdmondsKarp:
        last_flow_ = solveEdmondsKarp(s, t);
        break;
      case FlowAlgorithm::Dinic:
        last_flow_ = solveDinic(s, t, /*reverse_levels=*/false);
        break;
      case FlowAlgorithm::DinicPruned:
        last_flow_ = solveDinic(s, t, /*reverse_levels=*/true);
        break;
      case FlowAlgorithm::PushRelabel:
        last_flow_ = solvePushRelabel(s, t);
        break;
    }
#ifndef NDEBUG
    // Debug-build differential for the fast path: the source-side
    // minimum cut of a network is unique across maximum flows, so the
    // pruned solver must report exactly the reference algorithm's cut.
    if (algo_ == FlowAlgorithm::DinicPruned) {
        FlowNetwork copy = *net_;
        MaxFlow ref(copy, FlowAlgorithm::EdmondsKarp);
        ref.reset();
        Capacity ref_flow = ref.solve(s, t);
        GMT_ASSERT(ref_flow == last_flow_,
                   "DinicPruned flow diverged from Edmonds-Karp");
        GMT_ASSERT(ref.minCutArcs() == minCutArcs(),
                   "DinicPruned cut diverged from Edmonds-Karp");
    }
#endif
    return last_flow_;
}

Capacity
MaxFlow::solveEdmondsKarp(int s, int t)
{
    auto &arcs = net_->arcs_;
    Capacity total = 0;
    pred_arc_.assign(net_->numNodes(), -1);
    while (true) {
        // BFS for a shortest augmenting path.
        std::fill(pred_arc_.begin(), pred_arc_.end(), -1);
        pred_arc_[s] = -2;
        std::deque<int> queue{s};
        while (!queue.empty() && pred_arc_[t] == -1) {
            int u = queue.front();
            queue.pop_front();
            for (int a : net_->first_out_[u]) {
                int v = arcs[a].to;
                if (pred_arc_[v] == -1 && arcs[a].residual > 0) {
                    pred_arc_[v] = a;
                    queue.push_back(v);
                }
            }
        }
        if (pred_arc_[t] == -1)
            break;
        // Find the bottleneck and augment.
        Capacity bottleneck = std::numeric_limits<Capacity>::max();
        for (int v = t; v != s;) {
            int a = pred_arc_[v];
            bottleneck = std::min(bottleneck, arcs[a].residual);
            v = arcs[a ^ 1].to;
        }
        for (int v = t; v != s;) {
            int a = pred_arc_[v];
            arcs[a].residual -= bottleneck;
            arcs[a ^ 1].residual += bottleneck;
            v = arcs[a ^ 1].to;
        }
        total += bottleneck;
        ++stats_.augmenting_paths;
    }
    return total;
}

Capacity
MaxFlow::solveDinic(int s, int t, bool reverse_levels)
{
    auto &arcs = net_->arcs_;
    const int n = net_->numNodes();
    level_.assign(n, -1);
    iter_.assign(n, 0);

    // Forward levels: BFS distance from s over residual arcs; an
    // admissible step increases the level. Reverse levels (the pruned
    // fast path): BFS distance *to* t over residual arcs, walked
    // backwards from t; an admissible step decreases the level, and
    // any node that cannot reach t never gets a level at all — the
    // blocking-flow DFS cannot wander into dead subgraphs the plain
    // forward levelling still explores and retreats from.
    auto bfs = [&]() -> bool {
        std::fill(level_.begin(), level_.end(), -1);
        if (reverse_levels) {
            level_[t] = 0;
            std::deque<int> queue{t};
            while (!queue.empty()) {
                int x = queue.front();
                queue.pop_front();
                // Arc y -> x has residual iff partner b^1 of the
                // internal arc b = x -> y carries residual capacity.
                for (int b : net_->first_out_[x]) {
                    int y = arcs[b].to;
                    if (level_[y] == -1 && arcs[b ^ 1].residual > 0) {
                        level_[y] = level_[x] + 1;
                        queue.push_back(y);
                    }
                }
            }
            return level_[s] != -1;
        }
        level_[s] = 0;
        std::deque<int> queue{s};
        while (!queue.empty()) {
            int u = queue.front();
            queue.pop_front();
            for (int a : net_->first_out_[u]) {
                int v = arcs[a].to;
                if (level_[v] == -1 && arcs[a].residual > 0) {
                    level_[v] = level_[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        return level_[t] != -1;
    };

    auto admissible = [&](int u, int v) {
        return reverse_levels ? level_[u] == level_[v] + 1 &&
                                    level_[u] != -1 && level_[v] != -1
                              : level_[v] == level_[u] + 1;
    };

    // Iterative blocking-flow DFS.
    Capacity total = 0;
    path_.clear(); // internal arc ids along current path
    while (bfs()) {
        std::fill(iter_.begin(), iter_.end(), 0);
        path_.clear();
        int u = s;
        while (true) {
            if (u == t) {
                Capacity bottleneck =
                    std::numeric_limits<Capacity>::max();
                for (int a : path_)
                    bottleneck =
                        std::min(bottleneck, arcs[a].residual);
                for (int a : path_) {
                    arcs[a].residual -= bottleneck;
                    arcs[a ^ 1].residual += bottleneck;
                }
                total += bottleneck;
                ++stats_.augmenting_paths;
                // Retreat to the first saturated arc on the path.
                size_t keep = 0;
                while (keep < path_.size() &&
                       arcs[path_[keep]].residual > 0) {
                    ++keep;
                }
                path_.resize(keep);
                u = path_.empty() ? s : arcs[path_.back()].to;
                continue;
            }
            bool advanced = false;
            auto &out = net_->first_out_[u];
            for (int &i = iter_[u]; i < static_cast<int>(out.size());
                 ++i) {
                int a = out[i];
                int v = arcs[a].to;
                if (arcs[a].residual > 0 && admissible(u, v)) {
                    path_.push_back(a);
                    u = v;
                    advanced = true;
                    break;
                }
            }
            if (!advanced) {
                level_[u] = reverse_levels ? -2 : -1; // dead end
                if (path_.empty())
                    break;
                path_.pop_back();
                u = path_.empty() ? s : arcs[path_.back()].to;
            }
        }
    }
    return total;
}

Capacity
MaxFlow::solvePushRelabel(int s, int t)
{
    auto &arcs = net_->arcs_;
    const int n = net_->numNodes();
    excess_.assign(n, 0);
    height_.assign(n, 0);
    iter_.assign(n, 0);
    std::deque<int> active;

    height_[s] = n;
    for (int a : net_->first_out_[s]) {
        if ((a & 1) == 0 && arcs[a].residual > 0) {
            Capacity d = arcs[a].residual;
            int v = arcs[a].to;
            arcs[a].residual = 0;
            arcs[a ^ 1].residual += d;
            excess_[v] += d;
            ++stats_.augmenting_paths;
            if (v != t && v != s && excess_[v] == d)
                active.push_back(v);
        }
    }

    while (!active.empty()) {
        int u = active.front();
        active.pop_front();
        while (excess_[u] > 0) {
            auto &out = net_->first_out_[u];
            if (iter_[u] == static_cast<int>(out.size())) {
                // Relabel: height = 1 + min over admissible arcs.
                int min_h = 2 * n;
                for (int a : out) {
                    if (arcs[a].residual > 0)
                        min_h = std::min(min_h, height_[arcs[a].to]);
                }
                // An active node always has a residual out-arc (the
                // reverse of an arc that delivered its excess), and
                // heights are bounded by 2n-1 in push-relabel.
                GMT_ASSERT(min_h < 2 * n,
                           "push-relabel height overflow");
                height_[u] = min_h + 1;
                iter_[u] = 0;
                continue;
            }
            int a = out[iter_[u]];
            int v = arcs[a].to;
            if (arcs[a].residual > 0 && height_[u] == height_[v] + 1) {
                Capacity d = std::min(excess_[u], arcs[a].residual);
                arcs[a].residual -= d;
                arcs[a ^ 1].residual += d;
                excess_[u] -= d;
                ++stats_.augmenting_paths;
                bool was_inactive = (excess_[v] == 0);
                excess_[v] += d;
                if (was_inactive && v != s && v != t)
                    active.push_back(v);
            } else {
                ++iter_[u];
            }
        }
    }
    return excess_[t];
}

std::vector<bool>
MaxFlow::residualReachable(int s) const
{
    std::vector<bool> seen(net_->numNodes(), false);
    std::vector<int> stack{s};
    seen[s] = true;
    while (!stack.empty()) {
        int u = stack.back();
        stack.pop_back();
        for (int a : net_->first_out_[u]) {
            int v = net_->arcs_[a].to;
            if (!seen[v] && net_->arcs_[a].residual > 0) {
                seen[v] = true;
                stack.push_back(v);
            }
        }
    }
    return seen;
}

std::vector<bool>
MaxFlow::residualReaching(int t) const
{
    // Reverse traversal: x can step to y (against an arc y -> x) iff
    // the arc y -> x has residual capacity; for internal arc b = x->y,
    // its partner b^1 is y -> x.
    std::vector<bool> seen(net_->numNodes(), false);
    std::vector<int> stack{t};
    seen[t] = true;
    while (!stack.empty()) {
        int x = stack.back();
        stack.pop_back();
        for (int b : net_->first_out_[x]) {
            int y = net_->arcs_[b].to;
            if (!seen[y] && net_->arcs_[b ^ 1].residual > 0) {
                seen[y] = true;
                stack.push_back(y);
            }
        }
    }
    return seen;
}

std::vector<int>
MaxFlow::minCutArcs(CutSide side) const
{
    GMT_ASSERT(last_s_ >= 0, "solve() must run before minCutArcs()");
    // Source side: nodes reachable from s in the residual graph.
    // Sink side: complement of the nodes reaching t — both are valid
    // minimum cuts; they differ only in which of several equal-cost
    // cuts is reported.
    std::vector<bool> source_side;
    if (side == CutSide::Source) {
        source_side = residualReachable(last_s_);
    } else {
        source_side = residualReaching(last_t_);
        source_side.flip();
    }
    std::vector<int> cut;
    for (int a = 0; a < net_->numArcs(); ++a) {
        if (net_->original_cap_[a] < 0)
            continue; // deleted by removeArc
        if (source_side[net_->arcTail(a)] &&
            !source_side[net_->arcHead(a)])
            cut.push_back(a);
    }
    return cut;
}

} // namespace gmt
