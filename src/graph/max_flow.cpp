#include "graph/max_flow.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>

#include "support/error.hpp"

namespace gmt
{

FlowNetwork::FlowNetwork(int num_nodes)
{
    reset(num_nodes);
}

void
FlowNetwork::reset(int num_nodes)
{
    GMT_ASSERT(num_nodes >= 0);
    // Clear exactly the slots the new epoch starts with; stale slots
    // beyond num_nodes are re-cleared by addNode() on reuse. Inner
    // vectors keep their capacity — that is the arena win.
    int have = static_cast<int>(first_out_.size());
    for (int i = 0; i < num_nodes && i < have; ++i)
        first_out_[i].clear();
    if (have < num_nodes)
        first_out_.resize(num_nodes);
    num_nodes_ = num_nodes;
    arcs_.clear();
    tails_.clear();
    original_cap_.clear();
    removed_.clear();
}

int
FlowNetwork::addNode()
{
    if (num_nodes_ < static_cast<int>(first_out_.size()))
        first_out_[num_nodes_].clear(); // stale slot from a reset
    else
        first_out_.emplace_back();
    return num_nodes_++;
}

int
FlowNetwork::addArc(int u, int v, Capacity cap)
{
    GMT_ASSERT(u >= 0 && u < numNodes() && v >= 0 && v < numNodes());
    GMT_ASSERT(cap >= 0);
    int fwd = static_cast<int>(arcs_.size());
    arcs_.push_back({v, cap});
    arcs_.push_back({u, 0});
    tails_.push_back(u);
    tails_.push_back(v);
    original_cap_.push_back(cap);
    removed_.push_back(0);
    first_out_[u].push_back(fwd);
    first_out_[v].push_back(fwd + 1);
    return fwd / 2;
}

void
FlowNetwork::removeArc(int arc)
{
    GMT_ASSERT(arc >= 0 && arc < numArcs());
    // The original capacity survives removal so restoreResiduals()
    // after clearRemoved() can rewind the network to its built state;
    // minCutArcs() must still report arcs whose original capacity is
    // zero (a zero profile weight does not make a program point
    // impossible, only free to cut), so removal is a separate flag.
    removed_[arc] = 1;
    arcs_[2 * arc].residual = 0;
    arcs_[2 * arc + 1].residual = 0;
}

void
FlowNetwork::clearRemoved()
{
    std::fill(removed_.begin(), removed_.end(), 0);
}

void
FlowNetwork::setArcCapacity(int arc, Capacity cap)
{
    GMT_ASSERT(arc >= 0 && arc < numArcs());
    GMT_ASSERT(cap >= 0);
    original_cap_[arc] = cap;
}

void
FlowNetwork::restoreResiduals()
{
    for (int a = 0; a < numArcs(); ++a) {
        arcs_[2 * a].residual = removed_[a] ? 0 : original_cap_[a];
        arcs_[2 * a + 1].residual = 0;
    }
}

MaxFlow::MaxFlow(FlowNetwork &net, FlowAlgorithm algo)
    : net_(&net), algo_(algo)
{
}

MaxFlow::MaxFlow(FlowAlgorithm algo) : net_(nullptr), algo_(algo) {}

void
MaxFlow::attach(FlowNetwork &net)
{
    net_ = &net;
    last_s_ = -1;
    last_t_ = -1;
    last_flow_ = 0;
}

void
MaxFlow::attachSolved(FlowNetwork &net, int s, int t, Capacity flow)
{
    GMT_ASSERT(s != t);
    net_ = &net;
    last_s_ = s;
    last_t_ = t;
    last_flow_ = flow;
}

void
MaxFlow::reset()
{
    net_->restoreResiduals();
    last_s_ = -1;
    last_flow_ = 0;
}

Capacity
MaxFlow::runAlgorithm(int s, int t)
{
    switch (algo_) {
      case FlowAlgorithm::EdmondsKarp:
        return solveEdmondsKarp(s, t);
      case FlowAlgorithm::Dinic:
        return solveDinic(s, t, /*reverse_levels=*/false);
      case FlowAlgorithm::DinicPruned:
        return solveDinic(s, t, /*reverse_levels=*/true);
      case FlowAlgorithm::PushRelabel:
        return solvePushRelabel(s, t);
    }
    panic("unknown flow algorithm");
}

Capacity
MaxFlow::solve(int s, int t)
{
    GMT_ASSERT(net_, "solve() on a detached MaxFlow");
    GMT_ASSERT(s != t);
    last_s_ = s;
    last_t_ = t;
    runAlgorithm(s, t);
    // Derive the value from the residual state rather than the
    // algorithm's push count: identical across cold solves, repeated
    // solves on a dirty residual, and warm resolves.
    last_flow_ = currentFlowValue(s);
#if !defined(NDEBUG) || defined(GMT_FLOW_CROSSCHECK)
    // Differential for every fast path: the source-side (and
    // sink-side) minimum cut of a network is unique across maximum
    // flows, so any correct solver must report exactly the reference
    // algorithm's cut.
    if (algo_ != FlowAlgorithm::EdmondsKarp)
        crosscheckAgainstReference("solve");
#endif
    return last_flow_;
}

Capacity
MaxFlow::resolve(const std::vector<ArcDelta> &deltas)
{
    GMT_ASSERT(net_, "resolve() on a detached MaxFlow");
    GMT_ASSERT(last_s_ >= 0,
               "resolve() requires a previously solved network");
    const int s = last_s_;
    const int t = last_t_;
    ++stats_.warm_resolves;
    auto &arcs = net_->arcs_;
    for (const ArcDelta &d : deltas) {
        GMT_ASSERT(d.arc >= 0 && d.arc < net_->numArcs());
        Capacity cap = d.remove ? 0 : d.cap;
        GMT_ASSERT(cap >= 0);
        if (d.remove) {
            net_->removed_[d.arc] = 1;
        } else {
            net_->removed_[d.arc] = 0;
            net_->original_cap_[d.arc] = d.cap;
        }
        int fwd = 2 * d.arc;
        Capacity flow = arcs[fwd + 1].residual;
        if (cap >= flow) {
            // Widened (or unchanged): keep the carried flow, grow the
            // forward residual. The old flow stays feasible and the
            // re-augmentation below picks up any new headroom.
            arcs[fwd].residual = cap - flow;
            continue;
        }
        // Shrunk below the carried flow: clamp the arc to its new
        // capacity. That leaves a conservation surplus at the tail
        // and an equal deficit at the head, repaired by residual
        // pushes (path pushes only disturb balance at their
        // endpoints).
        Capacity surplus = flow - cap;
        arcs[fwd].residual = 0;
        arcs[fwd + 1].residual = cap;
        int u = net_->tails_[fwd];
        int v = arcs[fwd].to;
        // Reroute tail -> head through the rest of the residual graph
        // first. This also cancels flow cycles through the arc (a
        // cycle's remainder is exactly a residual u -> v path), which
        // the terminal-bound decomposition walks below cannot reach;
        // once these paths are saturated, every remaining surplus
        // unit lies on a terminal-to-terminal flow path.
        Capacity rerouted = augmentLimited(u, v, surplus);
        Capacity remainder = surplus - rerouted;
        if (remainder == 0)
            continue;
        // Cancel the remainder by flow decomposition: walk the
        // surplus back along the flow that fed the tail and the
        // deficit forward along the flow the head used to feed (both
        // are residual paths, reverses of flow paths). Terminals are
        // conservation-exempt, so a terminal endpoint needs no walk;
        // flow originating at t or terminating at s (legal in
        // arbitrary networks) is covered by the opposite-terminal
        // fallback.
        if (u != s && u != t) {
            Capacity drained = augmentLimited(u, s, remainder);
            if (drained < remainder)
                drained += augmentLimited(u, t, remainder - drained);
            GMT_ASSERT(drained == remainder,
                       "incremental repair: surplus drain failed");
        }
        if (v != s && v != t) {
            Capacity filled = augmentLimited(t, v, remainder);
            if (filled < remainder)
                filled += augmentLimited(s, v, remainder - filled);
            GMT_ASSERT(filled == remainder,
                       "incremental repair: deficit refill failed");
        }
    }
    // The repaired flow is feasible; push the rest of the way to max
    // with the configured algorithm.
    runAlgorithm(s, t);
    last_flow_ = currentFlowValue(s);
#if !defined(NDEBUG) || defined(GMT_FLOW_CROSSCHECK)
    crosscheckAgainstReference("resolve");
#endif
    return last_flow_;
}

Capacity
MaxFlow::solveEdmondsKarp(int s, int t)
{
    auto &arcs = net_->arcs_;
    Capacity total = 0;
    pred_arc_.assign(net_->numNodes(), -1);
    while (true) {
        // BFS for a shortest augmenting path.
        std::fill(pred_arc_.begin(), pred_arc_.end(), -1);
        pred_arc_[s] = -2;
        std::deque<int> queue{s};
        while (!queue.empty() && pred_arc_[t] == -1) {
            int u = queue.front();
            queue.pop_front();
            for (int a : net_->first_out_[u]) {
                int v = arcs[a].to;
                if (pred_arc_[v] == -1 && arcs[a].residual > 0) {
                    pred_arc_[v] = a;
                    queue.push_back(v);
                }
            }
        }
        if (pred_arc_[t] == -1)
            break;
        // Find the bottleneck and augment.
        Capacity bottleneck = std::numeric_limits<Capacity>::max();
        for (int v = t; v != s;) {
            int a = pred_arc_[v];
            bottleneck = std::min(bottleneck, arcs[a].residual);
            v = arcs[a ^ 1].to;
        }
        for (int v = t; v != s;) {
            int a = pred_arc_[v];
            arcs[a].residual -= bottleneck;
            arcs[a ^ 1].residual += bottleneck;
            v = arcs[a ^ 1].to;
        }
        total += bottleneck;
        ++stats_.augmenting_paths;
    }
    return total;
}

Capacity
MaxFlow::augmentLimited(int from, int to, Capacity limit)
{
    if (limit <= 0 || from == to)
        return 0;
    auto &arcs = net_->arcs_;
    Capacity pushed = 0;
    pred_arc_.assign(net_->numNodes(), -1);
    while (pushed < limit) {
        std::fill(pred_arc_.begin(), pred_arc_.end(), -1);
        pred_arc_[from] = -2;
        std::deque<int> queue{from};
        while (!queue.empty() && pred_arc_[to] == -1) {
            int u = queue.front();
            queue.pop_front();
            for (int a : net_->first_out_[u]) {
                int v = arcs[a].to;
                if (pred_arc_[v] == -1 && arcs[a].residual > 0) {
                    pred_arc_[v] = a;
                    queue.push_back(v);
                }
            }
        }
        if (pred_arc_[to] == -1)
            break;
        Capacity bottleneck = limit - pushed;
        for (int v = to; v != from;) {
            int a = pred_arc_[v];
            bottleneck = std::min(bottleneck, arcs[a].residual);
            v = arcs[a ^ 1].to;
        }
        for (int v = to; v != from;) {
            int a = pred_arc_[v];
            arcs[a].residual -= bottleneck;
            arcs[a ^ 1].residual += bottleneck;
            v = arcs[a ^ 1].to;
        }
        pushed += bottleneck;
        ++stats_.augmenting_paths;
    }
    return pushed;
}

Capacity
MaxFlow::currentFlowValue(int s) const
{
    // Net outflow at s. The backward internal arc of every external
    // arc started at zero residual, so its residual is exactly the
    // flow the arc carries: even internal ids leaving s are forward
    // arcs (flow out of s), odd ids are the reverses of arcs into s.
    Capacity total = 0;
    for (int b : net_->first_out_[s]) {
        if ((b & 1) == 0)
            total += net_->arcs_[b ^ 1].residual;
        else
            total -= net_->arcs_[b].residual;
    }
    return total;
}

Capacity
MaxFlow::solveDinic(int s, int t, bool reverse_levels)
{
    auto &arcs = net_->arcs_;
    const int n = net_->numNodes();
    level_.assign(n, -1);
    iter_.assign(n, 0);

    // Forward levels: BFS distance from s over residual arcs; an
    // admissible step increases the level. Reverse levels (the pruned
    // fast path): BFS distance *to* t over residual arcs, walked
    // backwards from t; an admissible step decreases the level, and
    // any node that cannot reach t never gets a level at all — the
    // blocking-flow DFS cannot wander into dead subgraphs the plain
    // forward levelling still explores and retreats from.
    auto bfs = [&]() -> bool {
        std::fill(level_.begin(), level_.end(), -1);
        if (reverse_levels) {
            level_[t] = 0;
            std::deque<int> queue{t};
            while (!queue.empty()) {
                int x = queue.front();
                queue.pop_front();
                // Arc y -> x has residual iff partner b^1 of the
                // internal arc b = x -> y carries residual capacity.
                for (int b : net_->first_out_[x]) {
                    int y = arcs[b].to;
                    if (level_[y] == -1 && arcs[b ^ 1].residual > 0) {
                        level_[y] = level_[x] + 1;
                        queue.push_back(y);
                    }
                }
            }
            return level_[s] != -1;
        }
        level_[s] = 0;
        std::deque<int> queue{s};
        while (!queue.empty()) {
            int u = queue.front();
            queue.pop_front();
            for (int a : net_->first_out_[u]) {
                int v = arcs[a].to;
                if (level_[v] == -1 && arcs[a].residual > 0) {
                    level_[v] = level_[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        return level_[t] != -1;
    };

    auto admissible = [&](int u, int v) {
        return reverse_levels ? level_[u] == level_[v] + 1 &&
                                    level_[u] != -1 && level_[v] != -1
                              : level_[v] == level_[u] + 1;
    };

    // Iterative blocking-flow DFS.
    Capacity total = 0;
    path_.clear(); // internal arc ids along current path
    while (bfs()) {
        std::fill(iter_.begin(), iter_.end(), 0);
        path_.clear();
        int u = s;
        while (true) {
            if (u == t) {
                Capacity bottleneck =
                    std::numeric_limits<Capacity>::max();
                for (int a : path_)
                    bottleneck =
                        std::min(bottleneck, arcs[a].residual);
                for (int a : path_) {
                    arcs[a].residual -= bottleneck;
                    arcs[a ^ 1].residual += bottleneck;
                }
                total += bottleneck;
                ++stats_.augmenting_paths;
                // Retreat to the first saturated arc on the path.
                size_t keep = 0;
                while (keep < path_.size() &&
                       arcs[path_[keep]].residual > 0) {
                    ++keep;
                }
                path_.resize(keep);
                u = path_.empty() ? s : arcs[path_.back()].to;
                continue;
            }
            bool advanced = false;
            auto &out = net_->first_out_[u];
            for (int &i = iter_[u]; i < static_cast<int>(out.size());
                 ++i) {
                int a = out[i];
                int v = arcs[a].to;
                if (arcs[a].residual > 0 && admissible(u, v)) {
                    path_.push_back(a);
                    u = v;
                    advanced = true;
                    break;
                }
            }
            if (!advanced) {
                level_[u] = reverse_levels ? -2 : -1; // dead end
                if (path_.empty())
                    break;
                path_.pop_back();
                u = path_.empty() ? s : arcs[path_.back()].to;
            }
        }
    }
    return total;
}

void
MaxFlow::globalRelabel(int s, int t)
{
    auto &arcs = net_->arcs_;
    const int n = net_->numNodes();
    const int max_h = 2 * n + 1;
    ++stats_.global_relabels;

    // Exact distance-to-t by reverse BFS over residual arcs (level_
    // doubles as the distance array).
    level_.assign(n, -1);
    level_[t] = 0;
    std::deque<int> queue{t};
    while (!queue.empty()) {
        int x = queue.front();
        queue.pop_front();
        for (int b : net_->first_out_[x]) {
            int y = arcs[b].to;
            if (level_[y] == -1 && arcs[b ^ 1].residual > 0) {
                level_[y] = level_[x] + 1;
                queue.push_back(y);
            }
        }
    }
    // Nodes cut off from t can only return their excess to s: give
    // them n + distance-to-s (pred_arc_ doubles as that distance).
    pred_arc_.assign(n, -1);
    pred_arc_[s] = 0;
    queue.push_back(s);
    while (!queue.empty()) {
        int x = queue.front();
        queue.pop_front();
        for (int b : net_->first_out_[x]) {
            int y = arcs[b].to;
            if (pred_arc_[y] == -1 && arcs[b ^ 1].residual > 0) {
                pred_arc_[y] = pred_arc_[x] + 1;
                queue.push_back(y);
            }
        }
    }
    // Raise-only update: both the current labeling and the computed
    // one are valid, and the pointwise max of valid labelings is
    // valid — and never lowering a height preserves push-relabel's
    // monotonicity (a node that once pushed into s keeps height > n
    // even if a BFS would now give it a short distance-to-t).
    for (int x = 0; x < n; ++x) {
        int h;
        if (x == s)
            h = n;
        else if (level_[x] >= 0)
            h = level_[x];
        else if (pred_arc_[x] >= 0)
            h = n + pred_arc_[x];
        else
            h = max_h - 1; // reaches neither terminal: park high
        if (h > height_[x])
            height_[x] = h;
    }
    if (height_[s] < n)
        height_[s] = n;

    // Rebuild the gap counts and active buckets for the new heights.
    height_count_.assign(max_h + 1, 0);
    for (int x = 0; x < n; ++x)
        ++height_count_[height_[x]];
    if (static_cast<int>(bucket_.size()) < max_h + 1)
        bucket_.resize(max_h + 1);
    for (auto &b : bucket_)
        b.clear();
    for (int x = 0; x < n; ++x) {
        if (x != s && x != t && excess_[x] > 0)
            bucket_[height_[x]].push_back(x);
    }
}

Capacity
MaxFlow::solvePushRelabel(int s, int t)
{
    auto &arcs = net_->arcs_;
    const int n = net_->numNodes();
    const int max_h = 2 * n + 1;
    excess_.assign(n, 0);
    height_.assign(n, 0);
    iter_.assign(n, 0);

    // Convert the entering state (fresh residuals or a warm flow left
    // by a previous solve) into a preflow: saturate every residual
    // out-arc of s. Odd internal ids matter too — a warm residual can
    // carry flow into s, whose reverse arcs also leave s.
    for (int a : net_->first_out_[s]) {
        int v = arcs[a].to;
        if (v == s || arcs[a].residual <= 0)
            continue;
        Capacity d = arcs[a].residual;
        arcs[a].residual = 0;
        arcs[a ^ 1].residual += d;
        excess_[v] += d;
        ++stats_.augmenting_paths;
    }

    // Exact initial heights (this is why stats().global_relabels >= 1
    // after every push-relabel solve); also builds buckets + counts.
    globalRelabel(s, t);

    // Periodic re-relabeling on a work budget: stale heights after
    // many pushes make the highest-label rule wander.
    uint64_t work = 0;
    const uint64_t work_limit =
        6ull * static_cast<uint64_t>(n) + arcs.size();

    int hi = max_h;
    while (hi >= 0) {
        if (work > work_limit) {
            work = 0;
            globalRelabel(s, t);
            hi = max_h;
            continue;
        }
        if (bucket_[hi].empty()) {
            --hi;
            continue;
        }
        int u = bucket_[hi].back();
        bucket_[hi].pop_back();
        // Buckets hold lazy entries; skip the stale ones.
        if (u == s || u == t || excess_[u] == 0 || height_[u] != hi)
            continue;

        // Discharge u completely: push along admissible arcs,
        // relabel when the arc list is exhausted.
        while (excess_[u] > 0) {
            auto &out = net_->first_out_[u];
            if (iter_[u] == static_cast<int>(out.size())) {
                // Relabel: height = 1 + min over residual arcs.
                work += out.size();
                int min_h = max_h;
                for (int a : out) {
                    if (arcs[a].residual > 0)
                        min_h = std::min(min_h, height_[arcs[a].to]);
                }
                GMT_ASSERT(min_h < max_h,
                           "push-relabel height overflow");
                int old_h = height_[u];
                --height_count_[old_h];
                height_[u] = min_h + 1;
                ++height_count_[height_[u]];
                iter_[u] = 0;
                // Gap heuristic: an emptied height below n means no
                // node above it can reach t any more — lift them all
                // past n so they route their excess back to s.
                if (old_h < n && height_count_[old_h] == 0) {
                    ++stats_.gap_relabels;
                    for (int x = 0; x < n; ++x) {
                        if (x == s || x == t || height_[x] <= old_h ||
                            height_[x] >= n) {
                            continue;
                        }
                        --height_count_[height_[x]];
                        height_[x] = n + 1;
                        ++height_count_[n + 1];
                        iter_[x] = 0;
                        if (excess_[x] > 0)
                            bucket_[n + 1].push_back(x);
                    }
                    if (hi < n + 1)
                        hi = n + 1;
                }
                continue;
            }
            int a = out[iter_[u]];
            int v = arcs[a].to;
            if (arcs[a].residual > 0 &&
                height_[u] == height_[v] + 1) {
                Capacity d = std::min(excess_[u], arcs[a].residual);
                arcs[a].residual -= d;
                arcs[a ^ 1].residual += d;
                excess_[u] -= d;
                ++work;
                ++stats_.augmenting_paths;
                bool was_inactive = (excess_[v] == 0);
                excess_[v] += d;
                if (was_inactive && v != s && v != t)
                    bucket_[height_[v]].push_back(v);
            } else {
                ++iter_[u];
            }
        }
        // Relabels may have raised u (and so the heights of the nodes
        // it just activated) above the scan pointer.
        if (height_[u] > hi)
            hi = height_[u];
    }
    // Every non-terminal excess has drained (to t, or back to s via
    // heights above n), so the residual state is a genuine max flow.
    return excess_[t];
}

std::vector<bool>
MaxFlow::residualReachable(int s) const
{
    std::vector<bool> seen(net_->numNodes(), false);
    std::vector<int> stack{s};
    seen[s] = true;
    while (!stack.empty()) {
        int u = stack.back();
        stack.pop_back();
        for (int a : net_->first_out_[u]) {
            int v = net_->arcs_[a].to;
            if (!seen[v] && net_->arcs_[a].residual > 0) {
                seen[v] = true;
                stack.push_back(v);
            }
        }
    }
    return seen;
}

std::vector<bool>
MaxFlow::residualReaching(int t) const
{
    // Reverse traversal: x can step to y (against an arc y -> x) iff
    // the arc y -> x has residual capacity; for internal arc b = x->y,
    // its partner b^1 is y -> x.
    std::vector<bool> seen(net_->numNodes(), false);
    std::vector<int> stack{t};
    seen[t] = true;
    while (!stack.empty()) {
        int x = stack.back();
        stack.pop_back();
        for (int b : net_->first_out_[x]) {
            int y = net_->arcs_[b].to;
            if (!seen[y] && net_->arcs_[b ^ 1].residual > 0) {
                seen[y] = true;
                stack.push_back(y);
            }
        }
    }
    return seen;
}

std::vector<int>
MaxFlow::minCutArcs(CutSide side) const
{
    GMT_ASSERT(last_s_ >= 0, "solve() must run before minCutArcs()");
    // Source side: nodes reachable from s in the residual graph.
    // Sink side: complement of the nodes reaching t — both are valid
    // minimum cuts; they differ only in which of several equal-cost
    // cuts is reported. Each side is unique across all maximum flows
    // and the residual pass below is run fresh every call, so the
    // answer cannot depend on how the flow was reached (cold solve,
    // repeated solve, or warm resolve).
    std::vector<bool> source_side;
    if (side == CutSide::Source) {
        source_side = residualReachable(last_s_);
    } else {
        source_side = residualReaching(last_t_);
        source_side.flip();
    }
    std::vector<int> cut;
    for (int a = 0; a < net_->numArcs(); ++a) {
        if (net_->removed_[a])
            continue; // deleted by removeArc
        if (source_side[net_->arcTail(a)] &&
            !source_side[net_->arcHead(a)])
            cut.push_back(a);
    }
    return cut;
}

#if !defined(NDEBUG) || defined(GMT_FLOW_CROSSCHECK)
void
MaxFlow::crosscheckAgainstReference(const char *what)
{
    // Copy the network, rewind the copy to original capacities, and
    // solve cold with the reference algorithm: flow value and both
    // cut sides must agree exactly (cut uniqueness, not heuristics).
    FlowNetwork copy = *net_;
    MaxFlow ref(copy, FlowAlgorithm::EdmondsKarp);
    ref.reset();
    Capacity ref_flow = ref.solve(last_s_, last_t_);
    GMT_ASSERT(ref_flow == last_flow_,
               "flow value diverged from cold Edmonds-Karp in ", what);
    GMT_ASSERT(ref.minCutArcs(CutSide::Source) ==
                   minCutArcs(CutSide::Source),
               "source-side cut diverged from cold Edmonds-Karp in ",
               what);
    GMT_ASSERT(ref.minCutArcs(CutSide::Sink) ==
                   minCutArcs(CutSide::Sink),
               "sink-side cut diverged from cold Edmonds-Karp in ",
               what);
}
#endif

} // namespace gmt
