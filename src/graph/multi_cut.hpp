#ifndef GMT_GRAPH_MULTI_CUT_HPP
#define GMT_GRAPH_MULTI_CUT_HPP

/**
 * @file
 * Multi-source-sink (multicommodity) min-cut heuristic.
 *
 * Memory-synchronization placement needs every memory-dependence
 * source disconnected from its *own* targets only (paper §3.1.3), which
 * is the NP-hard multi-pair cut problem. The paper's heuristic is used
 * here: solve each pair optimally in sequence, removing each pair's cut
 * arcs from the graph so earlier cuts help disconnect later pairs.
 */

#include <utility>
#include <vector>

#include "graph/max_flow.hpp"

namespace gmt
{

/** Result of a multi-pair cut. */
struct MultiCutResult
{
    /** Union of arc ids cut across all pairs (deduplicated). */
    std::vector<int> arcs;

    /** Total original capacity of the cut arcs. */
    Capacity cost = 0;

    /** True if every pair admitted a finite cut. */
    bool finite = true;
};

/**
 * Disconnect each (source, sink) pair in @p pairs by cutting arcs of
 * @p net. Mutates the network (cut arcs are removed).
 *
 * @param net the flow network (consumed: arcs get removed).
 * @param pairs source/sink node pairs to disconnect.
 * @param algo single-pair max-flow algorithm to use per step.
 * @param side which equal-cost cut to take per pair.
 * @param arena optional solver to reuse (its traversal scratch
 *        survives across the per-pair solves and across calls); a
 *        local solver is used when null.
 */
MultiCutResult multiPairMinCut(FlowNetwork &net,
                               const std::vector<std::pair<int, int>> &pairs,
                               FlowAlgorithm algo =
                                   FlowAlgorithm::EdmondsKarp,
                               CutSide side = CutSide::Sink,
                               MaxFlow *arena = nullptr);

/**
 * Baseline for the ablation bench: connect a super-source to all pair
 * sources and all pair sinks to a super-sink, then take one global
 * single-pair cut. Over-constrains the problem (disconnects every
 * source from every sink) but is a valid placement.
 *
 * @param arena optional solver to reuse, as in multiPairMinCut().
 * @param super_s_out / @param super_t_out optional: receive the
 *        super-terminal node ids so a caller retaining @p net can
 *        warm-start the same single-pair problem later via
 *        MaxFlow::attachSolved() + resolve().
 */
MultiCutResult superPairMinCut(FlowNetwork &net,
                               const std::vector<std::pair<int, int>> &pairs,
                               FlowAlgorithm algo =
                                   FlowAlgorithm::EdmondsKarp,
                               MaxFlow *arena = nullptr,
                               int *super_s_out = nullptr,
                               int *super_t_out = nullptr);

} // namespace gmt

#endif // GMT_GRAPH_MULTI_CUT_HPP
