#include "graph/digraph.hpp"

#include <algorithm>
#include <deque>

#include "support/error.hpp"

namespace gmt
{

NodeId
Digraph::addNode()
{
    succs_.emplace_back();
    preds_.emplace_back();
    return static_cast<NodeId>(succs_.size() - 1);
}

void
Digraph::addEdge(NodeId u, NodeId v)
{
    GMT_ASSERT(u >= 0 && u < numNodes() && v >= 0 && v < numNodes());
    if (hasEdge(u, v))
        return;
    succs_[u].push_back(v);
    preds_[v].push_back(u);
    ++numEdges_;
}

bool
Digraph::hasEdge(NodeId u, NodeId v) const
{
    const auto &s = succs_[u];
    return std::find(s.begin(), s.end(), v) != s.end();
}

std::vector<NodeId>
Digraph::topoSort() const
{
    std::vector<int> indeg(numNodes(), 0);
    for (NodeId u = 0; u < numNodes(); ++u) {
        for (NodeId v : succs_[u])
            ++indeg[v];
    }
    std::deque<NodeId> ready;
    for (NodeId u = 0; u < numNodes(); ++u) {
        if (indeg[u] == 0)
            ready.push_back(u);
    }
    std::vector<NodeId> order;
    order.reserve(numNodes());
    while (!ready.empty()) {
        NodeId u = ready.front();
        ready.pop_front();
        order.push_back(u);
        for (NodeId v : succs_[u]) {
            if (--indeg[v] == 0)
                ready.push_back(v);
        }
    }
    if (static_cast<int>(order.size()) != numNodes())
        return {}; // cyclic
    return order;
}

bool
Digraph::isAcyclic() const
{
    return numNodes() == 0 || !topoSort().empty();
}

std::vector<bool>
Digraph::reachableFrom(NodeId start) const
{
    std::vector<bool> seen(numNodes(), false);
    std::vector<NodeId> stack{start};
    seen[start] = true;
    while (!stack.empty()) {
        NodeId u = stack.back();
        stack.pop_back();
        for (NodeId v : succs_[u]) {
            if (!seen[v]) {
                seen[v] = true;
                stack.push_back(v);
            }
        }
    }
    return seen;
}

} // namespace gmt
