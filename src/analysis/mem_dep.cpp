#include "analysis/mem_dep.hpp"

#include <vector>

#include "support/bit_vector.hpp"

namespace gmt
{

bool
mayAlias(AliasClass a, AliasClass b)
{
    return a == b || a == kAliasAny || b == kAliasAny;
}

std::vector<MemDep>
computeMemDeps(const Function &f)
{
    // Block-level reachability closure (may pass through cycles).
    const int nb = f.numBlocks();
    std::vector<BitVector> reach(nb, BitVector(nb));
    for (BlockId b = 0; b < nb; ++b) {
        for (BlockId s : f.block(b).succs())
            reach[b].set(s);
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId b = 0; b < nb; ++b) {
            for (BlockId s : f.block(b).succs())
                changed |= reach[b].unionWith(reach[s]);
        }
    }

    // Collect memory instructions with their block positions.
    struct MemAccess
    {
        InstrId id;
        BlockId block;
        int pos;
        bool is_store;
        AliasClass alias;
    };
    std::vector<MemAccess> accesses;
    for (BlockId b = 0; b < nb; ++b) {
        const auto &instrs = f.block(b).instrs();
        for (int pos = 0; pos < static_cast<int>(instrs.size()); ++pos) {
            const Instr &in = f.instr(instrs[pos]);
            if (in.isMemoryAccess()) {
                accesses.push_back({instrs[pos], b, pos,
                                    in.op == Opcode::Store, in.alias});
            }
        }
    }

    auto pathExists = [&](const MemAccess &i, const MemAccess &j) {
        if (i.block == j.block && i.pos < j.pos)
            return true;
        // Any path from i's block to j's block (possibly around a
        // cycle re-entering the same block).
        return reach[i.block].test(j.block);
    };

    std::vector<MemDep> deps;
    for (const auto &i : accesses) {
        for (const auto &j : accesses) {
            if (i.id == j.id)
                continue;
            if (!i.is_store && !j.is_store)
                continue; // read-read never constrains
            if (!mayAlias(i.alias, j.alias))
                continue;
            if (!pathExists(i, j))
                continue;
            MemDepKind kind = i.is_store
                                  ? (j.is_store ? MemDepKind::Output
                                                : MemDepKind::Flow)
                                  : MemDepKind::Anti;
            deps.push_back({i.id, j.id, kind});
        }
    }
    return deps;
}

} // namespace gmt
