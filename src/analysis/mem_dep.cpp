#include "analysis/mem_dep.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "support/bit_vector.hpp"

namespace gmt
{

bool
mayAlias(AliasClass a, AliasClass b)
{
    return a == b || a == kAliasAny || b == kAliasAny;
}

std::vector<MemDep>
computeMemDeps(const Function &f)
{
    // Block-level reachability closure (may pass through cycles).
    const int nb = f.numBlocks();
    std::vector<BitVector> reach(nb, BitVector(nb));
    for (BlockId b = 0; b < nb; ++b) {
        for (BlockId s : f.block(b).succs())
            reach[b].set(s);
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId b = 0; b < nb; ++b) {
            for (BlockId s : f.block(b).succs())
                changed |= reach[b].unionWith(reach[s]);
        }
    }

    // Collect memory instructions with their block positions.
    struct MemAccess
    {
        InstrId id;
        BlockId block;
        int pos;
        bool is_store;
        AliasClass alias;
    };
    std::vector<MemAccess> accesses;
    for (BlockId b = 0; b < nb; ++b) {
        const auto &instrs = f.block(b).instrs();
        for (int pos = 0; pos < static_cast<int>(instrs.size()); ++pos) {
            const Instr &in = f.instr(instrs[pos]);
            if (in.isMemoryAccess()) {
                accesses.push_back({instrs[pos], b, pos,
                                    in.op == Opcode::Store, in.alias});
            }
        }
    }

    auto pathExists = [&](const MemAccess &i, const MemAccess &j) {
        if (i.block == j.block && i.pos < j.pos)
            return true;
        // Any path from i's block to j's block (possibly around a
        // cycle re-entering the same block).
        return reach[i.block].test(j.block);
    };

    // Bucket accesses by alias class so the pair scan only visits
    // combinations that can alias: a specific class pairs with itself
    // and with kAliasAny, never with another specific class. Buckets
    // hold collection indices in increasing order, and candidates are
    // merged back into collection order, so the emitted dependences
    // and their order are exactly those of the all-pairs scan.
    const int na = static_cast<int>(accesses.size());
    std::unordered_map<AliasClass, std::vector<int>> by_class;
    std::vector<int> any_class;
    for (int k = 0; k < na; ++k) {
        if (accesses[k].alias == kAliasAny)
            any_class.push_back(k);
        else
            by_class[accesses[k].alias].push_back(k);
    }

    std::vector<MemDep> deps;
    std::vector<int> merged;
    for (int ii = 0; ii < na; ++ii) {
        const auto &i = accesses[ii];

        const std::vector<int> *candidates;
        if (i.alias == kAliasAny) {
            // kAliasAny may alias everything: scan all of them.
            candidates = nullptr;
        } else {
            const std::vector<int> &same = by_class[i.alias];
            merged.clear();
            merged.reserve(same.size() + any_class.size());
            std::merge(same.begin(), same.end(), any_class.begin(),
                       any_class.end(), std::back_inserter(merged));
            candidates = &merged;
        }

        const int nj =
            candidates ? static_cast<int>(candidates->size()) : na;
        for (int jj = 0; jj < nj; ++jj) {
            const auto &j =
                accesses[candidates ? (*candidates)[jj] : jj];
            if (i.id == j.id)
                continue;
            if (!i.is_store && !j.is_store)
                continue; // read-read never constrains
            if (!mayAlias(i.alias, j.alias))
                continue;
            if (!pathExists(i, j))
                continue;
            MemDepKind kind = i.is_store
                                  ? (j.is_store ? MemDepKind::Output
                                                : MemDepKind::Flow)
                                  : MemDepKind::Anti;
            deps.push_back({i.id, j.id, kind});
        }
    }
    return deps;
}

} // namespace gmt
