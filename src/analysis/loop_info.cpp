#include "analysis/loop_info.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace gmt
{

bool
Loop::contains(BlockId b) const
{
    return std::binary_search(blocks.begin(), blocks.end(), b);
}

LoopInfo::LoopInfo(const Function &f, const DominatorTree &dom)
{
    loop_of_.assign(f.numBlocks(), -1);

    // Find back edges (n -> h with h dominating n); merge loops that
    // share a header. Few headers per function: a flat vector with
    // linear find-or-insert beats a node-based map, and sorting by
    // header afterwards preserves the old ascending iteration order.
    std::vector<std::pair<BlockId, std::vector<BlockId>>>
        header_to_body;
    auto bodyOf = [&](BlockId h) -> std::vector<BlockId> & {
        for (auto &[header, body] : header_to_body) {
            if (header == h)
                return body;
        }
        header_to_body.emplace_back(h, std::vector<BlockId>{});
        return header_to_body.back().second;
    };
    for (BlockId n = 0; n < f.numBlocks(); ++n) {
        for (BlockId h : f.block(n).succs()) {
            if (!dom.dominates(h, n))
                continue;
            // Natural loop of (n -> h): h plus all blocks reaching n
            // without passing through h (backward walk from n).
            auto &body = bodyOf(h);
            std::vector<bool> in_loop(f.numBlocks(), false);
            in_loop[h] = true;
            std::vector<BlockId> work;
            if (!in_loop[n]) {
                in_loop[n] = true;
                work.push_back(n);
            }
            while (!work.empty()) {
                BlockId b = work.back();
                work.pop_back();
                for (BlockId p : f.block(b).preds()) {
                    if (!in_loop[p]) {
                        in_loop[p] = true;
                        work.push_back(p);
                    }
                }
            }
            for (BlockId b = 0; b < f.numBlocks(); ++b) {
                if (in_loop[b])
                    body.push_back(b);
            }
        }
    }

    std::sort(header_to_body.begin(), header_to_body.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    for (auto &[header, body] : header_to_body) {
        std::sort(body.begin(), body.end());
        body.erase(std::unique(body.begin(), body.end()), body.end());
        Loop loop;
        loop.header = header;
        loop.blocks = body;
        loops_.push_back(std::move(loop));
    }

    // Establish nesting: loop A is inside loop B if A's header is in
    // B's block set and A != B. Parent = smallest enclosing loop.
    for (size_t a = 0; a < loops_.size(); ++a) {
        size_t best = SIZE_MAX;
        for (size_t b = 0; b < loops_.size(); ++b) {
            if (a == b || !loops_[b].contains(loops_[a].header))
                continue;
            if (loops_[b].blocks.size() == loops_[a].blocks.size() &&
                loops_[a].header != loops_[b].header) {
                continue; // identical bodies, distinct headers: siblings
            }
            if (loops_[b].blocks.size() <= loops_[a].blocks.size() &&
                b != a && loops_[b].header == loops_[a].header) {
                continue;
            }
            if (loops_[b].blocks.size() >= loops_[a].blocks.size() &&
                (best == SIZE_MAX ||
                 loops_[b].blocks.size() < loops_[best].blocks.size())) {
                best = b;
            }
        }
        loops_[a].parent = (best == SIZE_MAX) ? -1 : static_cast<int>(best);
    }
    // Depths via parent chains.
    for (auto &loop : loops_) {
        int d = 1;
        for (int p = loop.parent; p != -1; p = loops_[p].parent)
            ++d;
        loop.depth = d;
    }

    // Innermost loop per block = the smallest loop containing it.
    for (BlockId b = 0; b < f.numBlocks(); ++b) {
        size_t best = SIZE_MAX;
        for (size_t i = 0; i < loops_.size(); ++i) {
            if (loops_[i].contains(b) &&
                (best == SIZE_MAX ||
                 loops_[i].blocks.size() < loops_[best].blocks.size())) {
                best = i;
            }
        }
        loop_of_[b] = (best == SIZE_MAX) ? -1 : static_cast<int>(best);
    }
}

int
LoopInfo::depthOf(BlockId b) const
{
    int l = loop_of_[b];
    return l == -1 ? 0 : loops_[l].depth;
}

} // namespace gmt
