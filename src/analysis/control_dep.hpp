#ifndef GMT_ANALYSIS_CONTROL_DEP_HPP
#define GMT_ANALYSIS_CONTROL_DEP_HPP

/**
 * @file
 * Control dependence (Ferrante-Ottenstein-Warren). Block B is control
 * dependent on branch block A iff A has successors S1, S2 such that B
 * post-dominates one but not the other — equivalently, A's branch
 * decides whether B executes.
 *
 * Control dependence is block-granular: every program point inside a
 * block has the same execution condition, which is what Definition 2
 * of the paper (relevant points) quantifies over.
 */

#include <vector>

#include "analysis/dominators.hpp"
#include "ir/function.hpp"

namespace gmt
{

/** Control-dependence relation over a function's blocks. */
class ControlDependence
{
  public:
    ControlDependence(const Function &f, const DominatorTree &postdom);

    /** Branch blocks that @p b is (directly) control dependent on. */
    const std::vector<BlockId> &
    dependsOn(BlockId b) const
    {
        return deps_[b];
    }

    /** Blocks (directly) control dependent on @p branch_block. */
    const std::vector<BlockId> &
    controlledBy(BlockId branch_block) const
    {
        return controlled_[branch_block];
    }

    bool isControlDependent(BlockId b, BlockId branch_block) const;

    /**
     * Transitive closure of dependsOn: every branch block whose
     * outcome (transitively) decides whether @p b executes.
     */
    std::vector<BlockId> transitiveDeps(BlockId b) const;

  private:
    std::vector<std::vector<BlockId>> deps_;
    std::vector<std::vector<BlockId>> controlled_;
};

} // namespace gmt

#endif // GMT_ANALYSIS_CONTROL_DEP_HPP
