#ifndef GMT_ANALYSIS_DOMINATORS_HPP
#define GMT_ANALYSIS_DOMINATORS_HPP

/**
 * @file
 * Dominator and post-dominator trees (Cooper-Harvey-Kennedy iterative
 * algorithm over a reverse-postorder). Post-dominance drives both
 * control-dependence computation and MTCG's branch-target fixing.
 */

#include <vector>

#include "ir/function.hpp"

namespace gmt
{

/**
 * (Post-)dominator tree over a function's blocks.
 *
 * For the forward variant the root is the entry block; for the reverse
 * variant (post-dominators) the root is the unique Ret block and the
 * function must have every block on some path to it.
 */
class DominatorTree
{
  public:
    /** Dominator tree rooted at the entry. */
    static DominatorTree dominators(const Function &f);

    /** Post-dominator tree rooted at the exit (Ret) block. */
    static DominatorTree postDominators(const Function &f);

    BlockId root() const { return root_; }

    /** Immediate dominator; kNoBlock for the root. */
    BlockId idom(BlockId b) const { return idom_[b]; }

    /** Depth of @p b in the tree (root = 0). */
    int depth(BlockId b) const { return depth_[b]; }

    /** True if @p a (post-)dominates @p b (reflexive). */
    bool dominates(BlockId a, BlockId b) const;

  private:
    DominatorTree() = default;

    static DominatorTree compute(const Function &f, bool reverse);

    BlockId root_ = kNoBlock;
    std::vector<BlockId> idom_;
    std::vector<int> depth_;
};

} // namespace gmt

#endif // GMT_ANALYSIS_DOMINATORS_HPP
