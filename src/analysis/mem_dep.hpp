#ifndef GMT_ANALYSIS_MEM_DEP_HPP
#define GMT_ANALYSIS_MEM_DEP_HPP

/**
 * @file
 * Memory dependence analysis over alias classes.
 *
 * The paper's compiler consumes a context-sensitive points-to analysis
 * [14]; this library substitutes alias-class annotations carried by
 * every Load/Store (see DESIGN.md). Two accesses may alias iff their
 * classes are equal or either is kAliasAny. A dependence arc i -> j is
 * emitted when i and j may alias, at least one writes, and a CFG path
 * from i to j exists (including loop-carried paths).
 */

#include <vector>

#include "ir/function.hpp"

namespace gmt
{

/** Kind of a memory dependence. */
enum class MemDepKind { Flow, Anti, Output };

/** One memory dependence arc. */
struct MemDep
{
    InstrId src = kNoInstr;
    InstrId dst = kNoInstr;
    MemDepKind kind = MemDepKind::Flow;
};

/** True if accesses with classes @p a and @p b may alias. */
bool mayAlias(AliasClass a, AliasClass b);

/**
 * Compute all memory dependence arcs of @p f.
 *
 * Conservative in time (quadratic in memory instructions) but the
 * regions the scheduler handles are single functions.
 */
std::vector<MemDep> computeMemDeps(const Function &f);

} // namespace gmt

#endif // GMT_ANALYSIS_MEM_DEP_HPP
