#ifndef GMT_ANALYSIS_LOOP_INFO_HPP
#define GMT_ANALYSIS_LOOP_INFO_HPP

/**
 * @file
 * Natural-loop detection (back edges under dominance). GREMIO's
 * hierarchical scheduler walks the loop nest, and the static profile
 * estimator weights blocks by nesting depth.
 */

#include <vector>

#include "analysis/dominators.hpp"
#include "ir/function.hpp"

namespace gmt
{

/** One natural loop. */
struct Loop
{
    BlockId header = kNoBlock;
    std::vector<BlockId> blocks; ///< includes the header, sorted
    int parent = -1;             ///< index of enclosing loop, or -1
    int depth = 1;               ///< 1 = outermost

    bool contains(BlockId b) const;
};

/** Loop nest of a function. */
class LoopInfo
{
  public:
    LoopInfo(const Function &f, const DominatorTree &dom);

    int numLoops() const { return static_cast<int>(loops_.size()); }
    const Loop &loop(int i) const { return loops_[i]; }

    /** Innermost loop containing @p b, or -1. */
    int loopOf(BlockId b) const { return loop_of_[b]; }

    /** Nesting depth of @p b (0 = not in any loop). */
    int depthOf(BlockId b) const;

  private:
    std::vector<Loop> loops_;
    std::vector<int> loop_of_;
};

} // namespace gmt

#endif // GMT_ANALYSIS_LOOP_INFO_HPP
