#ifndef GMT_ANALYSIS_LIVENESS_HPP
#define GMT_ANALYSIS_LIVENESS_HPP

/**
 * @file
 * Standard backward liveness over virtual registers. COCO's
 * thread-aware liveness (live *with respect to a target thread*) is a
 * filtered instance of the same framework — see coco/thread_liveness.
 */

#include <vector>

#include "ir/function.hpp"
#include "support/bit_vector.hpp"

namespace gmt
{

/**
 * Block-level liveness with on-demand per-point refinement.
 *
 * An optional instruction filter restricts which instructions' uses
 * count (thread-aware liveness passes "uses in thread T / in relevant
 * branches of T"); defs always kill regardless of thread.
 */
class Liveness
{
  public:
    /** Instruction-use filter: return true if @p i's uses count. */
    using UseFilter = bool (*)(const Function &, InstrId, const void *);

    /** Unfiltered liveness. */
    explicit Liveness(const Function &f);

    /** Filtered liveness: @p filter decides which uses count. */
    Liveness(const Function &f, UseFilter filter, const void *ctx);

    const BitVector &liveIn(BlockId b) const { return live_in_[b]; }
    const BitVector &liveOut(BlockId b) const { return live_out_[b]; }

    /** Registers live immediately before position @p pos of @p b. */
    BitVector liveAt(const ProgramPoint &p) const;

    bool isLiveAt(Reg r, const ProgramPoint &p) const;

  private:
    void compute();

    const Function &func_;
    UseFilter filter_ = nullptr;
    const void *filter_ctx_ = nullptr;
    std::vector<BitVector> live_in_, live_out_;
};

} // namespace gmt

#endif // GMT_ANALYSIS_LIVENESS_HPP
