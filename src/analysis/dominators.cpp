#include "analysis/dominators.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace gmt
{

namespace
{

/** DFS postorder from @p root following succ (or pred) edges. */
std::vector<BlockId>
postorder(const Function &f, BlockId root, bool reverse)
{
    auto next = [&](BlockId b) -> const std::vector<BlockId> & {
        return reverse ? f.block(b).preds() : f.block(b).succs();
    };
    std::vector<BlockId> order;
    std::vector<bool> seen(f.numBlocks(), false);
    struct Frame
    {
        BlockId block;
        size_t pos;
    };
    std::vector<Frame> stack{{root, 0}};
    seen[root] = true;
    while (!stack.empty()) {
        Frame &fr = stack.back();
        const auto &out = next(fr.block);
        if (fr.pos < out.size()) {
            BlockId s = out[fr.pos++];
            if (!seen[s]) {
                seen[s] = true;
                stack.push_back({s, 0});
            }
        } else {
            order.push_back(fr.block);
            stack.pop_back();
        }
    }
    return order;
}

} // namespace

DominatorTree
DominatorTree::compute(const Function &f, bool reverse)
{
    DominatorTree tree;
    tree.root_ = reverse ? f.exitBlock() : f.entry();
    GMT_ASSERT(tree.root_ != kNoBlock,
               "dominator computation needs entry/exit");

    // Reverse postorder over the (possibly reversed) CFG.
    std::vector<BlockId> po = postorder(f, tree.root_, reverse);
    GMT_ASSERT(static_cast<int>(po.size()) == f.numBlocks(),
               reverse ? "some block does not reach the exit"
                       : "some block unreachable from entry");
    std::vector<BlockId> rpo(po.rbegin(), po.rend());
    std::vector<int> rpo_index(f.numBlocks());
    for (size_t i = 0; i < rpo.size(); ++i)
        rpo_index[rpo[i]] = static_cast<int>(i);

    auto preds = [&](BlockId b) -> const std::vector<BlockId> & {
        return reverse ? f.block(b).succs() : f.block(b).preds();
    };

    tree.idom_.assign(f.numBlocks(), kNoBlock);
    tree.idom_[tree.root_] = tree.root_;

    auto intersect = [&](BlockId a, BlockId b) {
        while (a != b) {
            while (rpo_index[a] > rpo_index[b])
                a = tree.idom_[a];
            while (rpo_index[b] > rpo_index[a])
                b = tree.idom_[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId b : rpo) {
            if (b == tree.root_)
                continue;
            BlockId new_idom = kNoBlock;
            for (BlockId p : preds(b)) {
                if (tree.idom_[p] == kNoBlock)
                    continue; // not yet processed
                new_idom = (new_idom == kNoBlock)
                               ? p
                               : intersect(p, new_idom);
            }
            GMT_ASSERT(new_idom != kNoBlock);
            if (tree.idom_[b] != new_idom) {
                tree.idom_[b] = new_idom;
                changed = true;
            }
        }
    }
    tree.idom_[tree.root_] = kNoBlock;

    tree.depth_.assign(f.numBlocks(), 0);
    for (BlockId b : rpo) {
        if (b != tree.root_)
            tree.depth_[b] = tree.depth_[tree.idom_[b]] + 1;
    }
    return tree;
}

DominatorTree
DominatorTree::dominators(const Function &f)
{
    return compute(f, false);
}

DominatorTree
DominatorTree::postDominators(const Function &f)
{
    return compute(f, true);
}

bool
DominatorTree::dominates(BlockId a, BlockId b) const
{
    while (depth_[b] > depth_[a])
        b = idom_[b];
    return a == b;
}

} // namespace gmt
