#include "analysis/control_dep.hpp"

#include <algorithm>

#include "support/bit_vector.hpp"
#include "support/error.hpp"

namespace gmt
{

ControlDependence::ControlDependence(const Function &f,
                                     const DominatorTree &postdom)
{
    deps_.resize(f.numBlocks());
    controlled_.resize(f.numBlocks());

    // For each edge (a -> s) where s does not post-dominate a, every
    // block on the post-dominator-tree path from s up to (excluding)
    // ipdom(a) is control dependent on a.
    for (BlockId a = 0; a < f.numBlocks(); ++a) {
        const auto &succs = f.block(a).succs();
        if (succs.size() < 2)
            continue; // only branches create control dependences
        for (BlockId s : succs) {
            // Mark every block from s up to (excluding) ipdom(a) in
            // the post-dominator tree. ipdom(a) post-dominates every
            // successor of a, so the walk terminates; when s == a
            // (a self loop) this correctly marks a as depending on
            // its own branch.
            BlockId stop = postdom.idom(a);
            for (BlockId runner = s; runner != stop;
                 runner = postdom.idom(runner)) {
                GMT_ASSERT(runner != kNoBlock,
                           "walked past post-dominator root");
                if (!isControlDependent(runner, a)) {
                    deps_[runner].push_back(a);
                    controlled_[a].push_back(runner);
                }
            }
        }
    }
    for (auto &v : deps_)
        std::sort(v.begin(), v.end());
    for (auto &v : controlled_)
        std::sort(v.begin(), v.end());
}

bool
ControlDependence::isControlDependent(BlockId b, BlockId branch_block) const
{
    const auto &d = deps_[b];
    return std::find(d.begin(), d.end(), branch_block) != d.end();
}

std::vector<BlockId>
ControlDependence::transitiveDeps(BlockId b) const
{
    BitVector seen(deps_.size());
    std::vector<BlockId> work{b}, result;
    // Note: b itself is not included unless reachable via a cycle.
    while (!work.empty()) {
        BlockId cur = work.back();
        work.pop_back();
        for (BlockId dep : deps_[cur]) {
            if (!seen.test(dep)) {
                seen.set(dep);
                result.push_back(dep);
                work.push_back(dep);
            }
        }
    }
    std::sort(result.begin(), result.end());
    return result;
}

} // namespace gmt
