#include "analysis/edge_profile.hpp"

#include "support/error.hpp"

namespace gmt
{

EdgeProfile
EdgeProfile::fromRun(const Function &f, const ProfileData &data)
{
    GMT_ASSERT(static_cast<int>(data.block_counts.size()) ==
               f.numBlocks());
    EdgeProfile p;
    p.block_weight_ = data.block_counts;
    p.edge_weight_ = data.edge_counts;
    return p;
}

EdgeProfile
EdgeProfile::staticEstimate(const Function &f, const LoopInfo &loops)
{
    EdgeProfile p;
    p.block_weight_.resize(f.numBlocks());
    p.edge_weight_.resize(f.numBlocks());
    for (BlockId b = 0; b < f.numBlocks(); ++b) {
        uint64_t w = 1;
        for (int d = loops.depthOf(b); d > 0; --d)
            w *= 10;
        p.block_weight_[b] = w;
        size_t nsucc = f.block(b).succs().size();
        p.edge_weight_[b].assign(nsucc,
                                 nsucc ? std::max<uint64_t>(w / nsucc, 1)
                                       : 0);
    }
    return p;
}

uint64_t
EdgeProfile::edgeWeight(BlockId b, int slot) const
{
    GMT_ASSERT(b >= 0 && b < static_cast<BlockId>(edge_weight_.size()));
    GMT_ASSERT(slot >= 0 &&
               slot < static_cast<int>(edge_weight_[b].size()));
    return edge_weight_[b][slot];
}

uint64_t
EdgeProfile::pointWeight(const ProgramPoint &p) const
{
    return block_weight_[p.block];
}

EdgeProfile
EdgeProfile::withBlockBoost(const std::vector<uint64_t> &boost) const
{
    EdgeProfile p = *this;
    size_t n = std::min(boost.size(), p.block_weight_.size());
    for (size_t b = 0; b < n; ++b)
        p.block_weight_[b] += boost[b];
    return p;
}

} // namespace gmt
