#ifndef GMT_ANALYSIS_EDGE_PROFILE_HPP
#define GMT_ANALYSIS_EDGE_PROFILE_HPP

/**
 * @file
 * Edge profile: the weights COCO puts on min-cut arcs. Either measured
 * (a train-input run of the single-threaded interpreter, the paper's
 * methodology) or statically estimated from loop depth (the paper
 * notes static estimates are also accurate [28]).
 */

#include <cstdint>

#include "analysis/loop_info.hpp"
#include "ir/function.hpp"
#include "runtime/interpreter.hpp"

namespace gmt
{

/** Block and edge execution weights for one function. */
class EdgeProfile
{
  public:
    /** Weights measured from an interpreter run. */
    static EdgeProfile fromRun(const Function &f, const ProfileData &data);

    /**
     * Static estimate: weight 10^depth per block, edges split evenly
     * among successors (branch bias unknown).
     */
    static EdgeProfile staticEstimate(const Function &f,
                                      const LoopInfo &loops);

    uint64_t blockWeight(BlockId b) const { return block_weight_[b]; }

    /** Weight of the edge leaving @p b through successor slot @p slot. */
    uint64_t edgeWeight(BlockId b, int slot) const;

    /**
     * Weight of the program point before position pos of a block —
     * equal to the block weight (every point in a block executes as
     * often as the block).
     */
    uint64_t pointWeight(const ProgramPoint &p) const;

    /**
     * Copy of this profile with @p boost[b] added to each block's
     * weight (missing entries add 0); edge weights are unchanged.
     * Used by the autotuner to re-solve COCO cuts with stall charges
     * folded into the point costs.
     */
    EdgeProfile withBlockBoost(const std::vector<uint64_t> &boost) const;

  private:
    std::vector<uint64_t> block_weight_;
    std::vector<std::vector<uint64_t>> edge_weight_;
};

} // namespace gmt

#endif // GMT_ANALYSIS_EDGE_PROFILE_HPP
