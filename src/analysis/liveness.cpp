#include "analysis/liveness.hpp"

#include "support/error.hpp"

namespace gmt
{

Liveness::Liveness(const Function &f) : func_(f)
{
    compute();
}

Liveness::Liveness(const Function &f, UseFilter filter, const void *ctx)
    : func_(f), filter_(filter), filter_ctx_(ctx)
{
    compute();
}

void
Liveness::compute()
{
    const Function &f = func_;
    const int nb = f.numBlocks();
    const int nr = f.numRegs();
    live_in_.assign(nb, BitVector(nr));
    live_out_.assign(nb, BitVector(nr));

    // Iterate to fixpoint (backward). Simple round-robin; CFGs here
    // are small enough that worklist ordering is not worth the code.
    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId b = nb - 1; b >= 0; --b) {
            BitVector out(nr);
            for (BlockId s : f.block(b).succs())
                out.unionWith(live_in_[s]);
            BitVector in = out;
            const auto &instrs = f.block(b).instrs();
            for (auto it = instrs.rbegin(); it != instrs.rend(); ++it) {
                Reg def = f.defOf(*it);
                if (def != kNoReg)
                    in.reset(def);
                if (!filter_ || filter_(f, *it, filter_ctx_)) {
                    for (Reg use : f.usesOf(*it))
                        in.set(use);
                }
            }
            if (!(out == live_out_[b])) {
                live_out_[b] = std::move(out);
                changed = true;
            }
            if (!(in == live_in_[b])) {
                live_in_[b] = std::move(in);
                changed = true;
            }
        }
    }
}

BitVector
Liveness::liveAt(const ProgramPoint &p) const
{
    const Function &f = func_;
    const BasicBlock &bb = f.block(p.block);
    GMT_ASSERT(p.pos >= 0 && p.pos <= static_cast<int>(bb.size()));
    BitVector live = live_out_[p.block];
    const auto &instrs = bb.instrs();
    for (int i = static_cast<int>(instrs.size()) - 1; i >= p.pos; --i) {
        InstrId id = instrs[i];
        Reg def = f.defOf(id);
        if (def != kNoReg)
            live.reset(def);
        if (!filter_ || filter_(f, id, filter_ctx_)) {
            for (Reg use : f.usesOf(id))
                live.set(use);
        }
    }
    return live;
}

bool
Liveness::isLiveAt(Reg r, const ProgramPoint &p) const
{
    return liveAt(p).test(r);
}

} // namespace gmt
