#include "runtime/mt_interpreter.hpp"

#include "obs/metrics.hpp"
#include "runtime/interpreter.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace gmt
{

uint64_t
MtRunResult::totalDynamicInstrs() const
{
    uint64_t n = 0;
    for (const auto &s : stats)
        n += s.total();
    return n;
}

uint64_t
MtRunResult::totalCommunication() const
{
    uint64_t n = 0;
    for (const auto &s : stats)
        n += s.communication();
    return n;
}

namespace
{

/**
 * One pre-flattened instruction: the fields the dispatch loop reads,
 * plus control-flow targets resolved to flat indices. Fetch is one
 * load instead of the block -> instr-id -> instr chain.
 */
struct FlatOp
{
    Opcode op;
    bool duplicated;
    Reg dst, src1, src2;
    QueueId queue;
    int64_t imm;
    int32_t next = -1;   ///< Jmp target / Br taken target
    int32_t br_not = -1; ///< Br not-taken target
};

/** Execution state of one thread. */
struct ThreadState
{
    std::vector<FlatOp> code;
    std::vector<int64_t> regs;
    std::vector<Reg> live_outs;
    int32_t ip = 0;
    bool done = false;
    bool blocked = false; // blocked on queue since last progress
};

/** Flatten one thread function (same layout as sim's pre-decode). */
void
flattenThread(const Function &f, ThreadState &ts)
{
    const int nb = f.numBlocks();
    std::vector<int32_t> block_start(nb, -1);
    int32_t n = 0;
    for (BlockId b = 0; b < nb; ++b) {
        block_start[b] = n;
        n += static_cast<int32_t>(f.block(b).size());
    }
    ts.code.reserve(n);
    for (BlockId b = 0; b < nb; ++b) {
        const BasicBlock &bb = f.block(b);
        for (InstrId id : bb.instrs()) {
            const Instr &in = f.instr(id);
            FlatOp d;
            d.op = in.op;
            d.duplicated = in.duplicated;
            d.dst = in.dst;
            d.src1 = in.src1;
            d.src2 = in.src2;
            d.queue = in.queue;
            d.imm = in.imm;
            if (in.op == Opcode::Jmp) {
                d.next = block_start[bb.succs()[0]];
            } else if (in.op == Opcode::Br) {
                d.next = block_start[bb.succs()[0]];
                d.br_not = block_start[bb.succs()[1]];
            }
            ts.code.push_back(d);
        }
    }
    ts.ip = block_start[f.entry()];
    ts.live_outs = f.liveOuts();
}

} // namespace

MtRunResult
interpretMt(const MtProgram &prog, const std::vector<int64_t> &args,
            MemoryImage &mem, SchedulePolicy policy, uint64_t seed,
            uint64_t max_steps)
{
    const int num_threads = static_cast<int>(prog.threads.size());
    GMT_ASSERT(num_threads > 0);

    MtRunResult result;
    result.stats.assign(num_threads, {});

    SyncArray queues(std::max(prog.num_queues, 1), prog.queue_capacity);
    Rng rng(seed ^ 0x5deece66dULL);

    std::vector<ThreadState> threads(num_threads);
    for (int t = 0; t < num_threads; ++t) {
        const Function &f = prog.threads[t];
        flattenThread(f, threads[t]);
        threads[t].regs.assign(f.numRegs(), 0);
        // Live-ins are broadcast: every thread starts from the same
        // initial context, as with real thread-spawn semantics.
        if (args.size() != f.params().size())
            fatal("interpretMt: thread ", t, " expects ",
                  f.params().size(), " args, got ", args.size());
        for (size_t i = 0; i < args.size(); ++i)
            threads[t].regs[f.params()[i]] = args[i];
    }

    int live = num_threads;
    // Live threads currently blocked on a queue; execution is wedged
    // exactly when every live thread is blocked (O(1) check).
    int blocked_live = 0;
    uint64_t steps = 0;

    int rr_next = 0;
    while (live > 0) {
        if (blocked_live == live) {
            result.deadlock = true;
            break;
        }
        // Pick a runnable thread.
        int t = -1;
        if (policy == SchedulePolicy::RoundRobin) {
            int cand = rr_next;
            for (int k = 0; k < num_threads; ++k) {
                if (!threads[cand].done && !threads[cand].blocked) {
                    t = cand;
                    rr_next = cand + 1 == num_threads ? 0 : cand + 1;
                    break;
                }
                cand = cand + 1 == num_threads ? 0 : cand + 1;
            }
        } else {
            // Uniform among runnable threads.
            int runnable = live - blocked_live;
            uint64_t pick = rng.nextBelow(runnable);
            for (int cand = 0; cand < num_threads; ++cand) {
                if (!threads[cand].done && !threads[cand].blocked &&
                    pick-- == 0) {
                    t = cand;
                    break;
                }
            }
        }
        GMT_ASSERT(t >= 0);

        if (++steps > max_steps)
            fatal("interpretMt: step limit exceeded");

        ThreadState &ts = threads[t];
        const FlatOp &in = ts.code[ts.ip];
        ThreadStats &st = result.stats[t];

        auto unblockAll = [&] {
            // A queue transition may unblock peers; recheck lazily.
            for (auto &other : threads)
                other.blocked = false;
            blocked_live = 0;
        };
        auto block = [&] {
            ts.blocked = true;
            ++blocked_live;
        };

        bool advanced = true;
        int32_t next_ip = ts.ip + 1;
        switch (in.op) {
          case Opcode::Produce:
            if (queues.produce(in.queue, ts.regs[in.src1])) {
                ++st.produces;
                unblockAll();
            } else {
                block();
                advanced = false;
            }
            break;
          case Opcode::ProduceSync:
            if (queues.produce(in.queue, 1)) {
                ++st.produce_syncs;
                unblockAll();
            } else {
                block();
                advanced = false;
            }
            break;
          case Opcode::Consume: {
            int64_t v;
            if (queues.consume(in.queue, v)) {
                ts.regs[in.dst] = v;
                ++st.consumes;
                unblockAll();
            } else {
                block();
                advanced = false;
            }
            break;
          }
          case Opcode::ConsumeSync: {
            int64_t v;
            if (queues.consume(in.queue, v)) {
                ++st.consume_syncs;
                unblockAll();
            } else {
                block();
                advanced = false;
            }
            break;
          }
          case Opcode::Load:
            ts.regs[in.dst] = mem.read(ts.regs[in.src1] + in.imm);
            ++st.computation;
            break;
          case Opcode::Store:
            mem.write(ts.regs[in.src1] + in.imm, ts.regs[in.src2]);
            ++st.computation;
            break;
          case Opcode::Br:
            next_ip = (ts.regs[in.src1] != 0) ? in.next : in.br_not;
            if (in.duplicated)
                ++st.duplicated_branches;
            else
                ++st.computation;
            break;
          case Opcode::Jmp:
            // Free pseudo-op: real code generation lays blocks out to
            // fall through; counting explicit jumps would charge the
            // block *structure* of a thread as computation.
            next_ip = in.next;
            break;
          case Opcode::Ret:
            ts.done = true;
            --live;
            ++st.computation;
            // The thread owning the original Ret declares the
            // live-outs; worker threads declare none.
            for (Reg r : ts.live_outs)
                result.live_outs.push_back(ts.regs[r]);
            break;
          default:
            ts.regs[in.dst] =
                evalAlu(in.op, in.src1 != kNoReg ? ts.regs[in.src1] : 0,
                        in.src2 != kNoReg ? ts.regs[in.src2] : 0, in.imm);
            ++st.computation;
            break;
        }

        if (ts.done)
            continue;
        if (!advanced)
            continue;
        ts.ip = next_ip;
    }

    result.queues_drained = queues.allDrained();
    MetricsRegistry &mr = MetricsRegistry::global();
    mr.counter("mtinterp.runs").add();
    mr.counter("mtinterp.dyn_instrs").add(result.totalDynamicInstrs());
    return result;
}

} // namespace gmt
