#include "runtime/mt_interpreter.hpp"

#include "runtime/interpreter.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace gmt
{

uint64_t
MtRunResult::totalDynamicInstrs() const
{
    uint64_t n = 0;
    for (const auto &s : stats)
        n += s.total();
    return n;
}

uint64_t
MtRunResult::totalCommunication() const
{
    uint64_t n = 0;
    for (const auto &s : stats)
        n += s.communication();
    return n;
}

namespace
{

/** Execution state of one thread. */
struct ThreadState
{
    std::vector<int64_t> regs;
    BlockId block = kNoBlock;
    int pos = 0;
    bool done = false;
    bool blocked = false; // blocked on queue since last progress
};

} // namespace

MtRunResult
interpretMt(const MtProgram &prog, const std::vector<int64_t> &args,
            MemoryImage &mem, SchedulePolicy policy, uint64_t seed,
            uint64_t max_steps)
{
    const int num_threads = static_cast<int>(prog.threads.size());
    GMT_ASSERT(num_threads > 0);

    MtRunResult result;
    result.stats.assign(num_threads, {});

    SyncArray queues(std::max(prog.num_queues, 1), prog.queue_capacity);
    Rng rng(seed ^ 0x5deece66dULL);

    std::vector<ThreadState> threads(num_threads);
    for (int t = 0; t < num_threads; ++t) {
        const Function &f = prog.threads[t];
        threads[t].regs.assign(f.numRegs(), 0);
        // Live-ins are broadcast: every thread starts from the same
        // initial context, as with real thread-spawn semantics.
        if (args.size() != f.params().size())
            fatal("interpretMt: thread ", t, " expects ",
                  f.params().size(), " args, got ", args.size());
        for (size_t i = 0; i < args.size(); ++i)
            threads[t].regs[f.params()[i]] = args[i];
        threads[t].block = f.entry();
    }

    int live = num_threads;
    uint64_t steps = 0;

    auto allBlockedOrDone = [&] {
        for (const auto &ts : threads) {
            if (!ts.done && !ts.blocked)
                return false;
        }
        return true;
    };

    int rr_next = 0;
    while (live > 0) {
        if (allBlockedOrDone()) {
            result.deadlock = true;
            break;
        }
        // Pick a runnable thread.
        int t = -1;
        if (policy == SchedulePolicy::RoundRobin) {
            for (int k = 0; k < num_threads; ++k) {
                int cand = (rr_next + k) % num_threads;
                if (!threads[cand].done && !threads[cand].blocked) {
                    t = cand;
                    rr_next = (cand + 1) % num_threads;
                    break;
                }
            }
        } else {
            // Uniform among runnable threads.
            int runnable = 0;
            for (const auto &ts : threads)
                runnable += (!ts.done && !ts.blocked);
            uint64_t pick = rng.nextBelow(runnable);
            for (int cand = 0; cand < num_threads; ++cand) {
                if (!threads[cand].done && !threads[cand].blocked &&
                    pick-- == 0) {
                    t = cand;
                    break;
                }
            }
        }
        GMT_ASSERT(t >= 0);

        if (++steps > max_steps)
            fatal("interpretMt: step limit exceeded");

        ThreadState &ts = threads[t];
        const Function &f = prog.threads[t];
        const BasicBlock &bb = f.block(ts.block);
        const Instr &in = f.instr(bb.instrs()[ts.pos]);
        ThreadStats &st = result.stats[t];

        auto unblockAll = [&] {
            // A queue transition may unblock peers; recheck lazily.
            for (auto &other : threads)
                other.blocked = false;
        };

        bool advanced = true;
        int next_slot = -1;
        switch (in.op) {
          case Opcode::Produce:
            if (queues.produce(in.queue, ts.regs[in.src1])) {
                ++st.produces;
                unblockAll();
            } else {
                ts.blocked = true;
                advanced = false;
            }
            break;
          case Opcode::ProduceSync:
            if (queues.produce(in.queue, 1)) {
                ++st.produce_syncs;
                unblockAll();
            } else {
                ts.blocked = true;
                advanced = false;
            }
            break;
          case Opcode::Consume: {
            int64_t v;
            if (queues.consume(in.queue, v)) {
                ts.regs[in.dst] = v;
                ++st.consumes;
                unblockAll();
            } else {
                ts.blocked = true;
                advanced = false;
            }
            break;
          }
          case Opcode::ConsumeSync: {
            int64_t v;
            if (queues.consume(in.queue, v)) {
                ++st.consume_syncs;
                unblockAll();
            } else {
                ts.blocked = true;
                advanced = false;
            }
            break;
          }
          case Opcode::Load:
            ts.regs[in.dst] = mem.read(ts.regs[in.src1] + in.imm);
            ++st.computation;
            break;
          case Opcode::Store:
            mem.write(ts.regs[in.src1] + in.imm, ts.regs[in.src2]);
            ++st.computation;
            break;
          case Opcode::Br:
            next_slot = (ts.regs[in.src1] != 0) ? 0 : 1;
            if (in.duplicated)
                ++st.duplicated_branches;
            else
                ++st.computation;
            break;
          case Opcode::Jmp:
            // Free pseudo-op: real code generation lays blocks out to
            // fall through; counting explicit jumps would charge the
            // block *structure* of a thread as computation.
            next_slot = 0;
            break;
          case Opcode::Ret:
            ts.done = true;
            --live;
            ++st.computation;
            // The thread owning the original Ret declares the
            // live-outs; worker threads declare none.
            for (Reg r : f.liveOuts())
                result.live_outs.push_back(ts.regs[r]);
            break;
          default:
            ts.regs[in.dst] =
                evalAlu(in.op, in.src1 != kNoReg ? ts.regs[in.src1] : 0,
                        in.src2 != kNoReg ? ts.regs[in.src2] : 0, in.imm);
            ++st.computation;
            break;
        }

        if (ts.done)
            continue;
        if (!advanced)
            continue;
        if (next_slot >= 0) {
            ts.block = bb.succs()[next_slot];
            ts.pos = 0;
        } else {
            ++ts.pos;
            GMT_ASSERT(ts.pos < static_cast<int>(bb.size()),
                       "fell off block without terminator");
        }
    }

    result.queues_drained = queues.allDrained();
    return result;
}

} // namespace gmt
