#ifndef GMT_RUNTIME_MEMORY_IMAGE_HPP
#define GMT_RUNTIME_MEMORY_IMAGE_HPP

/**
 * @file
 * The flat data memory both interpreters execute against. Addresses
 * are cell indices (one cell = one int64). Workloads allocate named
 * regions and fill them with inputs; the equivalence oracle compares
 * whole images after execution.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace gmt
{

/** Flat 64-bit-cell memory with bump allocation. */
class MemoryImage
{
  public:
    MemoryImage() = default;

    /** Allocate @p cells zero-initialized cells. @return base address. */
    int64_t alloc(int64_t cells);

    int64_t read(int64_t addr) const;
    void write(int64_t addr, int64_t value);

    int64_t size() const { return static_cast<int64_t>(cells_.size()); }

    const std::vector<int64_t> &cells() const { return cells_; }

    bool operator==(const MemoryImage &) const = default;

  private:
    std::vector<int64_t> cells_;
};

} // namespace gmt

#endif // GMT_RUNTIME_MEMORY_IMAGE_HPP
