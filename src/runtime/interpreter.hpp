#ifndef GMT_RUNTIME_INTERPRETER_HPP
#define GMT_RUNTIME_INTERPRETER_HPP

/**
 * @file
 * Functional single-threaded interpreter. It is (a) the semantic
 * reference every multi-threaded execution is checked against, and
 * (b) the profiler: it counts every CFG edge's execution frequency,
 * which becomes the arc costs of COCO's min-cut graphs (the paper
 * profiles on "train" inputs and evaluates on "reference" inputs).
 */

#include <cstdint>
#include <vector>

#include "ir/function.hpp"
#include "runtime/memory_image.hpp"
#include "support/error.hpp"

namespace gmt
{

/** Per-edge execution counts collected while interpreting. */
struct ProfileData
{
    /** counts[block][succ_slot] = times the edge was taken. */
    std::vector<std::vector<uint64_t>> edge_counts;

    /** block_counts[block] = times the block was entered. */
    std::vector<uint64_t> block_counts;

    uint64_t edgeCount(BlockId from, int succ_slot) const;
};

/** Result of a single-threaded run. */
struct StRunResult
{
    /** Values of the function's live-out registers at Ret. */
    std::vector<int64_t> live_outs;

    /** Dynamic instructions executed (all are "computation" here). */
    uint64_t dyn_instrs = 0;

    ProfileData profile;
};

/**
 * Evaluate a non-control, non-memory, non-queue opcode. Inline: every
 * interpreter and timing engine pays this per dynamic instruction.
 */
inline int64_t
evalAlu(Opcode op, int64_t a, int64_t b, int64_t imm)
{
    // The IR's i64 wraps on overflow; compute wrap-prone ops in
    // uint64_t, where wraparound is defined, and cast back.
    const uint64_t ua = static_cast<uint64_t>(a);
    const uint64_t ub = static_cast<uint64_t>(b);
    switch (op) {
      case Opcode::Const: return imm;
      case Opcode::Mov: return a;
      case Opcode::Add: return static_cast<int64_t>(ua + ub);
      case Opcode::Sub: return static_cast<int64_t>(ua - ub);
      case Opcode::Mul: return static_cast<int64_t>(ua * ub);
      case Opcode::Div:
        if (b == 0) return 0;
        if (b == -1) return static_cast<int64_t>(0 - ua);
        return a / b;
      case Opcode::Rem:
        return b == 0 || b == -1 ? 0 : a % b;
      case Opcode::And: return a & b;
      case Opcode::Or: return a | b;
      case Opcode::Xor: return a ^ b;
      case Opcode::Shl: return static_cast<int64_t>(ua << (b & 63));
      case Opcode::Shr: return a >> (b & 63);
      case Opcode::Neg: return static_cast<int64_t>(0 - ua);
      case Opcode::Not: return ~a;
      case Opcode::Min: return a < b ? a : b;
      case Opcode::Max: return a > b ? a : b;
      case Opcode::Abs:
        return a < 0 ? static_cast<int64_t>(0 - ua) : a;
      case Opcode::CmpEq: return a == b;
      case Opcode::CmpNe: return a != b;
      case Opcode::CmpLt: return a < b;
      case Opcode::CmpLe: return a <= b;
      case Opcode::CmpGt: return a > b;
      case Opcode::CmpGe: return a >= b;
      default:
        panic("evalAlu on non-ALU opcode ", opcodeName(op));
    }
}

/**
 * Execute @p f to completion.
 *
 * @param f       verified IR function.
 * @param args    one value per f.params() register.
 * @param mem     data memory, mutated in place.
 * @param max_steps safety fuel; exceeding it raises FatalError.
 */
StRunResult interpret(const Function &f, const std::vector<int64_t> &args,
                      MemoryImage &mem, uint64_t max_steps = 500'000'000);

} // namespace gmt

#endif // GMT_RUNTIME_INTERPRETER_HPP
