#ifndef GMT_RUNTIME_INTERPRETER_HPP
#define GMT_RUNTIME_INTERPRETER_HPP

/**
 * @file
 * Functional single-threaded interpreter. It is (a) the semantic
 * reference every multi-threaded execution is checked against, and
 * (b) the profiler: it counts every CFG edge's execution frequency,
 * which becomes the arc costs of COCO's min-cut graphs (the paper
 * profiles on "train" inputs and evaluates on "reference" inputs).
 */

#include <cstdint>
#include <vector>

#include "ir/function.hpp"
#include "runtime/memory_image.hpp"

namespace gmt
{

/** Per-edge execution counts collected while interpreting. */
struct ProfileData
{
    /** counts[block][succ_slot] = times the edge was taken. */
    std::vector<std::vector<uint64_t>> edge_counts;

    /** block_counts[block] = times the block was entered. */
    std::vector<uint64_t> block_counts;

    uint64_t edgeCount(BlockId from, int succ_slot) const;
};

/** Result of a single-threaded run. */
struct StRunResult
{
    /** Values of the function's live-out registers at Ret. */
    std::vector<int64_t> live_outs;

    /** Dynamic instructions executed (all are "computation" here). */
    uint64_t dyn_instrs = 0;

    ProfileData profile;
};

/** Evaluate a non-control, non-memory, non-queue opcode. */
int64_t evalAlu(Opcode op, int64_t a, int64_t b, int64_t imm);

/**
 * Execute @p f to completion.
 *
 * @param f       verified IR function.
 * @param args    one value per f.params() register.
 * @param mem     data memory, mutated in place.
 * @param max_steps safety fuel; exceeding it raises FatalError.
 */
StRunResult interpret(const Function &f, const std::vector<int64_t> &args,
                      MemoryImage &mem, uint64_t max_steps = 500'000'000);

} // namespace gmt

#endif // GMT_RUNTIME_INTERPRETER_HPP
