#include "runtime/memory_image.hpp"

#include "support/error.hpp"

namespace gmt
{

int64_t
MemoryImage::alloc(int64_t cells)
{
    GMT_ASSERT(cells >= 0);
    int64_t base = size();
    cells_.resize(cells_.size() + static_cast<size_t>(cells), 0);
    return base;
}

int64_t
MemoryImage::read(int64_t addr) const
{
    if (addr < 0 || addr >= size())
        fatal("memory read out of bounds: addr=", addr, " size=", size());
    return cells_[static_cast<size_t>(addr)];
}

void
MemoryImage::write(int64_t addr, int64_t value)
{
    if (addr < 0 || addr >= size())
        fatal("memory write out of bounds: addr=", addr, " size=", size());
    cells_[static_cast<size_t>(addr)] = value;
}

} // namespace gmt
