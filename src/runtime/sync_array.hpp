#ifndef GMT_RUNTIME_SYNC_ARRAY_HPP
#define GMT_RUNTIME_SYNC_ARRAY_HPP

/**
 * @file
 * Functional model of the synchronization array [19]: a set of
 * fixed-depth blocking queues addressed by produce/consume. This class
 * models only values and occupancy; timing lives in sim/.
 *
 * The paper's configuration: 256 queues of a single element for
 * GREMIO, 32-element queues for DSWP's pipeline decoupling.
 */

#include <cstdint>
#include <deque>
#include <vector>

namespace gmt
{

/** Blocking-queue array; produce/consume return false when blocked. */
class SyncArray
{
  public:
    /**
     * @param num_queues number of independent queues.
     * @param capacity   per-queue element capacity (>= 1).
     */
    SyncArray(int num_queues, int capacity);

    int numQueues() const { return static_cast<int>(queues_.size()); }
    int capacity() const { return capacity_; }

    /** Try to enqueue; @return false if the queue is full. */
    bool produce(int queue, int64_t value);

    /** Try to dequeue into @p out; @return false if empty. */
    bool consume(int queue, int64_t &out);

    bool full(int queue) const;
    bool empty(int queue) const;
    int occupancy(int queue) const;

    /** True if every queue is empty (deadlock-freedom postcondition). */
    bool allDrained() const;

    /** Total produce operations accepted (for stats). */
    uint64_t totalProduced() const { return total_produced_; }

  private:
    std::vector<std::deque<int64_t>> queues_;
    int capacity_;
    uint64_t total_produced_ = 0;
};

} // namespace gmt

#endif // GMT_RUNTIME_SYNC_ARRAY_HPP
