#ifndef GMT_RUNTIME_SYNC_ARRAY_HPP
#define GMT_RUNTIME_SYNC_ARRAY_HPP

/**
 * @file
 * Functional model of the synchronization array [19]: a set of
 * fixed-depth blocking queues addressed by produce/consume. This class
 * models only values and occupancy; timing lives in sim/.
 *
 * The paper's configuration: 256 queues of a single element for
 * GREMIO, 32-element queues for DSWP's pipeline decoupling.
 *
 * Storage is one flat ring-buffer arena (num_queues x capacity) and
 * the hot produce/consume paths are inline: the MT interpreter calls
 * them once per communication instruction.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gmt
{

/** Blocking-queue array; produce/consume return false when blocked. */
class SyncArray
{
  public:
    /**
     * @param num_queues number of independent queues.
     * @param capacity   per-queue element capacity (>= 1).
     */
    SyncArray(int num_queues, int capacity);

    int numQueues() const { return static_cast<int>(queues_.size()); }
    int capacity() const { return capacity_; }

    /** Try to enqueue; @return false if the queue is full. */
    bool produce(int queue, int64_t value)
    {
        Ring &q = queues_[queue];
        if (q.count >= capacity_)
            return false;
        slots_[static_cast<size_t>(queue) * capacity_ + q.tail] = value;
        q.tail = (q.tail + 1 == capacity_) ? 0 : q.tail + 1;
        ++q.count;
        ++total_produced_;
        return true;
    }

    /** Try to dequeue into @p out; @return false if empty. */
    bool consume(int queue, int64_t &out)
    {
        Ring &q = queues_[queue];
        if (q.count == 0)
            return false;
        out = slots_[static_cast<size_t>(queue) * capacity_ + q.head];
        q.head = (q.head + 1 == capacity_) ? 0 : q.head + 1;
        --q.count;
        return true;
    }

    bool full(int queue) const
    {
        return queues_[queue].count >= capacity_;
    }

    bool empty(int queue) const { return queues_[queue].count == 0; }

    int occupancy(int queue) const { return queues_[queue].count; }

    /** True if every queue is empty (deadlock-freedom postcondition). */
    bool allDrained() const;

    /** Total produce operations accepted (for stats). */
    uint64_t totalProduced() const { return total_produced_; }

  private:
    struct Ring
    {
        int head = 0, tail = 0, count = 0;
    };

    std::vector<Ring> queues_;
    std::vector<int64_t> slots_; ///< num_queues x capacity arena
    int capacity_;
    uint64_t total_produced_ = 0;
};

} // namespace gmt

#endif // GMT_RUNTIME_SYNC_ARRAY_HPP
