#include "runtime/sync_array.hpp"

#include "support/error.hpp"

namespace gmt
{

SyncArray::SyncArray(int num_queues, int capacity)
    : queues_(num_queues),
      slots_(static_cast<size_t>(num_queues) * capacity, 0),
      capacity_(capacity)
{
    GMT_ASSERT(num_queues > 0 && capacity > 0);
}

bool
SyncArray::allDrained() const
{
    for (const auto &q : queues_) {
        if (q.count != 0)
            return false;
    }
    return true;
}

} // namespace gmt
