#include "runtime/sync_array.hpp"

#include "support/error.hpp"

namespace gmt
{

SyncArray::SyncArray(int num_queues, int capacity)
    : queues_(num_queues), capacity_(capacity)
{
    GMT_ASSERT(num_queues > 0 && capacity > 0);
}

bool
SyncArray::produce(int queue, int64_t value)
{
    GMT_ASSERT(queue >= 0 && queue < numQueues(), "bad queue ", queue);
    auto &q = queues_[queue];
    if (static_cast<int>(q.size()) >= capacity_)
        return false;
    q.push_back(value);
    ++total_produced_;
    return true;
}

bool
SyncArray::consume(int queue, int64_t &out)
{
    GMT_ASSERT(queue >= 0 && queue < numQueues(), "bad queue ", queue);
    auto &q = queues_[queue];
    if (q.empty())
        return false;
    out = q.front();
    q.pop_front();
    return true;
}

bool
SyncArray::full(int queue) const
{
    return static_cast<int>(queues_[queue].size()) >= capacity_;
}

bool
SyncArray::empty(int queue) const
{
    return queues_[queue].empty();
}

int
SyncArray::occupancy(int queue) const
{
    return static_cast<int>(queues_[queue].size());
}

bool
SyncArray::allDrained() const
{
    for (const auto &q : queues_) {
        if (!q.empty())
            return false;
    }
    return true;
}

} // namespace gmt
