#include "runtime/interpreter.hpp"

#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace gmt
{

uint64_t
ProfileData::edgeCount(BlockId from, int succ_slot) const
{
    if (from < 0 || from >= static_cast<BlockId>(edge_counts.size()))
        return 0;
    const auto &slots = edge_counts[from];
    if (succ_slot < 0 || succ_slot >= static_cast<int>(slots.size()))
        return 0;
    return slots[succ_slot];
}

StRunResult
interpret(const Function &f, const std::vector<int64_t> &args,
          MemoryImage &mem, uint64_t max_steps)
{
    if (args.size() != f.params().size())
        fatal("interpret: expected ", f.params().size(), " args, got ",
              args.size());

    StRunResult result;
    result.profile.block_counts.assign(f.numBlocks(), 0);
    result.profile.edge_counts.resize(f.numBlocks());
    for (BlockId b = 0; b < f.numBlocks(); ++b) {
        result.profile.edge_counts[b].assign(f.block(b).succs().size(),
                                             0);
    }

    std::vector<int64_t> regs(f.numRegs(), 0);
    for (size_t i = 0; i < args.size(); ++i)
        regs[f.params()[i]] = args[i];

    BlockId cur = f.entry();
    while (true) {
        ++result.profile.block_counts[cur];
        const BasicBlock &bb = f.block(cur);
        int next_slot = -1;
        for (InstrId id : bb.instrs()) {
            if (++result.dyn_instrs > max_steps)
                fatal("interpret: step limit exceeded in @", f.name());
            const Instr &in = f.instr(id);
            switch (in.op) {
              case Opcode::Load:
                regs[in.dst] = mem.read(regs[in.src1] + in.imm);
                break;
              case Opcode::Store:
                mem.write(regs[in.src1] + in.imm, regs[in.src2]);
                break;
              case Opcode::Br:
                next_slot = (regs[in.src1] != 0) ? 0 : 1;
                break;
              case Opcode::Jmp:
                next_slot = 0;
                break;
              case Opcode::Ret: {
                for (Reg r : f.liveOuts())
                    result.live_outs.push_back(regs[r]);
                MetricsRegistry &mr = MetricsRegistry::global();
                mr.counter("interp.runs").add();
                mr.counter("interp.dyn_instrs").add(result.dyn_instrs);
                return result;
              }
              case Opcode::Produce:
              case Opcode::Consume:
              case Opcode::ProduceSync:
              case Opcode::ConsumeSync:
                fatal("interpret: communication instruction in "
                      "single-threaded code");
              default:
                regs[in.dst] = evalAlu(in.op, in.src1 != kNoReg
                                                  ? regs[in.src1]
                                                  : 0,
                                       in.src2 != kNoReg ? regs[in.src2]
                                                         : 0,
                                       in.imm);
                break;
            }
        }
        GMT_ASSERT(next_slot >= 0, "block fell through without terminator");
        ++result.profile.edge_counts[cur][next_slot];
        cur = bb.succs()[next_slot];
    }
}

} // namespace gmt
