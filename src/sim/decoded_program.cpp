#include "sim/decoded_program.hpp"

#include "support/error.hpp"

namespace gmt
{

namespace
{

LatClass
latClassOf(Opcode op)
{
    switch (op) {
      case Opcode::Mul:
        return LatClass::Mul;
      case Opcode::Div:
      case Opcode::Rem:
        return LatClass::Div;
      default:
        return LatClass::Alu;
    }
}

} // namespace

DecodedThread
decodeThread(const Function &f)
{
    DecodedThread t;
    t.num_regs = f.numRegs();
    t.params = f.params();
    t.live_outs = f.liveOuts();

    // First decoded index of each block (blocks laid out in id order,
    // instructions in block order, so in-block flow is index+1).
    std::vector<int32_t> block_start(f.numBlocks(), -1);
    int32_t n = 0;
    for (BlockId b = 0; b < f.numBlocks(); ++b) {
        block_start[b] = n;
        n += static_cast<int32_t>(f.block(b).instrs().size());
    }
    t.code.reserve(n);
    t.block_of.reserve(n);
    t.num_blocks = f.numBlocks();
    t.entry = block_start[f.entry()];

    for (BlockId b = 0; b < f.numBlocks(); ++b) {
        for (InstrId id : f.block(b).instrs()) {
            const Instr &in = f.instr(id);
            DecodedInstr d;
            d.op = in.op;
            d.nsrc = static_cast<uint8_t>(numSrcs(in.op));
            d.lat = latClassOf(in.op);
            d.mem_port = usesMemoryPort(in.op);
            d.dst = in.dst;
            d.src1 = in.src1;
            d.src2 = in.src2;
            d.queue = in.queue;
            d.imm = in.imm;
            switch (in.op) {
              case Opcode::Jmp:
                GMT_ASSERT(f.block(b).succs().size() == 1);
                d.next = block_start[f.block(b).succs()[0]];
                break;
              case Opcode::Br:
                GMT_ASSERT(f.block(b).succs().size() == 2);
                d.next = block_start[f.block(b).succs()[0]];
                d.br_not = block_start[f.block(b).succs()[1]];
                break;
              default:
                break;
            }
            t.code.push_back(d);
            t.block_of.push_back(b);
        }
    }
    GMT_ASSERT(static_cast<int32_t>(t.code.size()) == n);
    return t;
}

DecodedProgram
decodeProgram(const MtProgram &prog)
{
    DecodedProgram dp;
    dp.num_queues = prog.num_queues;
    dp.queue_capacity = prog.queue_capacity;
    dp.threads.reserve(prog.threads.size());
    for (const Function &f : prog.threads)
        dp.threads.push_back(decodeThread(f));
    return dp;
}

} // namespace gmt
