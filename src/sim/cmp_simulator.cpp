#include "sim/cmp_simulator.hpp"

#include <algorithm>
#include <chrono>

#include "obs/metrics.hpp"
#include "runtime/interpreter.hpp"
#include "support/error.hpp"

namespace gmt
{

namespace
{

/** In-flight architectural state of one core (reference engine). */
struct RefCore
{
    const Function *f = nullptr;
    std::vector<int64_t> regs;
    std::vector<uint64_t> reg_ready; ///< cycle the value is usable
    BlockId block = kNoBlock;
    int pos = 0;
    bool done = false;
};

int
latencyOf(const MachineConfig &cfg, Opcode op)
{
    switch (op) {
      case Opcode::Mul:
        return cfg.mul_latency;
      case Opcode::Div:
      case Opcode::Rem:
        return cfg.div_latency;
      default:
        return cfg.alu_latency;
    }
}

/**
 * In-flight state of one core on the fast path. Beyond the
 * architectural state, the core memoizes why it last failed to issue
 * (its wait record): a core blocked on an operand knows the exact
 * cycle it becomes actionable, and a core blocked on a queue records
 * the queue's version stamp so the matching produce/consume (the
 * only events that can unblock it) re-arm it. The wait records are
 * what the cycle-skip engine reads to find the next event.
 */
struct FastCore
{
    enum class Wait : uint8_t {
        None,       ///< must sweep next cycle (no proof of stall)
        Operand,    ///< blocked until reg_ready: actionable at `wake`
        QueueFull,  ///< produce blocked; re-armed by a version bump
        QueueEmpty, ///< consume blocked; re-armed by a version bump
    };

    const DecodedThread *t = nullptr;
    std::vector<int64_t> regs;
    std::vector<uint64_t> reg_ready;
    int32_t ip = 0;
    bool done = false;
    uint64_t done_at = 0; ///< cycle the core retired its Ret

    Wait wait = Wait::None;
    uint64_t wake = 0;        ///< Wait::Operand: first actionable cycle
    QueueId wait_queue = kNoQueue;
    uint64_t wait_version = 0;
};

/** Wedge threshold shared by both engines (cycles with no progress). */
constexpr uint64_t kWedgeCycles = 100000;

[[noreturn]] void
wedged(uint64_t now)
{
    fatal("timing simulator wedged (deadlock in generated "
          "code?) at cycle ",
          now);
}

using SimClock = std::chrono::steady_clock;

double
msSince(SimClock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(SimClock::now() -
                                                     t0)
        .count();
}

} // namespace

const char *
simEngineName(SimEngine e)
{
    return e == SimEngine::Fast ? "fast" : "reference";
}

CmpSimulator::CmpSimulator(const MachineConfig &config, SimEngine engine)
    : config_(config), engine_(engine)
{
}

SimResult
CmpSimulator::run(const MtProgram &prog,
                  const std::vector<int64_t> &args, MemoryImage &mem)
{
    if (engine_ == SimEngine::Reference)
        return runReference(prog, args, mem);
    return run(decodeProgram(prog), args, mem);
}

SimResult
CmpSimulator::runReference(const MtProgram &prog,
                           const std::vector<int64_t> &args,
                           MemoryImage &mem)
{
    auto t0 = SimClock::now();
    const int nc = static_cast<int>(prog.threads.size());
    GMT_ASSERT(nc >= 1);
    if (nc > config_.num_cores)
        fatal("program has ", nc, " threads but the machine has ",
              config_.num_cores, " cores");

    MachineConfig cfg = config_;
    cfg.queue_capacity = prog.queue_capacity;
    // A real compiler multiplexes queues through a queue allocator
    // (paper footnote 1); the model grows the array when a plan uses
    // more than the architected 256.
    cfg.sa_queues = std::max(cfg.sa_queues, prog.num_queues);

    MemoryHierarchy hierarchy(cfg, nc);
    SyncArrayTiming sa(cfg);

    SimResult result;
    result.core.assign(nc, {});

    if (profile_) {
        std::vector<int> blocks_per_core;
        blocks_per_core.reserve(nc);
        for (const Function &f : prog.threads)
            blocks_per_core.push_back(f.numBlocks());
        profile_->init(blocks_per_core, prog.num_queues);
    }
    if (timeline_)
        timeline_->init(nc, prog.num_queues);

    std::vector<RefCore> cores(nc);
    for (int c = 0; c < nc; ++c) {
        const Function &f = prog.threads[c];
        cores[c].f = &f;
        cores[c].regs.assign(f.numRegs(), 0);
        cores[c].reg_ready.assign(f.numRegs(), 0);
        GMT_ASSERT(args.size() == f.params().size());
        for (size_t i = 0; i < args.size(); ++i)
            cores[c].regs[f.params()[i]] = args[i];
        cores[c].block = f.entry();
    }

    uint64_t now = 0;
    uint64_t last_progress = 0;
    int live = nc;

    while (live > 0) {
        sa.beginCycle();
        bool progressed = false;

        for (int c = 0; c < nc; ++c) {
            RefCore &cs = cores[c];
            CoreStats &st = result.core[c];
            if (cs.done) {
                ++st.idle_done;
                if (timeline_)
                    timeline_->noteCore(c, CoreState::Idle, now);
                continue;
            }
            const Function &f = *cs.f;
            int issued = 0;
            int mem_issued = 0;
            int free_ops = 0; // Jmp pseudo-ops retired this cycle
            bool stalled = false;
            // The (at most one) stall counter charged this cycle;
            // the timeline's state when nothing issued.
            CoreState cause = CoreState::Compute;
            bool charged = false;

            while (!cs.done && !stalled &&
                   issued < cfg.issue_width && free_ops < 64) {
                const BasicBlock &bb = f.block(cs.block);
                const Instr &in = f.instr(bb.instrs()[cs.pos]);

                // Scoreboard: stall-on-use.
                uint64_t ready = 0;
                int nsrc = numSrcs(in.op);
                if (nsrc >= 1 && in.src1 != kNoReg)
                    ready = std::max(ready, cs.reg_ready[in.src1]);
                if (nsrc >= 2 && in.src2 != kNoReg)
                    ready = std::max(ready, cs.reg_ready[in.src2]);
                if (in.op == Opcode::Ret) {
                    for (Reg r : f.liveOuts())
                        ready = std::max(ready, cs.reg_ready[r]);
                }
                if (ready > now) {
                    if (issued == 0) {
                        ++st.stall_operand;
                        if (profile_)
                            profile_->chargeOperand(c, cs.block, 1);
                        cause = CoreState::StallOperand;
                        charged = true;
                    }
                    break;
                }

                bool needs_mem_port = usesMemoryPort(in.op);
                if (needs_mem_port && mem_issued >= cfg.mem_ports) {
                    if (issued == 0) {
                        ++st.stall_mem_port;
                        if (profile_)
                            profile_->chargeMemPort(c, cs.block, 1);
                        cause = CoreState::StallMemPort;
                        charged = true;
                    }
                    break;
                }

                int next_slot = -1;
                switch (in.op) {
                  case Opcode::Load: {
                    int64_t addr = cs.regs[in.src1] + in.imm;
                    int lat = hierarchy.loadLatency(c, addr);
                    cs.regs[in.dst] = mem.read(addr);
                    cs.reg_ready[in.dst] = now + lat;
                    break;
                  }
                  case Opcode::Store: {
                    int64_t addr = cs.regs[in.src1] + in.imm;
                    hierarchy.storeLatency(c, addr);
                    mem.write(addr, cs.regs[in.src2]);
                    break;
                  }
                  case Opcode::Produce:
                  case Opcode::ProduceSync: {
                    if (!sa.canProduce(in.queue)) {
                        ++st.stall_queue_full;
                        if (profile_)
                            profile_->chargeQueueFull(c, cs.block,
                                                      in.queue, 1);
                        cause = CoreState::StallQueueFull;
                        charged = true;
                        stalled = true;
                        continue;
                    }
                    if (!sa.portAvailable()) {
                        ++st.stall_sa_port;
                        if (profile_)
                            profile_->chargeSaPort(c, cs.block,
                                                   in.queue, 1);
                        cause = CoreState::StallSaPort;
                        charged = true;
                        sa.notePortConflict();
                        stalled = true;
                        continue;
                    }
                    int64_t v = in.op == Opcode::Produce
                                    ? cs.regs[in.src1]
                                    : 1;
                    sa.produce(in.queue, v);
                    if (profile_)
                        profile_->noteProduce(in.queue);
                    if (timeline_)
                        timeline_->noteQueue(in.queue, now,
                                             sa.occupancy(in.queue));
                    ++st.comm_instrs;
                    break;
                  }
                  case Opcode::Consume:
                  case Opcode::ConsumeSync: {
                    if (!sa.canConsume(in.queue)) {
                        ++st.stall_queue_empty;
                        if (profile_)
                            profile_->chargeQueueEmpty(c, cs.block,
                                                       in.queue, 1);
                        cause = CoreState::StallQueueEmpty;
                        charged = true;
                        stalled = true;
                        continue;
                    }
                    if (!sa.portAvailable()) {
                        ++st.stall_sa_port;
                        if (profile_)
                            profile_->chargeSaPort(c, cs.block,
                                                   in.queue, 1);
                        cause = CoreState::StallSaPort;
                        charged = true;
                        sa.notePortConflict();
                        stalled = true;
                        continue;
                    }
                    int64_t v = sa.consume(in.queue);
                    if (profile_)
                        profile_->noteConsume(in.queue);
                    if (timeline_)
                        timeline_->noteQueue(in.queue, now,
                                             sa.occupancy(in.queue));
                    if (in.op == Opcode::Consume) {
                        cs.regs[in.dst] = v;
                        cs.reg_ready[in.dst] = now + sa.latency();
                    }
                    ++st.comm_instrs;
                    break;
                  }
                  case Opcode::Br:
                    next_slot = (cs.regs[in.src1] != 0) ? 0 : 1;
                    break;
                  case Opcode::Jmp:
                    // Free pseudo-op (fall-through after layout): no
                    // issue slot, no instruction count.
                    cs.block = f.block(cs.block).succs()[0];
                    cs.pos = 0;
                    ++free_ops;
                    progressed = true;
                    continue;
                  case Opcode::Ret:
                    cs.done = true;
                    --live;
                    for (Reg r : f.liveOuts())
                        result.live_outs.push_back(cs.regs[r]);
                    break;
                  default: {
                    int64_t a =
                        in.src1 != kNoReg ? cs.regs[in.src1] : 0;
                    int64_t b =
                        in.src2 != kNoReg ? cs.regs[in.src2] : 0;
                    cs.regs[in.dst] = evalAlu(in.op, a, b, in.imm);
                    cs.reg_ready[in.dst] =
                        now + latencyOf(cfg, in.op);
                    break;
                  }
                }

                ++issued;
                if (needs_mem_port)
                    ++mem_issued;
                ++st.instrs;
                progressed = true;
                if (cs.done)
                    break;
                if (next_slot >= 0) {
                    cs.block = f.block(cs.block).succs()[next_slot];
                    cs.pos = 0;
                } else {
                    ++cs.pos;
                }
            }

            if (timeline_) {
                // issued > 0 wins (a queue stall after issuing still
                // counts the cycle as compute); a cycle with neither
                // issues nor a charge retired only free Jmps.
                CoreState s = (issued > 0 || !charged)
                                  ? CoreState::Compute
                                  : cause;
                timeline_->noteCore(c, s, now);
            }
        }

        if (progressed)
            last_progress = now;
        if (now - last_progress > kWedgeCycles)
            wedged(now);
        ++now;
    }

    result.cycles = now;
    result.queues_drained = sa.allDrained();
    result.sa_port_conflicts = sa.portConflicts();
    for (int c = 0; c < nc; ++c) {
        result.l1_hits += hierarchy.l1(c).hits();
        result.l1_misses += hierarchy.l1(c).misses();
        result.l2_hits += hierarchy.l2(c).hits();
        result.l2_misses += hierarchy.l2(c).misses();
    }
    result.l3_hits = hierarchy.l3().hits();
    result.l3_misses = hierarchy.l3().misses();
    result.engine.engine = SimEngine::Reference;
    result.engine.iterations = now;
    result.engine.skipped = 0;
    result.engine.wall_ms = msSince(t0);
    MetricsRegistry &mr = MetricsRegistry::global();
    mr.counter("sim.runs").add();
    mr.counter("sim.cycles").add(result.cycles);
    return result;
}

/*
 * The event-driven fast path. Three mechanisms, each provably
 * behaviour-preserving (the full argument lives in DESIGN.md):
 *
 *  1. Pre-decoded streams: the inner issue loop walks a flat
 *     DecodedInstr array; control flow follows pre-resolved indices.
 *     Jmp records are kept (not collapsed) so the reference loop's
 *     free-op accounting — including its 64-per-cycle cap — is
 *     reproduced exactly.
 *
 *  2. Wait records: a core that failed to issue remembers why. An
 *     operand stall is actionable at a known cycle (reg_ready only
 *     changes when the core itself issues); a queue stall is
 *     actionable only after the queue's version stamp changes (only
 *     produce/consume — i.e. another core's progress — can change
 *     the occupancy). Until then the core charges the same stall
 *     counter the reference sweep would recompute, without decoding
 *     anything.
 *
 *  3. Cycle skipping: in a cycle where no core made progress and
 *     every live core holds a wait record, the next cycles are
 *     provably identical no-progress sweeps until the earliest
 *     operand wake-up (queue waits cannot resolve on their own: no
 *     progress means no produce/consume). `now` jumps there and the
 *     per-core stall counters are bulk-incremented by the skipped
 *     span, so every CoreStats field equals the reference's. The
 *     jump is capped at the wedge boundary (last_progress +
 *     kWedgeCycles + 1): a deadlocked program reaches the boundary,
 *     sweeps one fruitless cycle, and dies on the same cycle number
 *     with the same message as the reference loop.
 */
SimResult
CmpSimulator::run(const DecodedProgram &prog,
                  const std::vector<int64_t> &args, MemoryImage &mem)
{
    auto t0 = SimClock::now();
    const int nc = static_cast<int>(prog.threads.size());
    GMT_ASSERT(nc >= 1);
    if (nc > config_.num_cores)
        fatal("program has ", nc, " threads but the machine has ",
              config_.num_cores, " cores");

    MachineConfig cfg = config_;
    cfg.queue_capacity = prog.queue_capacity;
    cfg.sa_queues = std::max(cfg.sa_queues, prog.num_queues);

    MemoryHierarchy hierarchy(cfg, nc);
    SyncArrayTiming sa(cfg);

    SimResult result;
    result.core.assign(nc, {});

    if (profile_) {
        std::vector<int> blocks_per_core;
        blocks_per_core.reserve(nc);
        for (const DecodedThread &t : prog.threads)
            blocks_per_core.push_back(t.num_blocks);
        profile_->init(blocks_per_core, prog.num_queues);
    }
    if (timeline_)
        timeline_->init(nc, prog.num_queues);

    std::vector<FastCore> cores(nc);
    for (int c = 0; c < nc; ++c) {
        const DecodedThread &t = prog.threads[c];
        cores[c].t = &t;
        cores[c].regs.assign(t.num_regs, 0);
        cores[c].reg_ready.assign(t.num_regs, 0);
        GMT_ASSERT(args.size() == t.params.size());
        for (size_t i = 0; i < args.size(); ++i)
            cores[c].regs[t.params[i]] = args[i];
        cores[c].ip = t.entry;
    }

    const int lat_table[3] = {cfg.alu_latency, cfg.mul_latency,
                              cfg.div_latency};

    uint64_t now = 0;
    uint64_t last_progress = 0;
    uint64_t iterations = 0;
    uint64_t skipped = 0;
    int live = nc;

    while (live > 0) {
        sa.beginCycle();
        ++iterations;
        bool progressed = false;

        for (int c = 0; c < nc; ++c) {
            FastCore &cs = cores[c];
            CoreStats &st = result.core[c];
            // idle_done has a closed form (cycles - 1 - done_at),
            // filled in after the loop; done cores cost nothing here.
            if (cs.done)
                continue;

            // Still provably blocked: charge the stall the reference
            // sweep would recompute and move on. The blocked
            // instruction is code[ip] (ip never moves while blocked),
            // so block_of[ip] is the block the reference would charge.
            if (cs.wait == FastCore::Wait::Operand && now < cs.wake) {
                ++st.stall_operand;
                if (profile_)
                    profile_->chargeOperand(
                        c, cs.t->block_of[cs.ip], 1);
                if (timeline_)
                    timeline_->noteCore(c, CoreState::StallOperand,
                                        now);
                continue;
            }
            if (cs.wait == FastCore::Wait::QueueFull &&
                sa.version(cs.wait_queue) == cs.wait_version) {
                ++st.stall_queue_full;
                if (profile_)
                    profile_->chargeQueueFull(
                        c, cs.t->block_of[cs.ip], cs.wait_queue, 1);
                if (timeline_)
                    timeline_->noteCore(c, CoreState::StallQueueFull,
                                        now);
                continue;
            }
            if (cs.wait == FastCore::Wait::QueueEmpty &&
                sa.version(cs.wait_queue) == cs.wait_version) {
                ++st.stall_queue_empty;
                if (profile_)
                    profile_->chargeQueueEmpty(
                        c, cs.t->block_of[cs.ip], cs.wait_queue, 1);
                if (timeline_)
                    timeline_->noteCore(c, CoreState::StallQueueEmpty,
                                        now);
                continue;
            }
            cs.wait = FastCore::Wait::None;

            const DecodedInstr *code = cs.t->code.data();
            int issued = 0;
            int mem_issued = 0;
            int free_ops = 0; // Jmp pseudo-ops retired this cycle
            bool stalled = false;
            // The (at most one) stall counter charged this cycle;
            // mirrors the reference engine's timeline state.
            CoreState cause = CoreState::Compute;
            bool charged = false;

            while (!cs.done && !stalled &&
                   issued < cfg.issue_width && free_ops < 64) {
                const DecodedInstr &d = code[cs.ip];

                // Scoreboard: stall-on-use.
                uint64_t ready = 0;
                if (d.nsrc >= 1 && d.src1 != kNoReg)
                    ready = std::max(ready, cs.reg_ready[d.src1]);
                if (d.nsrc >= 2 && d.src2 != kNoReg)
                    ready = std::max(ready, cs.reg_ready[d.src2]);
                if (d.op == Opcode::Ret) {
                    for (Reg r : cs.t->live_outs)
                        ready = std::max(ready, cs.reg_ready[r]);
                }
                if (ready > now) {
                    if (issued == 0) {
                        ++st.stall_operand;
                        if (profile_)
                            profile_->chargeOperand(
                                c, cs.t->block_of[cs.ip], 1);
                        cause = CoreState::StallOperand;
                        charged = true;
                    }
                    cs.wait = FastCore::Wait::Operand;
                    cs.wake = ready;
                    break;
                }

                if (d.mem_port && mem_issued >= cfg.mem_ports) {
                    if (issued == 0) {
                        ++st.stall_mem_port;
                        if (profile_)
                            profile_->chargeMemPort(
                                c, cs.t->block_of[cs.ip], 1);
                        cause = CoreState::StallMemPort;
                        charged = true;
                    }
                    break;
                }

                int32_t next_ip = cs.ip + 1;
                switch (d.op) {
                  case Opcode::Load: {
                    int64_t addr = cs.regs[d.src1] + d.imm;
                    int lat = hierarchy.loadLatency(c, addr);
                    cs.regs[d.dst] = mem.read(addr);
                    cs.reg_ready[d.dst] = now + lat;
                    break;
                  }
                  case Opcode::Store: {
                    int64_t addr = cs.regs[d.src1] + d.imm;
                    hierarchy.storeLatency(c, addr);
                    mem.write(addr, cs.regs[d.src2]);
                    break;
                  }
                  case Opcode::Produce:
                  case Opcode::ProduceSync: {
                    if (!sa.canProduce(d.queue)) {
                        ++st.stall_queue_full;
                        if (profile_)
                            profile_->chargeQueueFull(
                                c, cs.t->block_of[cs.ip], d.queue, 1);
                        cause = CoreState::StallQueueFull;
                        charged = true;
                        cs.wait = FastCore::Wait::QueueFull;
                        cs.wait_queue = d.queue;
                        cs.wait_version = sa.version(d.queue);
                        stalled = true;
                        continue;
                    }
                    if (!sa.portAvailable()) {
                        ++st.stall_sa_port;
                        if (profile_)
                            profile_->chargeSaPort(
                                c, cs.t->block_of[cs.ip], d.queue, 1);
                        cause = CoreState::StallSaPort;
                        charged = true;
                        sa.notePortConflict();
                        stalled = true;
                        continue;
                    }
                    int64_t v = d.op == Opcode::Produce
                                    ? cs.regs[d.src1]
                                    : 1;
                    sa.produce(d.queue, v);
                    if (profile_)
                        profile_->noteProduce(d.queue);
                    if (timeline_)
                        timeline_->noteQueue(d.queue, now,
                                             sa.occupancy(d.queue));
                    ++st.comm_instrs;
                    break;
                  }
                  case Opcode::Consume:
                  case Opcode::ConsumeSync: {
                    if (!sa.canConsume(d.queue)) {
                        ++st.stall_queue_empty;
                        if (profile_)
                            profile_->chargeQueueEmpty(
                                c, cs.t->block_of[cs.ip], d.queue, 1);
                        cause = CoreState::StallQueueEmpty;
                        charged = true;
                        cs.wait = FastCore::Wait::QueueEmpty;
                        cs.wait_queue = d.queue;
                        cs.wait_version = sa.version(d.queue);
                        stalled = true;
                        continue;
                    }
                    if (!sa.portAvailable()) {
                        ++st.stall_sa_port;
                        if (profile_)
                            profile_->chargeSaPort(
                                c, cs.t->block_of[cs.ip], d.queue, 1);
                        cause = CoreState::StallSaPort;
                        charged = true;
                        sa.notePortConflict();
                        stalled = true;
                        continue;
                    }
                    int64_t v = sa.consume(d.queue);
                    if (profile_)
                        profile_->noteConsume(d.queue);
                    if (timeline_)
                        timeline_->noteQueue(d.queue, now,
                                             sa.occupancy(d.queue));
                    if (d.op == Opcode::Consume) {
                        cs.regs[d.dst] = v;
                        cs.reg_ready[d.dst] = now + sa.latency();
                    }
                    ++st.comm_instrs;
                    break;
                  }
                  case Opcode::Br:
                    next_ip =
                        (cs.regs[d.src1] != 0) ? d.next : d.br_not;
                    break;
                  case Opcode::Jmp:
                    // Free pseudo-op (fall-through after layout): no
                    // issue slot, no instruction count.
                    cs.ip = d.next;
                    ++free_ops;
                    progressed = true;
                    continue;
                  case Opcode::Ret:
                    cs.done = true;
                    cs.done_at = now;
                    --live;
                    for (Reg r : cs.t->live_outs)
                        result.live_outs.push_back(cs.regs[r]);
                    break;
                  default: {
                    int64_t a =
                        d.src1 != kNoReg ? cs.regs[d.src1] : 0;
                    int64_t b =
                        d.src2 != kNoReg ? cs.regs[d.src2] : 0;
                    cs.regs[d.dst] = evalAlu(d.op, a, b, d.imm);
                    cs.reg_ready[d.dst] =
                        now + lat_table[static_cast<int>(d.lat)];
                    break;
                  }
                }

                ++issued;
                if (d.mem_port)
                    ++mem_issued;
                ++st.instrs;
                progressed = true;
                if (cs.done)
                    break;
                cs.ip = next_ip;
            }

            if (timeline_) {
                CoreState s = (issued > 0 || !charged)
                                  ? CoreState::Compute
                                  : cause;
                timeline_->noteCore(c, s, now);
            }
        }

        if (progressed)
            last_progress = now;
        if (now - last_progress > kWedgeCycles)
            wedged(now);

        if (!progressed && live > 0) {
            // Cycle-skip engine: find the next actionable cycle.
            uint64_t next_event = UINT64_MAX;
            bool skippable = true;
            for (int c = 0; c < nc && skippable; ++c) {
                const FastCore &cs = cores[c];
                if (cs.done)
                    continue;
                switch (cs.wait) {
                  case FastCore::Wait::Operand:
                    next_event = std::min(next_event, cs.wake);
                    break;
                  case FastCore::Wait::QueueFull:
                  case FastCore::Wait::QueueEmpty:
                    // Only another core's progress can re-arm it; no
                    // event of its own.
                    break;
                  case FastCore::Wait::None:
                    // No proof the next cycle looks the same (port
                    // budgets reset); sweep it.
                    skippable = false;
                    break;
                }
            }
            if (skippable) {
                // Never skip past the wedge boundary: if next_event
                // is beyond it (or does not exist — all cores queue
                // blocked), the sweep at the boundary makes no
                // progress and dies exactly like the reference.
                uint64_t target = last_progress + kWedgeCycles + 1;
                if (next_event < target)
                    target = next_event;
                if (target > now + 1) {
                    // Cycles (now, target) are identical no-progress
                    // sweeps: bulk-charge the same counter — and the
                    // same (block, queue) attribution — each would
                    // have charged one at a time.
                    uint64_t span = target - now - 1;
                    for (int c = 0; c < nc; ++c) {
                        FastCore &cs = cores[c];
                        CoreStats &st = result.core[c];
                        CoreState s;
                        if (cs.done)
                            continue; // closed form, see below
                        else if (cs.wait == FastCore::Wait::Operand) {
                            st.stall_operand += span;
                            if (profile_)
                                profile_->chargeOperand(
                                    c, cs.t->block_of[cs.ip], span);
                            s = CoreState::StallOperand;
                        } else if (cs.wait ==
                                   FastCore::Wait::QueueFull) {
                            st.stall_queue_full += span;
                            if (profile_)
                                profile_->chargeQueueFull(
                                    c, cs.t->block_of[cs.ip],
                                    cs.wait_queue, span);
                            s = CoreState::StallQueueFull;
                        } else {
                            st.stall_queue_empty += span;
                            if (profile_)
                                profile_->chargeQueueEmpty(
                                    c, cs.t->block_of[cs.ip],
                                    cs.wait_queue, span);
                            s = CoreState::StallQueueEmpty;
                        }
                        if (timeline_)
                            timeline_->noteCoreSpan(c, s, now + 1,
                                                    target);
                    }
                    skipped += span;
                    now = target;
                    continue;
                }
            }
        }
        ++now;
    }

    result.cycles = now;
    result.queues_drained = sa.allDrained();
    result.sa_port_conflicts = sa.portConflicts();
    for (int c = 0; c < nc; ++c) {
        // The reference sweep charges a done core one idle_done per
        // remaining cycle; that is exactly the cycles after its Ret
        // up to (and including) the last swept cycle, cycles - 1.
        result.core[c].idle_done = now - 1 - cores[c].done_at;
        if (timeline_)
            timeline_->noteCoreSpan(c, CoreState::Idle,
                                    cores[c].done_at + 1, now);
        result.l1_hits += hierarchy.l1(c).hits();
        result.l1_misses += hierarchy.l1(c).misses();
        result.l2_hits += hierarchy.l2(c).hits();
        result.l2_misses += hierarchy.l2(c).misses();
    }
    result.l3_hits = hierarchy.l3().hits();
    result.l3_misses = hierarchy.l3().misses();
    result.engine.engine = SimEngine::Fast;
    result.engine.iterations = iterations;
    result.engine.skipped = skipped;
    result.engine.wall_ms = msSince(t0);
    MetricsRegistry &mr = MetricsRegistry::global();
    mr.counter("sim.runs").add();
    mr.counter("sim.cycles").add(result.cycles);
    mr.counter("sim.skipped_cycles").add(skipped);
    return result;
}

std::vector<CoreStallTotals>
stallTotals(const SimResult &r)
{
    std::vector<CoreStallTotals> totals(r.core.size());
    for (size_t c = 0; c < r.core.size(); ++c) {
        const CoreStats &st = r.core[c];
        totals[c].operand = st.stall_operand;
        totals[c].mem_port = st.stall_mem_port;
        totals[c].queue_full = st.stall_queue_full;
        totals[c].queue_empty = st.stall_queue_empty;
        totals[c].sa_port = st.stall_sa_port;
    }
    return totals;
}

SimResult
simulateSingleThreaded(const Function &f,
                       const std::vector<int64_t> &args,
                       MemoryImage &mem, const MachineConfig &config,
                       SimEngine engine)
{
    MtProgram prog;
    prog.threads.push_back(f); // copy
    prog.num_queues = 0;
    prog.queue_capacity = config.queue_capacity;
    CmpSimulator sim(config, engine);
    return sim.run(prog, args, mem);
}

} // namespace gmt
