#include "sim/cmp_simulator.hpp"

#include <algorithm>

#include "runtime/interpreter.hpp"
#include "support/error.hpp"

namespace gmt
{

namespace
{

/** In-flight architectural state of one core. */
struct CoreState
{
    const Function *f = nullptr;
    std::vector<int64_t> regs;
    std::vector<uint64_t> reg_ready; ///< cycle the value is usable
    BlockId block = kNoBlock;
    int pos = 0;
    bool done = false;
};

int
latencyOf(const MachineConfig &cfg, Opcode op)
{
    switch (op) {
      case Opcode::Mul:
        return cfg.mul_latency;
      case Opcode::Div:
      case Opcode::Rem:
        return cfg.div_latency;
      default:
        return cfg.alu_latency;
    }
}

} // namespace

CmpSimulator::CmpSimulator(const MachineConfig &config)
    : config_(config)
{
}

SimResult
CmpSimulator::run(const MtProgram &prog,
                  const std::vector<int64_t> &args, MemoryImage &mem)
{
    const int nc = static_cast<int>(prog.threads.size());
    GMT_ASSERT(nc >= 1);
    if (nc > config_.num_cores)
        fatal("program has ", nc, " threads but the machine has ",
              config_.num_cores, " cores");

    MachineConfig cfg = config_;
    cfg.queue_capacity = prog.queue_capacity;
    // A real compiler multiplexes queues through a queue allocator
    // (paper footnote 1); the model grows the array when a plan uses
    // more than the architected 256.
    cfg.sa_queues = std::max(cfg.sa_queues, prog.num_queues);

    MemoryHierarchy hierarchy(cfg, nc);
    SyncArrayTiming sa(cfg);

    SimResult result;
    result.core.assign(nc, {});

    std::vector<CoreState> cores(nc);
    for (int c = 0; c < nc; ++c) {
        const Function &f = prog.threads[c];
        cores[c].f = &f;
        cores[c].regs.assign(f.numRegs(), 0);
        cores[c].reg_ready.assign(f.numRegs(), 0);
        GMT_ASSERT(args.size() == f.params().size());
        for (size_t i = 0; i < args.size(); ++i)
            cores[c].regs[f.params()[i]] = args[i];
        cores[c].block = f.entry();
    }

    uint64_t now = 0;
    uint64_t last_progress = 0;
    int live = nc;

    while (live > 0) {
        sa.beginCycle();
        bool progressed = false;

        for (int c = 0; c < nc; ++c) {
            CoreState &cs = cores[c];
            CoreStats &st = result.core[c];
            if (cs.done) {
                ++st.idle_done;
                continue;
            }
            const Function &f = *cs.f;
            int issued = 0;
            int mem_issued = 0;
            int free_ops = 0; // Jmp pseudo-ops retired this cycle
            bool stalled = false;

            while (!cs.done && !stalled &&
                   issued < cfg.issue_width && free_ops < 64) {
                const BasicBlock &bb = f.block(cs.block);
                const Instr &in = f.instr(bb.instrs()[cs.pos]);

                // Scoreboard: stall-on-use.
                uint64_t ready = 0;
                int nsrc = numSrcs(in.op);
                if (nsrc >= 1 && in.src1 != kNoReg)
                    ready = std::max(ready, cs.reg_ready[in.src1]);
                if (nsrc >= 2 && in.src2 != kNoReg)
                    ready = std::max(ready, cs.reg_ready[in.src2]);
                if (in.op == Opcode::Ret) {
                    for (Reg r : f.liveOuts())
                        ready = std::max(ready, cs.reg_ready[r]);
                }
                if (ready > now) {
                    if (issued == 0)
                        ++st.stall_operand;
                    break;
                }

                bool needs_mem_port = usesMemoryPort(in.op);
                if (needs_mem_port && mem_issued >= cfg.mem_ports) {
                    if (issued == 0)
                        ++st.stall_mem_port;
                    break;
                }

                int next_slot = -1;
                switch (in.op) {
                  case Opcode::Load: {
                    int64_t addr = cs.regs[in.src1] + in.imm;
                    int lat = hierarchy.loadLatency(c, addr);
                    cs.regs[in.dst] = mem.read(addr);
                    cs.reg_ready[in.dst] = now + lat;
                    break;
                  }
                  case Opcode::Store: {
                    int64_t addr = cs.regs[in.src1] + in.imm;
                    hierarchy.storeLatency(c, addr);
                    mem.write(addr, cs.regs[in.src2]);
                    break;
                  }
                  case Opcode::Produce:
                  case Opcode::ProduceSync: {
                    if (!sa.canProduce(in.queue)) {
                        ++st.stall_queue_full;
                        stalled = true;
                        continue;
                    }
                    if (!sa.portAvailable()) {
                        ++st.stall_sa_port;
                        sa.notePortConflict();
                        stalled = true;
                        continue;
                    }
                    int64_t v = in.op == Opcode::Produce
                                    ? cs.regs[in.src1]
                                    : 1;
                    sa.produce(in.queue, v);
                    ++st.comm_instrs;
                    break;
                  }
                  case Opcode::Consume:
                  case Opcode::ConsumeSync: {
                    if (!sa.canConsume(in.queue)) {
                        ++st.stall_queue_empty;
                        stalled = true;
                        continue;
                    }
                    if (!sa.portAvailable()) {
                        ++st.stall_sa_port;
                        sa.notePortConflict();
                        stalled = true;
                        continue;
                    }
                    int64_t v = sa.consume(in.queue);
                    if (in.op == Opcode::Consume) {
                        cs.regs[in.dst] = v;
                        cs.reg_ready[in.dst] = now + sa.latency();
                    }
                    ++st.comm_instrs;
                    break;
                  }
                  case Opcode::Br:
                    next_slot = (cs.regs[in.src1] != 0) ? 0 : 1;
                    break;
                  case Opcode::Jmp:
                    // Free pseudo-op (fall-through after layout): no
                    // issue slot, no instruction count.
                    cs.block = f.block(cs.block).succs()[0];
                    cs.pos = 0;
                    ++free_ops;
                    progressed = true;
                    continue;
                  case Opcode::Ret:
                    cs.done = true;
                    --live;
                    for (Reg r : f.liveOuts())
                        result.live_outs.push_back(cs.regs[r]);
                    break;
                  default: {
                    int64_t a =
                        in.src1 != kNoReg ? cs.regs[in.src1] : 0;
                    int64_t b =
                        in.src2 != kNoReg ? cs.regs[in.src2] : 0;
                    cs.regs[in.dst] = evalAlu(in.op, a, b, in.imm);
                    cs.reg_ready[in.dst] =
                        now + latencyOf(cfg, in.op);
                    break;
                  }
                }

                ++issued;
                if (needs_mem_port)
                    ++mem_issued;
                ++st.instrs;
                progressed = true;
                if (cs.done)
                    break;
                if (next_slot >= 0) {
                    cs.block = f.block(cs.block).succs()[next_slot];
                    cs.pos = 0;
                } else {
                    ++cs.pos;
                }
            }
        }

        if (progressed)
            last_progress = now;
        if (now - last_progress > 100000)
            fatal("timing simulator wedged (deadlock in generated "
                  "code?) at cycle ",
                  now);
        ++now;
    }

    result.cycles = now;
    result.queues_drained = sa.allDrained();
    result.sa_port_conflicts = sa.portConflicts();
    for (int c = 0; c < nc; ++c) {
        result.l1_hits += hierarchy.l1(c).hits();
        result.l1_misses += hierarchy.l1(c).misses();
        result.l2_hits += hierarchy.l2(c).hits();
        result.l2_misses += hierarchy.l2(c).misses();
    }
    result.l3_hits = hierarchy.l3().hits();
    result.l3_misses = hierarchy.l3().misses();
    return result;
}

SimResult
simulateSingleThreaded(const Function &f,
                       const std::vector<int64_t> &args,
                       MemoryImage &mem, const MachineConfig &config)
{
    MtProgram prog;
    prog.threads.push_back(f); // copy
    prog.num_queues = 0;
    prog.queue_capacity = config.queue_capacity;
    CmpSimulator sim(config);
    return sim.run(prog, args, mem);
}

} // namespace gmt
