#ifndef GMT_SIM_MACHINE_CONFIG_HPP
#define GMT_SIM_MACHINE_CONFIG_HPP

/**
 * @file
 * The simulated dual-core CMP of the paper's Figure 6(a): two
 * Itanium 2-like in-order cores connected by the synchronization
 * array [19], with private L1D/L2 caches, a shared L3, and a
 * snoop-based write-invalidate protocol. See DESIGN.md for how this
 * simplified model substitutes the authors' validated cycle-accurate
 * simulator while preserving the effects COCO exploits.
 */

#include <iosfwd>

namespace gmt
{

/** One cache level. */
struct CacheConfig
{
    int size_bytes = 0;
    int associativity = 1;
    int line_bytes = 64;
    int hit_latency = 1;
};

/** The whole machine (defaults = Figure 6(a)). */
struct MachineConfig
{
    int num_cores = 2;

    // Core: "6 issue, 6 ALU, 4 memory, 2 FP, 3 branch".
    int issue_width = 6;
    int mem_ports = 4; ///< M-type slots/cycle (loads, stores, queues)

    // Simple latency table.
    int alu_latency = 1;
    int mul_latency = 3;
    int div_latency = 12;

    CacheConfig l1d{16 * 1024, 4, 64, 1};
    CacheConfig l2{256 * 1024, 8, 128, 7};
    CacheConfig l3{1536 * 1024, 12, 128, 12}; ///< shared
    int memory_latency = 141;

    // Synchronization array [19].
    int sa_queues = 256;
    int sa_ports = 4;   ///< request ports shared between the cores
    int sa_latency = 1; ///< access latency
    int queue_capacity = 32; ///< 32 for DSWP, 1 for GREMIO (paper §4)

    /** The paper's configuration. */
    static MachineConfig paperDefault() { return {}; }

    /** Render the Figure 6(a) table. */
    void print(std::ostream &os) const;
};

} // namespace gmt

#endif // GMT_SIM_MACHINE_CONFIG_HPP
