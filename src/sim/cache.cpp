#include "sim/cache.hpp"

#include "support/error.hpp"

namespace gmt
{

Cache::Cache(const CacheConfig &config) : config_(config)
{
    int lines = config.size_bytes / config.line_bytes;
    GMT_ASSERT(lines > 0 && config.associativity > 0);
    num_sets_ = lines / config.associativity;
    GMT_ASSERT(num_sets_ > 0, "cache too small for associativity");
    lines_.assign(static_cast<size_t>(num_sets_) *
                      config.associativity,
                  {});
}

uint64_t
Cache::lineOf(uint64_t addr) const
{
    return addr / static_cast<uint64_t>(config_.line_bytes);
}

int
Cache::setOf(uint64_t line) const
{
    return static_cast<int>(line % static_cast<uint64_t>(num_sets_));
}

bool
Cache::lookup(uint64_t addr)
{
    uint64_t line = lineOf(addr);
    int set = setOf(line);
    Line *base = &lines_[static_cast<size_t>(set) *
                         config_.associativity];
    for (int w = 0; w < config_.associativity; ++w) {
        if (base[w].valid && base[w].tag == line) {
            base[w].lru = ++stamp_;
            ++hits_;
            return true;
        }
    }
    ++misses_;
    return false;
}

void
Cache::fill(uint64_t addr)
{
    uint64_t line = lineOf(addr);
    int set = setOf(line);
    Line *base = &lines_[static_cast<size_t>(set) *
                         config_.associativity];
    Line *victim = &base[0];
    for (int w = 0; w < config_.associativity; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lru < victim->lru)
            victim = &base[w];
    }
    victim->valid = true;
    victim->tag = line;
    victim->lru = ++stamp_;
}

void
Cache::invalidate(uint64_t addr)
{
    uint64_t line = lineOf(addr);
    int set = setOf(line);
    Line *base = &lines_[static_cast<size_t>(set) *
                         config_.associativity];
    for (int w = 0; w < config_.associativity; ++w) {
        if (base[w].valid && base[w].tag == line)
            base[w].valid = false;
    }
}

MemoryHierarchy::MemoryHierarchy(const MachineConfig &config,
                                 int num_cores)
    : config_(config), l3_(config.l3)
{
    for (int c = 0; c < num_cores; ++c) {
        l1_.emplace_back(config.l1d);
        l2_.emplace_back(config.l2);
    }
}

int
MemoryHierarchy::accessLatency(int core, int64_t cell, bool is_store)
{
    uint64_t addr = static_cast<uint64_t>(cell) * 8; // 8-byte cells
    int latency = 0;
    if (l1_[core].lookup(addr)) {
        latency = l1_[core].hitLatency();
    } else if (l2_[core].lookup(addr)) {
        latency = l2_[core].hitLatency();
        l1_[core].fill(addr);
    } else if (l3_.lookup(addr)) {
        latency = l3_.hitLatency();
        l2_[core].fill(addr);
        l1_[core].fill(addr);
    } else {
        latency = config_.memory_latency;
        l3_.fill(addr);
        l2_[core].fill(addr);
        l1_[core].fill(addr);
    }
    if (is_store) {
        // Snoop-based write-invalidate: other cores drop their copy.
        for (size_t c = 0; c < l1_.size(); ++c) {
            if (static_cast<int>(c) != core) {
                l1_[c].invalidate(addr);
                l2_[c].invalidate(addr);
            }
        }
    }
    return latency;
}

int
MemoryHierarchy::loadLatency(int core, int64_t cell)
{
    return accessLatency(core, cell, false);
}

int
MemoryHierarchy::storeLatency(int core, int64_t cell)
{
    return accessLatency(core, cell, true);
}

} // namespace gmt
