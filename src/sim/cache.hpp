#ifndef GMT_SIM_CACHE_HPP
#define GMT_SIM_CACHE_HPP

/**
 * @file
 * Set-associative LRU cache model and the per-core hierarchy of
 * Figure 6(a): private L1D and L2, shared L3, main memory, with a
 * snoop-based write-invalidate protocol between the cores' private
 * levels. Timing only — data values live in the functional
 * MemoryImage; the model returns access latencies.
 */

#include <cstdint>
#include <vector>

#include "sim/machine_config.hpp"

namespace gmt
{

/** One set-associative LRU cache. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Look up @p addr (byte address). On a hit the line's LRU state
     * is refreshed. @return hit?
     */
    bool lookup(uint64_t addr);

    /** Install the line holding @p addr (evicts LRU). */
    void fill(uint64_t addr);

    /** Invalidate the line holding @p addr if present. */
    void invalidate(uint64_t addr);

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    int hitLatency() const { return config_.hit_latency; }

  private:
    struct Line
    {
        uint64_t tag = 0;
        bool valid = false;
        uint64_t lru = 0; ///< last-touch stamp
    };

    uint64_t lineOf(uint64_t addr) const;
    int setOf(uint64_t line) const;

    CacheConfig config_;
    int num_sets_;
    std::vector<Line> lines_; ///< num_sets_ x associativity
    uint64_t stamp_ = 0;
    uint64_t hits_ = 0, misses_ = 0;
};

/** Per-core private levels over a shared L3 with write-invalidate. */
class MemoryHierarchy
{
  public:
    MemoryHierarchy(const MachineConfig &config, int num_cores);

    /** Latency of a load of cell index @p cell by core @p core. */
    int loadLatency(int core, int64_t cell);

    /**
     * Latency of a store (write-through L1, write-back below;
     * modeled as the fill latency of the owning level) plus snoop
     * invalidation of the other cores' private lines.
     */
    int storeLatency(int core, int64_t cell);

    const Cache &l1(int core) const { return l1_[core]; }
    const Cache &l2(int core) const { return l2_[core]; }
    const Cache &l3() const { return l3_; }

  private:
    int accessLatency(int core, int64_t cell, bool is_store);

    MachineConfig config_;
    std::vector<Cache> l1_, l2_;
    Cache l3_;
};

} // namespace gmt

#endif // GMT_SIM_CACHE_HPP
