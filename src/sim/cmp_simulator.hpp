#ifndef GMT_SIM_CMP_SIMULATOR_HPP
#define GMT_SIM_CMP_SIMULATOR_HPP

/**
 * @file
 * CMP timing simulator: in-order multi-issue cores with the Figure
 * 6(a) memory hierarchy and synchronization array. It executes an
 * MtProgram functionally while charging cycles, so its results double
 * as a third execution oracle (interpreter, MT interpreter, timing
 * simulator must agree).
 *
 * Two engines produce bit-identical SimResults (asserted across the
 * whole benchmark matrix by tests/test_sim_fast.cpp):
 *
 *  - SimEngine::Reference — the original lock-step loop: advance
 *    `now` one cycle at a time, re-fetching every core's next
 *    instruction through the Function/BasicBlock indirections.
 *  - SimEngine::Fast — the event-driven fast path (the default):
 *    pre-decoded flat instruction streams (decoded_program.hpp), a
 *    cycle-skip engine that jumps `now` to the next actionable event
 *    when every live core is provably stalled (bulk-incrementing the
 *    per-core stall counters by the skipped span so the accounting
 *    stays exact), and queue version stamps (sync_array_timing.hpp)
 *    that re-arm queue-blocked cores on the matching produce/consume
 *    instead of polling occupancy every cycle. DESIGN.md ("The
 *    event-driven simulator") gives the skip-safety argument.
 *
 * Model summary (substitutions documented in DESIGN.md):
 *  - in-order issue of up to issue_width instructions/cycle, at most
 *    mem_ports of which may be loads/stores/queue accesses (the
 *    Itanium 2 M-slot constraint the paper highlights);
 *  - scoreboarded stall-on-use: an instruction issues only when its
 *    source registers are ready;
 *  - perfect branch prediction (the paper's cores are validated
 *    Itanium 2 models; control costs appear through replicated
 *    branches and their operand communication, which is what COCO
 *    optimizes);
 *  - produce writes the queue at issue (commit and issue coincide in
 *    order), consume's value is usable after sa_latency cycles —
 *    back-to-back execution when the queue is non-empty;
 *  - a produce to a full queue or consume from an empty queue stalls
 *    the core; the sync array's request ports are shared per cycle.
 */

#include <cstdint>
#include <vector>

#include "obs/stall_profile.hpp"
#include "obs/timeline.hpp"
#include "runtime/memory_image.hpp"
#include "runtime/mt_interpreter.hpp"
#include "sim/cache.hpp"
#include "sim/decoded_program.hpp"
#include "sim/machine_config.hpp"
#include "sim/sync_array_timing.hpp"

namespace gmt
{

/** Which simulation engine to run (results are bit-identical). */
enum class SimEngine {
    Fast,      ///< event-driven: pre-decoded streams + cycle skipping
    Reference, ///< the original per-cycle lock-step loop
};

const char *simEngineName(SimEngine e);

/** Per-core cycle accounting. */
struct CoreStats
{
    uint64_t instrs = 0;
    uint64_t comm_instrs = 0;
    uint64_t stall_operand = 0;
    uint64_t stall_queue_full = 0;
    uint64_t stall_queue_empty = 0;
    uint64_t stall_sa_port = 0;
    uint64_t stall_mem_port = 0;
    uint64_t idle_done = 0; ///< cycles after this core retired

    bool operator==(const CoreStats &) const = default;
};

/**
 * How the engine got through the run — meta-instrumentation, not
 * architectural state. Excluded from SimResult equality: the fast
 * path sweeps fewer cycles than it simulates, and that is the point.
 */
struct SimEngineStats
{
    SimEngine engine = SimEngine::Fast;
    uint64_t iterations = 0; ///< cycles actually swept by the loop
    uint64_t skipped = 0;    ///< cycles jumped over by the skip engine
    double wall_ms = 0.0;    ///< wall-clock time of the run

    /** Fraction of simulated cycles never swept. */
    double skipRatio() const
    {
        uint64_t total = iterations + skipped;
        return total ? static_cast<double>(skipped) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/** Result of a timing run. */
struct SimResult
{
    uint64_t cycles = 0;
    std::vector<CoreStats> core;
    std::vector<int64_t> live_outs;
    bool queues_drained = false;

    uint64_t l1_hits = 0, l1_misses = 0;
    uint64_t l2_hits = 0, l2_misses = 0;
    uint64_t l3_hits = 0, l3_misses = 0;
    uint64_t sa_port_conflicts = 0;

    /** Engine meta-stats; see SimEngineStats (not part of equality). */
    SimEngineStats engine;

    /**
     * Architectural equality: every simulated quantity, nothing about
     * how the engine computed it. This is the differential-testing
     * contract between SimEngine::Fast and SimEngine::Reference.
     */
    bool operator==(const SimResult &o) const
    {
        return cycles == o.cycles && core == o.core &&
               live_outs == o.live_outs &&
               queues_drained == o.queues_drained &&
               l1_hits == o.l1_hits && l1_misses == o.l1_misses &&
               l2_hits == o.l2_hits && l2_misses == o.l2_misses &&
               l3_hits == o.l3_hits && l3_misses == o.l3_misses &&
               sa_port_conflicts == o.sa_port_conflicts;
    }
};

/** The simulator. One instance per run. */
class CmpSimulator
{
  public:
    explicit CmpSimulator(const MachineConfig &config,
                          SimEngine engine = SimEngine::Fast);

    /**
     * Simulate @p prog to completion with the configured engine
     * (the fast engine decodes first; pass a DecodedProgram to
     * amortize the decode across runs).
     * @param prog threads to run, one per core (threads <= cores).
     * @param args live-in values, broadcast to all threads.
     * @param mem  shared data memory (mutated).
     */
    SimResult run(const MtProgram &prog,
                  const std::vector<int64_t> &args, MemoryImage &mem);

    /**
     * Fast engine over a pre-decoded program (ignores the configured
     * engine: decoded streams only exist on the fast path).
     */
    SimResult run(const DecodedProgram &prog,
                  const std::vector<int64_t> &args, MemoryImage &mem);

    /**
     * Attach a stall-attribution profile. The simulator sizes it at
     * the start of the next run and charges every stall cycle to the
     * (core, block[, queue]) that lost it — at the same architectural
     * events on both engines, so profiles are engine-independent and
     * sum exactly to the CoreStats aggregates (the conservation
     * invariant; see obs/stall_profile.hpp). Nullptr detaches; the
     * uninstrumented hot loop costs one predictable branch per charge
     * site.
     */
    void setProfile(SimProfile *profile) { profile_ = profile; }

    /**
     * Attach a timeline builder: one state note per core per simulated
     * cycle (compute / the charged stall cause / idle; skip spans note
     * in bulk) and a queue-occupancy sample at every produce/consume.
     * Nullptr detaches.
     */
    void setTimeline(TimelineBuilder *timeline)
    {
        timeline_ = timeline;
    }

  private:
    SimResult runReference(const MtProgram &prog,
                           const std::vector<int64_t> &args,
                           MemoryImage &mem);

    MachineConfig config_;
    SimEngine engine_;
    SimProfile *profile_ = nullptr;
    TimelineBuilder *timeline_ = nullptr;
};

/**
 * The stall columns of a SimResult's CoreStats, in the shape the
 * conservation check takes (obs/stall_profile.hpp).
 */
std::vector<CoreStallTotals> stallTotals(const SimResult &r);

/**
 * Convenience: simulate the single-threaded original as a 1-thread
 * MtProgram on one core (the paper's speedup baseline).
 */
SimResult simulateSingleThreaded(const Function &f,
                                 const std::vector<int64_t> &args,
                                 MemoryImage &mem,
                                 const MachineConfig &config,
                                 SimEngine engine = SimEngine::Fast);

} // namespace gmt

#endif // GMT_SIM_CMP_SIMULATOR_HPP
