#ifndef GMT_SIM_CMP_SIMULATOR_HPP
#define GMT_SIM_CMP_SIMULATOR_HPP

/**
 * @file
 * Cycle-stepped CMP timing simulator: in-order multi-issue cores with
 * the Figure 6(a) memory hierarchy and synchronization array. It
 * executes an MtProgram functionally while charging cycles, so its
 * results double as a third execution oracle (interpreter, MT
 * interpreter, timing simulator must agree).
 *
 * Model summary (substitutions documented in DESIGN.md):
 *  - in-order issue of up to issue_width instructions/cycle, at most
 *    mem_ports of which may be loads/stores/queue accesses (the
 *    Itanium 2 M-slot constraint the paper highlights);
 *  - scoreboarded stall-on-use: an instruction issues only when its
 *    source registers are ready;
 *  - perfect branch prediction (the paper's cores are validated
 *    Itanium 2 models; control costs appear through replicated
 *    branches and their operand communication, which is what COCO
 *    optimizes);
 *  - produce writes the queue at issue (commit and issue coincide in
 *    order), consume's value is usable after sa_latency cycles —
 *    back-to-back execution when the queue is non-empty;
 *  - a produce to a full queue or consume from an empty queue stalls
 *    the core; the sync array's request ports are shared per cycle.
 */

#include <cstdint>
#include <vector>

#include "runtime/memory_image.hpp"
#include "runtime/mt_interpreter.hpp"
#include "sim/cache.hpp"
#include "sim/machine_config.hpp"
#include "sim/sync_array_timing.hpp"

namespace gmt
{

/** Per-core cycle accounting. */
struct CoreStats
{
    uint64_t instrs = 0;
    uint64_t comm_instrs = 0;
    uint64_t stall_operand = 0;
    uint64_t stall_queue_full = 0;
    uint64_t stall_queue_empty = 0;
    uint64_t stall_sa_port = 0;
    uint64_t stall_mem_port = 0;
    uint64_t idle_done = 0; ///< cycles after this core retired
};

/** Result of a timing run. */
struct SimResult
{
    uint64_t cycles = 0;
    std::vector<CoreStats> core;
    std::vector<int64_t> live_outs;
    bool queues_drained = false;

    uint64_t l1_hits = 0, l1_misses = 0;
    uint64_t l2_hits = 0, l2_misses = 0;
    uint64_t l3_hits = 0, l3_misses = 0;
    uint64_t sa_port_conflicts = 0;
};

/** The simulator. One instance per run. */
class CmpSimulator
{
  public:
    explicit CmpSimulator(const MachineConfig &config);

    /**
     * Simulate @p prog to completion.
     * @param prog threads to run, one per core (threads <= cores).
     * @param args live-in values, broadcast to all threads.
     * @param mem  shared data memory (mutated).
     */
    SimResult run(const MtProgram &prog,
                  const std::vector<int64_t> &args, MemoryImage &mem);

  private:
    MachineConfig config_;
};

/**
 * Convenience: simulate the single-threaded original as a 1-thread
 * MtProgram on one core (the paper's speedup baseline).
 */
SimResult simulateSingleThreaded(const Function &f,
                                 const std::vector<int64_t> &args,
                                 MemoryImage &mem,
                                 const MachineConfig &config);

} // namespace gmt

#endif // GMT_SIM_CMP_SIMULATOR_HPP
