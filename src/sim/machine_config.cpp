#include "sim/machine_config.hpp"

#include <ostream>

#include "support/table.hpp"

namespace gmt
{

void
MachineConfig::print(std::ostream &os) const
{
    Table t("Machine details (paper Figure 6(a))");
    t.setHeader({"Component", "Configuration"},
                {Align::Left, Align::Left});
    t.addRow({"Cores", std::to_string(num_cores) + " in-order, " +
                           std::to_string(issue_width) + "-issue, " +
                           std::to_string(mem_ports) + " memory ports"});
    auto cache_row = [&](const char *name, const CacheConfig &c) {
        t.addRow({name, std::to_string(c.size_bytes / 1024) + " KB, " +
                            std::to_string(c.associativity) + "-way, " +
                            std::to_string(c.line_bytes) + "B lines, " +
                            std::to_string(c.hit_latency) +
                            "-cycle hit"});
    };
    cache_row("L1D (private)", l1d);
    cache_row("L2 (private)", l2);
    cache_row("L3 (shared)", l3);
    t.addRow({"Main memory",
              std::to_string(memory_latency) + "-cycle latency"});
    t.addRow({"Coherence", "snoop-based write-invalidate"});
    t.addRow({"Sync array", std::to_string(sa_queues) + " queues, " +
                                std::to_string(sa_ports) +
                                " shared ports, " +
                                std::to_string(sa_latency) +
                                "-cycle access, depth " +
                                std::to_string(queue_capacity)});
    t.print(os);
}

} // namespace gmt
