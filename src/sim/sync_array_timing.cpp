#include "sim/sync_array_timing.hpp"

#include "support/error.hpp"

namespace gmt
{

SyncArrayTiming::SyncArrayTiming(const MachineConfig &config)
    : config_(config), queues_(config.sa_queues)
{
}

void
SyncArrayTiming::beginCycle()
{
    ports_used_ = 0;
}

bool
SyncArrayTiming::portAvailable() const
{
    return ports_used_ < config_.sa_ports;
}

bool
SyncArrayTiming::canProduce(int q) const
{
    GMT_ASSERT(q >= 0 && q < static_cast<int>(queues_.size()),
               "sync array has only ", queues_.size(), " queues");
    return static_cast<int>(queues_[q].size()) <
           config_.queue_capacity;
}

bool
SyncArrayTiming::canConsume(int q) const
{
    GMT_ASSERT(q >= 0 && q < static_cast<int>(queues_.size()));
    return !queues_[q].empty();
}

void
SyncArrayTiming::produce(int q, int64_t value)
{
    GMT_ASSERT(canProduce(q) && portAvailable());
    queues_[q].push_back(value);
    ++ports_used_;
}

int64_t
SyncArrayTiming::consume(int q)
{
    GMT_ASSERT(canConsume(q) && portAvailable());
    int64_t v = queues_[q].front();
    queues_[q].pop_front();
    ++ports_used_;
    return v;
}

bool
SyncArrayTiming::allDrained() const
{
    for (const auto &q : queues_) {
        if (!q.empty())
            return false;
    }
    return true;
}

} // namespace gmt
