#include "sim/sync_array_timing.hpp"

namespace gmt
{

SyncArrayTiming::SyncArrayTiming(const MachineConfig &config)
    : config_(config), queues_(config.sa_queues),
      slots_(static_cast<size_t>(config.sa_queues) *
                 config.queue_capacity,
             0),
      versions_(config.sa_queues, 0)
{
    GMT_ASSERT(config.queue_capacity > 0);
}

} // namespace gmt
