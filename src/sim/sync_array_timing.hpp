#ifndef GMT_SIM_SYNC_ARRAY_TIMING_HPP
#define GMT_SIM_SYNC_ARRAY_TIMING_HPP

/**
 * @file
 * Timing model of the synchronization array [19]: fixed-depth queues
 * with a 1-cycle access latency and a limited number of request ports
 * shared between the cores ("four request ports that are shared
 * between the two cores", paper §4). Occupancy gates produce (full)
 * and consume (empty); the port budget resets every cycle.
 *
 * Wakeup support for the event-driven simulator: every produce or
 * consume bumps the queue's version stamp, so a core blocked on an
 * empty/full queue records (queue, version) once and is re-armed by
 * the matching produce/consume — a changed stamp — instead of
 * re-polling the queue's occupancy every cycle. A nonempty-queue
 * count makes allDrained() O(1) per call.
 *
 * Storage is one flat ring-buffer arena and every per-access method
 * is inline: the simulators call them once per communication
 * instruction and once per cycle (beginCycle).
 */

#include <cstdint>
#include <vector>

#include "sim/machine_config.hpp"
#include "support/error.hpp"

namespace gmt
{

/** Cycle-stepped synchronization array. */
class SyncArrayTiming
{
  public:
    explicit SyncArrayTiming(const MachineConfig &config);

    /** Call at the top of every simulated cycle. */
    void beginCycle() { ports_used_ = 0; }

    /** Is a request port available this cycle? */
    bool portAvailable() const
    {
        return ports_used_ < config_.sa_ports;
    }

    /** Can queue @p q accept a produce this cycle? */
    bool canProduce(int q) const
    {
        GMT_ASSERT(q >= 0 && q < static_cast<int>(queues_.size()),
                   "sync array has only ", queues_.size(), " queues");
        return queues_[q].count < config_.queue_capacity;
    }

    /** Does queue @p q hold a consumable value this cycle? */
    bool canConsume(int q) const
    {
        GMT_ASSERT(q >= 0 && q < static_cast<int>(queues_.size()));
        return queues_[q].count > 0;
    }

    /** Perform the produce (consumes a port). */
    void produce(int q, int64_t value)
    {
        GMT_ASSERT(canProduce(q) && portAvailable());
        Ring &r = queues_[q];
        if (r.count == 0)
            ++nonempty_;
        slots_[static_cast<size_t>(q) * config_.queue_capacity +
               r.tail] = value;
        r.tail =
            (r.tail + 1 == config_.queue_capacity) ? 0 : r.tail + 1;
        ++r.count;
        ++versions_[q];
        ++ports_used_;
    }

    /** Perform the consume (consumes a port). @return the value. */
    int64_t consume(int q)
    {
        GMT_ASSERT(canConsume(q) && portAvailable());
        Ring &r = queues_[q];
        int64_t v = slots_[static_cast<size_t>(q) *
                               config_.queue_capacity +
                           r.head];
        r.head =
            (r.head + 1 == config_.queue_capacity) ? 0 : r.head + 1;
        --r.count;
        if (r.count == 0)
            --nonempty_;
        ++versions_[q];
        ++ports_used_;
        return v;
    }

    int latency() const { return config_.sa_latency; }

    /** Current occupancy of queue @p q (timeline sampling). */
    int occupancy(int q) const
    {
        GMT_ASSERT(q >= 0 && q < static_cast<int>(queues_.size()));
        return queues_[q].count;
    }

    bool allDrained() const { return nonempty_ == 0; }

    /**
     * Version stamp of queue @p q, bumped by every produce and
     * consume. A blocked core re-attempts only when the stamp it
     * recorded at block time has changed (the wakeup signal).
     */
    uint64_t version(int q) const
    {
        GMT_ASSERT(q >= 0 && q < static_cast<int>(queues_.size()));
        return versions_[q];
    }

    uint64_t portConflicts() const { return port_conflicts_; }

    /** Record that a request was denied for lack of a port. */
    void notePortConflict() { ++port_conflicts_; }

  private:
    struct Ring
    {
        int head = 0, tail = 0, count = 0;
    };

    MachineConfig config_;
    std::vector<Ring> queues_;
    std::vector<int64_t> slots_; ///< sa_queues x capacity arena
    std::vector<uint64_t> versions_;
    int nonempty_ = 0;
    int ports_used_ = 0;
    uint64_t port_conflicts_ = 0;
};

} // namespace gmt

#endif // GMT_SIM_SYNC_ARRAY_TIMING_HPP
