#ifndef GMT_SIM_SYNC_ARRAY_TIMING_HPP
#define GMT_SIM_SYNC_ARRAY_TIMING_HPP

/**
 * @file
 * Timing model of the synchronization array [19]: fixed-depth queues
 * with a 1-cycle access latency and a limited number of request ports
 * shared between the cores ("four request ports that are shared
 * between the two cores", paper §4). Occupancy gates produce (full)
 * and consume (empty); the port budget resets every cycle.
 */

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/machine_config.hpp"

namespace gmt
{

/** Cycle-stepped synchronization array. */
class SyncArrayTiming
{
  public:
    explicit SyncArrayTiming(const MachineConfig &config);

    /** Call at the top of every simulated cycle. */
    void beginCycle();

    /** Is a request port available this cycle? */
    bool portAvailable() const;

    /** Can queue @p q accept a produce this cycle? */
    bool canProduce(int q) const;

    /** Does queue @p q hold a consumable value this cycle? */
    bool canConsume(int q) const;

    /** Perform the produce (consumes a port). */
    void produce(int q, int64_t value);

    /** Perform the consume (consumes a port). @return the value. */
    int64_t consume(int q);

    int latency() const { return config_.sa_latency; }

    bool allDrained() const;

    uint64_t portConflicts() const { return port_conflicts_; }

    /** Record that a request was denied for lack of a port. */
    void notePortConflict() { ++port_conflicts_; }

  private:
    MachineConfig config_;
    std::vector<std::deque<int64_t>> queues_;
    int ports_used_ = 0;
    uint64_t port_conflicts_ = 0;
};

} // namespace gmt

#endif // GMT_SIM_SYNC_ARRAY_TIMING_HPP
