#ifndef GMT_SIM_DECODED_PROGRAM_HPP
#define GMT_SIM_DECODED_PROGRAM_HPP

/**
 * @file
 * Pre-decoded instruction streams for the timing simulator's fast
 * path: each thread of an MtProgram is flattened into one dense
 * array of DecodedInstr records with the per-issue work hoisted to
 * decode time — operand count, latency class, memory-port flag, and
 * the decoded successor indices of Br/Jmp terminators — so the
 * simulator's inner loop is a flat array walk instead of chasing
 * Function -> BasicBlock -> instrs()[pos] -> Instr on every issue
 * attempt.
 *
 * Decoding is purely structural: a DecodedProgram is independent of
 * the MachineConfig (latency *classes*, not latencies, are recorded),
 * so one decode serves every point of a machine-parameter sweep. The
 * driver caches DecodedArtifacts under the program's cache key for
 * exactly this reason (see pass_manager.cpp).
 */

#include <cstdint>
#include <vector>

#include "ir/function.hpp"
#include "runtime/mt_interpreter.hpp"

namespace gmt
{

/** Latency class of a non-memory instruction (machine-independent). */
enum class LatClass : uint8_t { Alu, Mul, Div };

/** One flattened instruction. Plain data, hot-loop friendly. */
struct DecodedInstr
{
    Opcode op = Opcode::Const;
    uint8_t nsrc = 0;        ///< numSrcs(op), hoisted
    LatClass lat = LatClass::Alu;
    bool mem_port = false;   ///< usesMemoryPort(op), hoisted

    Reg dst = kNoReg;
    Reg src1 = kNoReg;
    Reg src2 = kNoReg;
    QueueId queue = kNoQueue;
    int64_t imm = 0;

    /**
     * Decoded control flow. Non-terminators fall through to index+1
     * (blocks are laid out contiguously). Jmp jumps to @c next; Br
     * goes to @c next when taken (src1 != 0) and @c br_not otherwise.
     */
    int32_t next = -1;
    int32_t br_not = -1;
};

/** One thread, flattened. */
struct DecodedThread
{
    std::vector<DecodedInstr> code;
    int32_t entry = 0;            ///< index of the entry block's first instr
    int num_regs = 0;
    std::vector<Reg> params;
    std::vector<Reg> live_outs;

    /**
     * Source basic block of each decoded index (parallel to @c code).
     * Cold data — the issue loop never reads it; the stall profiler
     * uses it to attribute a blocked instruction back to its block.
     */
    std::vector<BlockId> block_of;
    int num_blocks = 0;
};

/** A whole MtProgram, ready for the fast engine. */
struct DecodedProgram
{
    std::vector<DecodedThread> threads;
    int num_queues = 0;
    int queue_capacity = 32;
};

/** Flatten one function (block order preserved; see file comment). */
DecodedThread decodeThread(const Function &f);

/** Flatten every thread of @p prog. */
DecodedProgram decodeProgram(const MtProgram &prog);

} // namespace gmt

#endif // GMT_SIM_DECODED_PROGRAM_HPP
