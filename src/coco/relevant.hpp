#ifndef GMT_COCO_RELEVANT_HPP
#define GMT_COCO_RELEVANT_HPP

/**
 * @file
 * Monotone relevant-branch tracking for Algorithm 2 (paper
 * Definition 1). The sets only grow across iterations, which is the
 * paper's convergence argument.
 */

#include <vector>

#include "analysis/control_dep.hpp"
#include "ir/function.hpp"
#include "partition/partition.hpp"
#include "support/bit_vector.hpp"

namespace gmt
{

/**
 * Initial relevant-branch sets: per thread, branches assigned to it
 * (rule 1), branches with a direct control dependence over any of its
 * instructions' blocks, and the closure under "controls the block of
 * a relevant branch" (rule 3).
 */
std::vector<BitVector> initRelevantBranches(const Function &f,
                                            const ControlDependence &cd,
                                            const ThreadPartition &p);

/**
 * Rule 2 growth: make every branch (transitively) controlling the
 * block of @p point relevant in @p set.
 * @return true if the set grew.
 */
bool growRelevantForPoint(const Function &f, const ControlDependence &cd,
                          BitVector &set, const ProgramPoint &point);

/**
 * A point is relevant to a thread iff every branch controlling its
 * block is in the thread's relevant set (Definition 2).
 */
bool isRelevantPoint(const ControlDependence &cd, const BitVector &set,
                     BlockId block);

} // namespace gmt

#endif // GMT_COCO_RELEVANT_HPP
