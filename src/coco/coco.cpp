#include "coco/coco.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <utility>

#include "coco/flow_graph.hpp"
#include "coco/relevant.hpp"
#include "coco/safety.hpp"
#include "coco/thread_liveness.hpp"
#include "graph/multi_cut.hpp"
#include "graph/scc.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_writer.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace gmt
{

namespace
{

using RegKey = std::tuple<int, int, Reg>;      // (ts, tt, r)
using PairKey = std::pair<int, int>;           // (ts, tt)
using PointList = std::vector<ProgramPoint>;

PointList
normalize(PointList points)
{
    std::sort(points.begin(), points.end());
    points.erase(std::unique(points.begin(), points.end()),
                 points.end());
    return points;
}

/** Threads that need the value consumed by instruction u. */
void
needersOf(const Function &f, const ThreadPartition &partition,
          const std::vector<BitVector> &relevant, InstrId u,
          std::vector<int> &out)
{
    out.clear();
    out.push_back(partition.threadOf(u));
    if (f.instr(u).isBranch()) {
        for (int t = 0; t < partition.num_threads; ++t) {
            if (t != partition.threadOf(u) &&
                relevant[t].test(f.instr(u).block)) {
                out.push_back(t);
            }
        }
    }
}

/**
 * Default (MTCG) placement: right after each contributing def.
 * @p reg_arcs is the per-register index over the PDG's register arcs
 * (built once per cocoOptimize; the old code re-scanned every arc per
 * (ts, tt, reg) triple).
 */
PointList
defaultRegPoints(const Function &f, const Pdg &pdg,
                 const ThreadPartition &partition,
                 const std::vector<BitVector> &relevant,
                 const std::vector<std::vector<int>> &reg_arcs, int ts,
                 int tt, Reg r, std::vector<int> &needers)
{
    PointList points;
    if (r >= 0 && r < static_cast<Reg>(reg_arcs.size())) {
        for (int ai : reg_arcs[r]) {
            const auto &arc = pdg.arcs()[ai];
            if (partition.threadOf(arc.src) != ts)
                continue;
            needersOf(f, partition, relevant, arc.dst, needers);
            if (std::find(needers.begin(), needers.end(), tt) ==
                needers.end())
                continue;
            points.push_back({f.instr(arc.src).block,
                              f.positionOf(arc.src) + 1});
        }
    }
    return normalize(std::move(points));
}

using ProblemKey = std::tuple<int, int, bool, Reg>; // (ts, tt, mem, r)

/**
 * A flow graph retained between solves of the same problem key, the
 * warm-start substrate: as long as the topology is provably the one
 * the serial algorithm would rebuild (register graphs: the liveness
 * snapshot version matches; memory graphs: topology depends only on
 * the function), the next solve refreshes arc costs in place via
 * diffFlowGraphCosts and re-solves incrementally from the retained
 * residual instead of rebuilding from scratch.
 */
struct RetainedGraph
{
    FlowGraph fg;

    /** fg holds a completed build. */
    bool built = false;

    /** Liveness snapshot version the topology was built under
     *  (register graphs only; memory topology never changes). */
    uint64_t vlive = 0;

    /** The residual encodes a completed max flow of value @c flow
     *  (single-terminal-pair problems: register and super-pair). */
    bool solved = false;
    Capacity flow = 0;

    /** Super-pair mode: the appended super terminals. */
    int super_s = -1, super_t = -1;
};

/** Per-worker solving arena: retained flow graphs + builder scratch +
 *  solver, all storage reused across problems. */
struct CutArena
{
    FlowGraphScratch scratch;
    MaxFlow mf;

    /** Last-built graph per problem, for warm starts. */
    std::map<ProblemKey, RetainedGraph> retained;

    /** Scratch for diffFlowGraphCosts / MaxFlow::resolve. */
    std::vector<ArcDelta> deltas;
};

/** Mutex-guarded free list of arenas, one checkout per in-flight
 *  solve. */
class ArenaPool
{
  public:
    std::unique_ptr<CutArena>
    acquire(Counter &reuse_hits)
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (free_.empty())
            return std::make_unique<CutArena>();
        reuse_hits.add();
        auto arena = std::move(free_.back());
        free_.pop_back();
        return arena;
    }

    void
    release(std::unique_ptr<CutArena> arena)
    {
        std::lock_guard<std::mutex> lock(mu_);
        free_.push_back(std::move(arena));
    }

    /**
     * Cross-call adoption (CocoArenaCache): register graphs retained
     * at a grown liveness version are not comparable across calls
     * (version numbers restart at 0 and the growth history differs),
     * so drop them; version-0 register graphs and memory graphs have
     * topology fixed by (function, partition) and stay. All arenas
     * sit in the free list between calls.
     */
    void
    dropStaleRetained()
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto &a : free_)
            for (auto it = a->retained.begin();
                 it != a->retained.end();)
                if (!std::get<2>(it->first) && it->second.vlive != 0)
                    it = a->retained.erase(it);
                else
                    ++it;
    }

    void
    clear()
    {
        std::lock_guard<std::mutex> lock(mu_);
        free_.clear();
    }

  private:
    std::mutex mu_;
    std::vector<std::unique_ptr<CutArena>> free_;
};

/** RAII checkout. */
struct ArenaLease
{
    ArenaLease(ArenaPool &pool, Counter &reuse_hits)
        : pool_(pool), arena_(pool.acquire(reuse_hits))
    {
    }
    ~ArenaLease() { pool_.release(std::move(arena_)); }
    CutArena &operator*() { return *arena_; }

    ArenaPool &pool_;
    std::unique_ptr<CutArena> arena_;
};

/** One enumerated cut problem, in canonical (apply) order. */
struct CutProblem
{
    int pair_idx; ///< index into the iteration's pair order
    int ts, tt;
    bool is_mem;
    Reg r; ///< kNoReg for memory problems

    /** Memory problems: the pair's dependence list (stable). */
    const std::vector<std::pair<InstrId, InstrId>> *deps = nullptr;
};

/**
 * A solved cut, tagged with the relevant-set versions it was built
 * under. Valid for consumption only while both versions still match —
 * the determinism argument of the speculative solve phase.
 */
struct CachedCut
{
    bool valid = false; ///< solve completed (no exception)
    uint64_t vts = 0, vtt = 0;
    bool finite = true;
    Capacity cost = 0;
    PointList points; ///< normalized cut points (may be empty)

    /** Provenance payload: per-point cost over the min-cut arcs
     *  (deterministic: the cut arc set is unique), solved graph size,
     *  and whether this solve was warm-started (execution-only). */
    std::vector<CutPointCost> breakdown;
    int graph_nodes = 0;
    int graph_arcs = 0;
    bool warm = false;
};

/** Aggregate per-arc (point, capacity) samples into the sorted
 *  per-point breakdown CachedCut carries. */
void
normalizeBreakdown(std::vector<CutPointCost> &b)
{
    std::sort(b.begin(), b.end(),
              [](const CutPointCost &x, const CutPointCost &y) {
                  return std::tie(x.block, x.pos) <
                         std::tie(y.block, y.pos);
              });
    size_t out = 0;
    for (size_t i = 0; i < b.size(); ++i) {
        if (out > 0 && b[out - 1].block == b[i].block &&
            b[out - 1].pos == b[i].pos) {
            b[out - 1].cost += b[i].cost;
            b[out - 1].arcs += b[i].arcs;
        } else {
            b[out++] = b[i];
        }
    }
    b.resize(out);
}

/** All per-cocoOptimize solver metrics, resolved once. */
struct CocoCounters
{
    Counter &problems;
    Counter &solves;
    Counter &arcs;
    Counter &augmenting_paths;
    Counter &arena_reuse;
    Counter &liveness_memo_hits;
    Counter &spec_rounds;
    Counter &spec_hits;
    Counter &spec_misses;
    Counter &warm_starts;
    Counter &cold_rebuilds;
    Counter &relabel_global;

    /** Per-call tallies (the Counter refs are process-global and
     *  aggregate across concurrent cells; CocoResult wants this
     *  call's share). */
    std::atomic<uint64_t> warm_local{0};
    std::atomic<uint64_t> cold_local{0};

    static CocoCounters
    resolve()
    {
        MetricsRegistry &m = MetricsRegistry::global();
        return CocoCounters{m.counter("coco.problems"),
                            m.counter("coco.solves"),
                            m.counter("coco.arcs"),
                            m.counter("coco.augmenting_paths"),
                            m.counter("coco.arena_reuse"),
                            m.counter("coco.liveness_memo_hits"),
                            m.counter("coco.spec_rounds"),
                            m.counter("coco.spec_hits"),
                            m.counter("coco.spec_misses"),
                            m.counter("coco.warm_starts"),
                            m.counter("coco.cold_rebuilds"),
                            m.counter("coco.relabel_global")};
    }
};

/** Append the just-solved problem to the bench capture sink, with the
 *  network rewound to pristine residuals at its current capacities
 *  (per-pair arc removals from the multi-pair heuristic cleared). */
void
captureProblem(CutProblemCapture *capture, const FlowGraph &fg,
               bool is_mem, int ts, int tt, Reg r)
{
    if (!capture)
        return;
    std::lock_guard<std::mutex> lock(capture->mu);
    capture->entries.emplace_back();
    CutProblemCapture::Entry &e = capture->entries.back();
    e.is_mem = is_mem;
    e.ts = ts;
    e.tt = tt;
    e.r = r;
    e.net = fg.net;
    e.net.clearRemoved();
    e.net.restoreResiduals();
    e.source = fg.source;
    e.sink = fg.sink;
    e.pairs = fg.pairs;
}

/** Min-cut for one register problem (shared by the speculative tasks
 *  and the inline apply path — identical code, identical cut).
 *  @p vlive is the version of the liveness snapshot @p live (the
 *  topology tag of the graph this solve builds or reuses). */
void
solveRegCut(const FlowGraphInputs &in, const SafetyAnalysis &safety,
            const ThreadLiveness &live, uint64_t vlive, Reg r, int ts,
            int tt, const CocoOptions &opts, CutArena &arena,
            CocoCounters &c, CutProblemCapture *capture, CachedCut &out)
{
    out.finite = true;
    out.cost = 0;
    out.points.clear();
    out.breakdown.clear();
    out.graph_nodes = 0;
    out.graph_arcs = 0;
    c.solves.add();
    RetainedGraph &rg =
        arena.retained[ProblemKey{ts, tt, /*is_mem=*/false, r}];
    // Warm iff the retained topology is the one the builder would
    // reproduce: node layout and arc structure of a register graph
    // are a pure function of the liveness snapshot (safety and the
    // special S/T arcs depend only on the fixed partition). Costs
    // are refreshed by diff, so they impose no condition.
    const bool warm = opts.warm_start && rg.built &&
                      rg.vlive == vlive &&
                      (rg.solved || rg.fg.trivial);
    out.warm = warm;
    arena.mf.setAlgorithm(opts.flow_algo);
    uint64_t paths0 = arena.mf.stats().augmenting_paths;
    uint64_t relabels0 = arena.mf.stats().global_relabels;
    Capacity flow = 0;
    if (warm) {
        c.warm_starts.add();
        c.warm_local.fetch_add(1, std::memory_order_relaxed);
        if (rg.fg.trivial)
            return;
        diffFlowGraphCosts(in, ts, tt, rg.fg, arena.scratch,
                           arena.deltas);
        arena.mf.attachSolved(rg.fg.net, rg.fg.source, rg.fg.sink,
                              rg.flow);
        rg.solved = false; // not a valid flow while resolve repairs
        flow = arena.mf.resolve(arena.deltas);
        rg.solved = true;
    } else {
        c.cold_rebuilds.add();
        c.cold_local.fetch_add(1, std::memory_order_relaxed);
        buildRegisterFlowGraph(in, safety, live, r, ts, tt, rg.fg,
                               arena.scratch);
        rg.built = true;
        rg.vlive = vlive;
        rg.solved = false;
        c.arcs.add(static_cast<uint64_t>(rg.fg.net.numArcs()));
        if (rg.fg.trivial)
            return;
        arena.mf.attach(rg.fg.net);
        flow = arena.mf.solve(rg.fg.source, rg.fg.sink);
        rg.solved = true;
    }
    rg.flow = flow;
    c.augmenting_paths.add(arena.mf.stats().augmenting_paths - paths0);
    c.relabel_global.add(arena.mf.stats().global_relabels - relabels0);
    out.finite = arena.mf.finite();
    if (!out.finite)
        return;
    out.cost = flow;
    out.graph_nodes = rg.fg.net.numNodes();
    out.graph_arcs = rg.fg.net.numArcs();
    for (int a : arena.mf.minCutArcs()) {
        GMT_ASSERT(rg.fg.arc_points[a].block != kNoBlock);
        out.points.push_back(rg.fg.arc_points[a]);
        out.breakdown.push_back(
            {rg.fg.arc_points[a].block, rg.fg.arc_points[a].pos,
             static_cast<int64_t>(rg.fg.net.arcCapacity(a)), 1});
    }
    out.points = normalize(std::move(out.points));
    normalizeBreakdown(out.breakdown);
    captureProblem(capture, rg.fg, /*is_mem=*/false, ts, tt, r);
}

/** Multi-pair (or super-pair) cut for one pair's memory problem. */
void
solveMemCut(const FlowGraphInputs &in,
            const std::vector<std::pair<InstrId, InstrId>> &deps,
            int ts, int tt, const CocoOptions &opts, CutArena &arena,
            CocoCounters &c, CutProblemCapture *capture, CachedCut &out)
{
    out.finite = true;
    out.cost = 0;
    out.points.clear();
    out.breakdown.clear();
    out.graph_nodes = 0;
    out.graph_arcs = 0;
    c.solves.add();
    RetainedGraph &rg =
        arena.retained[ProblemKey{ts, tt, /*is_mem=*/true, kNoReg}];
    // Memory graphs span the whole region — topology depends only on
    // the function, never on the relevant sets — so a retained build
    // is reusable whenever it exists (the pair list is a pure
    // function of the fixed PDG; checked anyway, belt and braces).
    const bool warm = opts.warm_start && rg.built &&
                      rg.fg.pairs.size() == deps.size() &&
                      (opts.multi_pair_memory || rg.solved);
    out.warm = warm;
    arena.mf.setAlgorithm(opts.flow_algo);
    uint64_t paths0 = arena.mf.stats().augmenting_paths;
    uint64_t relabels0 = arena.mf.stats().global_relabels;
    MultiCutResult cut;
    if (warm && opts.multi_pair_memory) {
        // The sequential heuristic re-solves with fresh terminals per
        // pair and consumes the network via removeArc, so the warm
        // win here is build reuse: refresh the costs that moved and
        // rewind the residuals + removals to the pristine state.
        c.warm_starts.add();
        c.warm_local.fetch_add(1, std::memory_order_relaxed);
        diffFlowGraphCosts(in, ts, tt, rg.fg, arena.scratch,
                           arena.deltas);
        rg.fg.net.clearRemoved();
        for (const ArcDelta &d : arena.deltas)
            rg.fg.net.setArcCapacity(d.arc, d.cap);
        rg.fg.net.restoreResiduals();
        cut = multiPairMinCut(rg.fg.net, rg.fg.pairs, opts.flow_algo,
                              CutSide::Sink, &arena.mf);
    } else if (warm) {
        // Super-pair mode is one fixed-terminal problem: a true warm
        // start from the retained residual.
        c.warm_starts.add();
        c.warm_local.fetch_add(1, std::memory_order_relaxed);
        diffFlowGraphCosts(in, ts, tt, rg.fg, arena.scratch,
                           arena.deltas);
        arena.mf.attachSolved(rg.fg.net, rg.super_s, rg.super_t,
                              rg.flow);
        rg.solved = false;
        rg.flow = arena.mf.resolve(arena.deltas);
        rg.solved = true;
        cut.finite = arena.mf.finite();
        for (int a : arena.mf.minCutArcs()) {
            cut.arcs.push_back(a);
            cut.cost += rg.fg.net.arcCapacity(a);
        }
    } else {
        c.cold_rebuilds.add();
        c.cold_local.fetch_add(1, std::memory_order_relaxed);
        buildMemoryFlowGraph(in, deps, ts, tt, rg.fg, arena.scratch);
        rg.built = true;
        rg.solved = false;
        rg.super_s = rg.super_t = -1;
        c.arcs.add(static_cast<uint64_t>(rg.fg.net.numArcs()));
        if (opts.multi_pair_memory) {
            cut = multiPairMinCut(rg.fg.net, rg.fg.pairs,
                                  opts.flow_algo, CutSide::Sink,
                                  &arena.mf);
        } else {
            cut = superPairMinCut(rg.fg.net, rg.fg.pairs,
                                  opts.flow_algo, &arena.mf,
                                  &rg.super_s, &rg.super_t);
            if (rg.super_s >= 0) {
                rg.flow = arena.mf.lastFlow();
                rg.solved = true;
            }
        }
    }
    c.augmenting_paths.add(arena.mf.stats().augmenting_paths - paths0);
    c.relabel_global.add(arena.mf.stats().global_relabels - relabels0);
    out.finite = cut.finite;
    if (!out.finite)
        return;
    out.cost = cut.cost;
    out.graph_nodes = rg.fg.net.numNodes();
    out.graph_arcs = rg.fg.net.numArcs();
    for (int a : cut.arcs) {
        out.points.push_back(rg.fg.arc_points[a]);
        out.breakdown.push_back(
            {rg.fg.arc_points[a].block, rg.fg.arc_points[a].pos,
             static_cast<int64_t>(rg.fg.net.arcCapacity(a)), 1});
    }
    out.points = normalize(std::move(out.points));
    normalizeBreakdown(out.breakdown);
    captureProblem(capture, rg.fg, /*is_mem=*/true, ts, tt, kNoReg);
}

} // namespace

struct CocoArenaCache::Impl
{
    ArenaPool pool;
};

CocoArenaCache::CocoArenaCache() : impl_(std::make_unique<Impl>()) {}

CocoArenaCache::~CocoArenaCache() = default;

void
CocoArenaCache::flush()
{
    impl_->pool.clear();
}

CocoResult
cocoOptimize(const Function &f, const Pdg &pdg,
             const ThreadPartition &partition,
             const ControlDependence &cd, const EdgeProfile &profile,
             const CocoOptions &opts, const CocoExec &exec)
{
    CocoResult result;
    const int nt = partition.num_threads;
    CocoCounters counters = CocoCounters::resolve();

    std::vector<BitVector> relevant =
        initRelevantBranches(f, cd, partition);

    // Safety depends only on the partition: compute once per thread.
    std::vector<std::unique_ptr<SafetyAnalysis>> safety;
    for (int t = 0; t < nt; ++t)
        safety.push_back(
            std::make_unique<SafetyAnalysis>(f, partition, t));

    // Transitive control dependences are immutable per function:
    // hoisted out of the per-problem graph builders (§3.1.2 penalty
    // terms read them for every arc cost).
    std::vector<std::vector<BlockId>> trans_deps(f.numBlocks());
    for (BlockId b = 0; b < f.numBlocks(); ++b)
        trans_deps[b] = cd.transitiveDeps(b);

    // Per-register index over the PDG's register arcs, so the default
    // placement fallback stops re-scanning every arc per problem.
    std::vector<std::vector<int>> reg_arcs(f.numRegs());
    {
        const auto &arcs = pdg.arcs();
        for (int ai = 0; ai < static_cast<int>(arcs.size()); ++ai) {
            const auto &arc = arcs[ai];
            if (arc.kind == DepKind::Register && arc.reg >= 0 &&
                arc.reg < static_cast<Reg>(reg_arcs.size()))
                reg_arcs[arc.reg].push_back(ai);
        }
    }

    // Relevant-set version counters: bumped whenever rule-2 growth
    // actually adds a branch. A speculative cut solved under versions
    // (vts, vtt) is byte-equivalent to the serial solve exactly while
    // both versions still match at its place in the apply walk.
    std::vector<uint64_t> rel_version(nt, 0);
    auto grow = [&](int tt, const ProgramPoint &p) {
        if (growRelevantForPoint(f, cd, relevant[tt], p))
            ++rel_version[tt];
    };

    // ThreadLiveness is a pure function of (thread, relevant[thread])
    // — memoized on (thread, version) and shared by every register
    // problem of a pair (the old code rebuilt it per pair per
    // iteration even when nothing changed).
    std::map<std::pair<int, uint64_t>,
             std::shared_ptr<const ThreadLiveness>>
        liveness_memo;
    auto livenessFor = [&](int tt) -> const ThreadLiveness & {
        auto key = std::make_pair(tt, rel_version[tt]);
        auto it = liveness_memo.find(key);
        if (it != liveness_memo.end()) {
            counters.liveness_memo_hits.add();
            return *it->second;
        }
        auto live = std::make_shared<const ThreadLiveness>(
            f, partition, tt, relevant[tt]);
        return *liveness_memo.emplace(key, std::move(live))
                    .first->second;
    };

    // Solved-cut cache, persistent across speculation rounds and
    // repeat-until iterations (validity is version-checked, and the
    // relevant sets are monotone, so stale entries never revalidate).
    std::map<ProblemKey, CachedCut> cut_cache;
    auto slotFor = [&](const CutProblem &p) -> CachedCut & {
        return cut_cache[ProblemKey{p.ts, p.tt, p.is_mem, p.r}];
    };

    // Arenas either live for this call only or are adopted from the
    // caller's cross-call cache (autotuner re-cuts warm-start from
    // the previous call's retained residuals).
    ArenaPool local_arenas;
    ArenaPool &arenas = exec.arena_cache != nullptr
                            ? exec.arena_cache->impl()->pool
                            : local_arenas;
    if (exec.arena_cache != nullptr)
        arenas.dropStaleRetained();
    const bool parallel = exec.pool != nullptr && exec.jobs > 1;

    // Flat sorted accumulators (same iteration order as the old
    // std::map-keyed ones: ascending unique keys).
    std::vector<std::pair<RegKey, PointList>> reg_placements;
    std::vector<std::pair<PairKey, PointList>> mem_placements;

    // Decision records shadowing the accumulators (same keys, same
    // order), kept across iterations so a decision can tell which
    // iteration its final point set first appeared in.
    const bool record = exec.provenance != nullptr;
    std::vector<std::pair<RegKey, PlacementDecision>> reg_decs;
    std::vector<std::pair<PairKey, PlacementDecision>> mem_decs;
    auto prevRegDec = [&](const RegKey &k) -> const PlacementDecision * {
        auto it = std::lower_bound(
            reg_decs.begin(), reg_decs.end(), k,
            [](const auto &e, const RegKey &key) {
                return e.first < key;
            });
        return it != reg_decs.end() && it->first == k ? &it->second
                                                      : nullptr;
    };
    auto prevMemDec = [&](const PairKey &k) -> const PlacementDecision * {
        auto it = std::lower_bound(
            mem_decs.begin(), mem_decs.end(), k,
            [](const auto &e, const PairKey &key) {
                return e.first < key;
            });
        return it != mem_decs.end() && it->first == k ? &it->second
                                                      : nullptr;
    };

    std::vector<int> needers;

    for (int iter = 0; iter < opts.max_iterations; ++iter) {
        ++result.iterations;
        result.register_cut_cost = 0;
        result.memory_cut_cost = 0;

        // ---- Phase 1: enumerate this iteration's cut problems. ----

        // Register work: (pair, reg) entries, sorted + deduplicated
        // (== the old map<PairKey, set<Reg>> in iteration order).
        std::vector<std::pair<PairKey, Reg>> reg_entries;
        // Memory work: per-pair dependence lists in PDG-arc order
        // (stable sort groups by pair, preserving the arc order the
        // multi-pair heuristic sees).
        std::vector<std::pair<PairKey, std::pair<InstrId, InstrId>>>
            mem_entries;
        for (const auto &arc : pdg.arcs()) {
            int ts = partition.threadOf(arc.src);
            if (arc.kind == DepKind::Register) {
                needersOf(f, partition, relevant, arc.dst, needers);
                for (int tt : needers) {
                    if (tt != ts)
                        reg_entries.push_back({{ts, tt}, arc.reg});
                }
            } else if (arc.kind == DepKind::Memory) {
                int tt = partition.threadOf(arc.dst);
                if (tt != ts)
                    mem_entries.push_back(
                        {{ts, tt}, {arc.src, arc.dst}});
            }
        }
        std::sort(reg_entries.begin(), reg_entries.end());
        reg_entries.erase(
            std::unique(reg_entries.begin(), reg_entries.end()),
            reg_entries.end());
        std::stable_sort(mem_entries.begin(), mem_entries.end(),
                         [](const auto &a, const auto &b) {
                             return a.first < b.first;
                         });
        std::vector<std::pair<PairKey,
                              std::vector<std::pair<InstrId, InstrId>>>>
            mem_work;
        for (const auto &[key, dep] : mem_entries) {
            if (mem_work.empty() || mem_work.back().first != key)
                mem_work.push_back({key, {}});
            mem_work.back().second.push_back(dep);
        }

        // Quasi-topological order over the thread graph reduces the
        // number of repeat-until iterations (paper §3.2).
        Digraph tg(nt);
        std::vector<PairKey> pair_order;
        for (const auto &[key, _] : reg_entries) {
            tg.addEdge(key.first, key.second);
            if (pair_order.empty() || pair_order.back() != key)
                pair_order.push_back(key);
        }
        const size_t reg_pairs = pair_order.size(); // sorted prefix
        for (const auto &[key, _] : mem_work) {
            tg.addEdge(key.first, key.second);
            if (!std::binary_search(pair_order.begin(),
                                    pair_order.begin() + reg_pairs,
                                    key))
                pair_order.push_back(key);
        }
        SccResult tg_sccs = computeSccs(tg);
        std::sort(pair_order.begin(), pair_order.end(),
                  [&](const PairKey &a, const PairKey &b) {
                      auto ka = std::make_tuple(
                          tg_sccs.component[a.first],
                          tg_sccs.component[a.second], a);
                      auto kb = std::make_tuple(
                          tg_sccs.component[b.first],
                          tg_sccs.component[b.second], b);
                      return ka < kb;
                  });

        // Flatten into the canonical problem sequence: for each pair
        // in order, its registers ascending, then its memory problem.
        std::vector<CutProblem> problems;
        {
            std::map<PairKey, int> pair_idx_of;
            for (int pi = 0;
                 pi < static_cast<int>(pair_order.size()); ++pi)
                pair_idx_of[pair_order[pi]] = pi;
            std::vector<std::vector<Reg>> regs_of(pair_order.size());
            for (const auto &[key, r] : reg_entries)
                regs_of[pair_idx_of[key]].push_back(r);
            std::map<PairKey, int> mem_idx_of;
            for (int mi = 0;
                 mi < static_cast<int>(mem_work.size()); ++mi)
                mem_idx_of[mem_work[mi].first] = mi;
            for (int pi = 0;
                 pi < static_cast<int>(pair_order.size()); ++pi) {
                auto [ts, tt] = pair_order[pi];
                for (Reg r : regs_of[pi])
                    problems.push_back(
                        {pi, ts, tt, false, r, nullptr});
                if (auto it = mem_idx_of.find(pair_order[pi]);
                    it != mem_idx_of.end())
                    problems.push_back(
                        {pi, ts, tt, true, kNoReg,
                         &mem_work[it->second].second});
            }
        }
        counters.problems.add(problems.size());

        FlowGraphInputs inputs{&f,        &cd,
                               &profile,  &partition,
                               &relevant, &trans_deps,
                               opts.control_flow_penalties};

        auto specable = [&](const CutProblem &p) {
            return p.is_mem ? opts.optimize_memory
                            : opts.optimize_registers;
        };
        auto fresh = [&](const CutProblem &p) {
            const CachedCut &slot = slotFor(p);
            return slot.valid && slot.vts == rel_version[p.ts] &&
                   slot.vtt == rel_version[p.tt];
        };

        // ---- Phase 2: speculative parallel solve. Relevant sets are
        // frozen while a round runs (the apply walk is paused), so
        // every task reads a consistent snapshot; results are tagged
        // with the snapshot versions. ----
        auto speculate = [&](size_t from) {
            counters.spec_rounds.add();
            // Materialize the livenesses tasks will share (serial:
            // the memo map must not be mutated concurrently).
            for (size_t j = from; j < problems.size(); ++j) {
                const CutProblem &p = problems[j];
                if (specable(p) && !fresh(p) && !p.is_mem)
                    livenessFor(p.tt);
            }
            struct SpecTask
            {
                CachedCut *slot;
                const ThreadLiveness *live;
                uint64_t vts, vtt;
                const CutProblem *pp;
            };
            std::vector<SpecTask> todo;
            for (size_t j = from; j < problems.size(); ++j) {
                const CutProblem &p = problems[j];
                if (!specable(p) || fresh(p))
                    continue;
                CachedCut *slot = &slotFor(p);
                slot->valid = false;
                const ThreadLiveness *live =
                    p.is_mem ? nullptr : &livenessFor(p.tt);
                todo.push_back({slot, live, rel_version[p.ts],
                                rel_version[p.tt], &problems[j]});
            }
            // Batch the solves: individual cuts are microseconds, so
            // one task per cut would drown in dispatch overhead.
            // ~4 chunks per worker keeps the pool load-balanced while
            // amortizing the queue mutex and the arena lease.
            const size_t chunk = std::max<size_t>(
                1, todo.size() /
                       (static_cast<size_t>(std::max(exec.jobs, 1)) *
                        4));
            TaskGroup group(*exec.pool);
            for (size_t b = 0; b < todo.size(); b += chunk) {
                const size_t e = std::min(todo.size(), b + chunk);
                group.run([&, b, e] {
                    ArenaLease arena(arenas, counters.arena_reuse);
                    for (size_t k = b; k < e; ++k) {
                        const SpecTask &t = todo[k];
                        double t0 =
                            exec.trace ? exec.trace->nowUs() : 0.0;
                        try {
                            if (t.pp->is_mem)
                                solveMemCut(inputs, *t.pp->deps,
                                            t.pp->ts, t.pp->tt, opts,
                                            *arena, counters,
                                            exec.capture, *t.slot);
                            else
                                solveRegCut(inputs,
                                            *safety[t.pp->ts],
                                            *t.live, t.vtt, t.pp->r,
                                            t.pp->ts, t.pp->tt, opts,
                                            *arena, counters,
                                            exec.capture, *t.slot);
                            t.slot->vts = t.vts;
                            t.slot->vtt = t.vtt;
                            t.slot->valid = true;
                        } catch (...) {
                            // Solve failures (e.g. no finite cut)
                            // replay deterministically on the apply
                            // thread.
                            t.slot->valid = false;
                        }
                        if (exec.trace) {
                            exec.trace->completeEvent(
                                t.pp->is_mem ? "coco-mem-cut"
                                             : "coco-reg-cut",
                                "coco", TraceCollector::kPipelinePid,
                                exec.trace->laneForThisThread(), t0,
                                exec.trace->nowUs() - t0, {},
                                {{"ts", t.pp->ts},
                                 {"tt", t.pp->tt}});
                        }
                    }
                });
            }
            group.wait();
        };

        if (parallel && problems.size() > 1)
            speculate(0);

        // ---- Phase 3: apply in canonical order. This walk *is* the
        // serial algorithm; a precomputed cut is consumed only when
        // its versions prove the serial solve would have built the
        // identical graph, otherwise it is re-solved inline. ----
        std::vector<std::pair<RegKey, PointList>> new_reg;
        std::vector<std::pair<PairKey, PointList>> new_mem;
        std::vector<std::pair<RegKey, PlacementDecision>> new_reg_dec;
        std::vector<std::pair<PairKey, PlacementDecision>> new_mem_dec;

        ArenaLease main_arena(arenas, counters.arena_reuse);
        CachedCut inline_cut;

        int cur_pair = -1;
        uint64_t pair_entry_vtt = 0;
        const ThreadLiveness *live = nullptr;

        for (size_t i = 0; i < problems.size(); ++i) {
            const CutProblem &p = problems[i];
            if (p.pair_idx != cur_pair) {
                // Pair boundary: if speculation went stale (earlier
                // pairs grew a relevant set), re-solve the remaining
                // tail in parallel before continuing.
                if (parallel && specable(p) && !fresh(p)) {
                    size_t stale = 0;
                    for (size_t j = i; j < problems.size(); ++j) {
                        if (specable(problems[j]) &&
                            !fresh(problems[j]))
                            ++stale;
                    }
                    if (stale >= 2)
                        speculate(i);
                }
                cur_pair = p.pair_idx;
                pair_entry_vtt = rel_version[p.tt];
                // Snapshot of tt's relevant branches for liveness.
                live = &livenessFor(p.tt);
            }

            if (!p.is_mem) {
                PointList points;
                const CachedCut *used_cut = nullptr;
                if (opts.optimize_registers) {
                    CachedCut &slot = slotFor(p);
                    // The serial solve reads relevant[ts] and
                    // relevant[tt] (graph) plus the pair-entry
                    // liveness snapshot; the cached cut matches iff
                    // all three inputs are provably unchanged.
                    bool usable = parallel && slot.valid &&
                                  slot.vts == rel_version[p.ts] &&
                                  slot.vtt == rel_version[p.tt] &&
                                  rel_version[p.tt] == pair_entry_vtt;
                    const CachedCut *cut = nullptr;
                    if (usable) {
                        counters.spec_hits.add();
                        cut = &slot;
                    } else {
                        if (parallel)
                            counters.spec_misses.add();
                        solveRegCut(inputs, *safety[p.ts], *live,
                                    pair_entry_vtt, p.r, p.ts, p.tt,
                                    opts, *main_arena, counters,
                                    exec.capture, inline_cut);
                        // An inline solve taken with an un-grown pair
                        // (liveness version == current version) is
                        // itself a valid cache entry for later
                        // iterations.
                        if (parallel &&
                            rel_version[p.tt] == pair_entry_vtt) {
                            slot = inline_cut;
                            slot.vts = rel_version[p.ts];
                            slot.vtt = rel_version[p.tt];
                            slot.valid = true;
                            cut = &slot;
                        } else {
                            cut = &inline_cut;
                        }
                    }
                    GMT_ASSERT(cut->finite,
                               "no finite register cut");
                    result.register_cut_cost += cut->cost;
                    points = cut->points;
                    used_cut = cut;
                }
                const bool from_cut = !points.empty();
                if (points.empty()) {
                    points = defaultRegPoints(f, pdg, partition,
                                              relevant, reg_arcs,
                                              p.ts, p.tt, p.r,
                                              needers);
                }
                const RegKey key{p.ts, p.tt, p.r};
                if (record) {
                    PlacementDecision d;
                    d.is_mem = false;
                    d.reg = p.r;
                    d.src_thread = p.ts;
                    d.dst_thread = p.tt;
                    d.problem = static_cast<int>(i);
                    d.rule = from_cut ? "coco-cut" : "coco-default";
                    if (used_cut) {
                        d.cut_cost = used_cut->cost;
                        d.graph_nodes = used_cut->graph_nodes;
                        d.graph_arcs = used_cut->graph_arcs;
                        d.exec_warm = used_cut->warm;
                    }
                    if (from_cut) {
                        d.points = used_cut->breakdown;
                    } else {
                        for (const auto &pt : points)
                            d.points.push_back(
                                {pt.block, pt.pos,
                                 static_cast<int64_t>(
                                     profile.pointWeight(pt)),
                                 0});
                    }
                    const PlacementDecision *prev = prevRegDec(key);
                    d.iteration = prev && prev->rule == d.rule &&
                                          prev->points == d.points
                                      ? prev->iteration
                                      : result.iterations;
                    new_reg_dec.push_back({key, std::move(d)});
                }
                new_reg.push_back({key, points});
                for (const auto &pt : points)
                    grow(p.tt, pt);
            } else {
                PointList points;
                const CachedCut *used_cut = nullptr;
                if (opts.optimize_memory) {
                    CachedCut &slot = slotFor(p);
                    // Memory graphs read no liveness, so the pair-
                    // entry condition drops out.
                    bool usable = parallel && slot.valid &&
                                  slot.vts == rel_version[p.ts] &&
                                  slot.vtt == rel_version[p.tt];
                    const CachedCut *cut = nullptr;
                    if (usable) {
                        counters.spec_hits.add();
                        cut = &slot;
                    } else {
                        if (parallel)
                            counters.spec_misses.add();
                        solveMemCut(inputs, *p.deps, p.ts, p.tt, opts,
                                    *main_arena, counters,
                                    exec.capture, inline_cut);
                        if (parallel) {
                            slot = inline_cut;
                            slot.vts = rel_version[p.ts];
                            slot.vtt = rel_version[p.tt];
                            slot.valid = true;
                            cut = &slot;
                        } else {
                            cut = &inline_cut;
                        }
                    }
                    GMT_ASSERT(cut->finite, "no finite memory cut");
                    result.memory_cut_cost += cut->cost;
                    points = cut->points;
                    used_cut = cut;
                } else {
                    for (auto [src, _] : *p.deps) {
                        points.push_back({f.instr(src).block,
                                          f.positionOf(src) + 1});
                    }
                    points = normalize(std::move(points));
                }
                const PairKey key{p.ts, p.tt};
                if (record) {
                    PlacementDecision d;
                    d.is_mem = true;
                    d.src_thread = p.ts;
                    d.dst_thread = p.tt;
                    d.problem = static_cast<int>(i);
                    d.num_deps = static_cast<int>(p.deps->size());
                    d.rule = used_cut ? "coco-cut" : "coco-default";
                    if (used_cut) {
                        d.cut_cost = used_cut->cost;
                        d.graph_nodes = used_cut->graph_nodes;
                        d.graph_arcs = used_cut->graph_arcs;
                        d.exec_warm = used_cut->warm;
                        d.points = used_cut->breakdown;
                    } else {
                        for (const auto &pt : points)
                            d.points.push_back(
                                {pt.block, pt.pos,
                                 static_cast<int64_t>(
                                     profile.pointWeight(pt)),
                                 0});
                    }
                    const PlacementDecision *prev = prevMemDec(key);
                    d.iteration = prev && prev->rule == d.rule &&
                                          prev->points == d.points
                                      ? prev->iteration
                                      : result.iterations;
                    new_mem_dec.push_back({key, std::move(d)});
                }
                new_mem.push_back({key, points});
                for (const auto &pt : points)
                    grow(p.tt, pt);
            }
        }

        // Pair order is quasi-topological, not key-sorted; restore
        // the canonical ascending-key order the old map accumulators
        // iterated in (keys are unique, so plain sort by key).
        std::sort(new_reg.begin(), new_reg.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        std::sort(new_mem.begin(), new_mem.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        if (record) {
            std::sort(new_reg_dec.begin(), new_reg_dec.end(),
                      [](const auto &a, const auto &b) {
                          return a.first < b.first;
                      });
            std::sort(new_mem_dec.begin(), new_mem_dec.end(),
                      [](const auto &a, const auto &b) {
                          return a.first < b.first;
                      });
            reg_decs = std::move(new_reg_dec);
            mem_decs = std::move(new_mem_dec);
        }

        bool converged =
            (new_reg == reg_placements) && (new_mem == mem_placements);
        reg_placements = std::move(new_reg);
        mem_placements = std::move(new_mem);
        if (converged)
            break;
    }

    // Materialize the plan in deterministic order. Decision records
    // pick up their final plan index here (or land in elided when no
    // points survived); reg_decs/mem_decs share the accumulators' key
    // sequence, so positions line up one to one.
    if (record) {
        GMT_ASSERT(reg_decs.size() == reg_placements.size() &&
                   mem_decs.size() == mem_placements.size());
        exec.provenance->source = "coco";
        exec.provenance->iterations = result.iterations;
    }
    for (size_t k = 0; k < reg_placements.size(); ++k) {
        const auto &[key, points] = reg_placements[k];
        auto [ts, tt, r] = key;
        if (record) {
            PlacementDecision d = std::move(reg_decs[k].second);
            if (points.empty()) {
                exec.provenance->elided.push_back(std::move(d));
            } else {
                d.index =
                    static_cast<int>(result.plan.placements.size());
                exec.provenance->placements.push_back(std::move(d));
            }
        }
        if (points.empty())
            continue;
        result.plan.placements.push_back(
            {CommKind::RegisterData, r, ts, tt, points});
    }
    for (size_t k = 0; k < mem_placements.size(); ++k) {
        const auto &[key, points] = mem_placements[k];
        auto [ts, tt] = key;
        if (record) {
            PlacementDecision d = std::move(mem_decs[k].second);
            if (points.empty()) {
                exec.provenance->elided.push_back(std::move(d));
            } else {
                d.index =
                    static_cast<int>(result.plan.placements.size());
                exec.provenance->placements.push_back(std::move(d));
            }
        }
        if (points.empty())
            continue;
        result.plan.placements.push_back(
            {CommKind::MemorySync, kNoReg, ts, tt, points});
    }
    result.warm_starts =
        counters.warm_local.load(std::memory_order_relaxed);
    result.cold_rebuilds =
        counters.cold_local.load(std::memory_order_relaxed);
    return result;
}

uint64_t
planDynamicCost(const Function &f, const CommPlan &plan,
                const EdgeProfile &profile)
{
    (void)f;
    uint64_t cost = 0;
    for (const auto &pl : plan.placements) {
        for (const auto &p : pl.points)
            cost += 2 * profile.pointWeight(p); // produce + consume
    }
    return cost;
}

} // namespace gmt
