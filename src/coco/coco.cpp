#include "coco/coco.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <tuple>

#include "coco/flow_graph.hpp"
#include "coco/relevant.hpp"
#include "coco/safety.hpp"
#include "coco/thread_liveness.hpp"
#include "graph/multi_cut.hpp"
#include "graph/scc.hpp"
#include "support/error.hpp"

namespace gmt
{

namespace
{

using RegKey = std::tuple<int, int, Reg>;      // (ts, tt, r)
using PairKey = std::pair<int, int>;           // (ts, tt)
using PointList = std::vector<ProgramPoint>;

PointList
normalize(PointList points)
{
    std::sort(points.begin(), points.end());
    points.erase(std::unique(points.begin(), points.end()),
                 points.end());
    return points;
}

/** Threads that need the value consumed by instruction u. */
std::vector<int>
needersOf(const Function &f, const ThreadPartition &partition,
          const std::vector<BitVector> &relevant, InstrId u)
{
    std::vector<int> threads{partition.threadOf(u)};
    if (f.instr(u).isBranch()) {
        for (int t = 0; t < partition.num_threads; ++t) {
            if (t != partition.threadOf(u) &&
                relevant[t].test(f.instr(u).block)) {
                threads.push_back(t);
            }
        }
    }
    return threads;
}

/** Default (MTCG) placement: right after each contributing def. */
PointList
defaultRegPoints(const Function &f, const Pdg &pdg,
                 const ThreadPartition &partition,
                 const std::vector<BitVector> &relevant, int ts, int tt,
                 Reg r)
{
    PointList points;
    for (const auto &arc : pdg.arcs()) {
        if (arc.kind != DepKind::Register || arc.reg != r)
            continue;
        if (partition.threadOf(arc.src) != ts)
            continue;
        auto needers = needersOf(f, partition, relevant, arc.dst);
        if (std::find(needers.begin(), needers.end(), tt) ==
            needers.end())
            continue;
        points.push_back({f.instr(arc.src).block,
                          f.positionOf(arc.src) + 1});
    }
    return normalize(std::move(points));
}

} // namespace

CocoResult
cocoOptimize(const Function &f, const Pdg &pdg,
             const ThreadPartition &partition,
             const ControlDependence &cd, const EdgeProfile &profile,
             const CocoOptions &opts)
{
    CocoResult result;
    const int nt = partition.num_threads;

    std::vector<BitVector> relevant =
        initRelevantBranches(f, cd, partition);

    // Safety depends only on the partition: compute once per thread.
    std::vector<std::unique_ptr<SafetyAnalysis>> safety;
    for (int t = 0; t < nt; ++t)
        safety.push_back(
            std::make_unique<SafetyAnalysis>(f, partition, t));

    std::map<RegKey, PointList> reg_placements;
    std::map<PairKey, PointList> mem_placements;

    for (int iter = 0; iter < opts.max_iterations; ++iter) {
        ++result.iterations;
        result.register_cut_cost = 0;
        result.memory_cut_cost = 0;

        // Collect the work for each thread pair under the current
        // relevant-branch sets.
        std::map<PairKey, std::set<Reg>> reg_work;
        std::map<PairKey, std::vector<std::pair<InstrId, InstrId>>>
            mem_work;
        for (const auto &arc : pdg.arcs()) {
            int ts = partition.threadOf(arc.src);
            if (arc.kind == DepKind::Register) {
                for (int tt :
                     needersOf(f, partition, relevant, arc.dst)) {
                    if (tt != ts)
                        reg_work[{ts, tt}].insert(arc.reg);
                }
            } else if (arc.kind == DepKind::Memory) {
                int tt = partition.threadOf(arc.dst);
                if (tt != ts)
                    mem_work[{ts, tt}].emplace_back(arc.src, arc.dst);
            }
        }

        // Quasi-topological order over the thread graph reduces the
        // number of repeat-until iterations (paper §3.2).
        Digraph tg(nt);
        for (const auto &[key, _] : reg_work)
            tg.addEdge(key.first, key.second);
        for (const auto &[key, _] : mem_work)
            tg.addEdge(key.first, key.second);
        SccResult tg_sccs = computeSccs(tg);
        std::vector<PairKey> pair_order;
        for (const auto &[key, _] : reg_work)
            pair_order.push_back(key);
        for (const auto &[key, _] : mem_work) {
            if (!reg_work.count(key))
                pair_order.push_back(key);
        }
        std::sort(pair_order.begin(), pair_order.end(),
                  [&](const PairKey &a, const PairKey &b) {
                      auto ka = std::make_tuple(
                          tg_sccs.component[a.first],
                          tg_sccs.component[a.second], a);
                      auto kb = std::make_tuple(
                          tg_sccs.component[b.first],
                          tg_sccs.component[b.second], b);
                      return ka < kb;
                  });

        std::map<RegKey, PointList> new_reg;
        std::map<PairKey, PointList> new_mem;

        FlowGraphInputs inputs{&f,        &cd,
                               &profile,  &partition,
                               &relevant, opts.control_flow_penalties};

        for (const PairKey &pair : pair_order) {
            auto [ts, tt] = pair;
            // Snapshot of tt's relevant branches for liveness.
            ThreadLiveness live(f, partition, tt, relevant[tt]);

            if (auto it = reg_work.find(pair); it != reg_work.end()) {
                for (Reg r : it->second) {
                    PointList points;
                    if (opts.optimize_registers) {
                        FlowGraph fg = buildRegisterFlowGraph(
                            inputs, *safety[ts], live, r, ts, tt);
                        if (!fg.trivial) {
                            MaxFlow mf(fg.net, opts.flow_algo);
                            Capacity flow =
                                mf.solve(fg.source, fg.sink);
                            GMT_ASSERT(mf.finite(),
                                       "no finite register cut");
                            result.register_cut_cost += flow;
                            for (int a : mf.minCutArcs()) {
                                GMT_ASSERT(fg.arc_points[a].block !=
                                           kNoBlock);
                                points.push_back(fg.arc_points[a]);
                            }
                            points = normalize(std::move(points));
                        }
                    }
                    if (points.empty()) {
                        points = defaultRegPoints(f, pdg, partition,
                                                  relevant, ts, tt, r);
                    }
                    new_reg[{ts, tt, r}] = points;
                    for (const auto &p : points)
                        growRelevantForPoint(f, cd, relevant[tt], p);
                }
            }

            if (auto it = mem_work.find(pair); it != mem_work.end()) {
                PointList points;
                if (opts.optimize_memory) {
                    FlowGraph fg =
                        buildMemoryFlowGraph(inputs, it->second, ts, tt);
                    MultiCutResult cut =
                        opts.multi_pair_memory
                            ? multiPairMinCut(fg.net, fg.pairs,
                                              opts.flow_algo)
                            : superPairMinCut(fg.net, fg.pairs,
                                              opts.flow_algo);
                    GMT_ASSERT(cut.finite, "no finite memory cut");
                    result.memory_cut_cost += cut.cost;
                    for (int a : cut.arcs)
                        points.push_back(fg.arc_points[a]);
                    points = normalize(std::move(points));
                } else {
                    for (auto [src, _] : it->second) {
                        points.push_back({f.instr(src).block,
                                          f.positionOf(src) + 1});
                    }
                    points = normalize(std::move(points));
                }
                new_mem[pair] = points;
                for (const auto &p : points)
                    growRelevantForPoint(f, cd, relevant[tt], p);
            }
        }

        bool converged =
            (new_reg == reg_placements) && (new_mem == mem_placements);
        reg_placements = std::move(new_reg);
        mem_placements = std::move(new_mem);
        if (converged)
            break;
    }

    // Materialize the plan in deterministic order.
    for (const auto &[key, points] : reg_placements) {
        auto [ts, tt, r] = key;
        if (points.empty())
            continue;
        result.plan.placements.push_back(
            {CommKind::RegisterData, r, ts, tt, points});
    }
    for (const auto &[key, points] : mem_placements) {
        auto [ts, tt] = key;
        if (points.empty())
            continue;
        result.plan.placements.push_back(
            {CommKind::MemorySync, kNoReg, ts, tt, points});
    }
    return result;
}

uint64_t
planDynamicCost(const Function &f, const CommPlan &plan,
                const EdgeProfile &profile)
{
    (void)f;
    uint64_t cost = 0;
    for (const auto &pl : plan.placements) {
        for (const auto &p : pl.points)
            cost += 2 * profile.pointWeight(p); // produce + consume
    }
    return cost;
}

} // namespace gmt
