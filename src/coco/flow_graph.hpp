#ifndef GMT_COCO_FLOW_GRAPH_HPP
#define GMT_COCO_FLOW_GRAPH_HPP

/**
 * @file
 * Construction of the min-cut flow graphs G_f (paper §3.1).
 *
 * Nodes are instructions (plus block-entry nodes and, for registers,
 * the special S/T nodes); arcs are the control-flow steps between
 * adjacent program points, so *cutting an arc is placing a
 * produce/consume pair at a program point*. Costs are profile
 * weights, plus §3.1.2's control-flow penalties for points whose
 * execution condition would force new branches into the target
 * thread, plus infinity where a placement would violate Safety
 * (Property 3) or source-thread relevance (Property 2).
 *
 * The builders write into a caller-owned FlowGraph and scratch
 * buffers so that a solver working through thousands of problems
 * (coco/coco.cpp) reuses one arena per worker instead of allocating
 * per problem.
 */

#include <utility>
#include <vector>

#include "analysis/control_dep.hpp"
#include "analysis/edge_profile.hpp"
#include "coco/safety.hpp"
#include "coco/thread_liveness.hpp"
#include "graph/max_flow.hpp"
#include "ir/function.hpp"
#include "partition/partition.hpp"

namespace gmt
{

/**
 * How one arc's capacity was derived, recorded at build time so a
 * retained graph's costs can be re-derived without rebuilding its
 * topology (diffFlowGraphCosts). @c block == kNoBlock pins the arc:
 * its cost can never change across Algorithm 2 iterations (special
 * S/T arcs, and register points that fail Safety — the safety
 * analysis depends only on the partition). Every other arc's cost is
 * a pure function of (block, base) and the *current* relevant-branch
 * sets: infinite while the block is irrelevant to the source thread,
 * else base plus the §3.1.2 penalty of the block.
 */
struct ArcCost
{
    BlockId block = kNoBlock;
    Capacity base = 0;
};

/** A built flow graph plus the arc -> program-point mapping. */
struct FlowGraph
{
    FlowNetwork net{0};

    /** Register case: super source/sink. */
    int source = -1;
    int sink = -1;

    /** Memory case: one (source, sink) node pair per dependence arc. */
    std::vector<std::pair<int, int>> pairs;

    /** arc id -> the program point cutting it selects; special arcs
     *  map to {kNoBlock, -1}. */
    std::vector<ProgramPoint> arc_points;

    /** arc id -> cost derivation, for incremental cost refresh. */
    std::vector<ArcCost> arc_cost;

    /** True if there was nothing to build (no defs or no uses). */
    bool trivial = false;

    /** Rewind for reuse, keeping the network's arc storage. */
    void
    clear()
    {
        net.reset(0);
        source = -1;
        sink = -1;
        pairs.clear();
        arc_points.clear();
        arc_cost.clear();
        trivial = false;
    }
};

/** Inputs shared by both builders. */
struct FlowGraphInputs
{
    const Function *f;
    const ControlDependence *cd;
    const EdgeProfile *profile;
    const ThreadPartition *partition;

    /** Per-thread relevant-branch sets (current Algorithm 2 state). */
    const std::vector<BitVector> *relevant;

    /**
     * Per-block transitive control dependences, computed once per
     * cocoOptimize call (ControlDependence::transitiveDeps per block
     * is too hot to redo per problem). May be null: each builder call
     * then derives them itself.
     */
    const std::vector<std::vector<BlockId>> *trans_deps = nullptr;

    /** Apply §3.1.2 control-flow penalties? */
    bool penalties = true;
};

/**
 * Reusable working memory for the builders. One instance per worker;
 * inner vectors keep their capacity across problems.
 */
struct FlowGraphScratch
{
    std::vector<std::vector<char>> point_live;
    std::vector<std::vector<char>> point_safe;
    std::vector<int> entry_node;
    std::vector<std::vector<int>> instr_node;
    BitVector safe;

    /** Fallback for FlowGraphInputs::trans_deps == nullptr. */
    std::vector<std::vector<BlockId>> local_trans_deps;

    /** Per-block cost terms, used by diffFlowGraphCosts(). */
    std::vector<char> block_relevant_src;
    std::vector<Capacity> block_penalty;
};

/**
 * Build G_f for register @p r from thread @p ts to thread @p tt
 * (§3.1.1 + §3.1.2) into @p out. @p safety is the SafetyAnalysis of
 * @p ts; @p live the ThreadLiveness of @p tt (with its current
 * relevant branches).
 */
void buildRegisterFlowGraph(const FlowGraphInputs &in,
                            const SafetyAnalysis &safety,
                            const ThreadLiveness &live, Reg r, int ts,
                            int tt, FlowGraph &out,
                            FlowGraphScratch &scratch);

/**
 * Build G_f for all memory dependences from @p ts to @p tt (§3.1.3)
 * into @p out: whole-region graph with one source/sink pair per
 * dependence.
 */
void buildMemoryFlowGraph(
    const FlowGraphInputs &in,
    const std::vector<std::pair<InstrId, InstrId>> &dep_pairs, int ts,
    int tt, FlowGraph &out, FlowGraphScratch &scratch);

/**
 * Diff mode for retained graphs: recompute every non-pinned arc cost
 * of @p fg from the *current* relevant-branch sets in @p in (via the
 * ArcCost records written at build time) and emit one ArcDelta per
 * arc whose cost differs from the capacity currently stored in the
 * network. The graph's topology must be known-unchanged by the
 * caller (register graphs: same liveness snapshot version; memory
 * graphs: topology is fixed by the function) — this routine only
 * refreshes costs. Together with the fact that relevant sets grow
 * monotonically (costs only ever move from infinite to finite or
 * shrink their penalty term), the deltas feed MaxFlow::resolve()
 * without invalidating the retained residual.
 */
void diffFlowGraphCosts(const FlowGraphInputs &in, int ts, int tt,
                        const FlowGraph &fg, FlowGraphScratch &scratch,
                        std::vector<ArcDelta> &deltas);

} // namespace gmt

#endif // GMT_COCO_FLOW_GRAPH_HPP
