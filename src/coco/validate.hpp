#ifndef GMT_COCO_VALIDATE_HPP
#define GMT_COCO_VALIDATE_HPP

/**
 * @file
 * Independent validation of a communication plan against the paper's
 * Properties 1-3 plus coverage: every cross-thread dependence must be
 * cut by its placement's points on every CFG path. This module shares
 * no code with the optimizer's graph construction, so it catches
 * optimizer bugs rather than reproducing them.
 */

#include <string>
#include <vector>

#include "analysis/control_dep.hpp"
#include "mtcg/comm_plan.hpp"
#include "mtverify/diag.hpp"
#include "partition/partition.hpp"
#include "pdg/pdg.hpp"

namespace gmt
{

/**
 * Check @p plan for @p partition:
 *  - Safety (Property 3): every register placement point holds the
 *    source thread's latest value of the register;
 *  - Source relevance (Property 2): every point is a relevant point
 *    of the source thread;
 *  - Coverage: for every cross-thread register arc (def -> use) and
 *    memory arc (src -> dst), every instruction-level CFG path from
 *    source to destination crosses one of the placement's points.
 *
 * Findings use the mtverify diagnostic space (codes PlanInvalidPoint,
 * PlanSourceIrrelevant, PlanUnsafePoint, PlanUncoveredArc) with
 * block/pos coordinates of the offending point and, for coverage, the
 * destination instruction of the uncovered arc. Exact repeats are
 * deduplicated. @return findings (empty = valid).
 */
std::vector<MtvDiag> validatePlanDiags(const Function &f, const Pdg &pdg,
                                       const ThreadPartition &partition,
                                       const ControlDependence &cd,
                                       const CommPlan &plan);

/** validatePlanDiags rendered one string per finding (callers that
 *  only print). Empty = valid. */
std::vector<std::string> validatePlan(const Function &f, const Pdg &pdg,
                                      const ThreadPartition &partition,
                                      const ControlDependence &cd,
                                      const CommPlan &plan);

} // namespace gmt

#endif // GMT_COCO_VALIDATE_HPP
