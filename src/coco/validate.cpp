#include "coco/validate.hpp"

#include <algorithm>
#include <memory>
#include <set>
#include <sstream>

#include "coco/safety.hpp"
#include "support/error.hpp"

namespace gmt
{

namespace
{

/**
 * True if some instruction-level CFG path from @p start reaches the
 * point just before instruction @p target without crossing any point
 * in @p barrier.
 */
bool
pathEscapes(const Function &f, ProgramPoint start, InstrId target,
            const std::set<ProgramPoint> &barrier, Reg kill_reg)
{
    ProgramPoint goal{f.instr(target).block, f.positionOf(target)};
    std::set<ProgramPoint> seen;
    std::vector<ProgramPoint> work{start};
    while (!work.empty()) {
        ProgramPoint p = work.back();
        work.pop_back();
        if (barrier.count(p))
            continue; // communication intercepts here
        if (p == goal)
            return true;
        if (!seen.insert(p).second)
            continue;
        const BasicBlock &bb = f.block(p.block);
        int size = static_cast<int>(bb.size());
        GMT_ASSERT(p.pos >= 0 && p.pos < size);
        // A redefinition of the register kills the dependence along
        // this path: the value no longer needs to flow further.
        InstrId here = bb.instrs()[p.pos];
        if (kill_reg != kNoReg && f.defOf(here) == kill_reg)
            continue;
        if (p.pos < size - 1) {
            work.push_back({p.block, p.pos + 1});
        } else {
            for (BlockId s : bb.succs())
                work.push_back({s, 0});
        }
    }
    return false;
}

} // namespace

std::vector<MtvDiag>
validatePlanDiags(const Function &f, const Pdg &pdg,
                  const ThreadPartition &partition,
                  const ControlDependence &cd, const CommPlan &plan)
{
    std::vector<MtvDiag> problems;
    auto complain = [&](MtvCode code, MtvDiag coords, auto &&...parts) {
        std::ostringstream os;
        (os << ... << parts);
        coords.code = code;
        coords.message = os.str();
        problems.push_back(std::move(coords));
    };

    // Structural pre-check: every point must name a real program
    // position before any analysis consumes the plan.
    for (size_t pi = 0; pi < plan.placements.size(); ++pi) {
        for (const auto &p : plan.placements[pi].points) {
            if (p.block < 0 || p.block >= f.numBlocks() || p.pos < 0 ||
                p.pos >= static_cast<int>(f.block(p.block).size())) {
                complain(MtvCode::PlanInvalidPoint, {},
                         "placement ", pi, ": invalid point");
            }
        }
    }
    if (!problems.empty()) {
        sortDiags(problems);
        dedupeDiags(problems);
        return problems;
    }

    RelevantSets relevant(f, cd, partition, plan);

    // Properties 2 and 3 per placement point.
    std::vector<std::unique_ptr<SafetyAnalysis>> safety(
        partition.num_threads);
    for (size_t pi = 0; pi < plan.placements.size(); ++pi) {
        const CommPlacement &pl = plan.placements[pi];
        if (!safety[pl.src_thread]) {
            safety[pl.src_thread] = std::make_unique<SafetyAnalysis>(
                f, partition, pl.src_thread);
        }
        for (const auto &p : pl.points) {
            if (!relevant.isRelevantPoint(pl.src_thread, p.block, cd)) {
                complain(MtvCode::PlanSourceIrrelevant,
                         {.thread = pl.src_thread,
                          .block = p.block,
                          .pos = p.pos},
                         "placement ", pi,
                         ": Property 2 violated (point in block ",
                         f.block(p.block).label(),
                         " not relevant to source thread ",
                         pl.src_thread, ")");
            }
            if (pl.kind == CommKind::RegisterData &&
                !safety[pl.src_thread]->isSafeAt(pl.reg, p)) {
                // MTCG's operand forwarding: a thread may re-produce
                // a value it consumes *at the same point* from an
                // earlier placement (Algorithm 1 lines 17-19 send a
                // branch operand the owner just received). The
                // earlier placement's own check guarantees the
                // forwarded value is the latest.
                bool forwarded = false;
                for (size_t pj = 0; pj < pi && !forwarded; ++pj) {
                    const CommPlacement &prev = plan.placements[pj];
                    forwarded =
                        prev.kind == CommKind::RegisterData &&
                        prev.reg == pl.reg &&
                        prev.dst_thread == pl.src_thread &&
                        std::find(prev.points.begin(),
                                  prev.points.end(),
                                  p) != prev.points.end();
                }
                if (!forwarded) {
                    complain(MtvCode::PlanUnsafePoint,
                             {.thread = pl.src_thread,
                              .block = p.block,
                              .pos = p.pos},
                             "placement ", pi,
                             ": Property 3 violated (r", pl.reg,
                             " unsafe at ", f.block(p.block).label(),
                             ":", p.pos, ")");
                }
            }
        }
    }

    // Coverage of every cross-thread PDG arc.
    for (const auto &arc : pdg.arcs()) {
        int ts = partition.threadOf(arc.src);
        int tt = partition.threadOf(arc.dst);
        if (ts == tt || arc.kind == DepKind::Control)
            continue;
        // Union the points of all matching placements.
        std::set<ProgramPoint> barrier;
        for (const auto &pl : plan.placements) {
            bool matches =
                pl.src_thread == ts && pl.dst_thread == tt &&
                ((arc.kind == DepKind::Register &&
                  pl.kind == CommKind::RegisterData &&
                  pl.reg == arc.reg) ||
                 (arc.kind == DepKind::Memory &&
                  pl.kind == CommKind::MemorySync));
            if (matches)
                barrier.insert(pl.points.begin(), pl.points.end());
        }
        ProgramPoint start{f.instr(arc.src).block,
                           f.positionOf(arc.src) + 1};
        Reg kill = arc.kind == DepKind::Register ? arc.reg : kNoReg;
        if (pathEscapes(f, start, arc.dst, barrier, kill)) {
            complain(MtvCode::PlanUncoveredArc,
                     {.thread = tt,
                      .block = f.instr(arc.dst).block,
                      .instr = arc.dst},
                     "arc i", arc.src, " -> i", arc.dst, " (",
                     arc.kind == DepKind::Register ? "reg" : "mem",
                     ") from T", ts, " to T", tt,
                     " has an uncovered path");
        }
    }
    sortDiags(problems);
    dedupeDiags(problems);
    return problems;
}

std::vector<std::string>
validatePlan(const Function &f, const Pdg &pdg,
             const ThreadPartition &partition,
             const ControlDependence &cd, const CommPlan &plan)
{
    std::vector<std::string> rendered;
    for (const MtvDiag &d :
         validatePlanDiags(f, pdg, partition, cd, plan))
        rendered.push_back(renderDiag(d));
    return rendered;
}

} // namespace gmt
