#include "coco/relevant.hpp"

namespace gmt
{

namespace
{

/** Mark @p branch_block and, transitively, its controllers. */
bool
growClosure(const ControlDependence &cd, BitVector &set,
            BlockId branch_block)
{
    if (set.test(branch_block))
        return false;
    set.set(branch_block);
    for (BlockId up : cd.dependsOn(branch_block))
        growClosure(cd, set, up);
    return true;
}

} // namespace

std::vector<BitVector>
initRelevantBranches(const Function &f, const ControlDependence &cd,
                     const ThreadPartition &p)
{
    std::vector<BitVector> sets(p.num_threads, BitVector(f.numBlocks()));
    for (int t = 0; t < p.num_threads; ++t) {
        for (InstrId i = 0; i < f.numInstrs(); ++i) {
            if (p.threadOf(i) != t)
                continue;
            // Rule 1: branches assigned to t.
            if (f.instr(i).isBranch())
                growClosure(cd, sets[t], f.instr(i).block);
            // Direct control dependences of t's instructions (the
            // unavoidable control inputs), closed under rule 3.
            for (BlockId b : cd.dependsOn(f.instr(i).block))
                growClosure(cd, sets[t], b);
        }
    }
    return sets;
}

bool
growRelevantForPoint(const Function &f, const ControlDependence &cd,
                     BitVector &set, const ProgramPoint &point)
{
    (void)f;
    bool grew = false;
    for (BlockId b : cd.dependsOn(point.block))
        grew |= growClosure(cd, set, b);
    return grew;
}

bool
isRelevantPoint(const ControlDependence &cd, const BitVector &set,
                BlockId block)
{
    for (BlockId b : cd.dependsOn(block)) {
        if (!set.test(b))
            return false;
    }
    return true;
}

} // namespace gmt
