#include "coco/flow_graph.hpp"

#include <algorithm>

#include "coco/relevant.hpp"
#include "support/error.hpp"

namespace gmt
{

namespace
{

/**
 * Shared scaffolding: node layout over (block entries, instruction
 * positions), chain arcs, and inter-block arcs, parameterized by a
 * point-inclusion predicate and per-point extra costs.
 */
class GraphBuilder
{
  public:
    GraphBuilder(const FlowGraphInputs &in, FlowGraphScratch &scratch,
                 int ts, int tt)
        : in_(in), ts_(ts), tt_(tt), f_(*in.f)
    {
        if (in.trans_deps) {
            trans_deps_ = in.trans_deps;
        } else {
            scratch.local_trans_deps.resize(f_.numBlocks());
            for (BlockId b = 0; b < f_.numBlocks(); ++b)
                scratch.local_trans_deps[b] =
                    in_.cd->transitiveDeps(b);
            trans_deps_ = &scratch.local_trans_deps;
        }
    }

    /** §3.1.2: weight of currently-irrelevant-to-tt branches that
     *  placing communication in @p b would force into tt. */
    Capacity
    penaltyFor(BlockId b) const
    {
        if (!in_.penalties)
            return 0;
        Capacity pen = 0;
        for (BlockId branch_block : (*trans_deps_)[b]) {
            if (!(*in_.relevant)[tt_].test(branch_block))
                pen += static_cast<Capacity>(
                    in_.profile->blockWeight(branch_block));
        }
        return pen;
    }

    /** Property 2: may the source thread communicate at block @p b? */
    bool
    relevantToSource(BlockId b) const
    {
        return isRelevantPoint(*in_.cd, (*in_.relevant)[ts_], b);
    }

  protected:
    const FlowGraphInputs &in_;
    int ts_, tt_;
    const Function &f_;
    const std::vector<std::vector<BlockId>> *trans_deps_;
};

} // namespace

void
buildRegisterFlowGraph(const FlowGraphInputs &in,
                       const SafetyAnalysis &safety,
                       const ThreadLiveness &live, Reg r, int ts,
                       int tt, FlowGraph &out, FlowGraphScratch &sc)
{
    GraphBuilder gb(in, sc, ts, tt);
    const Function &f = *in.f;
    out.clear();

    // Per-point liveness of r w.r.t. tt: point_live[b][pos] for
    // pos in [0, size], via one backward walk per block.
    auto &point_live = sc.point_live;
    point_live.resize(f.numBlocks());
    for (BlockId b = 0; b < f.numBlocks(); ++b) {
        const auto &instrs = f.block(b).instrs();
        point_live[b].assign(instrs.size() + 1, 0);
        bool l = live.liveness().liveOut(b).test(r);
        point_live[b][instrs.size()] = l;
        for (int pos = static_cast<int>(instrs.size()) - 1; pos >= 0;
             --pos) {
            InstrId i = instrs[pos];
            if (f.defOf(i) == r)
                l = false;
            if (live.usesCount(i)) {
                for (Reg use : f.usesOf(i)) {
                    if (use == r)
                        l = true;
                }
            }
            point_live[b][pos] = l;
        }
    }

    // Per-point safety of r for ts, forward per block.
    auto &point_safe = sc.point_safe;
    point_safe.resize(f.numBlocks());
    for (BlockId b = 0; b < f.numBlocks(); ++b) {
        const auto &instrs = f.block(b).instrs();
        point_safe[b].assign(instrs.size() + 1, 0);
        sc.safe = safety.safeIn(b);
        BitVector &safe = sc.safe;
        for (size_t pos = 0; pos <= instrs.size(); ++pos) {
            if (pos > 0) {
                // Re-run the transfer via safeAt once per block would
                // be O(n^2); replicate the transfer inline instead.
                InstrId i = instrs[pos - 1];
                Reg def = f.defOf(i);
                bool mine = (in.partition->threadOf(i) == ts);
                if (def != kNoReg)
                    safe.reset(def);
                if (mine) {
                    if (def != kNoReg)
                        safe.set(def);
                    for (Reg use : f.usesOf(i))
                        safe.set(use);
                }
            }
            point_safe[b][pos] = safe.test(r);
        }
    }

    // Node allocation.
    FlowNetwork &net = out.net;
    auto &entry_node = sc.entry_node;
    auto &instr_node = sc.instr_node;
    entry_node.assign(f.numBlocks(), -1);
    instr_node.resize(f.numBlocks());
    for (BlockId b = 0; b < f.numBlocks(); ++b) {
        const auto &instrs = f.block(b).instrs();
        instr_node[b].assign(instrs.size(), -1);
        if (point_live[b][0])
            entry_node[b] = net.addNode();
        for (size_t pos = 0; pos < instrs.size(); ++pos) {
            if (point_live[b][pos] || point_live[b][pos + 1])
                instr_node[b][pos] = net.addNode();
        }
    }
    out.source = net.addNode();
    out.sink = net.addNode();

    auto pointCost = [&](BlockId b, int pos,
                         Capacity base) -> Capacity {
        if (!point_safe[b][pos])
            return kInfCapacity; // Property 3
        if (!gb.relevantToSource(b))
            return kInfCapacity; // Property 2
        return base + gb.penaltyFor(b);
    };
    // Cost record for diffFlowGraphCosts: safety is fixed for the
    // whole cocoOptimize call (it reads only the partition), so an
    // unsafe point is pinned; a safe point's cost is re-derivable
    // from (block, base) alone.
    auto costRec = [&](BlockId b, int pos, Capacity base) -> ArcCost {
        if (!point_safe[b][pos])
            return ArcCost{};
        return ArcCost{b, base};
    };
    auto addArc = [&](int u, int v, Capacity cost, ProgramPoint p,
                      ArcCost rec) {
        int a = net.addArc(u, v, cost);
        GMT_ASSERT(static_cast<int>(out.arc_points.size()) == a);
        out.arc_points.push_back(p);
        out.arc_cost.push_back(rec);
    };

    // Chain arcs within blocks.
    for (BlockId b = 0; b < f.numBlocks(); ++b) {
        const auto &instrs = f.block(b).instrs();
        Capacity bw = static_cast<Capacity>(in.profile->blockWeight(b));
        if (entry_node[b] != -1 && !instrs.empty() &&
            instr_node[b][0] != -1 && point_live[b][0]) {
            addArc(entry_node[b], instr_node[b][0],
                   pointCost(b, 0, bw), ProgramPoint{b, 0},
                   costRec(b, 0, bw));
        }
        for (size_t pos = 0; pos + 1 < instrs.size(); ++pos) {
            if (instr_node[b][pos] != -1 &&
                instr_node[b][pos + 1] != -1 &&
                point_live[b][pos + 1]) {
                addArc(instr_node[b][pos], instr_node[b][pos + 1],
                       pointCost(b, static_cast<int>(pos) + 1, bw),
                       ProgramPoint{b, static_cast<int>(pos) + 1},
                       costRec(b, static_cast<int>(pos) + 1, bw));
            }
        }
    }
    // Inter-block arcs.
    for (BlockId b = 0; b < f.numBlocks(); ++b) {
        const auto &instrs = f.block(b).instrs();
        if (instrs.empty())
            continue;
        int last = static_cast<int>(instrs.size()) - 1;
        if (instr_node[b][last] == -1)
            continue;
        const auto &succs = f.block(b).succs();
        for (size_t slot = 0; slot < succs.size(); ++slot) {
            BlockId s = succs[slot];
            if (entry_node[s] == -1 || !point_live[s][0])
                continue;
            Capacity ew = static_cast<Capacity>(
                in.profile->edgeWeight(b, static_cast<int>(slot)));
            // The point a cut of this arc selects: before the Jmp of
            // a single-successor block, or the entry of the (single-
            // predecessor, post-edge-split) target.
            ProgramPoint p = (succs.size() > 1)
                                 ? ProgramPoint{s, 0}
                                 : ProgramPoint{b, last};
            Capacity cost = (succs.size() > 1)
                                ? pointCost(s, 0, ew)
                                : pointCost(b, last, ew);
            ArcCost rec = (succs.size() > 1) ? costRec(s, 0, ew)
                                             : costRec(b, last, ew);
            addArc(instr_node[b][last], entry_node[s], cost, p, rec);
        }
    }

    // Special arcs: S -> defs of r in ts whose value lives on; uses
    // "in tt" (owned, or a branch replicated into tt) -> T.
    bool have_source = false, have_sink = false;
    for (BlockId b = 0; b < f.numBlocks(); ++b) {
        const auto &instrs = f.block(b).instrs();
        for (size_t pos = 0; pos < instrs.size(); ++pos) {
            InstrId i = instrs[pos];
            if (instr_node[b][pos] == -1)
                continue;
            if (f.defOf(i) == r && in.partition->threadOf(i) == ts &&
                point_live[b][pos + 1]) {
                addArc(out.source, instr_node[b][pos], kInfCapacity,
                       ProgramPoint{kNoBlock, -1}, ArcCost{});
                have_source = true;
            }
            // Sinks: owned uses of tt, plus branches replicated into
            // tt — even when the branch itself is assigned to ts
            // (its replica in tt still needs the operand).
            if (live.usesCount(i)) {
                for (Reg use : f.usesOf(i)) {
                    if (use == r) {
                        addArc(instr_node[b][pos], out.sink,
                               kInfCapacity,
                               ProgramPoint{kNoBlock, -1}, ArcCost{});
                        have_sink = true;
                        break;
                    }
                }
            }
        }
    }
    out.trivial = !have_source || !have_sink;
}

void
buildMemoryFlowGraph(const FlowGraphInputs &in,
                     const std::vector<std::pair<InstrId, InstrId>>
                         &dep_pairs,
                     int ts, int tt, FlowGraph &out,
                     FlowGraphScratch &sc)
{
    GraphBuilder gb(in, sc, ts, tt);
    const Function &f = *in.f;
    out.clear();
    if (dep_pairs.empty()) {
        out.trivial = true;
        return;
    }

    // Whole-region graph: memory has no liveness restriction (§3.1.3).
    FlowNetwork &net = out.net;
    auto &entry_node = sc.entry_node;
    auto &instr_node = sc.instr_node;
    entry_node.assign(f.numBlocks(), -1);
    instr_node.resize(f.numBlocks());
    for (BlockId b = 0; b < f.numBlocks(); ++b) {
        entry_node[b] = net.addNode();
        const auto &instrs = f.block(b).instrs();
        instr_node[b].resize(instrs.size());
        for (size_t pos = 0; pos < instrs.size(); ++pos)
            instr_node[b][pos] = net.addNode();
    }

    auto pointCost = [&](BlockId b, Capacity base) -> Capacity {
        // No safety constraint for pure synchronization; Property 2
        // still forbids points irrelevant to the source thread.
        if (!gb.relevantToSource(b))
            return kInfCapacity;
        return base + gb.penaltyFor(b);
    };
    auto addArc = [&](int u, int v, Capacity cost, ProgramPoint p,
                      ArcCost rec) {
        int a = net.addArc(u, v, cost);
        GMT_ASSERT(static_cast<int>(out.arc_points.size()) == a);
        out.arc_points.push_back(p);
        out.arc_cost.push_back(rec);
    };

    for (BlockId b = 0; b < f.numBlocks(); ++b) {
        const auto &instrs = f.block(b).instrs();
        Capacity bw = static_cast<Capacity>(in.profile->blockWeight(b));
        if (!instrs.empty()) {
            addArc(entry_node[b], instr_node[b][0], pointCost(b, bw),
                   ProgramPoint{b, 0}, ArcCost{b, bw});
        }
        for (size_t pos = 0; pos + 1 < instrs.size(); ++pos) {
            addArc(instr_node[b][pos], instr_node[b][pos + 1],
                   pointCost(b, bw),
                   ProgramPoint{b, static_cast<int>(pos) + 1},
                   ArcCost{b, bw});
        }
        int last = static_cast<int>(instrs.size()) - 1;
        const auto &succs = f.block(b).succs();
        for (size_t slot = 0; slot < succs.size(); ++slot) {
            BlockId s = succs[slot];
            Capacity ew = static_cast<Capacity>(
                in.profile->edgeWeight(b, static_cast<int>(slot)));
            ProgramPoint p = (succs.size() > 1)
                                 ? ProgramPoint{s, 0}
                                 : ProgramPoint{b, last};
            Capacity cost = (succs.size() > 1) ? pointCost(s, ew)
                                               : pointCost(b, ew);
            ArcCost rec = (succs.size() > 1) ? ArcCost{s, ew}
                                             : ArcCost{b, ew};
            addArc(instr_node[b][last], entry_node[s], cost, p, rec);
        }
    }

    for (auto [src, dst] : dep_pairs) {
        int sn = instr_node[f.instr(src).block][f.positionOf(src)];
        int tn = instr_node[f.instr(dst).block][f.positionOf(dst)];
        out.pairs.emplace_back(sn, tn);
    }
}

void
diffFlowGraphCosts(const FlowGraphInputs &in, int ts, int tt,
                   const FlowGraph &fg, FlowGraphScratch &sc,
                   std::vector<ArcDelta> &deltas)
{
    deltas.clear();
    GraphBuilder gb(in, sc, ts, tt);
    const Function &f = *in.f;

    // Evaluate the two relevant-set-dependent cost terms once per
    // block (the builders evaluate them once per arc).
    sc.block_relevant_src.assign(f.numBlocks(), 0);
    sc.block_penalty.assign(f.numBlocks(), 0);
    for (BlockId b = 0; b < f.numBlocks(); ++b) {
        sc.block_relevant_src[b] = gb.relevantToSource(b) ? 1 : 0;
        if (sc.block_relevant_src[b])
            sc.block_penalty[b] = gb.penaltyFor(b);
    }

    // Compare against the capacities the network currently stores:
    // no version bookkeeping needed for costs — the stored capacity
    // *is* the last-applied cost, whatever relevant-set state
    // produced it.
    for (int a = 0; a < static_cast<int>(fg.arc_cost.size()); ++a) {
        const ArcCost &c = fg.arc_cost[a];
        if (c.block == kNoBlock)
            continue; // pinned: special S/T arc or unsafe point
        Capacity cost = sc.block_relevant_src[c.block]
                            ? c.base + sc.block_penalty[c.block]
                            : kInfCapacity;
        if (cost != fg.net.arcCapacity(a))
            deltas.push_back({a, cost, false});
    }
}

} // namespace gmt
