#ifndef GMT_COCO_SAFETY_HPP
#define GMT_COCO_SAFETY_HPP

/**
 * @file
 * COCO's thread-aware safety analysis (paper equations 1 and 2).
 *
 * A register r is *safe* to communicate from thread T_s at a program
 * point iff T_s is guaranteed to hold the latest value of r there
 * (Property 3): right after T_s defines or uses r, and until any
 * thread redefines it. Communicating at an unsafe point would
 * overwrite the target's copy with a stale value.
 *
 *   SAFE_out(n) = DEF_Ts(n) u USE_Ts(n) u (SAFE_in(n) - DEF(n))
 *   SAFE_in(n)  = intersection over predecessors of SAFE_out
 *
 * The analysis is forward/must. At the region entry every register is
 * safe for every thread: live-ins are broadcast at thread spawn, so
 * all threads start with identical register files.
 */

#include <vector>

#include "ir/function.hpp"
#include "partition/partition.hpp"
#include "support/bit_vector.hpp"

namespace gmt
{

/** Per-point safe-register sets for one source thread. */
class SafetyAnalysis
{
  public:
    SafetyAnalysis(const Function &f, const ThreadPartition &partition,
                   int src_thread);

    /** Registers safe to communicate from the thread at block entry. */
    const BitVector &safeIn(BlockId b) const { return safe_in_[b]; }

    /** Safe set at an arbitrary point (forward refinement). */
    BitVector safeAt(const ProgramPoint &p) const;

    bool isSafeAt(Reg r, const ProgramPoint &p) const;

  private:
    /** Apply equation (1) for one instruction. */
    void transfer(BitVector &safe, InstrId i) const;

    const Function &func_;
    const ThreadPartition &partition_;
    int src_thread_;
    std::vector<BitVector> safe_in_;
};

} // namespace gmt

#endif // GMT_COCO_SAFETY_HPP
