#ifndef GMT_COCO_THREAD_LIVENESS_HPP
#define GMT_COCO_THREAD_LIVENESS_HPP

/**
 * @file
 * Thread-aware liveness: the live range of a register *with respect
 * to a target thread* T_t — counting only uses in instructions
 * assigned to T_t plus uses in branches currently relevant to T_t
 * (replicated branches "belong to all threads to which they are
 * relevant", so their operands are optimized together with data
 * communication, paper §3.1.1).
 */

#include <memory>

#include "analysis/liveness.hpp"
#include "partition/partition.hpp"
#include "support/bit_vector.hpp"

namespace gmt
{

/**
 * Owns the filter context and the filtered Liveness instance for one
 * (function, target thread, relevant-branch set) triple.
 */
class ThreadLiveness
{
  public:
    /**
     * @param relevant_branches branch blocks currently relevant to
     *        @p thread (a snapshot; rebuild after the set grows).
     */
    ThreadLiveness(const Function &f, const ThreadPartition &partition,
                   int thread, const BitVector &relevant_branches);

    const Liveness &liveness() const { return *liveness_; }

    bool
    isLiveAt(Reg r, const ProgramPoint &p) const
    {
        return liveness_->isLiveAt(r, p);
    }

    /** True if @p i's uses count as uses of the target thread. */
    bool usesCount(InstrId i) const;

  private:
    struct Ctx
    {
        const ThreadPartition *partition;
        int thread;
        BitVector relevant_branches;
    };

    static bool filter(const Function &f, InstrId i, const void *ctx);

    const Function &func_;
    std::unique_ptr<Ctx> ctx_;
    std::unique_ptr<Liveness> liveness_;
};

} // namespace gmt

#endif // GMT_COCO_THREAD_LIVENESS_HPP
