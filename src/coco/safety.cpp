#include "coco/safety.hpp"

#include "support/error.hpp"

namespace gmt
{

SafetyAnalysis::SafetyAnalysis(const Function &f,
                               const ThreadPartition &partition,
                               int src_thread)
    : func_(f), partition_(partition), src_thread_(src_thread)
{
    const int nb = f.numBlocks();
    const int nr = f.numRegs();

    // Optimistic (top) initialization; the entry boundary is "all
    // safe" because live-ins are broadcast at spawn. Iterating the
    // intersection to the greatest fixpoint yields the precise
    // merge-over-paths solution of this distributive framework.
    safe_in_.assign(nb, BitVector(nr));
    for (auto &s : safe_in_)
        s.setAll();

    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId b = 0; b < nb; ++b) {
            BitVector in(nr);
            if (b == f.entry()) {
                in.setAll();
            } else {
                bool first = true;
                for (BlockId p : f.block(b).preds()) {
                    BitVector out = safe_in_[p];
                    for (InstrId i : f.block(p).instrs())
                        transfer(out, i);
                    if (first) {
                        in = std::move(out);
                        first = false;
                    } else {
                        in.intersectWith(out);
                    }
                }
                // A block with no predecessors other than entry
                // cannot occur (verifier guarantees reachability).
                GMT_ASSERT(!first, "block without predecessors");
            }
            if (!(in == safe_in_[b])) {
                safe_in_[b] = std::move(in);
                changed = true;
            }
        }
    }
}

void
SafetyAnalysis::transfer(BitVector &safe, InstrId i) const
{
    const Function &f = func_;
    Reg def = f.defOf(i);
    bool mine = (partition_.threadOf(i) == src_thread_);

    // SAFE - DEF(n): any thread's redefinition invalidates.
    if (def != kNoReg)
        safe.reset(def);
    // u DEF_Ts u USE_Ts: the source thread's own defs and uses
    // guarantee it holds the latest value.
    if (mine) {
        if (def != kNoReg)
            safe.set(def);
        for (Reg use : f.usesOf(i))
            safe.set(use);
    }
}

BitVector
SafetyAnalysis::safeAt(const ProgramPoint &p) const
{
    const BasicBlock &bb = func_.block(p.block);
    GMT_ASSERT(p.pos >= 0 && p.pos <= static_cast<int>(bb.size()));
    BitVector safe = safe_in_[p.block];
    for (int i = 0; i < p.pos; ++i)
        transfer(safe, bb.instrs()[i]);
    return safe;
}

bool
SafetyAnalysis::isSafeAt(Reg r, const ProgramPoint &p) const
{
    return safeAt(p).test(r);
}

} // namespace gmt
