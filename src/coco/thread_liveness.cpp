#include "coco/thread_liveness.hpp"

namespace gmt
{

ThreadLiveness::ThreadLiveness(const Function &f,
                               const ThreadPartition &partition,
                               int thread,
                               const BitVector &relevant_branches)
    : func_(f)
{
    ctx_ = std::make_unique<Ctx>(
        Ctx{&partition, thread, relevant_branches});
    liveness_ = std::make_unique<Liveness>(f, &ThreadLiveness::filter,
                                           ctx_.get());
}

bool
ThreadLiveness::filter(const Function &f, InstrId i, const void *ctx)
{
    const Ctx *c = static_cast<const Ctx *>(ctx);
    if (c->partition->threadOf(i) == c->thread)
        return true;
    // Replicated relevant branches consume their operand in this
    // thread as well.
    const Instr &in = f.instr(i);
    return in.isBranch() && c->relevant_branches.test(in.block);
}

bool
ThreadLiveness::usesCount(InstrId i) const
{
    return filter(func_, i, ctx_.get());
}

} // namespace gmt
