#ifndef GMT_COCO_COCO_HPP
#define GMT_COCO_COCO_HPP

/**
 * @file
 * The COCO optimizer (paper Algorithm 2): for every dependent thread
 * pair, place each register's communication by a min-cut of its flow
 * graph and all memory synchronization by a multi-pair min-cut,
 * growing the target thread's relevant-branch set as placements land
 * on new conditional points, iterating until the placement set
 * converges (guaranteed: relevant sets only grow).
 */

#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "analysis/edge_profile.hpp"
#include "graph/max_flow.hpp"
#include "mtcg/comm_plan.hpp"
#include "obs/provenance.hpp"
#include "partition/partition.hpp"
#include "pdg/pdg.hpp"

namespace gmt
{

class ThreadPool;
class TraceCollector;

/** COCO configuration (ablation switches included). */
struct CocoOptions
{
    /** Single-pair max-flow algorithm (paper uses Edmonds-Karp). */
    FlowAlgorithm flow_algo = FlowAlgorithm::EdmondsKarp;

    /** §3.1.2 control-flow penalties on arc costs. */
    bool control_flow_penalties = true;

    /** Optimize register communications (§3.1.1). */
    bool optimize_registers = true;

    /** Optimize memory synchronizations (§3.1.3). */
    bool optimize_memory = true;

    /**
     * Use the paper's sequential per-pair heuristic for the (NP-hard)
     * multi-pair memory cut; false = single super-pair cut baseline.
     */
    bool multi_pair_memory = true;

    /**
     * Warm-start repeated cut problems: each worker arena retains the
     * last-built flow graph per (pair class, thread pair) and, when
     * the topology is provably unchanged (same liveness snapshot
     * version for register graphs; memory graph topology is fixed by
     * the function), refreshes only the arc costs that moved and
     * re-solves incrementally from the retained residual
     * (MaxFlow::resolve) instead of rebuilding and solving from zero.
     * Plans are byte-identical either way — source/sink-side min cuts
     * are unique across max flows, and debug builds cross-check every
     * warm solve against a cold Edmonds-Karp run. Ablation switch
     * only.
     */
    bool warm_start = true;

    /** Safety valve for the repeat-until loop. */
    int max_iterations = 16;
};

/**
 * Optional capture sink for the cut problems COCO actually solves:
 * each solved problem's network (pristine residuals, post-refresh
 * capacities), terminals, and identity are appended. Consumed by
 * bench/micro_mincut to sweep solver algorithms and warm-start chains
 * over real problem traces rather than synthetic networks. Capture
 * from a serial run (jobs <= 1) for a deterministic entry order.
 */
struct CutProblemCapture
{
    struct Entry
    {
        bool is_mem = false;
        int ts = 0, tt = 0;
        Reg r = kNoReg;

        /** The network as solved, rewound to pristine residuals. */
        FlowNetwork net{0};

        /** Register problems: terminals. */
        int source = -1, sink = -1;

        /** Memory problems: per-dependence terminal pairs. */
        std::vector<std::pair<int, int>> pairs;
    };

    std::mutex mu;
    std::vector<Entry> entries;
};

/**
 * Opaque handle to COCO's worker arenas (retained flow graphs +
 * max-flow residuals) that survives across cocoOptimize calls, so a
 * re-cut of the *same partition* with shifted arc costs (the
 * autotuner's stall-boosted profiles) warm-starts from the previous
 * call's residuals via MaxFlow::resolve instead of solving from zero.
 *
 * Soundness contract: retained graph topology depends on the function
 * and the partition (memory graphs: the cross-thread dependence pair
 * list; register graphs: the version-0 relevant-branch sets). The
 * cache is therefore only valid across calls that share both — the
 * owner must flush() whenever the partition changes. Register graphs
 * retained at a grown liveness version are dropped automatically on
 * the next adoption (version numbers are not comparable across
 * calls). Plans stay byte-identical warm or cold (min cuts are
 * unique; debug builds cross-check).
 */
class CocoArenaCache
{
  public:
    CocoArenaCache();
    ~CocoArenaCache();
    CocoArenaCache(const CocoArenaCache &) = delete;
    CocoArenaCache &operator=(const CocoArenaCache &) = delete;

    /** Drop every retained graph (call on partition change). */
    void flush();

    struct Impl;
    Impl *impl() const { return impl_.get(); }

  private:
    std::unique_ptr<Impl> impl_;
};

/**
 * Execution resources for the optimizer. COCO's cut problems are
 * solved speculatively in parallel on the shared pool (nested inside
 * the experiment runner's cell-level tasks via TaskGroup), then
 * applied serially in canonical order, so the plan is bit-identical
 * to the serial result at any job count. Defaults mean "all inline".
 */
struct CocoExec
{
    /** Shared worker pool (may be null: solve inline). */
    ThreadPool *pool = nullptr;

    /** Parallelism switch: <= 1 solves every cut inline (serial). */
    int jobs = 1;

    /** Optional Chrome-trace collector for per-solve spans. */
    TraceCollector *trace = nullptr;

    /** Optional cut-problem capture sink (bench/micro_mincut). */
    CutProblemCapture *capture = nullptr;

    /**
     * Optional decision-provenance sink: per-placement rule,
     * Algorithm-2 iteration, cut problem id, and arc-cost breakdown,
     * recorded exclusively on the serial apply walk — identical at
     * any job count and warm or cold (the min cut is unique).
     */
    PlacementProvenance *provenance = nullptr;

    /**
     * Optional cross-call arena cache (see CocoArenaCache). Null =
     * arenas are local to the call (no cross-call warm starts).
     */
    CocoArenaCache *arena_cache = nullptr;
};

/** Result of the optimizer. */
struct CocoResult
{
    CommPlan plan;

    /** repeat-until iterations executed. */
    int iterations = 0;

    /** Total min-cut cost over all register cuts (profile units). */
    Capacity register_cut_cost = 0;

    /** Total multi-cut cost over all memory cuts. */
    Capacity memory_cut_cost = 0;

    /** Warm-started solves in *this call* (global coco.* counters
     *  aggregate across concurrent cells; these do not). */
    uint64_t warm_starts = 0;

    /** Cold builds/rebuilds in this call. */
    uint64_t cold_rebuilds = 0;
};

/**
 * Run COCO. Dependences whose kind is disabled by @p opts fall back
 * to the default MTCG placement (after the source instruction).
 */
CocoResult cocoOptimize(const Function &f, const Pdg &pdg,
                        const ThreadPartition &partition,
                        const ControlDependence &cd,
                        const EdgeProfile &profile,
                        const CocoOptions &opts = {},
                        const CocoExec &exec = {});

/**
 * Estimated dynamic communication instructions a plan executes
 * (produce + consume at every point, weighted by the profile).
 */
uint64_t planDynamicCost(const Function &f, const CommPlan &plan,
                         const EdgeProfile &profile);

} // namespace gmt

#endif // GMT_COCO_COCO_HPP
