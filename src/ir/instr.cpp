#include "ir/instr.hpp"

#include "support/error.hpp"

namespace gmt
{

std::string_view
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Const: return "const";
      case Opcode::Mov: return "mov";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::Rem: return "rem";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::Neg: return "neg";
      case Opcode::Not: return "not";
      case Opcode::Min: return "min";
      case Opcode::Max: return "max";
      case Opcode::Abs: return "abs";
      case Opcode::CmpEq: return "cmpeq";
      case Opcode::CmpNe: return "cmpne";
      case Opcode::CmpLt: return "cmplt";
      case Opcode::CmpLe: return "cmple";
      case Opcode::CmpGt: return "cmpgt";
      case Opcode::CmpGe: return "cmpge";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::Br: return "br";
      case Opcode::Jmp: return "jmp";
      case Opcode::Ret: return "ret";
      case Opcode::Produce: return "produce";
      case Opcode::Consume: return "consume";
      case Opcode::ProduceSync: return "produce.sync";
      case Opcode::ConsumeSync: return "consume.sync";
    }
    panic("unknown opcode");
}

bool
isTerminator(Opcode op)
{
    return op == Opcode::Br || op == Opcode::Jmp || op == Opcode::Ret;
}

bool
isMemoryAccess(Opcode op)
{
    return op == Opcode::Load || op == Opcode::Store;
}

bool
isCommunication(Opcode op)
{
    return op == Opcode::Produce || op == Opcode::Consume ||
           op == Opcode::ProduceSync || op == Opcode::ConsumeSync;
}

bool
hasDest(Opcode op)
{
    switch (op) {
      case Opcode::Store:
      case Opcode::Br:
      case Opcode::Jmp:
      case Opcode::Ret:
      case Opcode::Produce:
      case Opcode::ProduceSync:
      case Opcode::ConsumeSync:
        return false;
      default:
        return true;
    }
}

int
numSrcs(Opcode op)
{
    switch (op) {
      case Opcode::Const:
      case Opcode::Jmp:
      case Opcode::Ret:
      case Opcode::Consume:
      case Opcode::ProduceSync:
      case Opcode::ConsumeSync:
        return 0;
      case Opcode::Mov:
      case Opcode::Neg:
      case Opcode::Not:
      case Opcode::Abs:
      case Opcode::Load:
      case Opcode::Br:
      case Opcode::Produce:
        return 1;
      default:
        return 2;
    }
}

bool
usesMemoryPort(Opcode op)
{
    return isMemoryAccess(op) || isCommunication(op);
}

} // namespace gmt
