#ifndef GMT_IR_OPCODE_HPP
#define GMT_IR_OPCODE_HPP

/**
 * @file
 * Opcodes of the assembly-level IR.
 *
 * The paper's algorithms run on VELOCITY's assembly-level intermediate
 * representation: virtual registers, explicit control flow, loads and
 * stores, plus the synchronization-array ISA extension
 * (produce/consume and their memory-synchronizing variants). This enum
 * is the analogue. Values are 64-bit integers; floating-point kernels
 * are expressed in fixed point (see DESIGN.md substitutions).
 */

#include <cstdint>
#include <string_view>

namespace gmt
{

/** Instruction opcode. */
enum class Opcode : uint8_t {
    // Data movement / arithmetic (dst, src1 [, src2] [, imm]).
    Const,  ///< dst = imm
    Mov,    ///< dst = src1
    Add,    ///< dst = src1 + src2
    Sub,    ///< dst = src1 - src2
    Mul,    ///< dst = src1 * src2
    Div,    ///< dst = src1 / src2  (src2==0 -> 0, like a guarded div)
    Rem,    ///< dst = src1 % src2  (src2==0 -> 0)
    And,    ///< dst = src1 & src2
    Or,     ///< dst = src1 | src2
    Xor,    ///< dst = src1 ^ src2
    Shl,    ///< dst = src1 << (src2 & 63)
    Shr,    ///< dst = src1 >> (src2 & 63), arithmetic
    Neg,    ///< dst = -src1
    Not,    ///< dst = ~src1
    Min,    ///< dst = min(src1, src2)
    Max,    ///< dst = max(src1, src2)
    Abs,    ///< dst = |src1|
    CmpEq,  ///< dst = (src1 == src2)
    CmpNe,  ///< dst = (src1 != src2)
    CmpLt,  ///< dst = (src1 <  src2)
    CmpLe,  ///< dst = (src1 <= src2)
    CmpGt,  ///< dst = (src1 >  src2)
    CmpGe,  ///< dst = (src1 >= src2)

    // Memory (addresses are cell indices into the flat MemoryImage).
    Load,   ///< dst = mem[src1 + imm]
    Store,  ///< mem[src1 + imm] = src2

    // Control flow (always the last instruction of a block).
    Br,     ///< if (src1 != 0) goto succ[0] else succ[1]
    Jmp,    ///< goto succ[0]
    Ret,    ///< leave the region; uses the function's live-out set

    // Synchronization-array ISA extension (inserted by MTCG/COCO).
    Produce,      ///< queue[imm] <- src1 (register communication)
    Consume,      ///< dst <- queue[imm]
    ProduceSync,  ///< queue[imm] <- token (memory sync, release)
    ConsumeSync,  ///< <- queue[imm]        (memory sync, acquire)
};

/** Printable mnemonic. */
std::string_view opcodeName(Opcode op);

/** True for Br/Jmp/Ret. */
bool isTerminator(Opcode op);

/** True for Load/Store. */
bool isMemoryAccess(Opcode op);

/** True for Produce/Consume/ProduceSync/ConsumeSync. */
bool isCommunication(Opcode op);

/** True if the opcode writes a destination register. */
bool hasDest(Opcode op);

/** Number of register sources (not counting Ret's live-out uses). */
int numSrcs(Opcode op);

/**
 * True for instructions that occupy an M (memory) issue slot on the
 * modeled core: loads, stores, and all queue accesses (the paper's
 * Itanium 2 extension routes produce/consume through the M pipeline).
 */
bool usesMemoryPort(Opcode op);

} // namespace gmt

#endif // GMT_IR_OPCODE_HPP
