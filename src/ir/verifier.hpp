#ifndef GMT_IR_VERIFIER_HPP
#define GMT_IR_VERIFIER_HPP

/**
 * @file
 * Structural IR verification. Every pipeline stage verifies its input,
 * and generated thread code is verified again after MTCG.
 */

#include <string>
#include <string_view>
#include <vector>

#include "ir/function.hpp"

namespace gmt
{

/** What the verifier should require of terminators. */
struct VerifyOptions
{
    /**
     * Generated thread code may legitimately lack a Ret-with-liveouts
     * contract (worker threads return nothing); the structural checks
     * are identical otherwise.
     */
    bool allow_empty_live_outs = true;

    /**
     * Allocated queue range: communication queue ids must lie in
     * [0, num_queues). Negative disables the range check (functions
     * that are not MTCG output carry no queues at all).
     */
    int num_queues = -1;

    /**
     * Require that no two communication instructions of this function
     * use the same queue id in the same role (two produces or two
     * consumes on one queue). Holds for MTCG output before queue
     * multiplexing, where each placement owns its queue and each
     * thread is one endpoint of it.
     */
    bool unique_placement_queues = false;
};

/**
 * Check structural invariants of @p f:
 *  - an entry block exists and every block is reachable from it;
 *  - every block ends with exactly one terminator and contains no
 *    terminator elsewhere;
 *  - successor counts match terminators (Br 2, Jmp 1, Ret 0);
 *  - pred/succ lists are mutually consistent;
 *  - exactly one Ret block exists, and it is reachable;
 *  - every register mentioned is < numRegs(); params/liveOuts valid;
 *  - instruction block back-references are correct;
 *  - communication instructions carry a queue id, others do not.
 *
 * @return list of human-readable problems; empty means valid.
 */
std::vector<std::string> verifyFunction(const Function &f,
                                        const VerifyOptions &opts = {});

/**
 * Throw FatalError with all problems if verification fails. The
 * message names the function and, when @p context is non-empty, the
 * pass or stage that produced the IR — so a pipeline failure is
 * attributable without a debugger.
 */
void verifyOrDie(const Function &f, const VerifyOptions &opts = {},
                 std::string_view context = {});

} // namespace gmt

#endif // GMT_IR_VERIFIER_HPP
