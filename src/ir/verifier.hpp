#ifndef GMT_IR_VERIFIER_HPP
#define GMT_IR_VERIFIER_HPP

/**
 * @file
 * Structural IR verification. Every pipeline stage verifies its input,
 * and generated thread code is verified again after MTCG.
 */

#include <string>
#include <vector>

#include "ir/function.hpp"

namespace gmt
{

/** What the verifier should require of terminators. */
struct VerifyOptions
{
    /**
     * Generated thread code may legitimately lack a Ret-with-liveouts
     * contract (worker threads return nothing); the structural checks
     * are identical otherwise.
     */
    bool allow_empty_live_outs = true;
};

/**
 * Check structural invariants of @p f:
 *  - an entry block exists and every block is reachable from it;
 *  - every block ends with exactly one terminator and contains no
 *    terminator elsewhere;
 *  - successor counts match terminators (Br 2, Jmp 1, Ret 0);
 *  - pred/succ lists are mutually consistent;
 *  - exactly one Ret block exists, and it is reachable;
 *  - every register mentioned is < numRegs(); params/liveOuts valid;
 *  - instruction block back-references are correct;
 *  - communication instructions carry a queue id, others do not.
 *
 * @return list of human-readable problems; empty means valid.
 */
std::vector<std::string> verifyFunction(const Function &f,
                                        const VerifyOptions &opts = {});

/** Throw FatalError with all problems if verification fails. */
void verifyOrDie(const Function &f, const VerifyOptions &opts = {});

} // namespace gmt

#endif // GMT_IR_VERIFIER_HPP
