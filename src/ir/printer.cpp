#include "ir/printer.hpp"

#include <ostream>
#include <sstream>

namespace gmt
{

namespace
{

std::string
regName(Reg r)
{
    return r == kNoReg ? std::string("_") : "r" + std::to_string(r);
}

} // namespace

std::string
instrToString(const Function &f, InstrId i)
{
    const Instr &in = f.instr(i);
    std::ostringstream os;
    switch (in.op) {
      case Opcode::Const:
        os << regName(in.dst) << " = const " << in.imm;
        break;
      case Opcode::Load:
        os << regName(in.dst) << " = load [" << regName(in.src1) << "+"
           << in.imm << "] !alias" << in.alias;
        break;
      case Opcode::Store:
        os << "store [" << regName(in.src1) << "+" << in.imm
           << "] = " << regName(in.src2) << " !alias" << in.alias;
        break;
      case Opcode::Br:
        os << "br " << regName(in.src1);
        for (BlockId s : f.block(in.block).succs())
            os << " " << f.block(s).label();
        break;
      case Opcode::Jmp:
        os << "jmp";
        for (BlockId s : f.block(in.block).succs())
            os << " " << f.block(s).label();
        break;
      case Opcode::Ret: {
        os << "ret";
        for (Reg r : f.liveOuts())
            os << " " << regName(r);
        break;
      }
      case Opcode::Produce:
        os << "produce [q" << in.queue << "] = " << regName(in.src1);
        break;
      case Opcode::Consume:
        os << regName(in.dst) << " = consume [q" << in.queue << "]";
        break;
      case Opcode::ProduceSync:
        os << "produce.sync [q" << in.queue << "]";
        break;
      case Opcode::ConsumeSync:
        os << "consume.sync [q" << in.queue << "]";
        break;
      default: {
        os << regName(in.dst) << " = " << opcodeName(in.op);
        int n = numSrcs(in.op);
        if (n >= 1)
            os << " " << regName(in.src1);
        if (n >= 2)
            os << ", " << regName(in.src2);
        break;
      }
    }
    if (in.origin != kNoInstr)
        os << "  ; from i" << in.origin;
    return os.str();
}

void
printFunction(const Function &f, std::ostream &os)
{
    os << "func @" << f.name() << "(";
    for (size_t i = 0; i < f.params().size(); ++i) {
        if (i)
            os << ", ";
        os << regName(f.params()[i]);
    }
    // The register count is part of the form: registers are an arena,
    // not derivable from the instruction text when some are unused, and
    // parse(print(f)) must reproduce numRegs() exactly.
    os << ") regs " << f.numRegs() << " {\n";
    for (BlockId b = 0; b < f.numBlocks(); ++b) {
        const BasicBlock &bb = f.block(b);
        os << bb.label() << ":";
        if (b == f.entry())
            os << "  ; entry";
        os << "\n";
        for (InstrId i : bb.instrs())
            os << "    " << instrToString(f, i) << "\n";
    }
    os << "}\n";
}

std::string
functionToString(const Function &f)
{
    std::ostringstream os;
    printFunction(f, os);
    return os.str();
}

} // namespace gmt
