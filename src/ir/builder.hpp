#ifndef GMT_IR_BUILDER_HPP
#define GMT_IR_BUILDER_HPP

/**
 * @file
 * Fluent construction API for IR functions — the way workloads, tests,
 * and the paper's worked examples are written.
 *
 * @code
 *   FunctionBuilder b("sum");
 *   Reg n = b.param();
 *   BlockId head = b.newBlock("head"), body = b.newBlock("body"),
 *           done = b.newBlock("done");
 *   ...
 *   Function f = b.finish();
 * @endcode
 */

#include <initializer_list>
#include <string>
#include <vector>

#include "ir/function.hpp"

namespace gmt
{

/** Incremental Function builder. */
class FunctionBuilder
{
  public:
    explicit FunctionBuilder(std::string name) : func_(std::move(name)) {}

    /** Declare a live-in parameter register. */
    Reg param();

    /** Create a block; the first one becomes the entry. */
    BlockId newBlock(const std::string &label);

    /** Direct instructions into block @p b. */
    void setBlock(BlockId b) { current_ = b; }

    BlockId currentBlock() const { return current_; }

    // --- instruction emitters (into the current block) --------------

    Reg constI(int64_t value);
    Reg mov(Reg src);
    Reg binop(Opcode op, Reg a, Reg b);
    Reg add(Reg a, Reg b) { return binop(Opcode::Add, a, b); }
    Reg sub(Reg a, Reg b) { return binop(Opcode::Sub, a, b); }
    Reg mul(Reg a, Reg b) { return binop(Opcode::Mul, a, b); }
    Reg div(Reg a, Reg b) { return binop(Opcode::Div, a, b); }
    Reg rem(Reg a, Reg b) { return binop(Opcode::Rem, a, b); }
    Reg min(Reg a, Reg b) { return binop(Opcode::Min, a, b); }
    Reg max(Reg a, Reg b) { return binop(Opcode::Max, a, b); }
    Reg shl(Reg a, Reg b) { return binop(Opcode::Shl, a, b); }
    Reg shr(Reg a, Reg b) { return binop(Opcode::Shr, a, b); }
    Reg andr(Reg a, Reg b) { return binop(Opcode::And, a, b); }
    Reg orr(Reg a, Reg b) { return binop(Opcode::Or, a, b); }
    Reg xorr(Reg a, Reg b) { return binop(Opcode::Xor, a, b); }
    Reg unop(Opcode op, Reg a);
    Reg neg(Reg a) { return unop(Opcode::Neg, a); }
    Reg abs(Reg a) { return unop(Opcode::Abs, a); }
    Reg cmpEq(Reg a, Reg b) { return binop(Opcode::CmpEq, a, b); }
    Reg cmpNe(Reg a, Reg b) { return binop(Opcode::CmpNe, a, b); }
    Reg cmpLt(Reg a, Reg b) { return binop(Opcode::CmpLt, a, b); }
    Reg cmpLe(Reg a, Reg b) { return binop(Opcode::CmpLe, a, b); }
    Reg cmpGt(Reg a, Reg b) { return binop(Opcode::CmpGt, a, b); }
    Reg cmpGe(Reg a, Reg b) { return binop(Opcode::CmpGe, a, b); }

    /** dst = a + imm (emitted as Const + Add when imm != 0). */
    Reg addImm(Reg a, int64_t imm);

    Reg load(Reg addr, int64_t offset, AliasClass alias);
    void store(Reg addr, int64_t offset, Reg value, AliasClass alias);

    /** Overwrite an existing register (e.g. a loop counter). */
    void movInto(Reg dst, Reg src);
    void addInto(Reg dst, Reg a, Reg b);
    void binopInto(Opcode op, Reg dst, Reg a, Reg b);
    void unopInto(Opcode op, Reg dst, Reg a);
    void constInto(Reg dst, int64_t value);
    void loadInto(Reg dst, Reg addr, int64_t offset, AliasClass alias);

    // --- terminators -------------------------------------------------

    /** if (cond != 0) goto taken else goto fallthrough. */
    void br(Reg cond, BlockId taken, BlockId fallthrough);
    void jmp(BlockId target);
    void ret(std::initializer_list<Reg> live_outs = {});
    void ret(const std::vector<Reg> &live_outs);

    /** The InstrId most recently emitted. */
    InstrId lastInstr() const { return last_; }

    /** Finish: runs no verification; callers verify explicitly. */
    Function finish() { return std::move(func_); }

    Function &func() { return func_; }

  private:
    InstrId emit(Instr instr);

    Function func_;
    BlockId current_ = kNoBlock;
    InstrId last_ = kNoInstr;
};

} // namespace gmt

#endif // GMT_IR_BUILDER_HPP
