#include "ir/verifier.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "support/error.hpp"

namespace gmt
{

std::vector<std::string>
verifyFunction(const Function &f, const VerifyOptions &opts)
{
    std::vector<std::string> problems;
    auto complain = [&](auto &&...parts) {
        std::ostringstream os;
        (os << ... << parts);
        problems.push_back(os.str());
    };

    if (f.numBlocks() == 0) {
        complain("function has no blocks");
        return problems;
    }
    if (f.entry() == kNoBlock || f.entry() >= f.numBlocks()) {
        complain("invalid entry block");
        return problems;
    }

    int ret_blocks = 0;
    for (BlockId b = 0; b < f.numBlocks(); ++b) {
        const BasicBlock &bb = f.block(b);
        if (bb.empty()) {
            complain("block ", bb.label(), " is empty");
            continue;
        }
        for (size_t pos = 0; pos < bb.size(); ++pos) {
            InstrId id = bb.instrs()[pos];
            const Instr &in = f.instr(id);
            if (in.block != b) {
                complain("instr i", id, " back-reference wrong block");
            }
            bool last = (pos + 1 == bb.size());
            if (in.isTerminator() != last) {
                complain("block ", bb.label(), " instr i", id,
                         last ? ": last instr must be a terminator"
                              : ": terminator in the middle");
            }
            for (Reg r : {in.dst, in.src1, in.src2}) {
                if (r != kNoReg && (r < 0 || r >= f.numRegs()))
                    complain("instr i", id, " references bad reg ", r);
            }
            if (in.isCommunication()) {
                if (in.queue == kNoQueue)
                    complain("instr i", id, " communication without queue");
                else if (opts.num_queues >= 0 &&
                         (in.queue < 0 || in.queue >= opts.num_queues))
                    complain("instr i", id, " queue id ", in.queue,
                             " outside allocated range [0, ",
                             opts.num_queues, ")");
            } else if (in.queue != kNoQueue) {
                complain("instr i", id, " non-communication with queue");
            }
        }
        InstrId term = bb.terminator();
        const Instr &t = f.instr(term);
        size_t expect_succs = 0;
        switch (t.op) {
          case Opcode::Br:
            expect_succs = 2;
            break;
          case Opcode::Jmp:
            expect_succs = 1;
            break;
          case Opcode::Ret:
            expect_succs = 0;
            ++ret_blocks;
            break;
          default:
            break;
        }
        if (t.isTerminator() && bb.succs().size() != expect_succs) {
            complain("block ", bb.label(), " has ", bb.succs().size(),
                     " successors, terminator wants ", expect_succs);
        }
        for (BlockId s : bb.succs()) {
            if (s < 0 || s >= f.numBlocks()) {
                complain("block ", bb.label(), " bad successor");
            } else {
                const auto &preds = f.block(s).preds();
                if (std::count(preds.begin(), preds.end(), b) != 1)
                    complain("edge ", bb.label(), "->", f.block(s).label(),
                             " not mirrored in preds");
            }
        }
    }
    if (ret_blocks != 1)
        complain("function must have exactly one Ret block, has ",
                 ret_blocks);

    // Reachability from entry.
    std::vector<bool> seen(f.numBlocks(), false);
    std::vector<BlockId> stack{f.entry()};
    seen[f.entry()] = true;
    while (!stack.empty()) {
        BlockId b = stack.back();
        stack.pop_back();
        for (BlockId s : f.block(b).succs()) {
            if (s >= 0 && s < f.numBlocks() && !seen[s]) {
                seen[s] = true;
                stack.push_back(s);
            }
        }
    }
    for (BlockId b = 0; b < f.numBlocks(); ++b) {
        if (!seen[b])
            complain("block ", f.block(b).label(), " unreachable");
    }

    for (Reg r : f.params()) {
        if (r < 0 || r >= f.numRegs())
            complain("bad param reg ", r);
    }
    for (Reg r : f.liveOuts()) {
        if (r < 0 || r >= f.numRegs())
            complain("bad live-out reg ", r);
    }
    if (!opts.allow_empty_live_outs && f.liveOuts().empty())
        complain("function declares no live-outs");

    // Before multiplexing, every placement owns its queue, so within
    // one thread function a queue id must be used in a single role
    // (the thread is one endpoint), and all its uses must agree on
    // kind and register (they are the points of one placement). Two
    // placements sharing a queue id show up as a disagreement.
    if (opts.unique_placement_queues) {
        std::map<QueueId, InstrId> first_use;
        for (InstrId id = 0; id < f.numInstrs(); ++id) {
            const Instr &in = f.instr(id);
            if (!in.isCommunication() || in.queue == kNoQueue)
                continue;
            auto [it, fresh] = first_use.try_emplace(in.queue, id);
            if (fresh)
                continue;
            const Instr &prev = f.instr(it->second);
            bool produce = in.op == Opcode::Produce ||
                           in.op == Opcode::ProduceSync;
            bool prev_produce = prev.op == Opcode::Produce ||
                                prev.op == Opcode::ProduceSync;
            if (produce != prev_produce)
                complain("instr i", id, " uses queue ", in.queue,
                         " as both producer and consumer (also i",
                         it->second, ")");
            else if (in.op != prev.op || in.src1 != prev.src1 ||
                     in.dst != prev.dst)
                complain("instr i", id, " shares queue ", in.queue,
                         " with i", it->second,
                         " but disagrees on kind or register (two "
                         "placements on one queue?)");
        }
    }

    return problems;
}

void
verifyOrDie(const Function &f, const VerifyOptions &opts,
            std::string_view context)
{
    auto problems = verifyFunction(f, opts);
    if (!problems.empty()) {
        std::ostringstream os;
        os << "IR verification failed for @" << f.name();
        if (!context.empty())
            os << " (" << context << ")";
        os << ":";
        for (const auto &p : problems)
            os << "\n  - " << p;
        fatal(os.str());
    }
}

} // namespace gmt
