#ifndef GMT_IR_PARSER_HPP
#define GMT_IR_PARSER_HPP

/**
 * @file
 * Textual IR parser: the inverse of ir/printer.hpp.
 *
 * Parses the printer's canonical form back into a Function:
 *
 *   func @name(r0, r1) regs 12 {
 *   entry:  ; entry
 *       r2 = const 5
 *       r3 = load [r0+4] !alias2
 *       store [r0+8] = r3 !alias2
 *       r4 = add r2, r3
 *       br r4 then else
 *   then:
 *       jmp join
 *   ...
 *       ret r4
 *   }
 *
 * Blocks are created in textual order (so BlockIds round-trip) and
 * instructions are appended in textual order (so InstrIds round-trip
 * for functions whose arena order matches block order — true for every
 * builder in src/workloads and for the generator). `; from iN`
 * suffixes restore Instr::origin; the `; entry` marker restores a
 * non-first entry block; `regs N` restores the exact register-arena
 * size even when registers are unused by the text.
 *
 * parse errors throw FatalError with a line number; the parser checks
 * syntax and label resolution only — callers run verifyFunction /
 * verifyOrDie for the structural invariants, exactly like every other
 * IR producer in the pipeline.
 */

#include <string>
#include <string_view>

#include "ir/function.hpp"

namespace gmt
{

/**
 * Parse one function in the printer's textual form. @p text must
 * contain exactly one `func @... { ... }` (leading/trailing blank
 * lines are ignored). Throws FatalError on malformed input.
 */
Function parseFunction(std::string_view text);

/**
 * Parse the function starting at line @p line_no of @p text (1-based;
 * used by the workload-cell loader to keep error line numbers aligned
 * with the enclosing file). Consumes text up to and including the
 * closing `}` and returns the number of lines consumed via
 * @p lines_used when non-null.
 */
Function parseFunction(std::string_view text, int line_no,
                       int *lines_used);

} // namespace gmt

#endif // GMT_IR_PARSER_HPP
