#include "ir/edge_split.hpp"

#include <utility>
#include <vector>

#include "support/error.hpp"

namespace gmt
{

bool
isCriticalEdge(const Function &f, BlockId from, BlockId to)
{
    return f.block(from).succs().size() > 1 &&
           f.block(to).preds().size() > 1;
}

int
splitCriticalEdges(Function &f)
{
    // Collect first: splitting mutates succ lists.
    std::vector<std::pair<BlockId, BlockId>> critical;
    for (BlockId b = 0; b < f.numBlocks(); ++b) {
        for (BlockId s : f.block(b).succs()) {
            if (isCriticalEdge(f, b, s))
                critical.emplace_back(b, s);
        }
    }

    for (auto [from, to] : critical) {
        BlockId mid = f.addBlock(f.block(from).label() + "_" +
                                 f.block(to).label() + "_split");
        f.append(mid, {.op = Opcode::Jmp});
        f.setSuccs(mid, {to});
        // Redirect the edge from -> to through mid, preserving the
        // successor slot (slot order encodes taken/fall-through).
        std::vector<BlockId> succs = f.block(from).succs();
        bool redirected = false;
        for (auto &s : succs) {
            if (s == to && !redirected) {
                s = mid;
                redirected = true;
            }
        }
        GMT_ASSERT(redirected, "critical edge vanished");
        f.setSuccs(from, std::move(succs));
    }
    return static_cast<int>(critical.size());
}

} // namespace gmt
