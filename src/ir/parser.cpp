#include "ir/parser.hpp"

#include <cctype>
#include <map>
#include <vector>

#include "support/error.hpp"

namespace gmt
{

namespace
{

/** Mnemonic -> opcode, built once from opcodeName (stays in sync). */
const std::map<std::string, Opcode, std::less<>> &
mnemonics()
{
    static const std::map<std::string, Opcode, std::less<>> table = [] {
        std::map<std::string, Opcode, std::less<>> t;
        for (int v = 0; v <= static_cast<int>(Opcode::ConsumeSync); ++v) {
            Opcode op = static_cast<Opcode>(v);
            t.emplace(std::string(opcodeName(op)), op);
        }
        return t;
    }();
    return table;
}

/** One line of input with a cursor; all errors cite the line number. */
class LineCursor
{
  public:
    LineCursor(std::string_view line, int line_no)
        : line_(line), no_(line_no)
    {
    }

    [[noreturn]] void
    die(const std::string &what) const
    {
        fatal("IR parse error at line ", no_, ": ", what, " in '",
              std::string(line_), "'");
    }

    void
    skipSpaces()
    {
        while (pos_ < line_.size() && line_[pos_] == ' ')
            ++pos_;
    }

    bool
    atEnd()
    {
        skipSpaces();
        return pos_ >= line_.size();
    }

    /** Consume @p lit (after skipping spaces) or die. */
    void
    expect(std::string_view lit)
    {
        skipSpaces();
        if (line_.substr(pos_, lit.size()) != lit)
            die("expected '" + std::string(lit) + "'");
        pos_ += lit.size();
    }

    bool
    tryConsume(std::string_view lit)
    {
        skipSpaces();
        if (line_.substr(pos_, lit.size()) != lit)
            return false;
        pos_ += lit.size();
        return true;
    }

    /** Next token: maximal run of non-space, non-delimiter chars. */
    std::string
    token()
    {
        skipSpaces();
        size_t start = pos_;
        while (pos_ < line_.size() && line_[pos_] != ' ' &&
               line_[pos_] != ',' && line_[pos_] != '(' &&
               line_[pos_] != ')' && line_[pos_] != '[' &&
               line_[pos_] != ']' && line_[pos_] != '{')
            ++pos_;
        if (pos_ == start)
            die("expected a token");
        return std::string(line_.substr(start, pos_ - start));
    }

    std::string
    peekToken()
    {
        size_t save = pos_;
        std::string t = token();
        pos_ = save;
        return t;
    }

    int64_t
    integer()
    {
        skipSpaces();
        size_t start = pos_;
        if (pos_ < line_.size() &&
            (line_[pos_] == '-' || line_[pos_] == '+'))
            ++pos_;
        size_t digits = pos_;
        while (pos_ < line_.size() &&
               std::isdigit(static_cast<unsigned char>(line_[pos_])))
            ++pos_;
        if (pos_ == digits)
            die("expected an integer");
        try {
            return std::stoll(
                std::string(line_.substr(start, pos_ - start)));
        } catch (const std::exception &) {
            die("integer out of range");
        }
    }

    /** `rN` or `_` (= kNoReg). */
    Reg
    reg()
    {
        skipSpaces();
        if (tryConsume("_"))
            return kNoReg;
        expect("r");
        int64_t n = integer();
        if (n < 0)
            die("negative register number");
        return static_cast<Reg>(n);
    }

    /** `[rA+IMM]` -> (reg, imm). */
    std::pair<Reg, int64_t>
    address()
    {
        expect("[");
        Reg base = reg();
        expect("+");
        int64_t imm = integer();
        expect("]");
        return {base, imm};
    }

    /** `[qN]`. */
    QueueId
    queue()
    {
        expect("[");
        expect("q");
        int64_t q = integer();
        expect("]");
        return static_cast<QueueId>(q);
    }

    AliasClass
    alias()
    {
        expect("!alias");
        return static_cast<AliasClass>(integer());
    }

  private:
    std::string_view line_;
    size_t pos_ = 0;
    int no_;
};

struct PendingSuccs
{
    BlockId block = kNoBlock;
    std::vector<std::string> labels;
    int line_no = 0;
};

/**
 * Strip a trailing `; from iN` origin annotation (returns the origin)
 * and any plain trailing comment from an instruction line.
 */
std::string_view
stripOrigin(std::string_view line, int line_no, InstrId *origin)
{
    *origin = kNoInstr;
    size_t semi = line.find(';');
    if (semi == std::string_view::npos)
        return line;
    std::string_view comment = line.substr(semi + 1);
    LineCursor c(comment, line_no);
    if (c.tryConsume("from")) {
        c.expect("i");
        *origin = static_cast<InstrId>(c.integer());
    }
    // Trim the comment and trailing spaces off the code part.
    size_t end = semi;
    while (end > 0 && line[end - 1] == ' ')
        --end;
    return line.substr(0, end);
}

} // namespace

Function
parseFunction(std::string_view text, int first_line_no, int *lines_used)
{
    // Split into lines up front; the grammar is strictly line-based.
    std::vector<std::string_view> lines;
    size_t start = 0;
    while (start <= text.size()) {
        size_t nl = text.find('\n', start);
        if (nl == std::string_view::npos) {
            if (start < text.size())
                lines.push_back(text.substr(start));
            break;
        }
        lines.push_back(text.substr(start, nl - start));
        start = nl + 1;
    }

    size_t li = 0;
    auto line_no = [&]() { return first_line_no + static_cast<int>(li); };

    // Header: func @name(r0, r1) regs N {
    while (li < lines.size() &&
           lines[li].find_first_not_of(' ') == std::string_view::npos)
        ++li;
    if (li >= lines.size())
        fatal("IR parse error at line ", line_no(),
              ": expected 'func @...'");
    LineCursor header(lines[li], line_no());
    header.expect("func");
    header.expect("@");
    std::string name = header.token();
    Function f(name);
    header.expect("(");
    if (!header.tryConsume(")")) {
        for (;;) {
            Reg p = header.reg();
            if (p == kNoReg)
                header.die("'_' is not a valid parameter");
            f.ensureRegs(p + 1);
            f.addParam(p);
            if (header.tryConsume(")"))
                break;
            header.expect(",");
        }
    }
    int declared_regs = -1;
    if (header.tryConsume("regs"))
        declared_regs = static_cast<int>(header.integer());
    header.expect("{");
    ++li;

    BlockId current = kNoBlock;
    BlockId entry = kNoBlock;
    std::vector<PendingSuccs> pending;
    bool closed = false;
    bool saw_ret = false;

    for (; li < lines.size(); ++li) {
        std::string_view raw = lines[li];
        size_t first = raw.find_first_not_of(' ');
        if (first == std::string_view::npos)
            continue;
        if (raw.substr(first) == "}") {
            closed = true;
            ++li;
            break;
        }

        InstrId origin = kNoInstr;
        std::string_view line = stripOrigin(raw, line_no(), &origin);

        // Block header: `label:` (optionally with the entry marker,
        // already stripped with the comment).
        size_t colon = line.find(':');
        if (first == 0 && colon != std::string_view::npos) {
            std::string label(line.substr(0, colon));
            if (label.empty() ||
                label.find(' ') != std::string::npos)
                LineCursor(raw, line_no()).die("bad block label");
            current = f.addBlock(label);
            // The entry marker travels in the comment the origin
            // stripper removed; re-check the raw line.
            if (raw.find("; entry") != std::string_view::npos)
                entry = current;
            continue;
        }

        if (current == kNoBlock)
            LineCursor(raw, line_no())
                .die("instruction before the first block label");

        LineCursor c(line, line_no());
        Instr in;
        in.origin = origin;
        std::string tok = c.peekToken();

        if (tok == "store") {
            c.expect("store");
            in.op = Opcode::Store;
            auto [base, imm] = c.address();
            in.src1 = base;
            in.imm = imm;
            c.expect("=");
            in.src2 = c.reg();
            in.alias = c.alias();
            f.append(current, in);
        } else if (tok == "br") {
            c.expect("br");
            in.op = Opcode::Br;
            in.src1 = c.reg();
            PendingSuccs ps{current, {}, line_no()};
            ps.labels.push_back(c.token());
            ps.labels.push_back(c.token());
            pending.push_back(std::move(ps));
            f.append(current, in);
        } else if (tok == "jmp") {
            c.expect("jmp");
            in.op = Opcode::Jmp;
            PendingSuccs ps{current, {}, line_no()};
            ps.labels.push_back(c.token());
            pending.push_back(std::move(ps));
            f.append(current, in);
        } else if (tok == "ret") {
            c.expect("ret");
            in.op = Opcode::Ret;
            std::vector<Reg> outs;
            while (!c.atEnd())
                outs.push_back(c.reg());
            if (saw_ret && !outs.empty() && outs != f.liveOuts())
                c.die("ret live-out lists disagree");
            if (!saw_ret)
                f.setLiveOuts(std::move(outs));
            saw_ret = true;
            f.append(current, in);
        } else if (tok == "produce") {
            c.expect("produce");
            in.op = Opcode::Produce;
            in.queue = c.queue();
            c.expect("=");
            in.src1 = c.reg();
            f.append(current, in);
        } else if (tok == "produce.sync") {
            c.expect("produce.sync");
            in.op = Opcode::ProduceSync;
            in.queue = c.queue();
            f.append(current, in);
        } else if (tok == "consume.sync") {
            c.expect("consume.sync");
            in.op = Opcode::ConsumeSync;
            in.queue = c.queue();
            f.append(current, in);
        } else {
            // `dst = rhs` forms.
            in.dst = c.reg();
            c.expect("=");
            std::string rhs = c.token();
            if (rhs == "const") {
                in.op = Opcode::Const;
                in.imm = c.integer();
            } else if (rhs == "load") {
                in.op = Opcode::Load;
                auto [base, imm] = c.address();
                in.src1 = base;
                in.imm = imm;
                in.alias = c.alias();
            } else if (rhs == "consume") {
                in.op = Opcode::Consume;
                in.queue = c.queue();
            } else {
                auto it = mnemonics().find(rhs);
                if (it == mnemonics().end())
                    c.die("unknown opcode '" + rhs + "'");
                in.op = it->second;
                int n = numSrcs(in.op);
                if (n >= 1)
                    in.src1 = c.reg();
                if (n >= 2) {
                    c.expect(",");
                    in.src2 = c.reg();
                }
            }
            f.append(current, in);
        }
        if (!c.atEnd())
            c.die("trailing junk");
    }

    if (!closed)
        fatal("IR parse error: missing closing '}' for @", name);

    // Resolve branch targets now that every block exists.
    std::map<std::string, BlockId> by_label;
    for (BlockId b = 0; b < f.numBlocks(); ++b) {
        auto [it, fresh] = by_label.emplace(f.block(b).label(), b);
        if (!fresh)
            fatal("IR parse error: duplicate block label '",
                  f.block(b).label(), "' in @", name);
    }
    for (const PendingSuccs &ps : pending) {
        std::vector<BlockId> succs;
        for (const std::string &label : ps.labels) {
            auto it = by_label.find(label);
            if (it == by_label.end())
                fatal("IR parse error at line ", ps.line_no,
                      ": unknown branch target '", label, "' in @",
                      name);
            succs.push_back(it->second);
        }
        f.setSuccs(ps.block, succs);
    }

    if (f.numBlocks() == 0)
        fatal("IR parse error: function @", name, " has no blocks");
    f.setEntry(entry != kNoBlock ? entry : 0);

    if (declared_regs >= 0) {
        if (declared_regs < f.numRegs())
            fatal("IR parse error: @", name, " declares regs ",
                  declared_regs, " but the text references ",
                  f.numRegs());
        f.ensureRegs(declared_regs);
    }

    if (lines_used)
        *lines_used = static_cast<int>(li);
    return f;
}

Function
parseFunction(std::string_view text)
{
    int used = 0;
    Function f = parseFunction(text, 1, &used);
    // Anything after the closing brace must be blank.
    std::vector<std::string_view> rest;
    size_t start = 0;
    int line = 0;
    while (start <= text.size()) {
        size_t nl = text.find('\n', start);
        std::string_view l =
            nl == std::string_view::npos
                ? text.substr(start)
                : text.substr(start, nl - start);
        ++line;
        if (line > used &&
            l.find_first_not_of(' ') != std::string_view::npos)
            fatal("IR parse error at line ", line,
                  ": text after closing '}'");
        if (nl == std::string_view::npos)
            break;
        start = nl + 1;
    }
    return f;
}

} // namespace gmt
