#ifndef GMT_IR_EDGE_SPLIT_HPP
#define GMT_IR_EDGE_SPLIT_HPP

/**
 * @file
 * Critical-edge splitting.
 *
 * COCO's min-cut can select any CFG arc as a communication point. A
 * cut arc must map to a unique program point, which fails for a
 * critical edge (multi-successor source, multi-predecessor target).
 * Splitting all critical edges before analysis guarantees every
 * inter-block arc is identified either with the end of its source
 * block or the entry of its target block (paper §3.1.1's
 * "basic block entry" nodes).
 */

#include "ir/function.hpp"

namespace gmt
{

/**
 * Split every critical edge of @p f by inserting a block holding a
 * single Jmp. @return the number of edges split.
 */
int splitCriticalEdges(Function &f);

/** True if the edge from @p from to @p to is critical. */
bool isCriticalEdge(const Function &f, BlockId from, BlockId to);

} // namespace gmt

#endif // GMT_IR_EDGE_SPLIT_HPP
