#ifndef GMT_IR_BASIC_BLOCK_HPP
#define GMT_IR_BASIC_BLOCK_HPP

/**
 * @file
 * A basic block: an ordered list of instruction handles plus explicit
 * successor edges (the terminator's targets).
 */

#include <string>
#include <vector>

#include "ir/instr.hpp"

namespace gmt
{

/**
 * Basic block. Instruction bodies live in the owning Function's arena;
 * the block stores ordered InstrIds. The last instruction is the
 * terminator. Successor order is semantic for Br: succs[0] is the
 * taken target (condition != 0), succs[1] the fall-through.
 */
class BasicBlock
{
  public:
    BasicBlock(BlockId id, std::string label)
        : id_(id), label_(std::move(label))
    {
    }

    BlockId id() const { return id_; }
    const std::string &label() const { return label_; }

    const std::vector<InstrId> &instrs() const { return instrs_; }
    std::vector<InstrId> &instrs() { return instrs_; }

    const std::vector<BlockId> &succs() const { return succs_; }
    const std::vector<BlockId> &preds() const { return preds_; }

    bool empty() const { return instrs_.empty(); }
    size_t size() const { return instrs_.size(); }

    /** The terminator's InstrId (last instruction). */
    InstrId
    terminator() const
    {
        return instrs_.empty() ? kNoInstr : instrs_.back();
    }

  private:
    friend class Function;

    BlockId id_;
    std::string label_;
    std::vector<InstrId> instrs_;
    std::vector<BlockId> succs_;
    std::vector<BlockId> preds_;
};

} // namespace gmt

#endif // GMT_IR_BASIC_BLOCK_HPP
