#ifndef GMT_IR_INSTR_HPP
#define GMT_IR_INSTR_HPP

/**
 * @file
 * One IR instruction and the dense handles used throughout the library.
 */

#include <cstdint>

#include "ir/opcode.hpp"

namespace gmt
{

/** Virtual register handle (dense, per function). */
using Reg = int32_t;
inline constexpr Reg kNoReg = -1;

/** Instruction handle: index into Function's instruction arena. */
using InstrId = int32_t;
inline constexpr InstrId kNoInstr = -1;

/** Basic-block handle: index into Function's block table. */
using BlockId = int32_t;
inline constexpr BlockId kNoBlock = -1;

/**
 * Alias class of a memory access. Two accesses may alias iff their
 * classes are equal or either is kAliasAny. Workload builders annotate
 * memory instructions with the class of the abstract object they
 * touch; this plays the role of the points-to analysis the paper's
 * compiler uses (see DESIGN.md).
 */
using AliasClass = int32_t;
inline constexpr AliasClass kAliasAny = 0;

/** Queue id in the synchronization array. */
using QueueId = int32_t;
inline constexpr QueueId kNoQueue = -1;

/**
 * One instruction. Plain data; ownership and ordering live in
 * Function/BasicBlock.
 */
struct Instr
{
    Opcode op = Opcode::Const;
    Reg dst = kNoReg;
    Reg src1 = kNoReg;
    Reg src2 = kNoReg;
    int64_t imm = 0;

    /** Alias class for Load/Store; ignored otherwise. */
    AliasClass alias = kAliasAny;

    /** Queue id for communication opcodes; kNoQueue otherwise. */
    QueueId queue = kNoQueue;

    /** Owning block; maintained by Function. */
    BlockId block = kNoBlock;

    /**
     * For instructions of generated thread code: the InstrId of the
     * original instruction this one copies/duplicates, or kNoInstr for
     * inserted communication instructions.
     */
    InstrId origin = kNoInstr;

    /**
     * True for a branch replicated into a thread that does not own it
     * (inserted to implement a control dependence). Accounted
     * separately in the dynamic-instruction statistics.
     */
    bool duplicated = false;

    bool isTerminator() const { return gmt::isTerminator(op); }
    bool isMemoryAccess() const { return gmt::isMemoryAccess(op); }
    bool isCommunication() const { return gmt::isCommunication(op); }
    bool isBranch() const { return op == Opcode::Br; }
    bool hasDest() const { return gmt::hasDest(op); }
};

} // namespace gmt

#endif // GMT_IR_INSTR_HPP
