#include "ir/builder.hpp"

#include "support/error.hpp"

namespace gmt
{

Reg
FunctionBuilder::param()
{
    Reg r = func_.newReg();
    func_.addParam(r);
    return r;
}

BlockId
FunctionBuilder::newBlock(const std::string &label)
{
    BlockId b = func_.addBlock(label);
    if (current_ == kNoBlock)
        current_ = b;
    return b;
}

InstrId
FunctionBuilder::emit(Instr instr)
{
    GMT_ASSERT(current_ != kNoBlock, "no current block");
    last_ = func_.append(current_, instr);
    return last_;
}

Reg
FunctionBuilder::constI(int64_t value)
{
    Reg dst = func_.newReg();
    emit({.op = Opcode::Const, .dst = dst, .imm = value});
    return dst;
}

Reg
FunctionBuilder::mov(Reg src)
{
    Reg dst = func_.newReg();
    emit({.op = Opcode::Mov, .dst = dst, .src1 = src});
    return dst;
}

Reg
FunctionBuilder::binop(Opcode op, Reg a, Reg b)
{
    GMT_ASSERT(numSrcs(op) == 2 && hasDest(op));
    Reg dst = func_.newReg();
    emit({.op = op, .dst = dst, .src1 = a, .src2 = b});
    return dst;
}

Reg
FunctionBuilder::unop(Opcode op, Reg a)
{
    GMT_ASSERT(numSrcs(op) == 1 && hasDest(op));
    Reg dst = func_.newReg();
    emit({.op = op, .dst = dst, .src1 = a});
    return dst;
}

Reg
FunctionBuilder::addImm(Reg a, int64_t imm)
{
    if (imm == 0)
        return mov(a);
    Reg c = constI(imm);
    return add(a, c);
}

Reg
FunctionBuilder::load(Reg addr, int64_t offset, AliasClass alias)
{
    Reg dst = func_.newReg();
    emit({.op = Opcode::Load,
          .dst = dst,
          .src1 = addr,
          .imm = offset,
          .alias = alias});
    return dst;
}

void
FunctionBuilder::store(Reg addr, int64_t offset, Reg value,
                       AliasClass alias)
{
    emit({.op = Opcode::Store,
          .src1 = addr,
          .src2 = value,
          .imm = offset,
          .alias = alias});
}

void
FunctionBuilder::movInto(Reg dst, Reg src)
{
    emit({.op = Opcode::Mov, .dst = dst, .src1 = src});
}

void
FunctionBuilder::addInto(Reg dst, Reg a, Reg b)
{
    emit({.op = Opcode::Add, .dst = dst, .src1 = a, .src2 = b});
}

void
FunctionBuilder::binopInto(Opcode op, Reg dst, Reg a, Reg b)
{
    GMT_ASSERT(numSrcs(op) == 2 && hasDest(op));
    emit({.op = op, .dst = dst, .src1 = a, .src2 = b});
}

void
FunctionBuilder::unopInto(Opcode op, Reg dst, Reg a)
{
    GMT_ASSERT(numSrcs(op) == 1 && hasDest(op));
    emit({.op = op, .dst = dst, .src1 = a});
}

void
FunctionBuilder::constInto(Reg dst, int64_t value)
{
    emit({.op = Opcode::Const, .dst = dst, .imm = value});
}

void
FunctionBuilder::loadInto(Reg dst, Reg addr, int64_t offset,
                          AliasClass alias)
{
    emit({.op = Opcode::Load,
          .dst = dst,
          .src1 = addr,
          .imm = offset,
          .alias = alias});
}

void
FunctionBuilder::br(Reg cond, BlockId taken, BlockId fallthrough)
{
    emit({.op = Opcode::Br, .src1 = cond});
    func_.setSuccs(current_, {taken, fallthrough});
}

void
FunctionBuilder::jmp(BlockId target)
{
    emit({.op = Opcode::Jmp});
    func_.setSuccs(current_, {target});
}

void
FunctionBuilder::ret(std::initializer_list<Reg> live_outs)
{
    ret(std::vector<Reg>(live_outs));
}

void
FunctionBuilder::ret(const std::vector<Reg> &live_outs)
{
    func_.setLiveOuts(live_outs);
    emit({.op = Opcode::Ret});
    func_.setSuccs(current_, {});
}

} // namespace gmt
