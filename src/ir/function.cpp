#include "ir/function.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace gmt
{

BlockId
Function::addBlock(const std::string &label)
{
    BlockId id = static_cast<BlockId>(blocks_.size());
    blocks_.emplace_back(id, label);
    if (entry_ == kNoBlock)
        entry_ = id;
    return id;
}

InstrId
Function::append(BlockId b, Instr instr)
{
    return insertAt(b, static_cast<int>(blocks_[b].size()), instr);
}

InstrId
Function::insertAt(BlockId b, int pos, Instr instr)
{
    GMT_ASSERT(b >= 0 && b < numBlocks());
    GMT_ASSERT(pos >= 0 && pos <= static_cast<int>(blocks_[b].size()));
    InstrId id = static_cast<InstrId>(instrs_.size());
    instr.block = b;
    instrs_.push_back(instr);
    auto &list = blocks_[b].instrs_;
    list.insert(list.begin() + pos, id);
    // Track register space for registers introduced directly.
    for (Reg r : {instr.dst, instr.src1, instr.src2}) {
        if (r != kNoReg)
            ensureRegs(r + 1);
    }
    return id;
}

void
Function::setSuccs(BlockId b, std::vector<BlockId> succs)
{
    GMT_ASSERT(b >= 0 && b < numBlocks());
    // Detach old edges.
    for (BlockId s : blocks_[b].succs_) {
        auto &preds = blocks_[s].preds_;
        preds.erase(std::remove(preds.begin(), preds.end(), b),
                    preds.end());
    }
    for (BlockId s : succs) {
        GMT_ASSERT(s >= 0 && s < numBlocks());
        blocks_[s].preds_.push_back(b);
    }
    blocks_[b].succs_ = std::move(succs);
}

BlockId
Function::exitBlock() const
{
    for (const auto &bb : blocks_) {
        InstrId t = bb.terminator();
        if (t != kNoInstr && instrs_[t].op == Opcode::Ret)
            return bb.id();
    }
    return kNoBlock;
}

int
Function::positionOf(InstrId i) const
{
    const auto &list = blocks_[instrs_[i].block].instrs();
    auto it = std::find(list.begin(), list.end(), i);
    GMT_ASSERT(it != list.end(), "instruction not in its block");
    return static_cast<int>(it - list.begin());
}

ProgramPoint
Function::pointBefore(InstrId i) const
{
    return {instrs_[i].block, positionOf(i)};
}

Reg
Function::newReg()
{
    return num_regs_++;
}

void
Function::ensureRegs(int n)
{
    num_regs_ = std::max(num_regs_, n);
}

std::vector<Reg>
Function::usesOf(InstrId i) const
{
    const Instr &instr = instrs_[i];
    std::vector<Reg> uses;
    int n = numSrcs(instr.op);
    if (n >= 1 && instr.src1 != kNoReg)
        uses.push_back(instr.src1);
    if (n >= 2 && instr.src2 != kNoReg)
        uses.push_back(instr.src2);
    // Store addresses live in src1, the stored value in src2; both are
    // covered above (numSrcs(Store) == 2). Ret uses the live-outs.
    if (instr.op == Opcode::Ret) {
        for (Reg r : live_outs_)
            uses.push_back(r);
    }
    return uses;
}

Reg
Function::defOf(InstrId i) const
{
    const Instr &instr = instrs_[i];
    return instr.hasDest() ? instr.dst : kNoReg;
}

} // namespace gmt
