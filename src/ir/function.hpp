#ifndef GMT_IR_FUNCTION_HPP
#define GMT_IR_FUNCTION_HPP

/**
 * @file
 * Function: the unit the scheduler parallelizes — a single-entry,
 * single-exit CFG of basic blocks over virtual registers, with declared
 * live-in parameters and live-out registers.
 */

#include <string>
#include <vector>

#include "ir/basic_block.hpp"
#include "ir/instr.hpp"
#include "support/error.hpp"

namespace gmt
{

/**
 * A point in a function's original CFG: immediately before the
 * instruction at position @c pos of block @c block. @c pos may equal
 * the block's size only transiently during insertion; analyses use
 * points in [0, size].
 */
struct ProgramPoint
{
    BlockId block = kNoBlock;
    int pos = 0;

    bool operator==(const ProgramPoint &) const = default;
    auto operator<=>(const ProgramPoint &) const = default;
};

/**
 * Single-entry single-exit CFG over virtual registers.
 *
 * Instructions live in an arena indexed by InstrId; their order within
 * a block is the block's instrs() list. Register 0..numRegs()-1 are
 * all virtual registers; params() are initialized from the input
 * vector at execution, liveOuts() are the observable results.
 */
class Function
{
  public:
    explicit Function(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    // --- structure -------------------------------------------------

    /** Append a new empty block. */
    BlockId addBlock(const std::string &label);

    /** Append an instruction to a block. @return its InstrId. */
    InstrId append(BlockId b, Instr instr);

    /** Insert an instruction before position @p pos in block @p b. */
    InstrId insertAt(BlockId b, int pos, Instr instr);

    /**
     * Set a block's successor list (call once the terminator is in
     * place; Br takes two successors, Jmp one, Ret none).
     */
    void setSuccs(BlockId b, std::vector<BlockId> succs);

    BlockId entry() const { return entry_; }
    void setEntry(BlockId b) { entry_ = b; }

    /** The unique block terminated by Ret (set by the verifier). */
    BlockId exitBlock() const;

    // --- access ----------------------------------------------------

    int numBlocks() const { return static_cast<int>(blocks_.size()); }
    int numInstrs() const { return static_cast<int>(instrs_.size()); }

    const BasicBlock &
    block(BlockId b) const
    {
        GMT_ASSERT(b >= 0 && b < numBlocks(), "bad block id ", b);
        return blocks_[b];
    }

    BasicBlock &
    block(BlockId b)
    {
        GMT_ASSERT(b >= 0 && b < numBlocks(), "bad block id ", b);
        return blocks_[b];
    }

    const Instr &
    instr(InstrId i) const
    {
        GMT_ASSERT(i >= 0 && i < numInstrs(), "bad instr id ", i);
        return instrs_[i];
    }

    Instr &
    instr(InstrId i)
    {
        GMT_ASSERT(i >= 0 && i < numInstrs(), "bad instr id ", i);
        return instrs_[i];
    }

    /** Position of @p i within its block (linear scan). */
    int positionOf(InstrId i) const;

    /** The program point immediately before instruction @p i. */
    ProgramPoint pointBefore(InstrId i) const;

    // --- registers -------------------------------------------------

    /** Allocate a fresh virtual register. */
    Reg newReg();

    int numRegs() const { return num_regs_; }

    /** Grow the register space to at least @p n registers. */
    void ensureRegs(int n);

    const std::vector<Reg> &params() const { return params_; }
    void addParam(Reg r) { params_.push_back(r); }

    const std::vector<Reg> &liveOuts() const { return live_outs_; }
    void setLiveOuts(std::vector<Reg> regs) { live_outs_ = std::move(regs); }

    /**
     * Registers read by instruction @p i, including the live-out set
     * for Ret (live-outs are "used" by leaving the region).
     */
    std::vector<Reg> usesOf(InstrId i) const;

    /** Destination register of @p i, or kNoReg. */
    Reg defOf(InstrId i) const;

  private:
    std::string name_;
    std::vector<BasicBlock> blocks_;
    std::vector<Instr> instrs_;
    BlockId entry_ = kNoBlock;
    int num_regs_ = 0;
    std::vector<Reg> params_;
    std::vector<Reg> live_outs_;
};

} // namespace gmt

#endif // GMT_IR_FUNCTION_HPP
