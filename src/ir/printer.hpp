#ifndef GMT_IR_PRINTER_HPP
#define GMT_IR_PRINTER_HPP

/**
 * @file
 * Human-readable IR dump, used by examples and test failure output.
 */

#include <iosfwd>
#include <string>

#include "ir/function.hpp"

namespace gmt
{

/** Print @p f as text to @p os. */
void printFunction(const Function &f, std::ostream &os);

/** Convenience: printFunction into a string. */
std::string functionToString(const Function &f);

/** One-line rendering of a single instruction. */
std::string instrToString(const Function &f, InstrId i);

} // namespace gmt

#endif // GMT_IR_PRINTER_HPP
