#ifndef GMT_IR_PRINTER_HPP
#define GMT_IR_PRINTER_HPP

/**
 * @file
 * Textual IR printer. The output is both the human-readable dump used
 * by examples and test failure output AND the canonical serialized
 * form: src/ir/parser.hpp parses exactly this text back into a
 * Function, and parse(print(f)) is a bit-identical fixpoint (asserted
 * over the whole workload matrix by tests/test_ir_roundtrip.cpp).
 * Block and instruction ids are preserved by printing blocks in id
 * order and instructions in block order — the seed builders emit
 * instructions in exactly that order, so the arena numbering survives
 * the round trip and everything keyed on InstrId (PDG nodes,
 * partitions, comm plans) is identical for built and loaded cells.
 */

#include <iosfwd>
#include <string>

#include "ir/function.hpp"

namespace gmt
{

/** Print @p f as text to @p os. */
void printFunction(const Function &f, std::ostream &os);

/** Convenience: printFunction into a string. */
std::string functionToString(const Function &f);

/** One-line rendering of a single instruction. */
std::string instrToString(const Function &f, InstrId i);

} // namespace gmt

#endif // GMT_IR_PRINTER_HPP
