#include "obs/provenance.hpp"

#include <ostream>
#include <sstream>

namespace gmt
{

const UnitDecision *Provenance::unitDecisionFor(InstrId i) const
{
    if (i < 0 || i >= static_cast<InstrId>(partition.unit_of.size()))
        return nullptr;
    const int unit = partition.unit_of[i];
    for (const UnitDecision &d : partition.units)
        if (d.unit == unit)
            return &d;
    return nullptr;
}

const QueueDecision *Provenance::queueDecisionFor(int q) const
{
    for (const QueueDecision &d : queues.queues)
        if (d.queue == q)
            return &d;
    return nullptr;
}

const PlacementDecision *Provenance::placementDecisionFor(int index) const
{
    if (index < 0 ||
        index >= static_cast<int>(placement.placements.size()))
        return nullptr;
    const PlacementDecision &d = placement.placements[index];
    return d.index == index ? &d : nullptr;
}

namespace
{

// Hand-rolled writer: keys are emitted in one fixed order, arrays in
// the deterministic orders the structs guarantee, so equal values
// always produce equal bytes (the property the determinism tests and
// gmt-explain --diff rely on). No string values need escaping — the
// only strings are identifiers from a closed vocabulary plus cell
// names, which the workload registry restricts to [A-Za-z0-9_/+-].

void writeString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
    os << '"';
}

void writeCandidate(std::ostream &os, const ThreadCandidate &c)
{
    os << "{\"thread\":" << c.thread << ",\"busy\":" << c.busy
       << ",\"comm\":" << c.comm << ",\"score\":" << c.score
       << ",\"chosen\":" << (c.chosen ? "true" : "false") << '}';
}

void writeUnit(std::ostream &os, const UnitDecision &u)
{
    os << "{\"unit\":" << u.unit << ",\"thread\":" << u.thread
       << ",\"order\":" << u.order << ",\"work\":" << u.work
       << ",\"members\":" << u.num_members
       << ",\"first_instr\":" << u.first_instr
       << ",\"acc_before\":" << u.acc_before
       << ",\"target\":" << u.target << ",\"candidates\":[";
    for (size_t i = 0; i < u.candidates.size(); ++i) {
        if (i)
            os << ',';
        writeCandidate(os, u.candidates[i]);
    }
    os << "]}";
}

void writeIntArray(std::ostream &os, const std::vector<int> &v)
{
    os << '[';
    for (size_t i = 0; i < v.size(); ++i) {
        if (i)
            os << ',';
        os << v[i];
    }
    os << ']';
}

void writePartition(std::ostream &os, const PartitionProvenance &p)
{
    os << "{\"algorithm\":";
    writeString(os, p.algorithm);
    os << ",\"num_threads\":" << p.num_threads
       << ",\"loop_merges\":" << p.loop_merges
       << ",\"cycle_merges\":" << p.cycle_merges << ",\"unit_of\":";
    writeIntArray(os, p.unit_of);
    os << ",\"thread_of\":";
    writeIntArray(os, p.thread_of);
    os << ",\"units\":[";
    for (size_t i = 0; i < p.units.size(); ++i) {
        if (i)
            os << ',';
        writeUnit(os, p.units[i]);
    }
    os << "]}";
}

void writePoint(std::ostream &os, const CutPointCost &p)
{
    os << "{\"block\":" << p.block << ",\"pos\":" << p.pos
       << ",\"cost\":" << p.cost << ",\"arcs\":" << p.arcs << '}';
}

void writeDecision(std::ostream &os, const PlacementDecision &d,
                   bool include_exec)
{
    os << "{\"index\":" << d.index
       << ",\"kind\":" << (d.is_mem ? "\"mem\"" : "\"reg\"")
       << ",\"reg\":" << d.reg << ",\"src\":" << d.src_thread
       << ",\"dst\":" << d.dst_thread << ",\"rule\":";
    writeString(os, d.rule);
    os << ",\"iteration\":" << d.iteration
       << ",\"problem\":" << d.problem
       << ",\"cut_cost\":" << d.cut_cost
       << ",\"graph_nodes\":" << d.graph_nodes
       << ",\"graph_arcs\":" << d.graph_arcs
       << ",\"deps\":" << d.num_deps << ",\"points\":[";
    for (size_t i = 0; i < d.points.size(); ++i) {
        if (i)
            os << ',';
        writePoint(os, d.points[i]);
    }
    os << ']';
    if (include_exec)
        os << ",\"exec_warm\":" << (d.exec_warm ? "true" : "false");
    os << '}';
}

void writePlacement(std::ostream &os, const PlacementProvenance &p,
                    bool include_exec)
{
    os << "{\"source\":";
    writeString(os, p.source);
    os << ",\"iterations\":" << p.iterations << ",\"placements\":[";
    for (size_t i = 0; i < p.placements.size(); ++i) {
        if (i)
            os << ',';
        writeDecision(os, p.placements[i], include_exec);
    }
    os << "],\"elided\":[";
    for (size_t i = 0; i < p.elided.size(); ++i) {
        if (i)
            os << ',';
        writeDecision(os, p.elided[i], include_exec);
    }
    os << "]}";
}

void writeQueue(std::ostream &os, const QueueDecision &q)
{
    os << "{\"queue\":" << q.queue << ",\"src\":" << q.src_thread
       << ",\"dst\":" << q.dst_thread << ",\"rule\":";
    writeString(os, q.rule);
    os << ",\"pair_placements\":" << q.pair_placements
       << ",\"pair_queues\":" << q.pair_queues << ",\"placements\":";
    writeIntArray(os, q.placements);
    os << '}';
}

void writeQueues(std::ostream &os, const QueueProvenance &q)
{
    os << "{\"max_queues\":" << q.max_queues
       << ",\"num_queues\":" << q.num_queues << ",\"queues\":[";
    for (size_t i = 0; i < q.queues.size(); ++i) {
        if (i)
            os << ',';
        writeQueue(os, q.queues[i]);
    }
    os << "]}";
}

} // namespace

void writeProvenanceJson(std::ostream &os, const Provenance &p,
                         bool include_exec)
{
    os << "{\"schema\":1,\"type\":\"provenance\",\"cell\":";
    writeString(os, p.cell);
    os << ",\"workload\":";
    writeString(os, p.workload);
    os << ",\"scheduler\":";
    writeString(os, p.scheduler);
    os << ",\"coco\":" << (p.coco ? "true" : "false")
       << ",\"num_threads\":" << p.num_threads << ",\"partition\":";
    writePartition(os, p.partition);
    os << ",\"placement\":";
    writePlacement(os, p.placement, include_exec);
    os << ",\"queues\":";
    writeQueues(os, p.queues);
    os << '}';
}

std::string provenanceJson(const Provenance &p, bool include_exec)
{
    std::ostringstream os;
    writeProvenanceJson(os, p, include_exec);
    return os.str();
}

} // namespace gmt
