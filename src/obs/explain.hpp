#ifndef GMT_OBS_EXPLAIN_HPP
#define GMT_OBS_EXPLAIN_HPP

/**
 * @file
 * gmt-explain's engine: answers "why" questions by joining the
 * decision-provenance record (obs/provenance.hpp) against the
 * simulator's stall attribution (obs/stall_report.hpp).
 *
 *  - Point queries: why is instruction i on thread t; why does queue
 *    q exist (or not) and what does it multiplex.
 *  - Costliest decisions: every StallReport entry resolved back to
 *    the provenance records that caused it, ranked by stall cycles.
 *    The join is conservation-checked: the block-side entries cover
 *    StallReport::totalStallCycles() exactly, and every entry
 *    resolves to at least one provenance record (tests/
 *    test_provenance.cpp gates both).
 *  - Schedule diff: per-instruction placement deltas plus
 *    per-(block, queue) simulated-cycle-delta attribution between
 *    two runs; a run diffed against itself is zero() (CI-gated).
 *
 * Lives in gmt_obs_report next to the stall rollup because the join
 * needs CommPlan-level types on both sides.
 */

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/provenance.hpp"
#include "obs/stall_report.hpp"

namespace gmt
{

// ---------------------------------------------------------------------------
// Point queries.

/**
 * Render "why is instruction @p instr where it is": the owning unit's
 * decision (DSWP fill accounting or GREMIO candidate scores), plus
 * every plan placement whose decision involves the instruction's
 * thread and register. Text form, one story per line.
 */
void renderInstrExplanation(std::ostream &os, const Provenance &prov,
                            const Function &f, InstrId instr);

/**
 * Render "why does queue @p queue exist": the allocator's decision
 * (identity vs pair-share arithmetic) and the placement decisions
 * multiplexed onto it, each with its rule, iteration, and per-point
 * cost breakdown. For an unallocated id, explains the budget and
 * lists the elided decisions (cuts that proved no queue is needed).
 */
void renderQueueExplanation(std::ostream &os, const Provenance &prov,
                            int queue);

/** Point-query JSON (schema:1, fixed key order). */
void writeInstrExplanationJson(std::ostream &os, const Provenance &prov,
                               const Function &f, InstrId instr);
void writeQueueExplanationJson(std::ostream &os, const Provenance &prov,
                               int queue);

// ---------------------------------------------------------------------------
// Costliest decisions.

/** One StallReport entry joined to its provenance records. */
struct CostEntry
{
    std::string kind;    ///< "queue" | "block"
    uint64_t cycles = 0; ///< stall cycles the simulator charged

    // kind == "queue": the allocated queue and the decisions behind
    // every placement multiplexed onto it.
    int queue = -1;
    std::string queue_rule;
    std::vector<int> placements;    ///< plan placement indices
    std::vector<std::string> rules; ///< their deciding rules

    // kind == "block": a (thread, source block) charge mapped to the
    // unit decisions that put the stalled instructions there.
    int thread = -1;
    BlockId block = kNoBlock; ///< source-CFG block (label join)
    std::string label;
    std::vector<int> units; ///< deciding unit ids, ascending

    /** Block had no instruction on the thread (replicated control);
     *  resolved through the terminator's owning unit instead. */
    bool terminator_fallback = false;

    /** Provenance records this entry resolved to (>= 1 when the join
     *  is complete; buildCostliestReport counts failures). */
    int records = 0;

    bool operator==(const CostEntry &) const = default;
};

/** The ranked costliest-decisions report of one simulated cell. */
struct CostliestReport
{
    uint64_t total_stall_cycles = 0; ///< StallReport::totalStallCycles()

    /** Sum over block entries — equals total_stall_cycles when the
     *  attribution is conserved (queue entries are the same cycles
     *  viewed from the queue side, so they are not added in). */
    uint64_t block_cycles = 0;

    /** Sum over queue entries (queue_full + empty + sa_port view). */
    uint64_t queue_cycles = 0;

    /** Entries that resolved to zero provenance records (must be 0). */
    int unresolved = 0;

    /** All entries, stall cycles descending; ties break queue-before-
     *  block, then lower queue / (thread, block) id. */
    std::vector<CostEntry> entries;

    bool operator==(const CostliestReport &) const = default;
};

/**
 * Join @p report against @p prov. @p f is the source function the
 * provenance was recorded for (block labels join the MT blocks back
 * to it).
 */
CostliestReport buildCostliestReport(const Provenance &prov,
                                     const StallReport &report,
                                     const Function &f);

/** Render the top @p top entries (all when top <= 0) as text. */
void renderCostliestReport(std::ostream &os, const CostliestReport &r,
                           int top);

/** Costliest-decisions JSON (schema:1, fixed key order). */
void writeCostliestReportJson(std::ostream &os, const CostliestReport &r,
                              int top);

// ---------------------------------------------------------------------------
// Schedule diff.

/** An instruction placed on different threads by the two runs. */
struct InstrMove
{
    InstrId instr = -1;
    int thread_a = 0;
    int thread_b = 0;

    bool operator==(const InstrMove &) const = default;
};

/** Per-queue stall-cycle delta (only nonzero deltas are kept). */
struct QueueCycleDelta
{
    int queue = -1;
    int64_t stall_a = 0;
    int64_t stall_b = 0;

    bool operator==(const QueueCycleDelta &) const = default;
};

/** Per-(thread, block) stall-cycle delta (label-joined; only nonzero
 *  deltas are kept). */
struct BlockCycleDelta
{
    int thread = 0;
    std::string label;
    int64_t stall_a = 0;
    int64_t stall_b = 0;

    bool operator==(const BlockCycleDelta &) const = default;
};

/** Everything that differs between two scheduled runs. */
struct ScheduleDiff
{
    std::string cell_a;
    std::string cell_b;

    uint64_t cycles_a = 0; ///< simulated MT cycles
    uint64_t cycles_b = 0;

    int instrs = 0; ///< instructions compared
    std::vector<InstrMove> moved;

    int queues_a = 0;
    int queues_b = 0;
    std::vector<QueueCycleDelta> queue_deltas;
    std::vector<BlockCycleDelta> block_deltas;

    /** No placement moved and no cycle attribution changed. */
    bool zero() const
    {
        return moved.empty() && queue_deltas.empty() &&
               block_deltas.empty() && cycles_a == cycles_b &&
               queues_a == queues_b;
    }

    bool operator==(const ScheduleDiff &) const = default;
};

/**
 * Diff run A against run B: instruction placements from the
 * provenance records, cycle attribution from the stall reports. The
 * runs must be over the same workload (same instruction id space);
 * diffing a run against itself yields zero().
 */
ScheduleDiff diffSchedules(const Provenance &pa, const StallReport &ra,
                           const Provenance &pb, const StallReport &rb);

/** Render the diff as text. */
void renderScheduleDiff(std::ostream &os, const ScheduleDiff &d);

/** Diff JSON (schema:1, fixed key order). */
void writeScheduleDiffJson(std::ostream &os, const ScheduleDiff &d);

} // namespace gmt

#endif // GMT_OBS_EXPLAIN_HPP
