#ifndef GMT_OBS_STALL_REPORT_HPP
#define GMT_OBS_STALL_REPORT_HPP

/**
 * @file
 * Rollup of a raw SimProfile into the terms the paper talks in: the
 * simulator charges stall cycles to (core, block[, queue]); this
 * layer maps each queue back through the queue allocator's placement
 * assignment to the comm-plan entries (PDG arcs) multiplexed onto it,
 * and each (core, block) back to the thread function's block label —
 * producing the ranked "which communication costs what" view that
 * tools/gmt-profile prints and the obs-profile pass caches.
 *
 * Lives in its own library (gmt_obs_report) because the mapping needs
 * CommPlan and MtProgram: gmt_obs proper stays below the runtime so
 * the simulator can link it.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "mtcg/comm_plan.hpp"
#include "obs/stall_profile.hpp"
#include "runtime/mt_interpreter.hpp"

namespace gmt
{

/** One comm-plan entry (PDG arc's placement) mapped onto a queue. */
struct PlacementDesc
{
    int placement = -1; ///< index into CommPlan::placements
    CommKind kind = CommKind::RegisterData;
    Reg reg = kNoReg;   ///< register carried (RegisterData only)
    int src_thread = 0;
    int dst_thread = 0;
    int num_points = 0;

    bool operator==(const PlacementDesc &) const = default;
};

/** Stall cost of one allocated queue + everything mapped onto it. */
struct QueueAttribution
{
    int queue = -1;
    QueueStallProf prof;
    std::vector<PlacementDesc> placements;

    bool operator==(const QueueAttribution &) const = default;
};

/** Stall cost of one (thread, source basic block). */
struct BlockAttribution
{
    int thread = 0;
    BlockId block = kNoBlock;
    std::string label;
    BlockStallProf prof;

    bool operator==(const BlockAttribution &) const = default;
};

/** Per-thread totals (block attributions summed per core). */
struct ThreadAttribution
{
    int thread = 0;
    BlockStallProf prof;

    bool operator==(const ThreadAttribution &) const = default;
};

/** The full rollup of one simulated cell. */
struct StallReport
{
    uint64_t cycles = 0; ///< MT cycles of the profiled run

    /** Every allocated queue, sorted by stallCycles() descending. */
    std::vector<QueueAttribution> queues;

    /**
     * Every (thread, block) with a nonzero charge, sorted by total()
     * descending.
     */
    std::vector<BlockAttribution> blocks;

    /** Per-thread totals, in thread order. */
    std::vector<ThreadAttribution> threads;

    uint64_t totalStallCycles() const
    {
        uint64_t n = 0;
        for (const ThreadAttribution &t : threads)
            n += t.prof.total();
        return n;
    }

    bool operator==(const StallReport &) const = default;
};

/**
 * Build the rollup. @p queue_of maps plan placement index to the
 * allocated queue id (ProgramArtifact::queue_of); ties in the sort
 * orders break toward lower queue / thread / block ids, so the report
 * is deterministic.
 */
StallReport buildStallReport(const SimProfile &profile,
                             uint64_t cycles, const CommPlan &plan,
                             const std::vector<int> &queue_of,
                             const MtProgram &prog);

} // namespace gmt

#endif // GMT_OBS_STALL_REPORT_HPP
