#include "obs/stall_report.hpp"

#include <algorithm>
#include <cstddef>

#include "support/error.hpp"

namespace gmt
{

StallReport
buildStallReport(const SimProfile &profile, uint64_t cycles,
                 const CommPlan &plan,
                 const std::vector<int> &queue_of,
                 const MtProgram &prog)
{
    StallReport rep;
    rep.cycles = cycles;

    // Queues: invert queue_of so every queue lists the plan entries
    // multiplexed onto it (identity before queue-alloc).
    GMT_ASSERT(queue_of.size() == plan.placements.size(),
               "queue_of does not cover the plan");
    rep.queues.reserve(profile.queues.size());
    for (size_t q = 0; q < profile.queues.size(); ++q) {
        QueueAttribution qa;
        qa.queue = static_cast<int>(q);
        qa.prof = profile.queues[q];
        rep.queues.push_back(std::move(qa));
    }
    for (size_t pi = 0; pi < queue_of.size(); ++pi) {
        const int q = queue_of[pi];
        GMT_ASSERT(q >= 0 && q < static_cast<int>(rep.queues.size()),
                   "placement ", pi, " maps to unknown queue ", q);
        const CommPlacement &p = plan.placements[pi];
        PlacementDesc d;
        d.placement = static_cast<int>(pi);
        d.kind = p.kind;
        d.reg = p.reg;
        d.src_thread = p.src_thread;
        d.dst_thread = p.dst_thread;
        d.num_points = static_cast<int>(p.points.size());
        rep.queues[q].placements.push_back(d);
    }
    std::stable_sort(rep.queues.begin(), rep.queues.end(),
                     [](const QueueAttribution &a,
                        const QueueAttribution &b) {
                         if (a.prof.stallCycles() !=
                             b.prof.stallCycles())
                             return a.prof.stallCycles() >
                                    b.prof.stallCycles();
                         return a.queue < b.queue;
                     });

    // Blocks and threads.
    rep.threads.resize(profile.blocks.size());
    for (size_t c = 0; c < profile.blocks.size(); ++c) {
        ThreadAttribution &ta = rep.threads[c];
        ta.thread = static_cast<int>(c);
        const Function &f = prog.threads[c];
        GMT_ASSERT(static_cast<int>(profile.blocks[c].size()) ==
                       f.numBlocks(),
                   "profile block table does not match thread ", c);
        for (size_t b = 0; b < profile.blocks[c].size(); ++b) {
            const BlockStallProf &bp = profile.blocks[c][b];
            ta.prof.operand += bp.operand;
            ta.prof.mem_port += bp.mem_port;
            ta.prof.queue_full += bp.queue_full;
            ta.prof.queue_empty += bp.queue_empty;
            ta.prof.sa_port += bp.sa_port;
            if (bp.total() == 0)
                continue;
            BlockAttribution ba;
            ba.thread = static_cast<int>(c);
            ba.block = static_cast<BlockId>(b);
            ba.label = f.block(static_cast<BlockId>(b)).label();
            ba.prof = bp;
            rep.blocks.push_back(std::move(ba));
        }
    }
    std::stable_sort(rep.blocks.begin(), rep.blocks.end(),
                     [](const BlockAttribution &a,
                        const BlockAttribution &b) {
                         if (a.prof.total() != b.prof.total())
                             return a.prof.total() > b.prof.total();
                         if (a.thread != b.thread)
                             return a.thread < b.thread;
                         return a.block < b.block;
                     });
    return rep;
}

} // namespace gmt
