#ifndef GMT_OBS_STALL_PROFILE_HPP
#define GMT_OBS_STALL_PROFILE_HPP

/**
 * @file
 * Stall-cycle attribution collected by the CMP timing simulator.
 *
 * The simulator's aggregate CoreStats say *how many* cycles each core
 * lost to each stall cause; a SimProfile says *where* they went: every
 * stall cycle is charged to the (core, basic block) holding the
 * blocked instruction, and queue stalls additionally to the queue the
 * instruction was blocked on. Both engines charge at the same
 * architectural events, so fast- and reference-engine profiles are
 * bit-identical (asserted by tests/test_obs.cpp), and the charges are
 * exhaustive: summed per core they reproduce the aggregate CoreStats
 * counters exactly — checkStallConservation() is the invariant the
 * obs-profile pass dies on if it ever breaks.
 *
 * This is the data the paper's Figure 1 / communication-breakdown
 * analysis needs: per-queue stall cycles map through the queue
 * allocator's placement assignment back to comm-plan entries and PDG
 * arcs (obs/stall_report.hpp does that rollup).
 */

#include <cstdint>
#include <string>
#include <vector>

namespace gmt
{

/** Per-queue stall cycles and traffic. */
struct QueueStallProf
{
    uint64_t full_cycles = 0;    ///< producer-side stalls (queue full)
    uint64_t empty_cycles = 0;   ///< consumer-side stalls (queue empty)
    uint64_t sa_port_cycles = 0; ///< stalls for a sync-array port
    uint64_t produces = 0;       ///< values enqueued
    uint64_t consumes = 0;       ///< values dequeued

    uint64_t stallCycles() const
    {
        return full_cycles + empty_cycles + sa_port_cycles;
    }

    bool operator==(const QueueStallProf &) const = default;
};

/** Per-(core, basic block) stall cycles, one bucket per cause. */
struct BlockStallProf
{
    uint64_t operand = 0;
    uint64_t mem_port = 0;
    uint64_t queue_full = 0;
    uint64_t queue_empty = 0;
    uint64_t sa_port = 0;

    uint64_t total() const
    {
        return operand + mem_port + queue_full + queue_empty + sa_port;
    }

    bool operator==(const BlockStallProf &) const = default;
};

/** Full attribution of one timing run. */
struct SimProfile
{
    std::vector<QueueStallProf> queues;            ///< [queue]
    std::vector<std::vector<BlockStallProf>> blocks; ///< [core][block]

    /** Size the tables before a run. */
    void init(const std::vector<int> &blocks_per_core, int num_queues)
    {
        queues.assign(static_cast<size_t>(num_queues), {});
        blocks.clear();
        blocks.reserve(blocks_per_core.size());
        for (int nb : blocks_per_core)
            blocks.emplace_back(static_cast<size_t>(nb),
                                BlockStallProf{});
    }

    // Charge sites, called by both engines at identical events.
    // @p span is 1 in a swept cycle, or the bulk span the fast
    // engine's cycle-skip jumps over.

    void chargeOperand(int core, int block, uint64_t span)
    {
        blocks[core][block].operand += span;
    }

    void chargeMemPort(int core, int block, uint64_t span)
    {
        blocks[core][block].mem_port += span;
    }

    void chargeQueueFull(int core, int block, int q, uint64_t span)
    {
        blocks[core][block].queue_full += span;
        queues[q].full_cycles += span;
    }

    void chargeQueueEmpty(int core, int block, int q, uint64_t span)
    {
        blocks[core][block].queue_empty += span;
        queues[q].empty_cycles += span;
    }

    void chargeSaPort(int core, int block, int q, uint64_t span)
    {
        blocks[core][block].sa_port += span;
        queues[q].sa_port_cycles += span;
    }

    void noteProduce(int q) { ++queues[q].produces; }
    void noteConsume(int q) { ++queues[q].consumes; }

    bool operator==(const SimProfile &) const = default;
};

/**
 * A core's aggregate stall counters, the independently-maintained
 * truth the attribution must sum to (CoreStats minus the fields that
 * are not stalls; the driver converts).
 */
struct CoreStallTotals
{
    uint64_t operand = 0;
    uint64_t mem_port = 0;
    uint64_t queue_full = 0;
    uint64_t queue_empty = 0;
    uint64_t sa_port = 0;
};

/**
 * The conservation invariant: for every core, the per-block charges
 * sum exactly to the aggregate counters, and the per-queue charges
 * sum exactly to the cores' queue-stall totals. @return "" when it
 * holds, else a description of the first violation.
 */
std::string checkStallConservation(
    const SimProfile &profile,
    const std::vector<CoreStallTotals> &aggregates);

} // namespace gmt

#endif // GMT_OBS_STALL_PROFILE_HPP
