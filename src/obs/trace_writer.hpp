#ifndef GMT_OBS_TRACE_WRITER_HPP
#define GMT_OBS_TRACE_WRITER_HPP

/**
 * @file
 * Chrome trace-event writer: collects trace events from concurrent
 * producers (pass-manager workers, the obs-profile pass) and
 * serializes them as the JSON Object Format understood by
 * chrome://tracing and Perfetto — `{"traceEvents":[...]}` with
 * complete ("ph":"X"), counter ("ph":"C"), and metadata ("ph":"M")
 * events.
 *
 * Track layout (documented in DESIGN.md "Observability"):
 *  - pid kPipelinePid ("gmt pipeline"): one lane per worker thread,
 *    complete events for every executed pass, timestamps in wall-clock
 *    microseconds since the collector was created;
 *  - one pid per profiled cell ("sim <cell>"): one lane per simulated
 *    core carrying compute/stall intervals, plus queue-occupancy
 *    counter tracks — timestamps in *simulated cycles* (1 cycle
 *    rendered as 1 us; the two timebases live in different processes,
 *    so the viewer never mixes them on one track).
 *
 * Thread-safety: every method may be called from any thread; events
 * are rendered to JSON under the collector's lock at record time, so
 * writing the file at the end is a join.
 */

#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace gmt
{

/** Event collector + serializer. One per `--trace` file. */
class TraceCollector
{
  public:
    /** The pid of the pass-pipeline track group. */
    static constexpr int kPipelinePid = 1;

    TraceCollector();

    /** Wall-clock microseconds since this collector was created. */
    double nowUs() const;

    /**
     * Stable per-OS-thread lane id within kPipelinePid (assigned on
     * first call from a thread; also emits its thread_name metadata).
     */
    int64_t laneForThisThread();

    /**
     * Allocate a fresh pid and emit its process_name metadata
     * (per-cell simulator track groups).
     */
    int registerProcess(const std::string &name);

    /** Name lane @p tid of process @p pid. */
    void nameThread(int pid, int64_t tid, const std::string &name);

    /**
     * A complete ("ph":"X") span. String args are JSON-escaped;
     * numeric args are emitted as numbers.
     */
    void completeEvent(
        const std::string &name, const std::string &cat, int pid,
        int64_t tid, double ts_us, double dur_us,
        const std::vector<std::pair<std::string, std::string>>
            &str_args = {},
        const std::vector<std::pair<std::string, int64_t>> &num_args =
            {});

    /** A counter ("ph":"C") sample: one series per track @p name. */
    void counterEvent(const std::string &name, int pid, double ts_us,
                      const std::string &series, int64_t value);

    size_t numEvents() const;

    /** Serialize everything recorded so far. */
    void write(std::ostream &os) const;
    void writeFile(const std::string &path) const;
    std::string json() const;

  private:
    void addEvent(std::string rendered);

    mutable std::mutex mu_;
    std::vector<std::string> events_;
    int next_pid_ = kPipelinePid + 1;
    int64_t next_lane_ = 0;
    std::chrono::steady_clock::time_point t0_;
};

} // namespace gmt

#endif // GMT_OBS_TRACE_WRITER_HPP
