#ifndef GMT_OBS_TIMELINE_HPP
#define GMT_OBS_TIMELINE_HPP

/**
 * @file
 * Compressed execution timelines of a timing-simulator run, the data
 * behind the Chrome-trace per-core lanes and queue-occupancy counter
 * tracks (obs/trace_writer.hpp renders them).
 *
 * A core's timeline is a run-length encoding of its per-cycle state
 * (computing, stalled-on-X, idle-after-ret): the simulator notes one
 * state per swept cycle (or one span per skipped range) and the
 * builder merges adjacent cycles in the same state, so a million-cycle
 * stall is one interval, not a million events. Queue timelines are
 * occupancy samples taken at every produce/consume — the only cycles
 * occupancy can change — which makes them exact step functions.
 *
 * Both engines note identical per-cycle states (the fast engine's
 * skip spans cover exactly the cycles the reference sweeps in the
 * same state), so timelines are engine-independent like everything
 * else architectural.
 */

#include <cstdint>
#include <vector>

namespace gmt
{

/** What a core spent a cycle on. */
enum class CoreState : uint8_t {
    Compute,         ///< issued >= 1 instruction (or retired Jmps)
    StallOperand,    ///< scoreboard stall-on-use
    StallMemPort,    ///< out of M-slots this cycle
    StallQueueFull,  ///< produce blocked on a full queue
    StallQueueEmpty, ///< consume blocked on an empty queue
    StallSaPort,     ///< out of sync-array request ports
    Idle,            ///< retired; waiting for the other cores
};

const char *coreStateName(CoreState s);

/** Half-open cycle range [begin, end) in one state. */
struct CoreInterval
{
    uint64_t begin = 0;
    uint64_t end = 0;
    CoreState state = CoreState::Compute;

    bool operator==(const CoreInterval &) const = default;
};

/** Occupancy of a queue immediately after the cycle's access. */
struct QueueSample
{
    uint64_t cycle = 0;
    int32_t occupancy = 0;

    bool operator==(const QueueSample &) const = default;
};

/** Timelines of one run. */
struct SimTimeline
{
    std::vector<std::vector<CoreInterval>> core; ///< [core]
    std::vector<std::vector<QueueSample>> queue; ///< [queue]

    bool operator==(const SimTimeline &) const = default;
};

/**
 * Incremental builder. Notes must arrive in nondecreasing cycle order
 * per core / per queue (the simulators' natural order); adjacent
 * same-state notes merge into one interval.
 */
class TimelineBuilder
{
  public:
    void init(int num_cores, int num_queues);

    void noteCore(int core, CoreState s, uint64_t cycle)
    {
        noteCoreSpan(core, s, cycle, cycle + 1);
    }

    /** Note state @p s for cycles [begin, end); no-op when empty. */
    void noteCoreSpan(int core, CoreState s, uint64_t begin,
                      uint64_t end);

    void noteQueue(int q, uint64_t cycle, int occupancy);

    /** Flush open intervals and hand the timeline over. */
    SimTimeline take();

  private:
    struct Open
    {
        bool active = false;
        uint64_t begin = 0, end = 0;
        CoreState state = CoreState::Compute;
    };

    SimTimeline tl_;
    std::vector<Open> open_;
};

} // namespace gmt

#endif // GMT_OBS_TIMELINE_HPP
